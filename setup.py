"""Legacy setuptools shim.

Kept so that ``pip install -e .`` works in offline environments where
the ``wheel`` package (required by the PEP 660 editable path) is not
available.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
