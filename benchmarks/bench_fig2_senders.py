"""Figure 2: sender characterisation and the activity filter.

(a) ECDF of monthly packets per sender: ~36% of senders are seen only
once (backscatter); the 10-packet threshold keeps ~20% of senders that
carry the majority of traffic.
(b) Cumulative distinct senders over time, unfiltered vs filtered.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.stats import cumulative_senders, packets_per_sender_ecdf
from repro.utils.ascii_plot import line_chart


def test_fig2a_packets_per_sender(benchmark, bench_bundle):
    trace = bench_bundle.trace

    def compute():
        return packets_per_sender_ecdf(trace)

    ecdf = run_once(benchmark, compute)
    emit("")
    emit(
        line_chart(
            np.log10(ecdf.values),
            ecdf.probabilities,
            title="Figure 2a - packets per sender in the full trace (log10)",
            x_label="log10(monthly packets)",
            y_label="ECDF",
        )
    )
    seen_once = ecdf.at(1)
    below_filter = ecdf.at(9)
    emit(
        f"  seen exactly once: {seen_once:.1%}; below the 10-packet "
        f"filter: {below_filter:.1%}; active: {1 - below_filter:.1%}"
    )

    # Paper: 36% seen once, ~80% below the filter.
    assert 0.15 < seen_once < 0.6
    assert below_filter > 0.5
    # Active senders carry the majority of packets.
    counts = trace.packet_counts()
    active_share = counts[counts >= 10].sum() / counts.sum()
    emit(f"  share of traffic from active senders: {active_share:.1%}")
    assert active_share > 0.6


def test_fig2b_cumulative_senders(benchmark, bench_bundle):
    trace = bench_bundle.trace

    def compute():
        return cumulative_senders(trace, min_packets=10)

    days, unfiltered, filtered = run_once(benchmark, compute)
    emit("")
    emit(
        line_chart(
            days,
            unfiltered,
            title="Figure 2b - distinct senders over time (unfiltered)",
            x_label="days",
            y_label="senders",
        )
    )
    emit(
        line_chart(
            days,
            filtered,
            title="Figure 2b - distinct active senders over time (filtered)",
            x_label="days",
            y_label="senders",
        )
    )
    emit(
        f"  day 1: {unfiltered[0]} senders; day {int(days[-1])}: "
        f"{unfiltered[-1]} ({filtered[-1]} active)"
    )

    # Continuous growth; filtered counts grow with the window (the
    # Figure 6 coverage effect).
    assert unfiltered[-1] > unfiltered[0] * 2
    assert np.all(np.diff(unfiltered) >= 0)
    assert filtered[-1] > filtered[0]
    assert filtered[-1] < unfiltered[-1] * 0.6
