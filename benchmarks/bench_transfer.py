"""Transfer experiments (paper Section 8, measured).

The paper leaves two questions open:

1. *Across darknets, same period*: we split the /24 into two /25 views,
   train an embedding on each, and measure (a) cluster-level structure
   agreement (ARI of Louvain partitions over the shared senders) and
   (b) task transfer: classifying view-B senders against view-A's
   labelled embedding after Procrustes alignment.  Expectation (the
   paper's conjecture): transfer mostly works because both darknets
   observe the same coordinated events.

2. *Across time*: embeddings from the first and second half of the
   month.  In this stationary simulation the *group structure* still
   transfers (the same actors keep the same habits), but the task
   accuracy drops because the sender population churns — supporting
   the paper's attribution of transfer difficulty to behavioural and
   population drift rather than to the embedding method itself.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, emit, run_once
from repro.core import DarkVec, DarkVecConfig
from repro.transfer import (
    apply_alignment,
    cross_embedding_report,
    orthogonal_alignment,
    partition_agreement,
    shared_tokens,
    split_vantage_points,
)
from repro.utils.tables import format_table


def _embed(trace, seed=1):
    config = DarkVecConfig(service="domain", epochs=BENCH_EPOCHS, seed=seed)
    return DarkVec(config).fit(trace).embedding


def _transfer_metrics(trace_a, trace_b, truth, full_trace):
    embedding_a = _embed(trace_a)
    embedding_b = _embed(trace_b)
    common = shared_tokens(embedding_a, embedding_b)
    agreement = partition_agreement(embedding_a, embedding_b, k_prime=3)
    rotation = orthogonal_alignment(embedding_b, embedding_a)
    aligned_b = apply_alignment(embedding_b, rotation)
    labels = truth.labels_for(full_trace)
    labels_of_token = {int(t): labels[t] for t in common}
    gt_queries = np.array(
        [t for t in common if labels[t] != "Unknown"], dtype=np.int64
    )
    report = cross_embedding_report(
        embedding_a, aligned_b, labels_of_token, gt_queries, k=7
    )
    return len(common), agreement, report.accuracy


def test_transfer_across_darknets_and_time(benchmark, bench_bundle):
    trace = bench_bundle.trace
    truth = bench_bundle.truth

    def compute():
        view_a, view_b = split_vantage_points(trace)
        vantage = _transfer_metrics(view_a, view_b, truth, trace)
        half = trace.duration_days / 2
        early = trace.first_days(half)
        late = trace.last_days(half)
        temporal = _transfer_metrics(early, late, truth, trace)
        return vantage, temporal

    vantage, temporal = run_once(benchmark, compute)

    emit("")
    rows = [
        ["two darknets, same period", vantage[0], f"{vantage[1]:.3f}", f"{vantage[2]:.3f}"],
        ["same darknet, split in time", temporal[0], f"{temporal[1]:.3f}", f"{temporal[2]:.3f}"],
    ]
    emit(
        format_table(
            ["Transfer setting", "Shared senders", "Cluster ARI", "Task accuracy"],
            rows,
            title="Section 8 - embedding transfer (measured)",
        )
    )
    emit(
        "  Cluster ARI: agreement of Louvain partitions over the shared "
        "senders (rotation-invariant)."
    )
    emit(
        "  Task accuracy: classify GT senders of one embedding against "
        "the other's labelled space after Procrustes alignment."
    )

    # Cross-vantage transfer works: both views observe the same events.
    assert vantage[1] > 0.25
    assert vantage[2] > 0.35
    # Transfer over time loses task accuracy (population churn), even
    # though the stationary simulation preserves cluster structure.
    assert temporal[2] < vantage[2] + 0.03
    assert temporal[0] < vantage[0]  # fewer shared senders over time
