"""Table 4: per-class 7-NN report for the three service definitions.

Paper shapes: the single-service embedding only works for Mirai-like
and fails on most minority classes; auto-defined and domain-knowledge
services recover almost every class; Stretchoid keeps low recall under
every definition (its senders have no coherent temporal pattern).
"""

from benchmarks.conftest import emit, run_once


def test_table4_per_class_reports(
    benchmark, bench_bundle, darkvec_domain, darkvec_auto, darkvec_single
):
    truth = bench_bundle.truth

    def compute():
        return {
            "Single service": darkvec_single.evaluate(truth, k=7),
            "Auto-defined services": darkvec_auto.evaluate(truth, k=7),
            "Domain knowledge based": darkvec_domain.evaluate(truth, k=7),
        }

    reports = run_once(benchmark, compute)
    emit("")
    for name, report in reports.items():
        emit(report.to_text(title=f"Table 4 - {name}"))
        emit("")

    single = reports["Single service"]
    auto = reports["Auto-defined services"]
    domain = reports["Domain knowledge based"]

    # The single-service embedding is clearly worse overall...
    assert single.accuracy < auto.accuracy - 0.1
    assert single.accuracy < domain.accuracy - 0.1
    # ...and even the dominant Mirai-like class degrades sharply
    # without service separation (paper: 0.86 recall; here the
    # port-identical unknown mimics pull it lower still).
    assert single.per_class["Mirai-like"].f_score >= 0.4
    assert (
        single.per_class["Mirai-like"].f_score
        < domain.per_class["Mirai-like"].f_score - 0.2
    )
    # Proper services recover the coordinated minority classes.
    for name in ("Binaryedge", "Internet-census", "Engin-umich", "Sharashka"):
        assert domain.per_class[name].f_score > 0.7, name
    # Stretchoid stays hard (paper: recall 0.35 at best).
    assert domain.per_class["Stretchoid"].recall < 0.6
