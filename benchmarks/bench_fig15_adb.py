"""Figure 15: the unknown4 ADB worm ramp-up.

Paper shape: a mass scan of 5555/tcp (75% of the group's traffic)
whose sender population grows through the month, consistent with the
spread of an ADB worm reported by the Internet Storm Center.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.patterns import activity_matrix, arrival_order
from repro.trace.packet import SECONDS_PER_DAY, TCP
from repro.utils.ascii_plot import line_chart, raster


def test_fig15_adb_worm(benchmark, bench_bundle):
    trace = bench_bundle.trace
    senders = bench_bundle.sender_indices_of("unknown4_adb")

    def compute():
        order = arrival_order(trace, senders)
        matrix = activity_matrix(
            trace, senders, bin_seconds=SECONDS_PER_DAY, order=order
        )
        sub = trace.from_senders(senders)
        counts = sub.port_packet_counts()
        share_5555 = counts.get((5555, TCP), 0) / max(sub.n_packets, 1)
        return matrix, share_5555

    matrix, share_5555 = run_once(benchmark, compute)

    emit("")
    emit(
        raster(
            matrix,
            title="Figure 15 - ADB mass scan, senders ordered by first "
            "appearance",
        )
    )
    active_per_day = matrix.sum(axis=0)
    emit(
        line_chart(
            np.arange(len(active_per_day)),
            active_per_day,
            title="Active ADB-worm senders per day (ramp-up)",
            x_label="day",
            y_label="active senders",
        )
    )
    emit(f"  {share_5555:.0%} of the group's traffic targets 5555/tcp")

    # 5555/tcp dominates (paper: 75%).
    assert share_5555 > 0.55
    # The active population ramps up: the last third of the trace has
    # at least twice the active senders of the first third.
    third = len(active_per_day) // 3
    assert active_per_day[-third:].mean() > active_per_day[:third].mean() * 2
