"""Figure 6: impact of the training-window length on coverage.

Paper: the embedding only contains senders with >= 10 packets in the
training window, so coverage of the last-day senders grows from ~40%
with 1 training day to 100% with 30 (by construction).
"""

import numpy as np

from benchmarks.conftest import BENCH_DAYS, emit, run_once
from repro.core import coverage
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table


def test_fig6_training_window_coverage(benchmark, bench_bundle, eval_senders):
    trace = bench_bundle.trace
    evaluation = trace.last_days(1.0)
    windows = [d for d in (1, 5, 10, 20, int(BENCH_DAYS)) if d <= BENCH_DAYS]

    def compute():
        # As in the paper, coverage is measured over the senders the
        # evaluation uses (active over the full window and present in
        # the last day), so the full window covers 100% by construction.
        return [
            coverage(
                trace.last_days(float(d)),
                evaluation,
                min_packets=10,
                eval_senders=eval_senders,
            )
            for d in windows
        ]

    values = run_once(benchmark, compute)
    emit("")
    emit(
        line_chart(
            windows,
            values,
            title="Figure 6 - embedding coverage vs training window",
            x_label="training window [days]",
            y_label="coverage",
        )
    )
    emit(
        format_table(
            ["Days", "Coverage"],
            [[d, f"{v:.1%}"] for d, v in zip(windows, values)],
        )
    )

    # Monotone growth to full coverage, as in the paper.
    assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    assert values[0] < 0.9
    assert values[-1] > 0.95
