"""Ablation: embedding architecture (skip-gram vs CBOW vs GloVe).

The paper uses skip-gram and cites GloVe as the other mainstream
family.  On darknet corpora the co-occurrence matrix is extremely
sparse and non-stationary, so the global-factorisation approach
(GloVe) is expected to trail the local-window SGNS/CBOW models.
"""

from benchmarks.conftest import emit, run_once
from repro.core import DarkVec, DarkVecConfig
from repro.corpus.builder import CorpusBuilder
from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import classification_report
from repro.services.domain import DomainServiceMap
from repro.utils.tables import format_table
from repro.utils.timer import Timer
from repro.w2v.glove import GloVe
from repro.w2v.model import Word2Vec

_ABLATION_DAYS = 12.0
_ABLATION_EPOCHS = 5


def test_ablation_architecture(benchmark, bench_bundle):
    trace = bench_bundle.trace.last_days(_ABLATION_DAYS)
    truth = bench_bundle.truth
    active = trace.active_senders(10)
    corpus = CorpusBuilder(DomainServiceMap()).build(trace, keep_senders=active)
    sentences = [s.tokens for s in corpus]
    labels = truth.labels_for(trace)
    eval_senders = trace.last_days(1.0).observed_senders()

    def evaluate(keyed):
        rows = keyed.rows_of(eval_senders)
        rows = rows[rows >= 0]
        token_labels = labels[keyed.tokens]
        predictions = leave_one_out_predictions(
            keyed.vectors, token_labels, rows, k=7
        )
        return classification_report(token_labels[rows], predictions).accuracy

    def compute():
        results = {}
        for name, trainer in (
            (
                "skip-gram",
                Word2Vec(epochs=_ABLATION_EPOCHS, seed=1),
            ),
            (
                "CBOW",
                Word2Vec(
                    epochs=_ABLATION_EPOCHS, seed=1, architecture="cbow"
                ),
            ),
            ("GloVe", GloVe(epochs=15, seed=1)),
        ):
            with Timer() as timer:
                keyed = trainer.fit(sentences)
            results[name] = (evaluate(keyed), timer.elapsed)
        return results

    results = run_once(benchmark, compute)
    emit("")
    emit(
        format_table(
            ["Architecture", "Accuracy", "Time [s]"],
            [
                [name, f"{acc:.3f}", f"{secs:.1f}"]
                for name, (acc, secs) in results.items()
            ],
            title="Ablation - embedding architecture on the same corpus",
        )
    )

    # Every architecture produces a usable embedding...
    assert min(accuracy for accuracy, _ in results.values()) > 0.15
    # ...and skip-gram — the paper's choice — is the strongest (or ties
    # within noise).
    best = max(accuracy for accuracy, _ in results.values())
    assert results["skip-gram"][0] > best - 0.05
    # CBOW trails skip-gram moderately (senders are "rare words", where
    # CBOW's averaged contexts lose information).
    assert results["CBOW"][0] > results["skip-gram"][0] - 0.35
