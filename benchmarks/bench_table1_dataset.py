"""Table 1: dataset statistics (30-day trace and last day).

Paper values (for shape comparison — absolute counts scale with the
simulation size): 30 days: 543 900 sources, 63.5 M packets, 65 537
ports, top TCP ports 5555/445/23.  Last day: 43 118 sources, 3.46 M
packets, top TCP ports 445/5555/23.
"""

from benchmarks.conftest import emit, run_once
from repro.analysis.stats import dataset_stats
from repro.utils.tables import format_table


def test_table1_dataset_statistics(benchmark, bench_bundle):
    trace = bench_bundle.trace

    def compute():
        return dataset_stats(trace), dataset_stats(trace.last_days(1.0))

    full, last = run_once(benchmark, compute)

    rows = []
    for name, stats in (("30 days", full), ("Last day", last)):
        top = "; ".join(
            f"{port}/tcp {share:.2f}% ({sources} src)"
            for port, share, sources in stats.top_tcp_ports
        )
        rows.append([name, stats.n_sources, stats.n_packets, stats.n_ports, top])
    emit("")
    emit(
        format_table(
            ["Window", "Sources", "Packets", "Ports", "Top-3 TCP ports"],
            rows,
            title="Table 1 - single day and complete dataset statistics",
        )
    )

    # Structural checks mirroring the paper's table.
    assert full.n_sources > last.n_sources
    assert full.n_packets > last.n_packets
    top_full = {port for port, _, _ in full.top_tcp_ports}
    assert top_full & {23, 445, 5555}
