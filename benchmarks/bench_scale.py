"""Scale-out benchmark: the million-sender pipeline and its knobs.

Three experiments, one JSON (``BENCH_scale.json``):

1. **Pipeline at scale** — a synthetic trace with N distinct senders
   (default one million) runs through the staged pipeline with the
   scale knobs on (``shard_size`` streaming build, raw mmap artifact
   container) plus a sampled leave-one-out probe through the IVF-PQ
   index, with the ``proc.rss_peak`` gauge sampled at every stage
   boundary.  The acceptance bar is the RSS ceiling: the whole run
   must stay under ``--rss-ceiling-gb``.
2. **ANN at scale** — exact vs IVF-PQ search over an N-row synthetic
   embedding: wall time per query batch, recall@k of IVF-PQ against
   the exact result, and the compression ratio of codes vs float
   vectors.
3. **Pool backends** — the same training run under the thread and the
   process worker pool at ``--workers`` workers.  Wall times are
   reported together with the machine's core count: on a single-core
   box the process backend cannot win and the JSON says so honestly.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_scale.py

``--smoke`` shrinks N for CI and asserts the invariants that do not
need big hardware (IVF-PQ recall >= 0.9, RSS ceiling, bit-identity of
the sharded path).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.ann import AnnSpec, build_index
from repro.ann.exact import exact_topk
from repro.core import DarkVec, DarkVecConfig
from repro.knn.loo import leave_one_out_predictions
from repro.trace.packet import TCP, Trace
from repro.w2v.mathutils import unit_rows

K = 7
DELTA_T = 1800.0


def synthetic_trace(
    n_senders: int, packets_per_sender: int, senders_per_window: int, seed: int
) -> Trace:
    """A time-sorted trace with ``n_senders`` distinct senders.

    Senders are spread evenly over dT windows (``senders_per_window``
    each), every sender emitting ``packets_per_sender`` packets inside
    its window — the shape that exercises window-range sharding.
    Construction is columnar on purpose: the CSV/simulator path would
    dominate the benchmark at N = 10^6.
    """
    rng = np.random.default_rng(seed)
    n_windows = (n_senders + senders_per_window - 1) // senders_per_window
    senders = np.arange(n_senders, dtype=np.int64)
    window_of = senders // senders_per_window
    pkt_senders = np.repeat(senders, packets_per_sender)
    pkt_windows = np.repeat(window_of, packets_per_sender)
    base = 1_600_000_000.0
    offsets = rng.uniform(0.0, DELTA_T - 1.0, size=len(pkt_senders))
    times = base + pkt_windows * DELTA_T + offsets
    order = np.argsort(times, kind="stable")
    n = len(order)
    return Trace(
        times=times[order],
        senders=pkt_senders[order].astype(np.int32),
        ports=np.full(n, 23, dtype=np.int32),
        protos=np.full(n, TCP, dtype=np.uint8),
        receivers=(pkt_senders[order] % 256).astype(np.uint8),
        mirai=np.zeros(n, dtype=bool),
        sender_ips=(np.arange(n_senders, dtype=np.uint32) + 0x0A000000),
    )


def synthetic_units(n: int, dim: int, seed: int) -> np.ndarray:
    """Clustered unit vectors with realistic neighborhood sizes.

    Darknet embeddings put coordinated senders into many small groups,
    not a handful of giant blobs: cluster count scales with N (about 50
    members each) and per-cluster spread varies, so a query's true
    k-NN live in its own tight neighborhood.  A fixed small cluster
    count would make every neighborhood thousands of near-equidistant
    points — a degenerate geometry no embedding of real traffic shows,
    and one that punishes any ANN shortlist.
    """
    rng = np.random.default_rng(seed)
    n_clusters = max(64, n // 50)
    centers = rng.normal(size=(n_clusters, dim))
    assign = rng.integers(0, n_clusters, size=n)
    sigma = rng.uniform(0.05, 0.3, size=n_clusters)
    points = centers[assign] + sigma[assign, None] * rng.normal(size=(n, dim))
    return unit_rows(points)


def bench_pipeline(args) -> dict:
    """Full staged run with the scale knobs on, under an RSS ceiling."""
    trace = synthetic_trace(
        args.n_senders, args.packets_per_sender, args.senders_per_window, 7
    )
    telemetry = obs.Telemetry()
    with tempfile.TemporaryDirectory() as tmp:
        config = DarkVecConfig(
            service="single",
            delta_t=DELTA_T,
            min_packets=args.packets_per_sender,
            epochs=args.epochs,
            vector_size=args.vector_size,
            context=5,
            seed=1,
            workers=args.workers,
            pool_backend="process" if args.process else "thread",
            shard_size=args.shard_size,
            use_mmap=True,
            ann_backend="ivfpq",
            ann_nprobe=args.nprobe,
            cache_dir=Path(tmp) / "cache",
        )
        t0 = time.perf_counter()
        with obs.session(telemetry):
            darkvec = DarkVec(config).fit(trace)
            fit_seconds = time.perf_counter() - t0
            embedding = darkvec.embedding
            labels = (embedding.tokens % 10).astype(str)
            rng = np.random.default_rng(3)
            rows = np.sort(
                rng.choice(
                    len(embedding),
                    min(args.loo_sample, len(embedding)),
                    replace=False,
                )
            )
            t1 = time.perf_counter()
            leave_one_out_predictions(
                embedding.vectors,
                labels,
                rows,
                k=K,
                workers=args.workers,
                index=darkvec._ann_index(),
            )
            loo_seconds = time.perf_counter() - t1
            obs.sample_rss_peak("proc.rss_peak")
    rss_peak = telemetry.registry.gauges.get("proc.rss_peak", 0.0)
    ceiling = args.rss_ceiling_gb * (1 << 30)
    return {
        "n_senders": args.n_senders,
        "n_packets": len(trace),
        "embedded_senders": len(embedding),
        "shard_size": args.shard_size,
        "stages": [
            {"stage": s.stage, "status": s.status, "seconds": round(s.seconds, 3)}
            for s in darkvec.stage_statuses
        ],
        "fit_seconds": round(fit_seconds, 3),
        "loo_sample": int(len(rows)),
        "loo_seconds": round(loo_seconds, 3),
        "rss_peak_bytes": int(rss_peak),
        "rss_ceiling_bytes": int(ceiling),
        "under_ceiling": bool(rss_peak and rss_peak < ceiling),
    }


def bench_ann(args) -> dict:
    """Exact vs IVF-PQ over an N-row embedding: time, recall, memory."""
    units = synthetic_units(args.ann_n, args.vector_size, 5)
    rng = np.random.default_rng(11)
    queries = np.sort(rng.choice(args.ann_n, args.ann_queries, replace=False))

    t0 = time.perf_counter()
    exact_nb, _ = exact_topk(units, queries, K)
    exact_seconds = time.perf_counter() - t0

    spec = AnnSpec(
        backend="ivfpq", nprobe=args.nprobe, recall_sample=0, seed=1
    )
    t1 = time.perf_counter()
    index = build_index(units, spec)
    build_seconds = time.perf_counter() - t1
    t2 = time.perf_counter()
    nb, _ = index.search(queries, K)
    search_seconds = time.perf_counter() - t2

    overlap = sum(
        len(np.intersect1d(nb[i], exact_nb[i])) for i in range(len(queries))
    )
    recall = overlap / (len(queries) * K)
    speedup = exact_seconds / search_seconds if search_seconds > 0 else 0.0
    code_bytes = index.codes.nbytes + index.centroids.nbytes + index.codebooks.nbytes
    return {
        "n": args.ann_n,
        "queries": args.ann_queries,
        "k": K,
        "nlist": index.nlist,
        "nprobe": args.nprobe,
        "pq_m": index.m,
        "exact_seconds": round(exact_seconds, 3),
        "build_seconds": round(build_seconds, 3),
        "search_seconds": round(search_seconds, 3),
        "speedup": round(speedup, 2),
        "recall_at_k": round(recall, 4),
        "vector_bytes": int(units.nbytes),
        "code_bytes": int(code_bytes),
        "compression": round(units.nbytes / code_bytes, 1),
    }


def bench_backends(args) -> dict:
    """Thread vs process training on the same corpus at N workers."""
    trace = synthetic_trace(
        args.backend_senders, args.packets_per_sender, args.senders_per_window, 7
    )
    results = {}
    for backend in ("thread", "process"):
        config = DarkVecConfig(
            service="single",
            delta_t=DELTA_T,
            min_packets=args.packets_per_sender,
            epochs=args.epochs,
            vector_size=args.vector_size,
            context=5,
            seed=1,
            workers=args.backend_workers,
            pool_backend=backend,
        )
        t0 = time.perf_counter()
        DarkVec(config).fit(trace)
        results[backend] = time.perf_counter() - t0
    speedup = (
        results["thread"] / results["process"] if results["process"] > 0 else 0.0
    )
    return {
        "n_senders": args.backend_senders,
        "workers": args.backend_workers,
        "cores": os.cpu_count(),
        "thread_seconds": round(results["thread"], 3),
        "process_seconds": round(results["process"], 3),
        "speedup": round(speedup, 2),
        "note": (
            "process wins only with >1 physical core; on a single-core "
            "machine fork overhead makes it slower, reported as measured"
        ),
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-senders", type=int, default=1_000_000)
    parser.add_argument("--packets-per-sender", type=int, default=2)
    parser.add_argument("--senders-per-window", type=int, default=2000)
    parser.add_argument("--shard-size", type=int, default=50_000)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--vector-size", type=int, default=32)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--process", action="store_true")
    parser.add_argument("--nprobe", type=int, default=16)
    parser.add_argument("--loo-sample", type=int, default=2000)
    parser.add_argument("--rss-ceiling-gb", type=float, default=16.0)
    parser.add_argument("--ann-n", type=int, default=1_000_000)
    parser.add_argument("--ann-queries", type=int, default=500)
    parser.add_argument("--backend-senders", type=int, default=50_000)
    parser.add_argument("--backend-workers", type=int, default=4)
    parser.add_argument("--out", type=Path, default=Path("BENCH_scale.json"))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: shrink N and assert the hardware-independent bars",
    )
    return parser


def main() -> int:
    args = _build_parser().parse_args()
    if args.smoke:
        args.n_senders = 20_000
        args.senders_per_window = 500
        args.shard_size = 2_000
        args.ann_n = 50_000
        args.ann_queries = 200
        args.loo_sample = 500
        args.backend_senders = 10_000
        args.rss_ceiling_gb = min(args.rss_ceiling_gb, 8.0)

    result = {
        "smoke": bool(args.smoke),
        "cores": os.cpu_count(),
        "pipeline": None,
        "ann": None,
        "train_backends": None,
    }
    print(f"[1/3] pipeline: N={args.n_senders:,} senders ...")
    result["pipeline"] = bench_pipeline(args)
    print(json.dumps(result["pipeline"], indent=2))
    print(f"[2/3] ann: N={args.ann_n:,} rows ...")
    result["ann"] = bench_ann(args)
    print(json.dumps(result["ann"], indent=2))
    print(f"[3/3] train backends at {args.backend_workers} workers ...")
    result["train_backends"] = bench_backends(args)
    print(json.dumps(result["train_backends"], indent=2))

    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if result["ann"]["recall_at_k"] < 0.9:
        failures.append(
            f"IVF-PQ recall {result['ann']['recall_at_k']} < 0.9"
        )
    if not result["pipeline"]["under_ceiling"]:
        failures.append(
            f"RSS peak {result['pipeline']['rss_peak_bytes']} over the "
            f"{result['pipeline']['rss_ceiling_bytes']} ceiling"
        )
    if not args.smoke and result["ann"]["speedup"] < 10.0:
        failures.append(
            f"IVF-PQ speedup {result['ann']['speedup']}x < 10x at full scale"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
