"""Table 5: summary of extracted coordinated sender groups.

The paper's analysts inspected each Louvain cluster by hand (reverse
DNS, whois, abuse pages).  Here the simulator's hidden actors play the
role of those databases: for each detected cluster we report size,
ports, silhouette and address layout, then check that the paper's
groups (Censys shifts, Shadowserver, NetBIOS /24 scanner, ADB worm,
fingerprint-less Mirai, SSH bots...) are recovered.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.core.inspection import inspect_clusters
from repro.core.report import describe_clusters
from repro.trace.scenario import PAPER_GROUP_NOTES
from repro.utils.tables import format_table


def _actor_recovery(bundle, profiles, embedding):
    """For each hidden actor: best-cluster overlap statistics."""
    rows = []
    for actor_name, description in PAPER_GROUP_NOTES.items():
        senders = bundle.sender_indices_of(actor_name)
        embedded_rows = embedding.rows_of(senders)
        embedded = set(senders[embedded_rows >= 0].tolist())
        if not embedded:
            continue
        best = max(
            profiles,
            key=lambda p: len(set(p.senders.tolist()) & embedded),
        )
        overlap = len(set(best.senders.tolist()) & embedded)
        rows.append(
            (
                actor_name,
                description,
                len(embedded),
                best,
                overlap / len(embedded),
            )
        )
    return rows


def test_table5_coordinated_groups(
    benchmark,
    bench_bundle,
    darkvec_domain,
    cluster_result,
    cluster_silhouette_map,
):
    trace = bench_bundle.trace
    embedding = darkvec_domain.embedding
    labels = bench_bundle.truth.labels_for(trace)

    def compute():
        profiles = inspect_clusters(
            trace,
            embedding.tokens,
            cluster_result.communities,
            silhouettes=cluster_silhouette_map,
            labels=labels,
            min_size=5,
        )
        return profiles, _actor_recovery(bench_bundle, profiles, embedding)

    profiles, recovery = run_once(benchmark, compute)

    emit("")
    emit(
        f"Clustering: {cluster_result.n_clusters} clusters, "
        f"modularity {cluster_result.modularity:.3f}"
    )
    table_rows = []
    for actor_name, description, n_embedded, best, fraction in recovery:
        top = ", ".join(
            f"{name} ({share:.0%})" for name, share in best.top_ports[:2]
        )
        table_rows.append(
            [
                actor_name,
                f"C{best.cluster_id}",
                best.size,
                best.n_ports,
                f"{best.silhouette:.2f}",
                best.n_subnets24,
                f"{fraction:.0%}",
                top,
            ]
        )
    emit(
        format_table(
            ["Hidden group", "Cluster", "IPs", "Ports", "Sh", "/24s", "Found", "Top ports"],
            table_rows,
            title="Table 5 - coordinated sender groups recovered by clustering",
        )
    )
    for actor_name, description, *_ in recovery:
        emit(f"  {actor_name}: {description}")

    # Automatic characterisation (the paper's §7.3 narratives, derived
    # without the simulator's ground truth).
    emit("")
    emit("Automatic cluster characterisation (largest 12 clusters):")
    for finding in describe_clusters(trace, profiles[:12]):
        emit(f"  {finding.headline}")

    by_actor = {row[0]: row for row in recovery}

    # The single-/24 NetBIOS scanner is recovered nearly completely in
    # a cluster dominated by 137/udp.  (It may share that cluster with
    # the Shadowserver C37 sub-group, whose signature is also 137/udp —
    # a merge the paper's finer-grained clustering avoids — so the
    # subnet check applies to the recovered members, not the cluster.)
    netbios = by_actor["unknown1_netbios"]
    assert netbios[4] > 0.7
    assert netbios[3].top_ports[0][0] == "137/udp"
    members = np.intersect1d(
        netbios[3].senders, bench_bundle.sender_indices_of("unknown1_netbios")
    )
    member_subnets = {
        int(ip) >> 8 for ip in trace.sender_ips[members]
    }
    assert len(member_subnets) == 1

    # The ADB worm cluster is dominated by 5555/tcp.
    adb = by_actor["unknown4_adb"]
    assert adb[4] > 0.5
    assert adb[3].top_ports[0][0] == "5555/tcp"

    # The fingerprint-less Mirai variants land in a Mirai-dominated,
    # telnet-heavy cluster (the paper's unknown5 / C18).
    nofp = by_actor["mirai_nofp"]
    assert nofp[3].top_ports[0][0] == "23/tcp"
    assert nofp[3].label_composition.get("Mirai-like", 0) > 0

    # SSH bots concentrate in a 22/tcp-dominated cluster.
    ssh = by_actor["unknown6_ssh"]
    assert ssh[3].top_ports[0][0] == "22/tcp"
    assert ssh[4] > 0.5
