"""ANN benchmark: IVF speedup and recall versus the exact backend.

Two experiments, one JSON:

1. **Fidelity** — fit DarkVec on a simulated scenario, then run the
   leave-one-out evaluation through both backends.  Reports the exact
   and IVF accuracies and their delta (the acceptance bar for the IVF
   backend is ``|delta| <= 0.01``).
2. **Scaling sweep** — tile + jitter the trained embedding up to
   larger corpus sizes (the geometry stays darknet-like: the same
   cluster structure, more members per cluster) and, at each size,
   time the exact search once and the IVF search at several ``nprobe``
   values, measuring recall@k of every setting against the exact
   result.  IVF build time is reported separately: in the pipeline the
   index is a cached artifact, so search time is what recurring
   consumers pay.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_ann.py

``--smoke`` shrinks everything for CI and asserts recall >= 0.9 at the
default operating point (auto nlist, nprobe = 8).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ann import AnnSpec, ExactIndex, IVFIndex
from repro.core import DarkVec, DarkVecConfig
from repro.knn.loo import leave_one_out_predictions
from repro.trace.generator import generate_trace
from repro.trace.scenario import default_scenario
from repro.w2v.mathutils import unit_rows

K = 7
NPROBES = (1, 2, 4, 8, 16)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--days", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--model-seed", type=int, default=1)
    parser.add_argument(
        "--sizes",
        type=str,
        default="8192,32768,131072",
        help="comma list of corpus sizes for the scaling sweep",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=2048,
        help="timed queries per size (sampled without replacement)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny sweep, asserts recall >= 0.9 at nprobe=8",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_ann.json"))
    return parser


def tiled_units(base: np.ndarray, n: int, seed: int) -> np.ndarray:
    """Grow ``base`` to ``n`` rows by tiling with small angular jitter.

    Replicas stay close to their source point (jitter sigma well under
    typical cluster radii), so the grown corpus keeps the embedding's
    cluster geometry while making every neighbourhood denser — the
    regime IVF is built for.
    """
    rng = np.random.default_rng(seed)
    reps = int(np.ceil(n / len(base)))
    grown = np.tile(base, (reps, 1))[:n]
    grown = grown + 0.03 * rng.standard_normal(grown.shape)
    return unit_rows(grown)


def fidelity_experiment(args) -> dict:
    """LOO accuracy through the exact and IVF backends."""
    scenario = default_scenario(
        scale=args.scale, days=args.days, seed=args.seed
    )
    bundle = generate_trace(scenario)
    config = DarkVecConfig(
        service="domain", epochs=args.epochs, seed=args.model_seed
    )
    darkvec = DarkVec(config).fit(bundle.trace)
    embedding = darkvec.embedding
    labels = bundle.truth.labels_for(bundle.trace)[embedding.tokens]
    rows = np.arange(len(embedding))

    t0 = time.perf_counter()
    exact_pred = leave_one_out_predictions(
        embedding.vectors, labels, rows, k=K
    )
    exact_seconds = time.perf_counter() - t0

    ivf_spec = AnnSpec(backend="ivf", nprobe=8, seed=args.model_seed)
    t0 = time.perf_counter()
    ivf_pred = leave_one_out_predictions(
        embedding.vectors, labels, rows, k=K, spec=ivf_spec
    )
    ivf_seconds = time.perf_counter() - t0

    known = labels != "Unknown"
    exact_acc = float(np.mean(exact_pred[known] == labels[known]))
    ivf_acc = float(np.mean(ivf_pred[known] == labels[known]))
    return {
        "n_senders": int(len(embedding)),
        "k": K,
        "exact_accuracy": round(exact_acc, 4),
        "ivf_accuracy": round(ivf_acc, 4),
        "accuracy_delta": round(ivf_acc - exact_acc, 4),
        "prediction_agreement": round(float(np.mean(exact_pred == ivf_pred)), 4),
        "exact_loo_seconds": round(exact_seconds, 3),
        "ivf_loo_seconds": round(ivf_seconds, 3),
        "embedding": embedding,
    }


def sweep_size(units: np.ndarray, n_queries: int, seed: int) -> dict:
    """Time exact vs IVF at every nprobe for one corpus size."""
    n = len(units)
    rng = np.random.default_rng(seed)
    queries = np.sort(rng.choice(n, min(n_queries, n), replace=False))

    exact = ExactIndex(units)
    t0 = time.perf_counter()
    exact_nb, _ = exact.search(queries, K)
    exact_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    # recall_sample=0: recall is measured below against exact_nb, so
    # the timed path carries no audit overhead.
    base_spec = AnnSpec(backend="ivf", nprobe=8, recall_sample=0, seed=seed)
    index = IVFIndex.build(units, base_spec)
    build_seconds = time.perf_counter() - t0

    settings = []
    for nprobe in NPROBES:
        if nprobe > index.nlist:
            continue
        probed = IVFIndex(
            units,
            AnnSpec(backend="ivf", nprobe=nprobe, recall_sample=0, seed=seed),
            index.centroids,
            index.assign,
            units32=index.units32,
        )
        t0 = time.perf_counter()
        nb, _ = probed.search(queries, K)
        seconds = time.perf_counter() - t0
        recall = float(
            np.mean(
                [
                    len(np.intersect1d(nb[i], exact_nb[i])) / K
                    for i in range(len(queries))
                ]
            )
        )
        settings.append(
            {
                "nprobe": nprobe,
                "search_seconds": round(seconds, 4),
                "speedup_vs_exact": round(exact_seconds / max(seconds, 1e-9), 2),
                "recall_at_k": round(recall, 4),
            }
        )
    return {
        "n": n,
        "queries": int(len(queries)),
        "nlist": int(index.nlist),
        "exact_search_seconds": round(exact_seconds, 4),
        "ivf_build_seconds": round(build_seconds, 4),
        "settings": settings,
    }


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.smoke:
        args.scale = 0.05
        args.days = 4.0
        args.epochs = 3
        args.sizes = "4096,16384"
        args.queries = 512

    print("== fidelity: exact vs IVF leave-one-out ==")
    fidelity = fidelity_experiment(args)
    embedding = fidelity.pop("embedding")
    print(
        f"  exact {fidelity['exact_accuracy']:.4f}  "
        f"ivf {fidelity['ivf_accuracy']:.4f}  "
        f"delta {fidelity['accuracy_delta']:+.4f}"
    )

    base_units = unit_rows(embedding.vectors)
    sweep = []
    for n in [int(s) for s in args.sizes.split(",")]:
        result = sweep_size(
            tiled_units(base_units, n, args.seed), args.queries, args.seed
        )
        sweep.append(result)
        print(f"== N={result['n']} (nlist={result['nlist']}) ==")
        print(f"  exact search {result['exact_search_seconds']:.3f}s")
        for s in result["settings"]:
            print(
                f"  nprobe={s['nprobe']:>2}  {s['search_seconds']:.3f}s  "
                f"{s['speedup_vs_exact']:>6.1f}x  recall "
                f"{s['recall_at_k']:.3f}"
            )

    best = max(
        (
            s
            for r in sweep
            for s in r["settings"]
            if s["recall_at_k"] >= 0.95
        ),
        key=lambda s: s["speedup_vs_exact"],
        default=None,
    )
    document = {
        "benchmark": "ann",
        "preset": {
            "scale": args.scale,
            "days": args.days,
            "scenario_seed": args.seed,
            "model_seed": args.model_seed,
            "epochs": args.epochs,
            "k": K,
        },
        "environment": {"cpu_count": os.cpu_count()},
        "fidelity": fidelity,
        "sweep": sweep,
        "best_speedup_at_recall_0.95": best,
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.smoke:
        worst = min(
            s["recall_at_k"]
            for r in sweep
            for s in r["settings"]
            if s["nprobe"] == 8
        )
        assert worst >= 0.9, f"smoke recall regression: {worst:.3f} < 0.9"
        assert abs(fidelity["accuracy_delta"]) <= 0.02, (
            f"smoke LOO delta too large: {fidelity['accuracy_delta']}"
        )
        print(f"smoke OK: recall@nprobe=8 >= {worst:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
