"""ANN benchmark: exact vs IVF vs HNSW speedup and recall.

Two experiments, one JSON:

1. **Fidelity** — fit DarkVec on a simulated scenario, then run the
   leave-one-out evaluation through all three backends.  Reports the
   exact, IVF and HNSW accuracies and their deltas (the acceptance bar
   for an approximate backend is ``|delta| <= 0.01``).
2. **Scaling sweep** — tile + jitter the trained embedding up to
   larger corpus sizes (the geometry stays darknet-like: the same
   cluster structure, more members per cluster) and, at each size,
   time the exact search once, the IVF search at several ``nprobe``
   values and the HNSW search at several ``ef_search`` values,
   measuring recall@k of every setting against the exact result.
   Build times are reported separately: in the pipeline the index is a
   cached artifact, so search time is what recurring consumers pay.
   Each size also records the matched-recall comparison the HNSW
   acceptance bar uses: at the default ``ef_search``, the best IVF
   speedup among settings with recall at least HNSW's.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_ann.py

``--smoke`` shrinks everything for CI and asserts recall >= 0.9 at the
default operating points (IVF nprobe = 8, HNSW default ``ef_search``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ann import AnnSpec, ExactIndex, HNSWIndex, IVFIndex
from repro.core import DarkVec, DarkVecConfig
from repro.knn.loo import leave_one_out_predictions
from repro.trace.generator import generate_trace
from repro.trace.scenario import default_scenario
from repro.w2v.mathutils import unit_rows

K = 7
NPROBES = (1, 2, 4, 8, 16)
EF_SEARCHES = (8, 16, 24, 32, 64)
DEFAULT_EF = AnnSpec().hnsw_ef_search


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--days", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--model-seed", type=int, default=1)
    parser.add_argument(
        "--sizes",
        type=str,
        default="8192,32768,131072",
        help="comma list of corpus sizes for the scaling sweep",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=2048,
        help="timed queries per size (sampled without replacement)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: tiny sweep, asserts recall >= 0.9 at nprobe=8",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_ann.json"))
    return parser


def tiled_units(base: np.ndarray, n: int, seed: int) -> np.ndarray:
    """Grow ``base`` to ``n`` rows by tiling with small angular jitter.

    Replicas stay close to their source point (jitter sigma well under
    typical cluster radii), so the grown corpus keeps the embedding's
    cluster geometry while making every neighbourhood denser — the
    regime IVF is built for.
    """
    rng = np.random.default_rng(seed)
    reps = int(np.ceil(n / len(base)))
    grown = np.tile(base, (reps, 1))[:n]
    grown = grown + 0.03 * rng.standard_normal(grown.shape)
    return unit_rows(grown)


def fidelity_experiment(args) -> dict:
    """LOO accuracy through the exact and IVF backends."""
    scenario = default_scenario(
        scale=args.scale, days=args.days, seed=args.seed
    )
    bundle = generate_trace(scenario)
    config = DarkVecConfig(
        service="domain", epochs=args.epochs, seed=args.model_seed
    )
    darkvec = DarkVec(config).fit(bundle.trace)
    embedding = darkvec.embedding
    labels = bundle.truth.labels_for(bundle.trace)[embedding.tokens]
    rows = np.arange(len(embedding))

    t0 = time.perf_counter()
    exact_pred = leave_one_out_predictions(
        embedding.vectors, labels, rows, k=K
    )
    exact_seconds = time.perf_counter() - t0

    ivf_spec = AnnSpec(backend="ivf", nprobe=8, seed=args.model_seed)
    t0 = time.perf_counter()
    ivf_pred = leave_one_out_predictions(
        embedding.vectors, labels, rows, k=K, spec=ivf_spec
    )
    ivf_seconds = time.perf_counter() - t0

    hnsw_spec = AnnSpec(backend="hnsw", seed=args.model_seed)
    t0 = time.perf_counter()
    hnsw_pred = leave_one_out_predictions(
        embedding.vectors, labels, rows, k=K, spec=hnsw_spec
    )
    hnsw_seconds = time.perf_counter() - t0

    known = labels != "Unknown"
    exact_acc = float(np.mean(exact_pred[known] == labels[known]))
    ivf_acc = float(np.mean(ivf_pred[known] == labels[known]))
    hnsw_acc = float(np.mean(hnsw_pred[known] == labels[known]))
    return {
        "n_senders": int(len(embedding)),
        "k": K,
        "exact_accuracy": round(exact_acc, 4),
        "ivf_accuracy": round(ivf_acc, 4),
        "hnsw_accuracy": round(hnsw_acc, 4),
        "accuracy_delta": round(ivf_acc - exact_acc, 4),
        "hnsw_accuracy_delta": round(hnsw_acc - exact_acc, 4),
        "prediction_agreement": round(float(np.mean(exact_pred == ivf_pred)), 4),
        "hnsw_prediction_agreement": round(
            float(np.mean(exact_pred == hnsw_pred)), 4
        ),
        "exact_loo_seconds": round(exact_seconds, 3),
        "ivf_loo_seconds": round(ivf_seconds, 3),
        "hnsw_loo_seconds": round(hnsw_seconds, 3),
        "embedding": embedding,
    }


def sweep_size(units: np.ndarray, n_queries: int, seed: int) -> dict:
    """Time exact vs IVF vs HNSW for one corpus size."""
    n = len(units)
    rng = np.random.default_rng(seed)
    queries = np.sort(rng.choice(n, min(n_queries, n), replace=False))

    exact = ExactIndex(units)
    exact_seconds = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        exact_nb, _ = exact.search(queries, K)
        exact_seconds = min(exact_seconds, time.perf_counter() - t0)

    def timed_recall(index) -> tuple[float, float]:
        # best of two timed passes: one stray scheduler hiccup on a
        # multi-second sweep otherwise reorders whole settings
        seconds = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            nb, _ = index.search(queries, K)
            seconds = min(seconds, time.perf_counter() - t0)
        recall = float(
            np.mean(
                [
                    len(np.intersect1d(nb[i], exact_nb[i])) / K
                    for i in range(len(queries))
                ]
            )
        )
        return seconds, recall

    def setting(knob: str, value: int, seconds: float, recall: float) -> dict:
        return {
            knob: value,
            "search_seconds": round(seconds, 4),
            "speedup_vs_exact": round(exact_seconds / max(seconds, 1e-9), 2),
            "recall_at_k": round(recall, 4),
        }

    t0 = time.perf_counter()
    # recall_sample=0: recall is measured here against exact_nb, so
    # the timed path carries no audit overhead.
    ivf_spec = AnnSpec(backend="ivf", nprobe=8, recall_sample=0, seed=seed)
    ivf = IVFIndex.build(units, ivf_spec)
    ivf_build_seconds = time.perf_counter() - t0

    ivf_settings = []
    for nprobe in NPROBES:
        if nprobe > ivf.nlist:
            continue
        probed = IVFIndex(
            units,
            AnnSpec(backend="ivf", nprobe=nprobe, recall_sample=0, seed=seed),
            ivf.centroids,
            ivf.assign,
            units32=ivf.units32,
        )
        seconds, recall = timed_recall(probed)
        ivf_settings.append(setting("nprobe", nprobe, seconds, recall))

    t0 = time.perf_counter()
    hnsw_spec = AnnSpec(backend="hnsw", recall_sample=0, seed=seed)
    hnsw = HNSWIndex.build(units, hnsw_spec)
    hnsw_build_seconds = time.perf_counter() - t0

    hnsw_settings = []
    for ef in EF_SEARCHES:
        # Re-wrap the one built graph with the swept query knob; the
        # graph itself only depends on m/ef_build.
        probed = HNSWIndex(
            units,
            AnnSpec(
                backend="hnsw", recall_sample=0, seed=seed, hnsw_ef_search=ef
            ),
            hnsw.node_row,
            hnsw.levels,
            hnsw.links0,
            hnsw.upper_nodes,
            hnsw.upper_links,
            hnsw.entry,
            units32=hnsw.units32,
        )
        seconds, recall = timed_recall(probed)
        entry = setting("ef_search", ef, seconds, recall)
        entry["default"] = ef == DEFAULT_EF
        hnsw_settings.append(entry)

    # The HNSW acceptance bar: at the default ef_search, does HNSW's
    # speedup beat the best IVF speedup at matched (>=) recall?
    at_default = next(s for s in hnsw_settings if s["default"])
    matched = [
        s
        for s in ivf_settings
        if s["recall_at_k"] >= at_default["recall_at_k"]
    ]
    ivf_matched = max(
        (s["speedup_vs_exact"] for s in matched), default=None
    )
    return {
        "n": n,
        "queries": int(len(queries)),
        "exact_search_seconds": round(exact_seconds, 4),
        "ivf": {
            "nlist": int(ivf.nlist),
            "build_seconds": round(ivf_build_seconds, 4),
            "settings": ivf_settings,
        },
        "hnsw": {
            "m": hnsw_spec.hnsw_m,
            "ef_build": hnsw_spec.hnsw_ef_build,
            "build_seconds": round(hnsw_build_seconds, 4),
            "settings": hnsw_settings,
        },
        "matched_recall_at_default_hnsw": {
            "hnsw_recall": at_default["recall_at_k"],
            "hnsw_speedup": at_default["speedup_vs_exact"],
            "ivf_speedup_at_matched_recall": ivf_matched,
            "hnsw_beats_ivf": (
                ivf_matched is None
                or at_default["speedup_vs_exact"] > ivf_matched
            ),
        },
    }


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.smoke:
        args.scale = 0.05
        args.days = 4.0
        args.epochs = 3
        args.sizes = "4096,16384"
        args.queries = 512

    print("== fidelity: exact vs IVF vs HNSW leave-one-out ==")
    fidelity = fidelity_experiment(args)
    embedding = fidelity.pop("embedding")
    print(
        f"  exact {fidelity['exact_accuracy']:.4f}  "
        f"ivf {fidelity['ivf_accuracy']:.4f} "
        f"(delta {fidelity['accuracy_delta']:+.4f})  "
        f"hnsw {fidelity['hnsw_accuracy']:.4f} "
        f"(delta {fidelity['hnsw_accuracy_delta']:+.4f})"
    )

    base_units = unit_rows(embedding.vectors)
    sweep = []
    for n in [int(s) for s in args.sizes.split(",")]:
        result = sweep_size(
            tiled_units(base_units, n, args.seed), args.queries, args.seed
        )
        sweep.append(result)
        print(f"== N={result['n']} ==")
        print(f"  exact search {result['exact_search_seconds']:.3f}s")
        print(
            f"  ivf (nlist={result['ivf']['nlist']}, build "
            f"{result['ivf']['build_seconds']:.1f}s)"
        )
        for s in result["ivf"]["settings"]:
            print(
                f"    nprobe={s['nprobe']:>2}  {s['search_seconds']:.3f}s  "
                f"{s['speedup_vs_exact']:>6.1f}x  recall "
                f"{s['recall_at_k']:.3f}"
            )
        print(
            f"  hnsw (m={result['hnsw']['m']}, build "
            f"{result['hnsw']['build_seconds']:.1f}s)"
        )
        for s in result["hnsw"]["settings"]:
            mark = " *" if s["default"] else ""
            print(
                f"    ef={s['ef_search']:>3}  {s['search_seconds']:.3f}s  "
                f"{s['speedup_vs_exact']:>6.1f}x  recall "
                f"{s['recall_at_k']:.3f}{mark}"
            )
        matched = result["matched_recall_at_default_hnsw"]
        print(
            f"  matched recall: hnsw {matched['hnsw_speedup']}x at "
            f"{matched['hnsw_recall']:.3f} vs ivf "
            f"{matched['ivf_speedup_at_matched_recall']}x -> "
            f"{'hnsw wins' if matched['hnsw_beats_ivf'] else 'ivf wins'}"
        )

    def flat_settings():
        for r in sweep:
            for backend in ("ivf", "hnsw"):
                for s in r[backend]["settings"]:
                    yield {"backend": backend, "n": r["n"], **s}

    best = max(
        (s for s in flat_settings() if s["recall_at_k"] >= 0.95),
        key=lambda s: s["speedup_vs_exact"],
        default=None,
    )
    document = {
        "benchmark": "ann",
        "preset": {
            "scale": args.scale,
            "days": args.days,
            "scenario_seed": args.seed,
            "model_seed": args.model_seed,
            "epochs": args.epochs,
            "k": K,
        },
        "environment": {"cpu_count": os.cpu_count()},
        "fidelity": fidelity,
        "sweep": sweep,
        "best_speedup_at_recall_0.95": best,
    }
    args.out.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.smoke:
        worst_ivf = min(
            s["recall_at_k"]
            for r in sweep
            for s in r["ivf"]["settings"]
            if s["nprobe"] == 8
        )
        assert worst_ivf >= 0.9, (
            f"smoke ivf recall regression: {worst_ivf:.3f} < 0.9"
        )
        worst_hnsw = min(
            s["recall_at_k"]
            for r in sweep
            for s in r["hnsw"]["settings"]
            if s["default"]
        )
        assert worst_hnsw >= 0.9, (
            f"smoke hnsw recall regression: {worst_hnsw:.3f} < 0.9"
        )
        assert abs(fidelity["accuracy_delta"]) <= 0.02, (
            f"smoke LOO delta too large: {fidelity['accuracy_delta']}"
        )
        assert abs(fidelity["hnsw_accuracy_delta"]) <= 0.02, (
            f"smoke hnsw LOO delta too large: {fidelity['hnsw_accuracy_delta']}"
        )
        print(
            f"smoke OK: recall@nprobe=8 >= {worst_ivf:.3f}, "
            f"recall@ef={DEFAULT_EF} >= {worst_hnsw:.3f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
