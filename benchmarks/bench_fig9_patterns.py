"""Figure 9: activity patterns of Stretchoid and Engin-Umich.

Paper shape: Stretchoid senders show irregular, incoherent dots (which
is why their recall is poor), while the ten Engin-Umich senders act in
short, perfectly synchronized bursts (which is why a 10-sender class is
classified perfectly).
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.patterns import activity_matrix
from repro.trace.packet import SECONDS_PER_DAY
from repro.utils.ascii_plot import raster


def _column_synchrony(matrix):
    """Mean pairwise correlation proxy: how aligned sender rows are."""
    if len(matrix) < 2:
        return 0.0
    active_share = matrix.mean(axis=0)
    # Synchronised groups concentrate activity in few bins.
    return float((active_share**2).sum() / max(active_share.sum(), 1e-9))


def test_fig9_activity_patterns(benchmark, bench_bundle):
    trace = bench_bundle.trace

    def compute():
        stretchoid = activity_matrix(
            trace,
            bench_bundle.sender_indices_of("stretchoid"),
            bin_seconds=SECONDS_PER_DAY / 8,
        )
        engin = activity_matrix(
            trace,
            bench_bundle.sender_indices_of("engin_umich"),
            bin_seconds=SECONDS_PER_DAY / 8,
        )
        return stretchoid, engin

    stretchoid, engin = run_once(benchmark, compute)

    emit("")
    emit(raster(stretchoid, title="Figure 9a - Stretchoid activity pattern"))
    emit("")
    emit(raster(engin, title="Figure 9b - Engin-Umich activity pattern"))

    stretch_sync = _column_synchrony(stretchoid)
    engin_sync = _column_synchrony(engin)
    emit(
        f"  synchrony: Stretchoid {stretch_sync:.3f} vs Engin-Umich "
        f"{engin_sync:.3f} (higher = more coordinated)"
    )

    # Engin-Umich is far more synchronised than Stretchoid.
    assert engin_sync > stretch_sync * 2
    # Engin-Umich activity is impulsive: active in few bins only.
    assert engin.any(axis=0).mean() < 0.2
    # Stretchoid touches many bins overall but each sender is sparse.
    assert stretchoid.any(axis=0).mean() > 0.5
    assert np.median(stretchoid.mean(axis=1)) < 0.45
