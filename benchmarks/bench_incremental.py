"""Incremental daily retraining benchmark (cold vs warm day-31 arrival).

Simulates the paper's operational loop: a model is fitted on a 30-day
window, then day 31 arrives.  The benchmark compares

* **cold** — retrain from scratch on the updated rolling window
  (the paper's daily-retrain baseline), and
* **warm** — :meth:`DarkVec.update`: merge the new day, evict packets
  outside the rolling window, rebuild only the affected dT windows and
  refit warm from the prior embedding,

recording wall time, artifact-cache hit counts (a second staged run of
an unchanged config must be a pure cache hit), and the LOO accuracy
drift of the warm model versus the cold retrain.  Results land in
``BENCH_incremental.json``.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_incremental.py

Options: ``--scale/--days/--seed`` size the scenario (``--days`` is the
rolling window; one extra day is simulated and arrives as the update),
``--epochs`` the cold training length, ``--out`` the JSON path.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import DarkVec, DarkVecConfig
from repro.trace.generator import generate_trace
from repro.trace.packet import SECONDS_PER_DAY
from repro.trace.scenario import default_scenario


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.04)
    parser.add_argument("--days", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--model-seed", type=int, default=1)
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_incremental.json")
    )
    return parser


def _statuses(darkvec: DarkVec) -> list[dict]:
    return [
        {"stage": s.stage, "status": s.status, "seconds": round(s.seconds, 3)}
        for s in darkvec.stage_statuses
    ]


def main(argv: list[str] | None = None) -> int:
    """Run the cold-vs-warm comparison and write the JSON report."""
    args = _build_parser().parse_args(argv)

    t0 = time.perf_counter()
    scenario = default_scenario(
        scale=args.scale, days=args.days + 1.0, seed=args.seed
    )
    bundle = generate_trace(scenario)
    simulate_seconds = time.perf_counter() - t0
    full = bundle.trace
    cut = full.start_time + args.days * SECONDS_PER_DAY
    head = full.between(full.start_time, cut)
    tail = full.between(cut, np.inf)
    print(
        f"simulated {len(full)} packets; day-31 split: "
        f"{len(head)} + {len(tail)}"
    )

    cache_root = args.cache_dir or Path(tempfile.mkdtemp(prefix="repro-bench-"))
    config = DarkVecConfig(
        service="domain",
        epochs=args.epochs,
        seed=args.model_seed,
        window_days=args.days,
        cache_dir=cache_root,
    )

    # -- staged fit on the 30-day window, twice: cold then all-hit ------
    t0 = time.perf_counter()
    first = DarkVec(config).fit(head)
    first_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_model = DarkVec(config).fit(head)
    second_seconds = time.perf_counter() - t0
    hits = sum(1 for s in warm_model.stage_statuses if s.status == "hit")
    print(
        f"staged fit: {first_seconds:.1f}s cold, {second_seconds:.1f}s "
        f"re-run ({hits}/{len(warm_model.stage_statuses)} cache hits)"
    )
    assert hits == len(warm_model.stage_statuses), "unchanged rerun must hit"

    # -- warm incremental update vs cold full retrain -------------------
    t0 = time.perf_counter()
    warm_model.update(tail)
    warm_seconds = time.perf_counter() - t0
    report = warm_model.last_update

    cold_config = DarkVecConfig(
        service="domain",
        epochs=args.epochs,
        seed=args.model_seed,
        window_days=args.days,
    )
    t0 = time.perf_counter()
    cold_model = DarkVec(cold_config).fit(warm_model.trace)
    cold_seconds = time.perf_counter() - t0

    warm_eval = warm_model.evaluate(bundle.truth, eval_days=1.0)
    cold_eval = cold_model.evaluate(bundle.truth, eval_days=1.0)
    drift = abs(warm_eval.accuracy - cold_eval.accuracy)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"warm update {warm_seconds:.1f}s (acc {warm_eval.accuracy:.4f}) vs "
        f"cold retrain {cold_seconds:.1f}s (acc {cold_eval.accuracy:.4f}): "
        f"{speedup:.1f}x faster, drift {drift:.4f}"
    )

    payload = {
        "benchmark": "incremental",
        "preset": {
            "scale": args.scale,
            "window_days": args.days,
            "scenario_seed": args.seed,
            "model_seed": args.model_seed,
            "epochs": args.epochs,
            "update_epochs": config.update_epochs,
            "update_alpha": config.update_alpha,
            "service": "domain",
        },
        "trace": {
            "n_packets": int(full.n_packets),
            "window_packets": int(head.n_packets),
            "new_day_packets": int(tail.n_packets),
            "simulate_seconds": round(simulate_seconds, 3),
        },
        "cache": {
            "first_run_seconds": round(first_seconds, 3),
            "second_run_seconds": round(second_seconds, 3),
            "second_run_hits": hits,
            "second_run_stages": len(warm_model.stage_statuses),
            "first_run": _statuses(first),
            "second_run": _statuses(warm_model),
        },
        "results": {
            "warm_update_seconds": round(warm_seconds, 3),
            "cold_retrain_seconds": round(cold_seconds, 3),
            "speedup": round(speedup, 2),
            "warm_loo_accuracy": round(warm_eval.accuracy, 4),
            "cold_loo_accuracy": round(cold_eval.accuracy, 4),
            "accuracy_drift": round(drift, 4),
            "update_report": {
                "new_packets": report.new_packets,
                "evicted_packets": report.evicted_packets,
                "sentences_retained": report.sentences_retained,
                "sentences_rebuilt": report.sentences_rebuilt,
                "sentences_evicted": report.sentences_evicted,
                "warm_tokens": report.warm_tokens,
                "new_tokens": report.new_tokens,
            },
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
