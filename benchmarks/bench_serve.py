"""Serving benchmark: sustained ingest under concurrent query load.

One experiment, one JSON (``BENCH_serve.json``): a
:class:`~repro.serve.service.DarkVecService` is stood up over an
N-sender synthetic model (default 100k), reader threads hammer
classify/neighbors queries non-stop, and the writer ingests a stream
of micro-batches through the single-writer update loop.  Reported:

* **ingest** — sustained packets/sec from first ``submit`` to drain,
  with every batch passing through the full ``update(window)`` path
  (merge, window rebuild, warm refit, snapshot promotion).
* **queries** — throughput plus p50/p95/p99 latency, read from the
  ``serve.query_seconds`` quantile sketch of the telemetry plane (the
  same numbers ``repro top`` and ``runs show --quantiles`` render).
* **promotion** — the writer-side pause per promotion (snapshot build:
  ANN index + classifier swap), from ``serve.promotion_seconds``; the
  snapshot warm-up (pre-touching the freshly built index before the
  swap) is reported alongside from ``serve.warmup_seconds``.
* **batched queries** — after the ingest phase drains, one thread
  classifies the same sender list twice: one-at-a-time and via
  ``classify_many`` in fixed-size batches.  Batching answers the whole
  list from one vectorized search, so its throughput must beat the
  single-query loop.

The acceptance bar is the read path: **p99 query latency < 50 ms at
N=100k senders** while promotions are happening.  Queries answer from
an atomically-swapped immutable snapshot, so the p99 must not inherit
the seconds-long update wall time.  Two config choices make that hold
on a small box and are the recommended serving deployment: training
fans out to **forked worker processes** (``pool_backend="process"``),
so the serving process's GIL stays free for readers while the refit
runs, and neighbour search goes through the **IVF index**
(``ann_backend="ivf"``), which bounds per-query compute at 100k
senders.  ``--pool-backend thread --ann-backend exact`` reproduces the
naive in-process setup for comparison.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_serve.py

``--smoke`` shrinks N for CI and keeps the latency assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import DarkVec, DarkVecConfig
from repro.obs.sketch import summarize
from repro.serve import DarkVecService
from repro.trace.packet import TCP, Trace

DELTA_T = 1800.0
BASE_TIME = 1_600_000_000.0
BASE_IP = 0x0A000000


def synthetic_trace(
    n_senders: int,
    packets_per_sender: int,
    senders_per_window: int,
    seed: int,
    first_window: int = 0,
    ip_pool: int | None = None,
) -> Trace:
    """A time-sorted trace of ``n_senders`` senders, columnar-built.

    Senders fill consecutive dT windows starting at ``first_window``;
    the ingest benchmark uses that to generate follow-up micro-batches
    that land strictly after the fitted trace.  ``ip_pool`` keeps the
    sender address space stable across batches so updates re-observe
    known senders (the warm path) as well as fresh ones.
    """
    rng = np.random.default_rng(seed)
    pool = n_senders if ip_pool is None else ip_pool
    # sorted: Trace sender tables are sorted unique IPs by construction
    sender_ids = np.sort(rng.permutation(pool)[:n_senders])
    window_of = np.arange(n_senders) // senders_per_window + first_window
    pkt_senders = np.repeat(np.arange(n_senders), packets_per_sender)
    pkt_windows = np.repeat(window_of, packets_per_sender)
    offsets = rng.uniform(0.0, DELTA_T - 1.0, size=len(pkt_senders))
    times = BASE_TIME + pkt_windows * DELTA_T + offsets
    order = np.argsort(times, kind="stable")
    n = len(order)
    return Trace(
        times=times[order],
        senders=pkt_senders[order].astype(np.int32),
        ports=np.full(n, 23, dtype=np.int32),
        protos=np.full(n, TCP, dtype=np.uint8),
        receivers=(pkt_senders[order] % 256).astype(np.uint8),
        mirai=np.zeros(n, dtype=bool),
        sender_ips=(sender_ids.astype(np.uint32) + BASE_IP),
    )


def bench_serve(args) -> dict:
    config = DarkVecConfig(
        service="single",
        delta_t=DELTA_T,
        min_packets=args.packets_per_sender,
        epochs=args.epochs,
        update_epochs=1,
        vector_size=args.vector_size,
        context=5,
        seed=1,
        workers=args.workers,
        pool_backend=args.pool_backend,
        ann_backend=args.ann_backend,
        # the per-search exact recall audit is an offline QA knob; in
        # the serving read path it adds an O(N) pass to every query
        ann_recall_sample=0,
        window_days=365.0,  # no eviction: the bench measures serving
    )
    fit_trace = synthetic_trace(
        args.n_senders,
        args.packets_per_sender,
        args.senders_per_window,
        seed=7,
        ip_pool=args.n_senders,
    )
    fit_windows = args.n_senders // args.senders_per_window + 1
    print(f"fitting {args.n_senders:,} senders ...", flush=True)
    t0 = time.perf_counter()
    darkvec = DarkVec(config).fit(fit_trace)
    fit_seconds = time.perf_counter() - t0

    batches = [
        synthetic_trace(
            args.batch_senders,
            args.packets_per_sender,
            args.senders_per_window,
            seed=100 + i,
            first_window=fit_windows + i * 2,
            ip_pool=args.n_senders + args.batch_senders,
        )
        for i in range(args.batches)
    ]

    telemetry = obs.Telemetry()
    errors: list[Exception] = []
    query_counts = [0] * args.query_threads
    stop = threading.Event()

    with obs.session(telemetry):
        service = DarkVecService(darkvec, with_clusters=False)
        snapshot = service.snapshot
        rng = np.random.default_rng(13)
        query_ips = snapshot.sender_ips[
            rng.integers(0, len(snapshot), size=4096)
        ].astype(int)

        def hammer(slot: int) -> None:
            i = slot
            while not stop.is_set():
                ip = int(query_ips[i % len(query_ips)])
                i += args.query_threads
                try:
                    if i % 3:
                        service.classify(ip)
                    else:
                        service.neighbors(ip, k=7)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                query_counts[slot] += 1

        readers = [
            threading.Thread(target=hammer, args=(slot,), daemon=True)
            for slot in range(args.query_threads)
        ]
        for reader in readers:
            reader.start()

        ingest_packets = sum(len(b) for b in batches)
        t1 = time.perf_counter()
        for batch in batches:
            service.submit(batch)
        drained = service.drain(timeout=args.drain_timeout)
        ingest_seconds = time.perf_counter() - t1
        # keep hammering the post-promotion snapshot a moment
        time.sleep(0.5)
        stop.set()
        for reader in readers:
            reader.join(timeout=30.0)
        final_version = service.snapshot.version
        promotions = service.promotions

        # Batched vs single classify: same sender list, one thread, no
        # concurrent load — isolates the per-request overhead batching
        # amortizes (snapshot grab, ip parse, one search per call).
        batch_ips = [
            int(ip)
            for ip in query_ips[: args.batch_query_total]
        ]
        t_single = time.perf_counter()
        for ip in batch_ips:
            service.classify(ip)
        single_seconds = time.perf_counter() - t_single
        t_batched = time.perf_counter()
        for lo in range(0, len(batch_ips), args.batch_query_size):
            service.classify_many(batch_ips[lo : lo + args.batch_query_size])
        batched_seconds = time.perf_counter() - t_batched
        service.close()

    snapshot_metrics = telemetry.snapshot()
    sketches = snapshot_metrics.get("sketches") or {}
    counters = snapshot_metrics.get("counters") or {}
    query = _quantiles(sketches, "serve.query_seconds")
    promotion = _quantiles(sketches, "serve.promotion_seconds")
    warmup = _quantiles(sketches, "serve.warmup_seconds")
    n_queries = int(sum(query_counts))
    return {
        "n_senders": args.n_senders,
        "embedded_senders": len(snapshot),
        "fit_seconds": round(fit_seconds, 3),
        "query_threads": args.query_threads,
        "workers": args.workers,
        "pool_backend": args.pool_backend,
        "ann_backend": args.ann_backend,
        "ingest": {
            "batches": args.batches,
            "packets": int(ingest_packets),
            "seconds": round(ingest_seconds, 3),
            "packets_per_second": round(ingest_packets / ingest_seconds, 1),
            "drained": bool(drained),
            "promotions": int(promotions),
            "final_version": int(final_version),
        },
        "queries": {
            "count": n_queries,
            "errors": len(errors),
            "per_second": round(n_queries / ingest_seconds, 1),
            "p50_ms": _ms(query.get("p50")),
            "p95_ms": _ms(query.get("p95")),
            "p99_ms": _ms(query.get("p99")),
        },
        "queries_batched": {
            "total": len(batch_ips),
            "batch_size": args.batch_query_size,
            "single_per_second": round(len(batch_ips) / single_seconds, 1),
            "batched_per_second": round(len(batch_ips) / batched_seconds, 1),
            "speedup": round(single_seconds / batched_seconds, 2),
        },
        "promotion_pause": {
            "count": promotion.get("count", 0),
            "p50_ms": _ms(promotion.get("p50")),
            "max_ms": _ms(promotion.get("max")),
            "warmup_p50_ms": _ms(warmup.get("p50")),
            "warmup_max_ms": _ms(warmup.get("max")),
        },
        "counters": {
            name: counters[name]
            for name in sorted(counters)
            if name.startswith("serve.")
        },
    }


def _ms(seconds) -> float | None:
    return None if seconds is None else round(seconds * 1000.0, 3)


def _quantiles(sketches: dict, name: str) -> dict:
    data = sketches.get(name)
    return summarize(data) if data else {}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-senders", type=int, default=100_000)
    parser.add_argument("--packets-per-sender", type=int, default=2)
    parser.add_argument("--senders-per-window", type=int, default=2000)
    parser.add_argument("--batch-senders", type=int, default=2000)
    parser.add_argument("--batches", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--vector-size", type=int, default=32)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--pool-backend",
        choices=("thread", "process"),
        default="process",
        help="training executor; 'process' keeps the serving GIL free",
    )
    parser.add_argument(
        "--ann-backend",
        choices=("exact", "ivf", "ivfpq", "hnsw"),
        default="ivf",
        help="neighbour index served from the snapshot",
    )
    parser.add_argument(
        "--batch-query-size",
        type=int,
        default=64,
        help="senders per classify_many call in the batched phase",
    )
    parser.add_argument(
        "--batch-query-total",
        type=int,
        default=2048,
        help="senders classified in each arm of the batched phase",
    )
    parser.add_argument(
        "--query-threads",
        type=int,
        default=0,
        help="0 = min(4, cores): readers beyond physical cores only "
        "measure their own queueing, not serving latency",
    )
    parser.add_argument("--drain-timeout", type=float, default=1800.0)
    parser.add_argument("--out", type=Path, default=Path("BENCH_serve.json"))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: shrink N, keep the p99 latency assertion",
    )
    return parser


def main() -> int:
    args = _build_parser().parse_args()
    if args.query_threads <= 0:
        args.query_threads = min(4, max(2, os.cpu_count() or 1))
    if args.smoke:
        args.n_senders = 10_000
        args.senders_per_window = 500
        args.batch_senders = 500
        args.batches = 2
        args.query_threads = 2

    result = {
        "smoke": bool(args.smoke),
        "cores": os.cpu_count(),
        "serve": bench_serve(args),
    }
    print(json.dumps(result["serve"], indent=2))
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    serve = result["serve"]
    if serve["queries"]["errors"]:
        failures.append(f"{serve['queries']['errors']} queries failed")
    if not serve["ingest"]["drained"]:
        failures.append("ingest did not drain within the timeout")
    if serve["ingest"]["promotions"] < serve["ingest"]["batches"]:
        failures.append(
            f"only {serve['ingest']['promotions']} of "
            f"{serve['ingest']['batches']} batches promoted"
        )
    p99 = serve["queries"]["p99_ms"]
    if p99 is None or p99 >= 50.0:
        failures.append(f"p99 query latency {p99} ms >= 50 ms")
    batched = serve["queries_batched"]
    if batched["batched_per_second"] <= batched["single_per_second"]:
        failures.append(
            f"batched classify {batched['batched_per_second']}/s not above "
            f"single-query loop {batched['single_per_second']}/s"
        )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
