"""Figure 12: Censys sub-clusters (the staggered scanner shifts).

Paper shape: the clustering splits Censys senders into sub-groups of
similar size that are active in different periods and target mostly
disjoint port sets (average inter-cluster Jaccard 0.19).
"""

import itertools

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.patterns import activity_matrix
from repro.core.inspection import port_jaccard
from repro.trace.packet import SECONDS_PER_DAY
from repro.utils.ascii_plot import raster


def test_fig12_censys_shifts(benchmark, bench_bundle):
    trace = bench_bundle.trace
    senders = bench_bundle.sender_indices_of("censys")
    subgroups = bench_bundle.actor_subgroups["censys"][: len(senders)]

    def compute():
        order = np.argsort(subgroups, kind="stable")
        matrix = activity_matrix(
            trace, senders, bin_seconds=SECONDS_PER_DAY / 2, order=order
        )
        jaccards = []
        for a, b in itertools.combinations(np.unique(subgroups), 2):
            jaccards.append(
                port_jaccard(
                    trace, senders[subgroups == a], senders[subgroups == b]
                )
            )
        return matrix, float(np.mean(jaccards))

    matrix, mean_jaccard = run_once(benchmark, compute)

    emit("")
    emit(
        raster(
            matrix,
            title="Figure 12 - Censys activity, senders ordered by shift",
        )
    )
    emit(f"  mean inter-shift port Jaccard index: {mean_jaccard:.2f} "
         f"(paper: 0.19)")

    # Shifts target mostly disjoint port slices.
    assert mean_jaccard < 0.45
    # The staggered high-rate bands are visible: each shift's *traffic*
    # centroid (packet-weighted mean time) moves across the month.  The
    # binary raster would hide this because the low-rate continuous
    # baseline keeps every sender visible in every bin.
    span = trace.end_time - trace.start_time
    centroids = []
    for g in np.unique(subgroups):
        sub = trace.from_senders(senders[subgroups == g])
        if len(sub):
            centroids.append((sub.times.mean() - trace.start_time) / span)
    assert max(centroids) - min(centroids) > 0.3
