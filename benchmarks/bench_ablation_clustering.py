"""Ablation: clustering method comparison (Section 7.1's claim).

The paper states that k-Means, DBSCAN and hierarchical agglomerative
clustering applied directly in the embedded space "produce poor
results due to the curse of dimensionality and difficult parameter
tuning", motivating the k'-NN graph + Louvain design.  It also cites
the bipartite sender-port community detection of Soro et al. [39] as a
timing-free alternative.

This bench scores every method against the simulator's hidden actor
partition (ARI): Louvain on the k'-NN graph should lead.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.baselines.bipartite import bipartite_communities
from repro.graph.classic import (
    cosine_agglomerative,
    cosine_dbscan,
    cosine_kmeans,
)
from repro.graph.knn_graph import build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.transfer.evaluate import adjusted_rand_index
from repro.utils.tables import format_table


def test_ablation_clustering_methods(benchmark, bench_bundle, darkvec_domain):
    embedding = darkvec_domain.embedding
    vectors = embedding.vectors
    truth_partition = bench_bundle.actor_names_for(embedding.tokens)
    n_actors = len(set(truth_partition.tolist()))

    def compute():
        results = {}

        graph = build_knn_graph(vectors, k_prime=3)
        louvain = louvain_communities(graph.symmetric_adjacency(), seed=0)
        results["Louvain on k'-NN graph"] = louvain

        # Oracle variants get the true number of hidden actors — an
        # advantage no real analyst has; blind variants use a plausible
        # but wrong guess.  The gap between the two is the "difficult
        # parameter tuning" the paper complains about.
        results[f"k-Means (oracle k={n_actors})"] = cosine_kmeans(
            vectors, n_actors, seed=0
        )
        results["k-Means (blind k=10)"] = cosine_kmeans(vectors, 10, seed=0)
        results["DBSCAN (eps=0.1)"] = cosine_dbscan(
            vectors, eps=0.1, min_samples=5
        )
        results["DBSCAN (eps=0.3)"] = cosine_dbscan(
            vectors, eps=0.3, min_samples=5
        )
        results[f"Agglomerative (oracle k={n_actors})"] = cosine_agglomerative(
            vectors, n_actors
        )

        bipartite = bipartite_communities(
            bench_bundle.trace, senders=embedding.tokens
        )
        results["Bipartite sender-port [39]"] = bipartite.communities
        return results

    results = run_once(benchmark, compute)

    scores = {
        name: adjusted_rand_index(truth_partition, labels)
        for name, labels in results.items()
    }
    emit("")
    rows = [
        [name, len(set(labels.tolist())), f"{scores[name]:.3f}"]
        for name, labels in results.items()
    ]
    emit(
        format_table(
            ["Method", "Clusters", "ARI vs hidden actors"],
            rows,
            title="Ablation - clustering methods (Section 7.1)",
        )
    )

    louvain_score = scores["Louvain on k'-NN graph"]
    # Louvain needs no cluster-count oracle yet beats every
    # *embedding-space* method that also lacks one (the paper's §7.1
    # claim).  The bipartite baseline consumes different data (the raw
    # sender-port graph) and is reported for context, not dominance.
    for name, score in scores.items():
        if (
            "oracle" not in name
            and "Bipartite" not in name
            and name != "Louvain on k'-NN graph"
        ):
            assert louvain_score > score - 0.02, (name, score, louvain_score)
    # Louvain stays competitive with the oracle-parameterised variants.
    oracle_best = max(
        score for name, score in scores.items() if "oracle" in name
    )
    assert louvain_score > oracle_best - 0.2
    assert louvain_score > 0.3
