"""Figure 13: Shadowserver sub-clusters.

Paper shape: 113 senders in one /16 split into three groups that target
the same port set with very different intensities (C25: 623/udp +
123/udp; C29: 5683/udp + 3389/udp; C37: 111/udp + 137/udp); temporal
patterns are less marked than Censys'.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.patterns import activity_matrix
from repro.core.inspection import port_jaccard
from repro.trace.address import subnet16
from repro.trace.packet import SECONDS_PER_DAY, UDP
from repro.utils.ascii_plot import raster
from repro.utils.tables import format_table

_SUBGROUPS = ("shadowserver_c0", "shadowserver_c1", "shadowserver_c2")
_SIGNATURE = {
    "shadowserver_c0": ((623, UDP), (123, UDP)),
    "shadowserver_c1": ((5683, UDP), (3389, UDP)),
    "shadowserver_c2": ((111, UDP), (137, UDP)),
}


def test_fig13_shadowserver_subclusters(benchmark, bench_bundle):
    trace = bench_bundle.trace

    def compute():
        shares = {}
        senders_by_group = {}
        for name in _SUBGROUPS:
            senders = bench_bundle.sender_indices_of(name)
            senders_by_group[name] = senders
            sub = trace.from_senders(senders)
            counts = sub.port_packet_counts()
            total = max(sum(counts.values()), 1)
            shares[name] = {
                key: counts.get(key, 0) / total for key in _SIGNATURE[name]
            }
        all_senders = np.concatenate(list(senders_by_group.values()))
        matrix = activity_matrix(
            trace, all_senders, bin_seconds=SECONDS_PER_DAY / 2
        )
        return shares, senders_by_group, matrix

    shares, senders_by_group, matrix = run_once(benchmark, compute)

    emit("")
    emit(
        raster(
            matrix,
            title="Figure 13 - Shadowserver activity, senders ordered "
            "by sub-cluster",
        )
    )
    rows = []
    for name in _SUBGROUPS:
        signature = "; ".join(
            f"{port}/udp {share:.0%}"
            for (port, _), share in shares[name].items()
        )
        rows.append([name, len(senders_by_group[name]), signature])
    emit(
        format_table(
            ["Sub-cluster", "IPs", "Signature port intensities"],
            rows,
            title="Shadowserver sub-cluster port intensities",
        )
    )

    # One /16 holds everyone.
    all_ips = trace.sender_ips[np.concatenate(list(senders_by_group.values()))]
    assert len({subnet16(ip) for ip in all_ips}) == 1

    # Each sub-cluster is dominated by its signature ports...
    for name in _SUBGROUPS:
        own = sum(shares[name].values())
        assert own > 0.12, name
    # ...and the port *sets* overlap heavily (same scan targets,
    # different intensity), unlike the Censys shifts.
    jaccard = port_jaccard(
        trace,
        senders_by_group["shadowserver_c0"],
        senders_by_group["shadowserver_c1"],
    )
    assert jaccard > 0.3
