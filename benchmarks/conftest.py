"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper from the same
simulated 30-day trace.  Scale and training length are tunable through
environment variables so the harness can be sized to the machine:

    REPRO_BENCH_SCALE   population scale factor   (default 0.15)
    REPRO_BENCH_DAYS    trace length in days      (default 30)
    REPRO_BENCH_EPOCHS  Word2Vec training epochs  (default 10)
    REPRO_BENCH_SEED    master seed               (default 7)

Expensive artefacts (the trace, the three embeddings, the clustering)
are session fixtures shared by all benches.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.graph.silhouette import cluster_silhouettes
from repro.trace import default_scenario, generate_trace

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "30"))
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "10"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


_CAPTURE_MANAGER = None


def pytest_configure(config):
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def emit(text: str) -> None:
    """Print to the real stdout, bypassing pytest capture.

    Benchmark output is the deliverable (the regenerated tables), so it
    must reach the terminal / tee even without ``-s``.
    """
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            print(text, flush=True)
    else:
        print(text, file=sys.__stdout__, flush=True)


def run_once(benchmark, fn):
    """Benchmark a heavy step exactly once (no calibration loops)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_bundle():
    scenario = default_scenario(scale=BENCH_SCALE, days=BENCH_DAYS, seed=BENCH_SEED)
    return generate_trace(scenario)


@pytest.fixture(scope="session")
def eval_senders(bench_bundle):
    """Active senders present in the last day (the evaluation set)."""
    trace = bench_bundle.trace
    active = trace.active_senders(10)
    present = trace.last_days(1.0).observed_senders()
    return np.intersect1d(active, present)


def _fit(bundle, service: str) -> DarkVec:
    config = DarkVecConfig(service=service, epochs=BENCH_EPOCHS, seed=1)
    return DarkVec(config).fit(bundle.trace)


@pytest.fixture(scope="session")
def darkvec_domain(bench_bundle):
    return _fit(bench_bundle, "domain")


@pytest.fixture(scope="session")
def darkvec_auto(bench_bundle):
    return _fit(bench_bundle, "auto")


@pytest.fixture(scope="session")
def darkvec_single(bench_bundle):
    return _fit(bench_bundle, "single")


@pytest.fixture(scope="session")
def cluster_result(darkvec_domain):
    return darkvec_domain.cluster(k_prime=3, seed=0)


@pytest.fixture(scope="session")
def cluster_silhouette_map(darkvec_domain, cluster_result):
    return cluster_silhouettes(
        darkvec_domain.embedding.vectors, cluster_result.communities
    )
