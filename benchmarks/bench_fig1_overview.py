"""Figure 1: darknet traffic overview.

(a) ECDF of packets per port rank with the top-14 port inset: traffic
is heavily concentrated on a few well-known ports while every port
receives something.
(b) Sender-arrival raster: senders sorted by first appearance, showing
persistent senders, sporadic ones and continuous arrival of new ones.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.patterns import activity_matrix, arrival_order
from repro.analysis.stats import port_rank_ecdf, top_ports
from repro.trace.packet import SECONDS_PER_DAY
from repro.utils.ascii_plot import line_chart, raster
from repro.utils.tables import format_table


def test_fig1a_port_ranking(benchmark, bench_bundle):
    trace = bench_bundle.trace

    def compute():
        return port_rank_ecdf(trace), top_ports(trace, n=14)

    (ranks, share), top = run_once(benchmark, compute)

    emit("")
    emit(
        line_chart(
            np.log10(ranks),
            share,
            title="Figure 1a - cumulative traffic share by port rank (log10 rank)",
            x_label="log10(port rank)",
            y_label="ECDF",
        )
    )
    emit(
        format_table(
            ["Port", "Packets"],
            [[name, count] for name, count in top],
            title="Top-14 ports (Figure 1a inset)",
        )
    )

    # Heavy concentration: the top 1% of ports carries the majority of
    # the traffic, yet thousands of ports are touched.
    one_percent = max(int(len(ranks) * 0.01), 1)
    assert share[one_percent - 1] > 0.3
    assert len(ranks) > 1000
    top_names = [name for name, _ in top]
    assert any(name in top_names for name in ("23/tcp", "445/tcp", "5555/tcp"))


def test_fig1b_sender_arrival(benchmark, bench_bundle):
    trace = bench_bundle.trace
    senders = trace.observed_senders()

    def compute():
        order = arrival_order(trace, senders)
        return activity_matrix(
            trace, senders, bin_seconds=SECONDS_PER_DAY / 4, order=order
        )

    matrix = run_once(benchmark, compute)
    emit("")
    emit(raster(matrix, title="Figure 1b - sender activity over time"))

    # New senders keep arriving: the late half of the (arrival-ordered)
    # rows has no activity in the first day.
    first_day_bins = 4
    late_half = matrix[len(matrix) // 2 :]
    assert not late_half[:, :first_day_bins].any()
    # Some senders are persistently active (>80% of bins).
    persistence = matrix.mean(axis=1)
    assert persistence.max() > 0.8
