"""Drift-monitor benchmark: a 3-day incremental run with a day-3 shift.

Simulates the registry + health-gate loop end to end.  A model is
fitted on a 3-day window, then three daily updates arrive through
:meth:`DarkVec.update` with the health gate armed:

* **day 1 / day 2** — unchanged synthetic traffic; every drift and
  data-quality monitor must stay ``ok`` and the updates promote,
* **day 3** — the day's traffic plus an injected scanner wave (a fresh
  /16 hammering 23/TCP at roughly 13x the normal daily packet volume),
  which must flip the data-quality monitors (volume z-score, port-mix
  shift) and the embedding-drift monitor to ``warn``/``fail`` so the
  gate refuses promotion while the previously saved state stays
  loadable.

The run registry accumulates one ``fit`` plus three ``update`` records;
the benchmark asserts the per-day verdicts and writes them, together
with the raw monitor values, to ``BENCH_drift.json``.  The whole run is
seeded, so the committed numbers are reproducible bit-for-bit.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_drift_monitor.py

Options: ``--scale/--days/--seed`` size the scenario (``--days`` is the
fit window; three extra days are simulated and arrive as updates),
``--scanners/--packets-per-scanner`` size the injected wave, ``--out``
the JSON path.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import DarkVec, DarkVecConfig
from repro.store.state import load_state, save_state
from repro.trace.generator import generate_trace
from repro.trace.packet import SECONDS_PER_DAY, TCP, Trace
from repro.trace.scenario import default_scenario

#: Destination port of the injected scanner wave: 23/TCP lands in the
#: telnet service of the domain map, alongside the scenario's botnet,
#: so retained senders' training contexts — not just the ingest
#: profile — are perturbed and the embedding-drift monitor reacts.
SCAN_PORT = 23


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.03)
    parser.add_argument("--days", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--model-seed", type=int, default=3)
    parser.add_argument("--scanners", type=int, default=2000)
    parser.add_argument("--packets-per-scanner", type=int, default=80)
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument("--out", type=Path, default=Path("BENCH_drift.json"))
    return parser


def inject_scanner_wave(
    day: Trace, n_senders: int, packets_per: int, seed: int = 99
) -> Trace:
    """Merge a synthetic scanner wave into one day of traffic.

    ``n_senders`` previously unseen IPs from a fresh /16 spray
    ``packets_per`` packets each at ``SCAN_PORT``/TCP, uniformly over
    the day and across the whole darknet — the "new scanner class
    appears overnight" event the monitors exist to catch.
    """
    rng = np.random.default_rng(seed)
    n = n_senders * packets_per
    times = rng.uniform(day.start_time, day.end_time, n)
    ips = (0xC0A80000 + rng.integers(0, n_senders, n)).astype(np.uint64)
    return Trace.from_events(
        times=np.concatenate([day.times, times]),
        sender_ips_per_packet=np.concatenate(
            [day.sender_ips[day.senders], ips]
        ),
        ports=np.concatenate([day.ports, np.full(n, SCAN_PORT)]),
        protos=np.concatenate([day.protos, np.full(n, TCP)]),
        receivers=np.concatenate([day.receivers, rng.integers(0, 65536, n)]),
        mirai=np.concatenate([day.mirai, np.zeros(n, dtype=bool)]),
    )


def _health_row(darkvec: DarkVec) -> dict:
    report = darkvec.last_health
    return {
        "verdict": report.verdict,
        "promoted": report.promoted,
        "monitors": {
            m.name: {"value": m.value, "verdict": m.verdict}
            for m in report.monitors
        },
    }


def main(argv: list[str] | None = None) -> int:
    """Run the 3-day gated loop and write the JSON report."""
    args = _build_parser().parse_args(argv)

    t0 = time.perf_counter()
    scenario = default_scenario(
        scale=args.scale, days=args.days + 3.0, seed=args.seed
    )
    bundle = generate_trace(scenario)
    simulate_seconds = time.perf_counter() - t0
    full = bundle.trace
    start = full.start_time

    def day_slice(n: int) -> Trace:
        lo = start + (args.days + n - 1) * SECONDS_PER_DAY
        return full.between(lo, lo + SECONDS_PER_DAY)

    base = full.between(start, start + args.days * SECONDS_PER_DAY)
    shifted = inject_scanner_wave(
        day_slice(3), args.scanners, args.packets_per_scanner
    )
    print(
        f"simulated {len(full)} packets; base window {len(base)}, "
        f"shifted day {len(shifted)} ({len(shifted) - len(day_slice(3))} "
        "injected)"
    )

    cache_root = args.cache_dir or Path(tempfile.mkdtemp(prefix="repro-bench-"))
    config = DarkVecConfig(
        service="domain",
        epochs=args.epochs,
        seed=args.model_seed,
        window_days=args.days,
        update_epochs=4,
        cache_dir=cache_root,
        health={"gate_updates": True},
    )
    darkvec = DarkVec(config)

    t0 = time.perf_counter()
    darkvec.fit(base)
    fit_seconds = time.perf_counter() - t0
    print(f"fit on {args.days:.0f}-day window: {fit_seconds:.1f}s")

    days: list[dict] = []
    state_dir = cache_root / "state"
    for label, day in (
        ("stable-1", day_slice(1)),
        ("stable-2", day_slice(2)),
        ("shifted-3", shifted),
    ):
        if label == "shifted-3":
            # Yesterday's promoted model is what the gate must protect.
            save_state(darkvec, state_dir)
            pre_update = darkvec.embedding.vectors.copy()
        t0 = time.perf_counter()
        darkvec.update(day, truth=bundle.truth)
        row = _health_row(darkvec)
        row.update(label=label, update_seconds=round(time.perf_counter() - t0, 3))
        days.append(row)
        print(
            f"{label}: verdict {row['verdict']}, "
            f"promoted {row['promoted']} ({row['update_seconds']}s)"
        )

    stable, shifted_day = days[:2], days[2]
    drift_names = ("drift", "churn", "stability")
    quality_names = ("volume.packets", "volume.senders", "port_mix")
    for row in stable:
        assert row["verdict"] == "ok", f"{row['label']} must be ok: {row}"
        assert row["promoted"], f"{row['label']} must promote"
    assert not shifted_day["promoted"], "gate must refuse the shifted day"
    assert shifted_day["verdict"] == "fail", "shifted day must fail"
    flipped = [
        name
        for name, m in shifted_day["monitors"].items()
        if m["verdict"] != "ok"
    ]
    assert any(n in flipped for n in drift_names), f"no drift flip: {flipped}"
    assert any(
        n in flipped for n in quality_names
    ), f"no data-quality flip: {flipped}"
    print(f"shifted-day monitors flipped: {', '.join(flipped)}")

    # -- rollback: live state and saved state both match pre-update -----
    assert np.array_equal(darkvec.embedding.vectors, pre_update)
    restored = load_state(state_dir)
    assert np.array_equal(restored.embedding.vectors, pre_update)
    print("gate refused promotion; previous state intact and loadable")

    records = darkvec.registry.runs()
    assert len(records) >= 3, f"expected >=3 registry records, got {len(records)}"
    kinds = [r["kind"] for r in records]
    print(f"registry: {len(records)} records ({', '.join(kinds)})")

    payload = {
        "benchmark": "drift-monitor",
        "preset": {
            "scale": args.scale,
            "fit_days": args.days,
            "scenario_seed": args.seed,
            "model_seed": args.model_seed,
            "epochs": args.epochs,
            "update_epochs": config.update_epochs,
            "scanners": args.scanners,
            "packets_per_scanner": args.packets_per_scanner,
            "scan_port": SCAN_PORT,
            "service": "domain",
            "policy": config.health.to_dict(),
        },
        "trace": {
            "n_packets": int(full.n_packets),
            "base_packets": int(base.n_packets),
            "shifted_day_packets": int(shifted.n_packets),
            "injected_packets": args.scanners * args.packets_per_scanner,
            "simulate_seconds": round(simulate_seconds, 3),
        },
        "results": {
            "fit_seconds": round(fit_seconds, 3),
            "registry_records": len(records),
            "registry_kinds": kinds,
            "shifted_monitors_flipped": flipped,
            "previous_state_loadable": True,
            "days": days,
        },
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
