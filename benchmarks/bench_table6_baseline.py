"""Table 6: the Section 4 port-feature baseline's 7-NN report.

Paper shape: despite a feature set deliberately biased towards the GT
classes, the baseline is far weaker than the embedding — several
classes drop below 0.5 F-score (Ipip 0.00, Stretchoid 0.05, Shodan
0.21, Sharashka 0.48 in the paper).
"""

from benchmarks.conftest import emit, run_once
from repro.baselines.port_features import PortFeatureClassifier


def test_table6_port_feature_baseline(
    benchmark, bench_bundle, eval_senders, darkvec_domain
):
    last_day = bench_bundle.trace.last_days(1.0)
    truth = bench_bundle.truth

    def compute():
        classifier = PortFeatureClassifier(k=7, top_ports_per_class=5)
        return classifier, classifier.evaluate(last_day, truth, eval_senders)

    classifier, report = run_once(benchmark, compute)
    emit("")
    emit(report.to_text(title="Table 6 - baseline 7-NN classifier report"))
    emit(f"  feature ports ({len(classifier.feature_names())}): "
         + ", ".join(classifier.feature_names()))

    darkvec_report = darkvec_domain.evaluate(truth, k=7)
    emit(
        f"  baseline accuracy {report.accuracy:.3f} vs DarkVec "
        f"{darkvec_report.accuracy:.3f}"
    )

    # The baseline is clearly worse than the embedding overall...
    assert report.accuracy < darkvec_report.accuracy - 0.1
    # ...and at least two classes collapse below 0.5 F-score (paper has
    # four such classes).
    weak = [
        name
        for name, metrics in report.per_class.items()
        if name != "Unknown" and metrics.f_score < 0.5
    ]
    assert len(weak) >= 2, weak
