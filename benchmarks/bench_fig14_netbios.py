"""Figure 14: the unknown1 NetBIOS scanner.

Paper shape: 85 addresses in a single /24, > 17 500 packets with 60%
towards 137/udp, and a strikingly regular activity pattern.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.patterns import activity_matrix
from repro.trace.address import subnet24
from repro.trace.packet import SECONDS_PER_DAY, UDP
from repro.utils.ascii_plot import raster


def test_fig14_netbios_scanner(benchmark, bench_bundle):
    trace = bench_bundle.trace
    senders = bench_bundle.sender_indices_of("unknown1_netbios")

    def compute():
        matrix = activity_matrix(
            trace, senders, bin_seconds=SECONDS_PER_DAY / 8
        )
        sub = trace.from_senders(senders)
        counts = sub.port_packet_counts()
        share_137 = counts.get((137, UDP), 0) / max(sub.n_packets, 1)
        return matrix, share_137, sub.n_packets

    matrix, share_137, n_packets = run_once(benchmark, compute)

    emit("")
    emit(
        raster(
            matrix,
            title="Figure 14 - unknown1 NetBIOS scan from one /24 subnet",
        )
    )
    emit(
        f"  {len(senders)} senders, {n_packets} packets, "
        f"{share_137:.0%} to 137/udp"
    )

    # Single /24.
    ips = trace.sender_ips[senders]
    assert len({subnet24(ip) for ip in ips}) == 1
    # 137/udp dominates (paper: 60%).
    assert share_137 > 0.4
    # The pattern is regular: the daily on-windows align across days.
    bins_per_day = 8
    days = matrix.shape[1] // bins_per_day
    daily = matrix[:, : days * bins_per_day].any(axis=0)
    daily = daily.reshape(days, bins_per_day)
    # The same intra-day slots are active on most days.
    slot_activity = daily.mean(axis=0)
    assert slot_activity.max() > 0.8
    assert slot_activity.min() < 0.4
