"""Ablations: training epochs and negative-sample count.

Companion to Section 6.2: the paper trains 10-20 epochs with gensim
defaults (5 negatives).  These sweeps verify accuracy saturates after
a few epochs and is insensitive to the negative-sample count — i.e.,
the reproduction does not hinge on a lucky hyper-parameter.
"""

from benchmarks.conftest import emit, run_once
from repro.core import DarkVec, DarkVecConfig
from repro.utils.tables import format_table
from repro.w2v.model import Word2Vec

_ABLATION_DAYS = 12.0


def test_ablation_epochs(benchmark, bench_bundle):
    trace = bench_bundle.trace.last_days(_ABLATION_DAYS)
    truth = bench_bundle.truth
    epoch_values = (1, 3, 5, 10)

    def compute():
        return {
            epochs: DarkVec(
                DarkVecConfig(service="domain", epochs=epochs, seed=1)
            )
            .fit(trace)
            .evaluate(truth, k=7)
            .accuracy
            for epochs in epoch_values
        }

    results = run_once(benchmark, compute)
    emit("")
    emit(
        format_table(
            ["Epochs", "Accuracy"],
            [[e, f"{a:.3f}"] for e, a in results.items()],
            title="Ablation - accuracy vs training epochs",
        )
    )

    # Accuracy grows monotonically with training, with the largest
    # jumps early (on the shortened ablation corpus the curve has not
    # fully saturated by 10 epochs; the paper's 30-day corpus has).
    assert results[3] > results[1]
    assert results[10] > results[3]
    assert results[10] - results[5] < results[5] - results[1]


def test_ablation_negative_samples(benchmark, bench_bundle):
    trace = bench_bundle.trace.last_days(_ABLATION_DAYS)
    truth = bench_bundle.truth
    negative_values = (2, 5, 10)

    def compute():
        results = {}
        for negative in negative_values:
            config = DarkVecConfig(
                service="domain", negative=negative, epochs=5, seed=1
            )
            results[negative] = (
                DarkVec(config).fit(trace).evaluate(truth, k=7).accuracy
            )
        return results

    results = run_once(benchmark, compute)
    emit("")
    emit(
        format_table(
            ["Negatives", "Accuracy"],
            [[n, f"{a:.3f}"] for n, a in results.items()],
            title="Ablation - accuracy vs negative samples",
        )
    )

    # Insensitive to the negative-sample count in a sane range.
    values = list(results.values())
    assert max(values) - min(values) < 0.16
    assert min(values) > 0.3
