"""Table 7: the domain-knowledge service definition.

Regenerates the service -> ports table and reports how the simulated
trace's traffic distributes over the 15 services.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.services.domain import DOMAIN_SERVICE_PORTS, DomainServiceMap
from repro.utils.tables import format_table


def test_table7_domain_services(benchmark, bench_bundle):
    trace = bench_bundle.trace
    service_map = DomainServiceMap()

    def compute():
        ids = service_map.service_ids(trace.ports, trace.protos)
        return np.bincount(ids, minlength=service_map.n_services)

    packet_counts = run_once(benchmark, compute)

    rows = []
    for service, specs in DOMAIN_SERVICE_PORTS.items():
        service_id = service_map.names.index(service)
        ports_text = ", ".join(specs[:6]) + (", ..." if len(specs) > 6 else "")
        rows.append(
            [
                service,
                len(specs),
                int(packet_counts[service_id]),
                f"{packet_counts[service_id] / trace.n_packets:.2%}",
                ports_text,
            ]
        )
    for fallback in ("Unknown System", "Unknown User", "Unknown Ephemeral"):
        service_id = service_map.names.index(fallback)
        rows.append(
            [
                fallback,
                "-",
                int(packet_counts[service_id]),
                f"{packet_counts[service_id] / trace.n_packets:.2%}",
                "(range fallback)",
            ]
        )
    emit("")
    emit(
        format_table(
            ["Service", "Ports", "Packets", "Share", "Port list"],
            rows,
            title="Table 7 - domain-knowledge service definition",
        )
    )

    assert service_map.n_services == 15
    assert packet_counts.sum() == trace.n_packets
    # Telnet is among the heaviest named services (Mirai's 23/tcp).
    telnet = packet_counts[service_map.names.index("Telnet")]
    named = packet_counts[:12]
    assert telnet >= np.sort(named)[-3]
