"""End-to-end performance benchmark for the parallel engine.

Times every pipeline stage — corpus build, Word2Vec training, LOO
evaluation, Louvain clustering — at 1/2/4 workers on a fixed medium
preset and writes ``BENCH_perf_engine.json`` with throughput
(pairs/sec) and end-to-end seconds, so later PRs can track the perf
trajectory.  ``workers=1`` runs the unchanged sequential reference
path, which doubles as the seed baseline.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_perf_engine.py

Options: ``--scale/--days/--seed`` pick the scenario, ``--epochs`` the
training length, ``--workers`` a comma list of worker counts, ``--out``
the JSON path.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import DarkVec, DarkVecConfig
from repro.trace.generator import generate_trace
from repro.trace.scenario import default_scenario
from repro.w2v.skipgram import expected_pair_count


def _peak_rss_kb() -> int:
    """Process-lifetime peak RSS in KiB (monotone high-water mark)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _counter_delta(after: dict, before: dict) -> dict:
    """Per-stage counter increments between two telemetry snapshots."""
    return {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--days", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--model-seed", type=int, default=1)
    parser.add_argument("--workers", type=str, default="1,2,4")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_perf_engine.json")
    )
    return parser


def run_setting(trace, truth, workers: int, epochs: int, seed: int) -> dict:
    """Fit + evaluate + cluster once at the given worker count.

    Runs inside a counters-only telemetry session (no ``tracemalloc``,
    so timings stay honest) and records a per-stage snapshot — seconds,
    peak RSS after the stage, and the stage's counter increments — in
    the returned ``stage_metrics`` mapping.
    """
    config = DarkVecConfig(
        service="domain", epochs=epochs, seed=seed, workers=workers
    )
    darkvec = DarkVec(config)
    telemetry = obs.Telemetry(profile_memory=False)
    stage_metrics: dict[str, dict] = {}

    with obs.session(telemetry):
        before = telemetry.snapshot()["counters"]
        t0 = time.perf_counter()
        darkvec.fit(trace)
        fit_seconds = time.perf_counter() - t0
        after = telemetry.snapshot()["counters"]
        stage_metrics["fit"] = {
            "seconds": round(fit_seconds, 3),
            "peak_rss_kb": _peak_rss_kb(),
            "counters": _counter_delta(after, before),
        }

        assert darkvec.corpus is not None and darkvec.embedding is not None
        lengths = np.array(
            [len(s) for s in darkvec.corpus if len(s) >= 2], dtype=np.int64
        )
        pairs_per_epoch = expected_pair_count(lengths, config.context)
        trained_pairs = pairs_per_epoch * epochs

        before = after
        t0 = time.perf_counter()
        report = darkvec.evaluate(truth)
        evaluate_seconds = time.perf_counter() - t0
        after = telemetry.snapshot()["counters"]
        stage_metrics["evaluate"] = {
            "seconds": round(evaluate_seconds, 3),
            "peak_rss_kb": _peak_rss_kb(),
            "counters": _counter_delta(after, before),
        }

        before = after
        t0 = time.perf_counter()
        clusters = darkvec.cluster(k_prime=3)
        cluster_seconds = time.perf_counter() - t0
        after = telemetry.snapshot()["counters"]
        stage_metrics["cluster"] = {
            "seconds": round(cluster_seconds, 3),
            "peak_rss_kb": _peak_rss_kb(),
            "counters": _counter_delta(after, before),
        }

    stage_metrics["fit"]["pairs_per_second"] = round(
        trained_pairs / fit_seconds, 1
    )
    end_to_end = fit_seconds + evaluate_seconds + cluster_seconds
    return {
        "workers": workers,
        "fit_seconds": round(fit_seconds, 3),
        "evaluate_seconds": round(evaluate_seconds, 3),
        "cluster_seconds": round(cluster_seconds, 3),
        "end_to_end_seconds": round(end_to_end, 3),
        "trained_pairs": int(trained_pairs),
        "pairs_per_second": round(trained_pairs / fit_seconds, 1),
        "loo_accuracy": round(report.accuracy, 4),
        "modularity": round(clusters.modularity, 4),
        "n_clusters": clusters.n_clusters,
        "embedded_senders": len(darkvec.embedding),
        "stage_metrics": stage_metrics,
    }


def main(argv: list[str] | None = None) -> int:
    """Run the benchmark matrix and write the JSON report."""
    args = _build_parser().parse_args(argv)
    worker_counts = [int(w) for w in args.workers.split(",")]

    t0 = time.perf_counter()
    scenario = default_scenario(
        scale=args.scale, days=args.days, seed=args.seed
    )
    bundle = generate_trace(scenario)
    simulate_seconds = time.perf_counter() - t0

    # Time the corpus build once in isolation (fit re-runs it, but the
    # stage-level number is what later PRs will want to compare).
    config = DarkVecConfig(service="domain")
    t0 = time.perf_counter()
    from repro.corpus.builder import CorpusBuilder

    active = bundle.trace.active_senders(config.min_packets)
    service_map = config.resolve_service_map(bundle.trace)
    corpus = CorpusBuilder(service_map, delta_t=config.delta_t).build(
        bundle.trace, keep_senders=active
    )
    corpus_seconds = time.perf_counter() - t0

    results = []
    for workers in worker_counts:
        print(f"running fit+evaluate+cluster at workers={workers} ...")
        result = run_setting(
            bundle.trace, bundle.truth, workers, args.epochs, args.model_seed
        )
        print(
            f"  end-to-end {result['end_to_end_seconds']}s "
            f"({result['pairs_per_second']:.0f} pairs/s, "
            f"accuracy {result['loo_accuracy']})"
        )
        results.append(result)

    baseline = next((r for r in results if r["workers"] == 1), results[0])
    for result in results:
        result["speedup_vs_workers1"] = round(
            baseline["end_to_end_seconds"] / result["end_to_end_seconds"], 2
        )
        result["accuracy_delta_vs_workers1"] = round(
            result["loo_accuracy"] - baseline["loo_accuracy"], 4
        )

    payload = {
        "benchmark": "perf_engine",
        "preset": {
            "scale": args.scale,
            "days": args.days,
            "scenario_seed": args.seed,
            "model_seed": args.model_seed,
            "epochs": args.epochs,
            "service": "domain",
        },
        "environment": {"cpu_count": os.cpu_count() or 1},
        "trace": {
            "n_packets": int(bundle.trace.n_packets),
            "n_senders": int(bundle.trace.n_senders),
            "simulate_seconds": round(simulate_seconds, 3),
        },
        "corpus": {
            "n_sentences": len(corpus),
            "n_tokens": int(corpus.n_tokens),
            "build_seconds": round(corpus_seconds, 3),
        },
        "results": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
