"""Figure 11: average silhouette of the detected clusters, ranked.

Paper shape: more than half of the clusters have silhouette > 0.5
(excellent cohesion); a few clusters are noisy with scores near or
below zero (e.g. the Mirai-like mega-cluster at 0.08 and incoherent
groups).
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.utils.ascii_plot import line_chart


def test_fig11_cluster_silhouettes(
    benchmark, cluster_result, cluster_silhouette_map
):
    def compute():
        return sorted(cluster_silhouette_map.values(), reverse=True)

    ranked = run_once(benchmark, compute)

    emit("")
    emit(
        line_chart(
            np.arange(len(ranked)),
            ranked,
            title="Figure 11 - average silhouette per cluster, ranked",
            x_label="cluster rank",
            y_label="avg silhouette",
        )
    )
    positive = sum(1 for s in ranked if s > 0.5)
    emit(
        f"  {len(ranked)} clusters; {positive} with silhouette > 0.5; "
        f"min {ranked[-1]:.2f}, max {ranked[0]:.2f}"
    )

    assert len(ranked) == cluster_result.n_clusters
    # A solid share of clusters has strong cohesion (the paper's 46
    # clusters are finer-grained than our ~22, so merged clusters pull
    # the high-silhouette share down a little)...
    assert positive >= max(3, int(len(ranked) * 0.2))
    assert ranked[0] > 0.6
    # ...and the tail contains weak/noisy clusters, as in the paper.
    assert ranked[-1] < 0.3
