"""Figure 10: impact of k' on cluster detection.

Paper shape: k' = 1 yields thousands of tiny disconnected clusters;
the cluster count collapses sharply by k' = 3 (the elbow) and larger
k' only slightly reduces modularity, which stays high (> 0.8).
"""

from benchmarks.conftest import emit, run_once
from repro.graph.knn_graph import build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table

K_PRIME_VALUES = tuple(range(1, 15))


def test_fig10_kprime_sweep(benchmark, darkvec_domain):
    vectors = darkvec_domain.embedding.vectors

    def compute():
        n_clusters, scores = [], []
        for k_prime in K_PRIME_VALUES:
            graph = build_knn_graph(vectors, k_prime=k_prime)
            adjacency = graph.symmetric_adjacency()
            communities = louvain_communities(adjacency, seed=0)
            n_clusters.append(len(set(communities.tolist())))
            scores.append(modularity(adjacency, communities))
        return n_clusters, scores

    n_clusters, scores = run_once(benchmark, compute)

    emit("")
    emit(
        format_table(
            ["k'", "Clusters", "Modularity"],
            [
                [k, n, f"{q:.3f}"]
                for k, n, q in zip(K_PRIME_VALUES, n_clusters, scores)
            ],
            title="Figure 10 - impact of k' in cluster detection",
        )
    )
    emit(
        line_chart(
            K_PRIME_VALUES,
            n_clusters,
            title="Figure 10 - number of clusters vs k'",
            x_label="k'",
            y_label="clusters",
        )
    )

    # Sharp elbow: k'=1 produces many more clusters than k'=3.
    assert n_clusters[0] > n_clusters[2] * 3
    # Beyond the elbow the count changes slowly.
    assert n_clusters[2] < n_clusters[0] * 0.4
    assert abs(n_clusters[6] - n_clusters[13]) < n_clusters[2]
    # Modularity stays high throughout.
    assert min(scores[1:]) > 0.6
