"""Figure 8: grid search over context window c and embedding size V.

Paper shape: accuracy is remarkably flat in both c and V (0.93-0.96
everywhere), while training time grows roughly linearly with c and
mildly with V — the reason the paper settles on c=25, V=50.

The grid is trained on a shortened window of the benchmark trace to
keep the 2 x 9 grid affordable; relative shapes are unaffected.
"""

from benchmarks.conftest import emit, run_once
from repro.core import DarkVec, DarkVecConfig
from repro.utils.tables import format_table
from repro.utils.timer import Timer

C_VALUES = (5, 25, 75)
V_VALUES = (50, 100, 200)
_GRID_DAYS = 12.0
_GRID_EPOCHS = 5


def _grid(trace, truth, service):
    accuracy = {}
    runtime = {}
    for c in C_VALUES:
        for v in V_VALUES:
            config = DarkVecConfig(
                service=service,
                context=c,
                vector_size=v,
                epochs=_GRID_EPOCHS,
                seed=1,
            )
            with Timer() as timer:
                model = DarkVec(config).fit(trace)
                report = model.evaluate(truth, k=7)
            accuracy[(c, v)] = report.accuracy
            runtime[(c, v)] = timer.elapsed
    return accuracy, runtime


def _emit_grid(title, values, fmt):
    rows = []
    for v in reversed(V_VALUES):
        rows.append([v] + [fmt(values[(c, v)]) for c in C_VALUES])
    emit(
        format_table(
            ["V \\ c"] + [str(c) for c in C_VALUES],
            rows,
            title=title,
        )
    )


def test_fig8_grid_search(benchmark, bench_bundle):
    trace = bench_bundle.trace.last_days(_GRID_DAYS)
    truth = bench_bundle.truth

    def compute():
        results = {}
        for service in ("auto", "domain"):
            results[service] = _grid(trace, truth, service)
        return results

    results = run_once(benchmark, compute)

    emit("")
    for service in ("auto", "domain"):
        accuracy, runtime = results[service]
        _emit_grid(
            f"Figure 8 - accuracy, {service} services",
            accuracy,
            lambda x: f"{x:.3f}",
        )
        _emit_grid(
            f"Figure 8 - training time [s], {service} services",
            runtime,
            lambda x: f"{x:.1f}",
        )
        emit("")

    for service in ("auto", "domain"):
        accuracy, runtime = results[service]
        # Accuracy is comparatively flat across the grid (the paper
        # sees a 3-point spread; the shortened ablation corpus is
        # noisier but no configuration collapses).
        values = list(accuracy.values())
        assert max(values) - min(values) < 0.3, service
        assert min(values) > 0.35, service
        # Time grows with c at fixed V (c=75 costs more than c=5).
        assert runtime[(75, 50)] > runtime[(5, 50)], service
