"""Figure 3: fraction of daily packets per (generic service, GT class).

Paper shape: a naive port-based view works only where one class
dominates a service (Engin-Umich on DNS); most classes scatter across
services, motivating the embedding approach.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.analysis.heatmap import service_class_heatmap
from repro.utils.ascii_plot import heatmap


def test_fig3_service_class_heatmap(benchmark, bench_bundle, eval_senders):
    last_day = bench_bundle.trace.last_days(1.0)
    truth = bench_bundle.truth

    def compute():
        return service_class_heatmap(
            last_day, truth, eval_senders=eval_senders
        )

    matrix, services, classes = run_once(benchmark, compute)

    emit("")
    short = [name[:4] for name in classes]
    emit(
        heatmap(
            matrix,
            row_labels=list(services),
            col_labels=short,
            title="Figure 3 - fraction of daily packets per service "
            "(columns: " + ", ".join(classes) + ")",
        )
    )

    dns_row = services.index("DNS")
    telnet_row = services.index("Telnet")
    engin_col = classes.index("Engin-umich")
    mirai_col = classes.index("Mirai-like")

    # Engin-Umich traffic is entirely DNS; Mirai concentrates on Telnet.
    assert matrix[dns_row, engin_col] > 0.95
    assert matrix[telnet_row, mirai_col] > 0.7
    # Columns are normalised.
    assert np.allclose(matrix.sum(axis=0), 1.0)
    # Most classes spread over several services (no naive separation):
    # count classes whose top service holds < 90% of their traffic.
    scattered = (matrix.max(axis=0) < 0.9).sum()
    assert scattered >= 4
