"""Figure 7: impact of k on the k-NN classifier.

Paper shape: the single-service embedding is far below the other two
for every k; accuracy improves with k up to a plateau and eventually
degrades as Unknown senders dominate large neighbourhoods.
"""

from benchmarks.conftest import emit, run_once
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table

K_VALUES = (1, 3, 7, 17, 25, 35)


def test_fig7_impact_of_k(
    benchmark, bench_bundle, darkvec_domain, darkvec_auto, darkvec_single
):
    truth = bench_bundle.truth

    def compute():
        curves = {}
        for name, model in (
            ("domain", darkvec_domain),
            ("auto", darkvec_auto),
            ("single", darkvec_single),
        ):
            curves[name] = [
                model.evaluate(truth, k=k).accuracy for k in K_VALUES
            ]
        return curves

    curves = run_once(benchmark, compute)
    emit("")
    rows = [
        [k] + [f"{curves[name][i]:.3f}" for name in ("domain", "auto", "single")]
        for i, k in enumerate(K_VALUES)
    ]
    emit(
        format_table(
            ["k", "Domain", "Auto", "Single"],
            rows,
            title="Figure 7 - k-NN accuracy vs k per service definition",
        )
    )
    emit(
        line_chart(
            K_VALUES,
            curves["domain"],
            title="Figure 7 - domain-knowledge services",
            x_label="k",
            y_label="accuracy",
        )
    )

    # Single service is clearly below the other definitions for k >= 3.
    for i, k in enumerate(K_VALUES):
        if k >= 3:
            assert curves["single"][i] < curves["domain"][i] - 0.05, k
            assert curves["single"][i] < curves["auto"][i] - 0.05, k
    # k = 7 performs within 2 points of the best k for proper services.
    best_domain = max(curves["domain"])
    assert curves["domain"][K_VALUES.index(7)] > best_domain - 0.03
