"""Table 2: ground-truth classes present in the last day.

For each GT class: active senders, packets, distinct ports, top-5 ports
with traffic shares.  Shapes to match the paper: Mirai-like is the
largest class and sends ~90% of its traffic to 23/TCP; Censys has the
widest port coverage; Engin-Umich uses 53/udp exclusively.
"""

import numpy as np

from benchmarks.conftest import emit, run_once
from repro.labels.groundtruth import GT_CLASSES, UNKNOWN
from repro.services.ports import format_port
from repro.utils.tables import format_table


def test_table2_ground_truth_classes(benchmark, bench_bundle, eval_senders):
    trace = bench_bundle.trace
    labels = bench_bundle.truth.labels_for(trace)

    def compute():
        rows = []
        for name in GT_CLASSES + (UNKNOWN,):
            members = eval_senders[labels[eval_senders] == name]
            if not len(members):
                rows.append([name, 0, 0, 0, "-", 0.0])
                continue
            sub = trace.from_senders(members)
            port_counts = sorted(
                sub.port_packet_counts().items(),
                key=lambda kv: kv[1],
                reverse=True,
            )
            total = sub.n_packets
            top5 = port_counts[:5]
            top_text = ", ".join(
                f"{format_port(*key)} ({count / total:.1%})" for key, count in top5
            )
            top_share = 100.0 * sum(count for _, count in top5) / total
            rows.append(
                [name, len(members), total, len(port_counts), top_text, top_share]
            )
        return rows

    rows = run_once(benchmark, compute)
    emit("")
    emit(
        format_table(
            ["Class", "Senders", "Packets", "Ports", "Top-5 ports", "Top-5 [%]"],
            rows,
            title="Table 2 - ground truth classes active in the last day",
        )
    )

    by_name = {row[0]: row for row in rows}
    # Mirai-like is the largest class; its top port is 23/tcp.
    assert by_name["Mirai-like"][1] == max(
        by_name[c][1] for c in GT_CLASSES
    )
    assert by_name["Mirai-like"][4].startswith("23/tcp")
    # Censys covers the most ports of all GT classes.
    assert by_name["Censys"][3] == max(by_name[c][3] for c in GT_CLASSES)
    # Engin-Umich is DNS-only.
    assert by_name["Engin-umich"][4].startswith("53/udp (100.0%)")
    # Unknown senders are the majority, as in the paper.
    assert by_name[UNKNOWN][1] > sum(by_name[c][1] for c in GT_CLASSES) * 0.5
