"""Telemetry overhead benchmark: the disabled path must cost < 1%.

The whole observability plane is opt-in; when no session is installed
the :class:`~repro.obs.recorder.NullRecorder` swallows every call.
This benchmark bounds what that opt-out costs, in three measurements
written to one JSON (``BENCH_overhead.json``):

1. **Disabled per-op cost** — tight-loop microbenchmarks of
   ``obs.add`` / ``obs.observe`` / ``obs.span`` with the null
   recorder installed, in nanoseconds per call.
2. **Instrumentation density** — an *enabled* run of the full
   pipeline on a synthetic trace counts how many recorder calls the
   hot paths actually make (counter increments, sketch/histogram
   observations, spans).
3. **The bound** — the same pipeline run with telemetry disabled is
   timed; the asserted invariant is

       events x disabled_per_op_cost  <  1% of pipeline wall time

   i.e. even if every instrumentation site paid the *measured* null
   cost, the total would be invisible.  A direct A/B wall-clock diff
   of two runs is recorded too (``disabled_vs_enabled``), but only
   reported, not asserted — at CI scale the diff is dominated by
   noise, which is exactly why the event-count bound exists.

A fourth, reported-only section times the run with a live
:class:`~repro.obs.TelemetrySink` flushing every second, so the
streamed-telemetry cost has a tracked number as well.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_overhead.py

``--smoke`` shrinks the trace for CI; the < 1% assertion is kept.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import DarkVec, DarkVecConfig
from repro.trace.generator import generate_trace
from repro.trace.scenario import default_scenario


def _time_per_op(fn, iterations: int) -> float:
    """Nanoseconds per call of ``fn`` over a tight loop."""
    t0 = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - t0) / iterations * 1e9


def bench_null_ops(iterations: int) -> dict:
    """Per-op cost of the disabled recorder, in ns."""
    assert obs.current().enabled is False

    def null_span() -> None:
        with obs.span("train.epoch"):
            pass

    values = np.ones(8)
    return {
        "iterations": iterations,
        "add_ns": _time_per_op(lambda: obs.add("train.pairs", 1), iterations),
        "observe_ns": _time_per_op(
            lambda: obs.observe("knn.search_seconds", 0.001), iterations
        ),
        "observe_many_ns": _time_per_op(
            lambda: obs.observe_many("corpus.sentence_length", values),
            iterations,
        ),
        "span_ns": _time_per_op(null_span, iterations),
    }


def _pipeline(trace, config: DarkVecConfig, cache_dir: Path):
    from dataclasses import replace

    return DarkVec(replace(config, cache_dir=cache_dir)).fit(trace)


#: Module-level obs entry points the hot paths call; the benchmark
#: counts invocations of each during an enabled run.
_OBS_OPS = (
    "add",
    "set_gauge",
    "observe",
    "observe_many",
    "span",
    "sample_rss_peak",
    "sample_rss_peak_children",
)


class _CallCounter:
    """Counts invocations of the ``repro.obs`` module entry points.

    Counter *values* cannot stand in for call counts — one ``obs.add``
    can carry a whole batch's increment — so the < 1% bound prices the
    calls the hot paths actually make.
    """

    def __init__(self) -> None:
        self.counts = {name: 0 for name in _OBS_OPS}
        self._originals: dict[str, object] = {}

    def __enter__(self) -> "_CallCounter":
        for name in _OBS_OPS:
            real = getattr(obs, name)
            self._originals[name] = real

            def counted(*a, _name=name, _real=real, **kw):
                self.counts[_name] += 1
                return _real(*a, **kw)

            setattr(obs, name, counted)
        return self

    def __exit__(self, *exc_info: object) -> None:
        for name, real in self._originals.items():
            setattr(obs, name, real)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


def bench_pipeline_overhead(args) -> dict:
    """Disabled vs enabled vs streamed pipeline runs + the < 1% bound."""
    scenario = default_scenario(scale=args.scale, days=1, seed=5)
    trace = generate_trace(scenario).trace
    config = DarkVecConfig(
        service="auto",
        epochs=args.epochs,
        vector_size=32,
        seed=11,
        workers=1,
    )

    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        disabled = _pipeline(trace, config, Path(tmp) / "c0")
        disabled_seconds = time.perf_counter() - t0

    telemetry = obs.Telemetry()
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        with _CallCounter() as counter, obs.session(telemetry):
            enabled = _pipeline(trace, config, Path(tmp) / "c1")
        enabled_seconds = time.perf_counter() - t0
    events = {"calls": dict(counter.counts), "total": counter.total}

    streamed_telemetry = obs.Telemetry()
    with tempfile.TemporaryDirectory() as tmp:
        stream = Path(tmp) / "live.ndjson"
        prom = Path(tmp) / "live.prom"
        sink = obs.TelemetrySink(
            streamed_telemetry, stream, prom_path=prom, interval=1.0
        )
        t0 = time.perf_counter()
        with obs.session(streamed_telemetry):
            sink.start()
            try:
                streamed = _pipeline(trace, config, Path(tmp) / "c2")
            finally:
                sink.stop()
        streamed_seconds = time.perf_counter() - t0
        if args.keep_artifacts is not None:
            args.keep_artifacts.mkdir(parents=True, exist_ok=True)
            (args.keep_artifacts / "live.ndjson").write_bytes(
                stream.read_bytes()
            )
            (args.keep_artifacts / "live.prom").write_bytes(prom.read_bytes())

    # Bit-identity across all three: telemetry observes, never steers.
    assert np.array_equal(disabled.embedding.vectors, enabled.embedding.vectors)
    assert np.array_equal(
        disabled.embedding.vectors, streamed.embedding.vectors
    )

    return {
        "packets": int(len(trace)),
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "streamed_seconds": streamed_seconds,
        "disabled_vs_enabled": enabled_seconds / disabled_seconds - 1.0,
        "disabled_vs_streamed": streamed_seconds / disabled_seconds - 1.0,
        "events": events,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--iterations", type=int, default=200_000)
    parser.add_argument(
        "--keep-artifacts",
        type=Path,
        default=None,
        help="directory to keep the streamed run's NDJSON + Prometheus files",
    )
    parser.add_argument("--out", type=Path, default=Path("BENCH_overhead.json"))
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small trace for CI; the < 1%% bound is still asserted",
    )
    args = parser.parse_args()
    if args.smoke:
        args.scale = min(args.scale, 0.02)
        args.epochs = min(args.epochs, 3)
        args.iterations = min(args.iterations, 50_000)

    null_ops = bench_null_ops(args.iterations)
    pipeline = bench_pipeline_overhead(args)

    # The asserted bound: every instrumentation event, priced at the
    # measured null-path cost of its op class, must sum to < 1% of the
    # disabled pipeline wall time.
    calls = pipeline["events"]["calls"]
    per_op = {
        "add": null_ops["add_ns"],
        "set_gauge": null_ops["add_ns"],
        "observe": null_ops["observe_ns"],
        "observe_many": null_ops["observe_many_ns"],
        "span": null_ops["span_ns"],
        "sample_rss_peak": null_ops["add_ns"],
        "sample_rss_peak_children": null_ops["add_ns"],
    }
    implied_ns = sum(calls[name] * per_op[name] for name in calls)
    implied_fraction = implied_ns * 1e-9 / pipeline["disabled_seconds"]
    result = {
        "null_ops": null_ops,
        "pipeline": pipeline,
        "implied_overhead_fraction": implied_fraction,
        "bound": 0.01,
        "ok": bool(implied_fraction < 0.01),
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    assert implied_fraction < 0.01, (
        f"disabled-telemetry overhead bound violated: "
        f"{implied_fraction:.4%} >= 1%"
    )
    print(
        f"ok: disabled-path overhead {implied_fraction:.4%} < 1% "
        f"({pipeline['events']['total']:,} recorder calls, "
        f"{pipeline['disabled_seconds']:.2f}s pipeline)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
