"""Ablation: number of auto-defined services (the paper fixes n=10).

Too few per-port services collapse toward the single-service corpus;
ten already recovers most of the domain-knowledge accuracy, which is
why the paper's auto-defined variant is competitive in Table 4.
"""

from benchmarks.conftest import emit, run_once
from repro.core import DarkVec, DarkVecConfig
from repro.utils.tables import format_table

_N_VALUES = (1, 3, 10, 25)
_ABLATION_DAYS = 12.0
_ABLATION_EPOCHS = 5


def test_ablation_auto_service_count(benchmark, bench_bundle):
    trace = bench_bundle.trace.last_days(_ABLATION_DAYS)
    truth = bench_bundle.truth

    def compute():
        results = {}
        for n in _N_VALUES:
            config = DarkVecConfig(
                service="auto",
                auto_top_n=n,
                epochs=_ABLATION_EPOCHS,
                seed=1,
            )
            results[n] = DarkVec(config).fit(trace).evaluate(truth, k=7).accuracy
        single = DarkVecConfig(service="single", epochs=_ABLATION_EPOCHS, seed=1)
        results["single"] = (
            DarkVec(single).fit(trace).evaluate(truth, k=7).accuracy
        )
        return results

    results = run_once(benchmark, compute)
    emit("")
    emit(
        format_table(
            ["Top-n services", "Accuracy"],
            [[str(k), f"{v:.3f}"] for k, v in results.items()],
            title="Ablation - auto-defined service count",
        )
    )

    # More per-port services help over the degenerate single corpus...
    assert results[10] > results["single"]
    # ...and n=10 captures most of what n=25 does.
    assert results[10] > results[25] - 0.1