"""Table 3: DarkVec vs IP2VEC vs DANTE (5-day and 30-day datasets).

Paper values: DarkVec 17 M skip-grams / 14 min / 0.93 accuracy on 5
days and 486 M / 1.2 h / 0.96 on 30 days (coverage 82% -> 100%);
IP2VEC 38 M skip-grams / 60 min / 0.67 on 5 days and does not finish
the 30-day corpus; DANTE generates ~7 B skip-grams and never completes
training because it fits one Word2Vec language per sender.

Shapes to reproduce at simulation scale: DarkVec beats IP2VEC on
accuracy while training on a *filtered* corpus; IP2VEC processes every
packet (5 pairs each, no activity filter); DANTE's per-language model
count equals the sender count, which dominates its runtime.
"""

import numpy as np

from benchmarks.conftest import BENCH_EPOCHS, emit, run_once
from repro.baselines.dante import Dante
from repro.baselines.ip2vec import Ip2Vec
from repro.core import DarkVec, DarkVecConfig, coverage
from repro.utils.tables import format_table
from repro.utils.timer import Timer

_PAPER_SCALE_PACKETS = 63_562_427  # 30-day packet count in the paper


def test_table3_comparison(benchmark, bench_bundle, eval_senders):
    trace = bench_bundle.trace
    truth = bench_bundle.truth
    five_day = trace.last_days(5.0)

    rows = []
    notes = []

    def evaluate_darkvec(window_trace, label):
        config = DarkVecConfig(service="domain", epochs=BENCH_EPOCHS, seed=1)
        with Timer() as timer:
            darkvec = DarkVec(config).fit(window_trace)
            report = darkvec.evaluate(truth, k=7, eval_days=1.0)
        skipgrams = darkvec.corpus.skipgram_count(config.context)
        window_coverage = coverage(
            window_trace, trace.last_days(1.0), eval_senders=eval_senders
        )
        rows.append(
            [
                f"DarkVec ({label})",
                skipgrams,
                f"{timer.elapsed:.1f}",
                f"{report.accuracy:.3f}",
                f"{window_coverage:.0%}",
            ]
        )
        return report

    def evaluate_ip2vec(window_trace, label):
        ip2vec = Ip2Vec(epochs=BENCH_EPOCHS, seed=1)
        with Timer() as timer:
            report = ip2vec.evaluate(window_trace, truth, eval_senders, k=7)
        rows.append(
            [
                f"IP2VEC ({label})",
                ip2vec.pair_count(window_trace),
                f"{timer.elapsed:.1f}",
                f"{report.accuracy:.3f}",
                "-",
            ]
        )
        return report

    def compute():
        dark5 = evaluate_darkvec(five_day, "5 days")
        dark30 = evaluate_darkvec(trace, "30 days")
        ip5 = evaluate_ip2vec(five_day, "5 days")
        ip30 = evaluate_ip2vec(trace, "30 days")

        dante = Dante(context=25, per_receiver=False, epochs=BENCH_EPOCHS)
        dante_skipgrams = dante.skipgram_count(trace)
        n_languages = len(trace.observed_senders())
        # Train DANTE on a small sender sample to measure the
        # per-language cost, then extrapolate to the full population
        # (the paper aborted DANTE after ten days for the same reason).
        sample = np.random.default_rng(0).choice(
            trace.observed_senders(), size=200, replace=False
        )
        with Timer() as timer:
            dante.fit_sender_vectors(trace.from_senders(sample))
        per_language = timer.elapsed / 200
        projected = per_language * n_languages
        rows.append(
            [
                "DANTE (30 days)",
                dante_skipgrams,
                f">{projected:.0f} (projected)",
                "-",
                "-",
            ]
        )
        notes.append(
            f"DANTE: {n_languages} per-sender Word2Vec languages at "
            f"{per_language * 1e3:.1f} ms each -> {projected:.0f} s projected "
            f"for this trace (measured on a 200-language sample). At the "
            f"paper's scale both the language count (543 900) and the "
            f"per-language corpus (~200x more packets each) grow, so the "
            f"projection is "
            f"{per_language * 543_900 * 200 / 86_400:.0f}+ days — the "
            f"paper's 'did not finish in ten days'."
        )
        scale_factor = _PAPER_SCALE_PACKETS / max(trace.n_packets, 1)
        notes.append(
            f"Simulated trace is {scale_factor:.0f}x smaller than the "
            f"paper's; skip-gram counts scale accordingly."
        )
        return dark5, dark30, ip5, ip30

    dark5, dark30, ip5, ip30 = run_once(benchmark, compute)

    emit("")
    emit(
        format_table(
            ["Method", "Skip-grams", "Time [s]", "Accuracy", "Coverage"],
            rows,
            title="Table 3 - comparison between DarkVec, IP2VEC and DANTE",
        )
    )
    for note in notes:
        emit(f"  note: {note}")

    # Shape assertions (paper: DarkVec wins on accuracy, grows with
    # more data, IP2VEC clearly behind).
    assert dark30.accuracy > ip30.accuracy + 0.05
    assert dark30.accuracy > 0.75
    assert dark5.accuracy > ip5.accuracy
    assert dark30.accuracy >= dark5.accuracy - 0.02
