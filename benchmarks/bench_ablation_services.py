"""Ablation: sentence window dT and service definition.

The paper states dT has marginal impact (footnote 5) and that the
service definition is the critical design choice.  This ablation
verifies both on a shortened training window.
"""

from benchmarks.conftest import emit, run_once
from repro.core import DarkVec, DarkVecConfig
from repro.utils.tables import format_table

_DELTA_T = (900.0, 3600.0, 14_400.0)
_ABLATION_DAYS = 12.0
_ABLATION_EPOCHS = 5


def test_ablation_delta_t_and_services(benchmark, bench_bundle):
    trace = bench_bundle.trace.last_days(_ABLATION_DAYS)
    truth = bench_bundle.truth

    def compute():
        results = {}
        for service in ("domain", "single"):
            for delta_t in _DELTA_T:
                config = DarkVecConfig(
                    service=service,
                    delta_t=delta_t,
                    epochs=_ABLATION_EPOCHS,
                    seed=1,
                )
                report = DarkVec(config).fit(trace).evaluate(truth, k=7)
                results[(service, delta_t)] = report.accuracy
        return results

    results = run_once(benchmark, compute)
    emit("")
    rows = [
        [service] + [f"{results[(service, dt)]:.3f}" for dt in _DELTA_T]
        for service in ("domain", "single")
    ]
    emit(
        format_table(
            ["Service \\ dT [s]"] + [str(int(dt)) for dt in _DELTA_T],
            rows,
            title="Ablation - accuracy vs dT and service definition",
        )
    )

    # dT has modest impact within a service definition (very short
    # windows fragment sentences and lose some co-occurrence)...
    domain_values = [results[("domain", dt)] for dt in _DELTA_T]
    assert max(domain_values) - min(domain_values) < 0.2
    # ...while the service definition dominates at every dT.
    for delta_t in _DELTA_T:
        assert results[("domain", delta_t)] > results[("single", delta_t)]
