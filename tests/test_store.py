"""Artifact store: fingerprints, codecs, cache correctness."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.core.stages import STAGE_ORDER, StagedPipeline
from repro.corpus.document import Corpus, Sentence
from repro.graph.knn_graph import KnnGraph
from repro.io.artifacts import (
    CORPUS_CODEC,
    KEYEDVECTORS_CODEC,
    KNN_GRAPH_CODEC,
    TRACE_CODEC,
    VOCAB_CODEC,
    trace_content_hash,
)
from repro import obs
from repro.store.cache import ArtifactStore
from repro.store.fingerprint import stable_hash, stage_fingerprint
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.vocab import Vocabulary


class TestStableHash:
    def test_deterministic_across_calls(self):
        value = {"a": np.arange(5), "b": [1, 2.5, "x"], "c": None}
        assert stable_hash(value) == stable_hash(
            {"c": None, "b": [1, 2.5, "x"], "a": np.arange(5)}
        )

    def test_distinguishes_types(self):
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash("1") != stable_hash(1)
        # tuples and lists hash alike on purpose: stage fields travel
        # through JSON, which cannot tell them apart
        assert stable_hash([1]) == stable_hash((1,))

    def test_distinguishes_array_dtype_and_shape(self):
        a = np.arange(6, dtype=np.int64)
        assert stable_hash(a) != stable_hash(a.astype(np.int32))
        assert stable_hash(a) != stable_hash(a.reshape(2, 3))

    def test_rejects_unhashable_types(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_stage_fingerprint_sensitivity(self):
        base = stage_fingerprint("corpus", 1, {"delta_t": 3600.0}, {"ingest": "ab"})
        assert base == stage_fingerprint(
            "corpus", 1, {"delta_t": 3600.0}, {"ingest": "ab"}
        )
        assert base != stage_fingerprint(
            "corpus", 2, {"delta_t": 3600.0}, {"ingest": "ab"}
        )
        assert base != stage_fingerprint(
            "corpus", 1, {"delta_t": 1800.0}, {"ingest": "ab"}
        )
        assert base != stage_fingerprint(
            "corpus", 1, {"delta_t": 3600.0}, {"ingest": "cd"}
        )


class TestCodecs:
    def test_trace_round_trip(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.npz"
        TRACE_CODEC.save(tiny_trace, path)
        loaded = TRACE_CODEC.load(path)
        assert np.array_equal(loaded.times, tiny_trace.times)
        assert np.array_equal(loaded.senders, tiny_trace.senders)
        assert np.array_equal(loaded.sender_ips, tiny_trace.sender_ips)
        assert trace_content_hash(loaded) == trace_content_hash(tiny_trace)

    def test_corpus_round_trip(self, tmp_path):
        corpus = Corpus(
            sentences=[
                Sentence(np.array([3, 1, 4, 1]), service_id=0, window=2),
                Sentence(np.array([5]), service_id=1, window=0),
            ],
            service_names=("telnet", "other"),
        )
        path = tmp_path / "corpus.npz"
        CORPUS_CODEC.save(corpus, path)
        loaded = CORPUS_CODEC.load(path)
        assert loaded.service_names == corpus.service_names
        assert len(loaded) == 2
        for got, want in zip(loaded.sentences, corpus.sentences):
            assert np.array_equal(got.tokens, want.tokens)
            assert (got.service_id, got.window) == (want.service_id, want.window)
        assert CORPUS_CODEC.content_hash(loaded) == CORPUS_CODEC.content_hash(corpus)

    def test_empty_corpus_round_trip(self, tmp_path):
        corpus = Corpus(sentences=[], service_names=())
        path = tmp_path / "corpus.npz"
        CORPUS_CODEC.save(corpus, path)
        assert len(CORPUS_CODEC.load(path)) == 0

    def test_vocab_round_trip(self, tmp_path):
        vocab = Vocabulary(
            tokens=np.array([2, 5, 9]), counts=np.array([4, 1, 7])
        )
        active = np.array([2, 9])
        path = tmp_path / "vocab.npz"
        VOCAB_CODEC.save((vocab, active), path)
        got_vocab, got_active = VOCAB_CODEC.load(path)
        assert np.array_equal(got_vocab.tokens, vocab.tokens)
        assert np.array_equal(got_vocab.counts, vocab.counts)
        assert np.array_equal(got_active, active)

    def test_keyedvectors_round_trip_with_context(self, tmp_path):
        keyed = KeyedVectors(
            tokens=np.array([1, 3]),
            vectors=np.ones((2, 4), dtype=np.float32),
            context_vectors=np.full((2, 4), 2.0, dtype=np.float32),
        )
        path = tmp_path / "kv.npz"
        KEYEDVECTORS_CODEC.save(keyed, path)
        loaded = KEYEDVECTORS_CODEC.load(path)
        assert np.array_equal(loaded.vectors, keyed.vectors)
        assert np.array_equal(loaded.context_vectors, keyed.context_vectors)
        # presence/absence of the context matrix changes the content
        bare = KeyedVectors(tokens=keyed.tokens, vectors=keyed.vectors)
        assert KEYEDVECTORS_CODEC.content_hash(
            keyed
        ) != KEYEDVECTORS_CODEC.content_hash(bare)

    def test_graph_round_trip(self, tmp_path):
        graph = KnnGraph(
            n_nodes=4,
            sources=np.array([0, 1, 2]),
            targets=np.array([1, 2, 3]),
            weights=np.array([0.5, 0.25, 1.0]),
        )
        path = tmp_path / "graph.npz"
        KNN_GRAPH_CODEC.save(graph, path)
        loaded = KNN_GRAPH_CODEC.load(path)
        assert loaded.n_nodes == 4
        assert np.array_equal(loaded.targets, graph.targets)


class TestArtifactStore:
    def test_save_load_round_trip(self, tiny_trace, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "a" * 16
        content = store.save("ingest", fp, TRACE_CODEC, tiny_trace)
        loaded = store.load("ingest", fp, TRACE_CODEC)
        assert loaded is not None
        obj, got_hash = loaded
        assert got_hash == content
        assert np.array_equal(obj.times, tiny_trace.times)

    def test_miss_on_absent_fingerprint(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("ingest", "b" * 16, TRACE_CODEC) is None

    def test_corrupted_artifact_is_discarded(self, tiny_trace, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "c" * 16
        store.save("ingest", fp, TRACE_CODEC, tiny_trace)
        # flip bytes of the payload file
        (payload,) = [
            p
            for p in (tmp_path / "objects").iterdir()
            if p.suffix == ".npz"
        ]
        payload.write_bytes(b"garbage")
        assert store.load("ingest", fp, TRACE_CODEC) is None
        # a fresh save repairs the entry
        store.save("ingest", fp, TRACE_CODEC, tiny_trace)
        assert store.load("ingest", fp, TRACE_CODEC) is not None

    def test_unreadable_meta_is_a_miss(self, tiny_trace, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "d" * 16
        store.save("ingest", fp, TRACE_CODEC, tiny_trace)
        (meta,) = (tmp_path / "objects").glob("*.meta.json")
        meta.write_text("{not json")
        assert store.load("ingest", fp, TRACE_CODEC) is None

    def test_stale_format_is_a_miss(self, tiny_trace, tmp_path):
        store = ArtifactStore(tmp_path)
        fp = "e" * 16
        store.save("ingest", fp, TRACE_CODEC, tiny_trace)
        (meta,) = (tmp_path / "objects").glob("*.meta.json")
        doc = json.loads(meta.read_text())
        doc["format"] = 999
        meta.write_text(json.dumps(doc))
        assert store.load("ingest", fp, TRACE_CODEC) is None

    def test_entries_lists_artifacts(self, tiny_trace, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("ingest", "f" * 16, TRACE_CODEC, tiny_trace)
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["stage"] == "ingest"

    def test_counters_are_recorded(self, tiny_trace, tmp_path):
        telemetry = obs.Telemetry()
        with obs.session(telemetry):
            store = ArtifactStore(tmp_path)
            fp = "9" * 16
            store.load("ingest", fp, TRACE_CODEC)  # miss
            store.save("ingest", fp, TRACE_CODEC, tiny_trace)
            store.load("ingest", fp, TRACE_CODEC)  # hit
        counters = telemetry.registry.counters
        assert counters["store.misses"] == 1
        assert counters["store.writes"] == 1
        assert counters["store.hits"] == 1


class TestCacheCorrectness:
    """ISSUE acceptance: all-hit reruns, downstream-only invalidation."""

    @pytest.fixture(scope="class")
    def cached_fit(self, small_trace, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("cache")
        config = DarkVecConfig(epochs=2, seed=3, cache_dir=cache_dir)
        darkvec = DarkVec(config).fit(small_trace)
        return cache_dir, config, darkvec

    def test_first_run_misses_everything(self, cached_fit):
        _, _, darkvec = cached_fit
        assert [s.status for s in darkvec.stage_statuses] == ["miss"] * 5

    def test_second_run_hits_everything(self, cached_fit, small_trace):
        cache_dir, config, first = cached_fit
        again = DarkVec(config).fit(small_trace)
        assert [s.status for s in again.stage_statuses] == ["hit"] * 5
        assert np.array_equal(again.embedding.vectors, first.embedding.vectors)
        assert np.array_equal(again.embedding.tokens, first.embedding.tokens)

    def test_flipping_k_prime_invalidates_only_knn_index(
        self, cached_fit, small_trace
    ):
        cache_dir, config, darkvec = cached_fit
        darkvec.cluster()  # populate the knn-index artifact
        flipped = dataclasses.replace(config, k_prime=config.k_prime + 1)
        pipeline = StagedPipeline(flipped, store=ArtifactStore(cache_dir))
        artifacts = pipeline.run(small_trace, until="knn-index")
        by_stage = {s.stage: s.status for s in artifacts.statuses}
        assert by_stage["knn-index"] == "miss"
        for stage in STAGE_ORDER[:-1]:
            assert by_stage[stage] == "hit", stage

    def test_flipping_delta_t_invalidates_corpus_downstream(
        self, cached_fit, small_trace
    ):
        cache_dir, config, _ = cached_fit
        flipped = dataclasses.replace(config, delta_t=config.delta_t / 2)
        pipeline = StagedPipeline(flipped, store=ArtifactStore(cache_dir))
        artifacts = pipeline.run(small_trace, until="train")
        by_stage = {s.stage: s.status for s in artifacts.statuses}
        assert by_stage["ingest"] == "hit"
        assert by_stage["service-map"] == "hit"
        assert by_stage["corpus"] == "miss"
        assert by_stage["vocab"] == "miss"
        assert by_stage["train"] == "miss"

    def test_flipping_seed_invalidates_only_train(self, cached_fit, small_trace):
        cache_dir, config, _ = cached_fit
        flipped = dataclasses.replace(config, seed=config.seed + 1)
        pipeline = StagedPipeline(flipped, store=ArtifactStore(cache_dir))
        artifacts = pipeline.run(small_trace, until="train")
        by_stage = {s.stage: s.status for s in artifacts.statuses}
        assert by_stage["train"] == "miss"
        for stage in ("ingest", "service-map", "corpus", "vocab"):
            assert by_stage[stage] == "hit", stage

    def test_corrupted_train_artifact_recomputes(self, cached_fit, small_trace):
        cache_dir, config, first = cached_fit
        for payload in (cache_dir / "objects").glob("train-*.npz"):
            payload.write_bytes(b"\x00corrupt")
        again = DarkVec(config).fit(small_trace)
        by_stage = {s.stage: s.status for s in again.stage_statuses}
        assert by_stage["train"] == "miss"
        assert np.array_equal(again.embedding.vectors, first.embedding.vectors)

    def test_staged_path_without_store_is_uncached(self, small_trace):
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(small_trace)
        assert [s.status for s in darkvec.stage_statuses] == ["uncached"] * 5
