"""Tests for repro.utils.ecdf."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.ecdf import Ecdf, ecdf


class TestEcdf:
    def test_simple_sample(self):
        e = ecdf(np.array([1, 2, 2, 3]))
        assert e.at(1) == pytest.approx(0.25)
        assert e.at(2) == pytest.approx(0.75)
        assert e.at(3) == pytest.approx(1.0)

    def test_below_minimum_is_zero(self):
        e = ecdf(np.array([5.0, 6.0]))
        assert e.at(4.9) == 0.0

    def test_above_maximum_is_one(self):
        e = ecdf(np.array([5.0, 6.0]))
        assert e.at(100.0) == 1.0

    def test_between_values_uses_left_step(self):
        e = ecdf(np.array([1.0, 3.0]))
        assert e.at(2.0) == pytest.approx(0.5)

    def test_quantile_simple(self):
        e = ecdf(np.array([1, 2, 3, 4]))
        assert e.quantile(0.5) == 2.0
        assert e.quantile(1.0) == 4.0

    def test_quantile_zero_returns_minimum(self):
        e = ecdf(np.array([3, 1, 2]))
        assert e.quantile(0.0) == 1.0

    def test_quantile_out_of_range_raises(self):
        e = ecdf(np.array([1.0]))
        with pytest.raises(ValueError):
            e.quantile(1.5)

    def test_empty_sample(self):
        e = ecdf(np.array([]))
        assert len(e) == 0
        with pytest.raises(ValueError):
            e.at(1.0)

    def test_two_dimensional_raises(self):
        with pytest.raises(ValueError):
            ecdf(np.zeros((2, 2)))

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            Ecdf(values=np.array([1.0]), probabilities=np.array([0.5, 1.0]))

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=200))
    def test_probabilities_monotone_and_end_at_one(self, sample):
        e = ecdf(np.array(sample, dtype=float))
        assert np.all(np.diff(e.probabilities) > 0) or len(e) == 1
        assert e.probabilities[-1] == pytest.approx(1.0)

    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100),
        st.floats(-1e6, 1e6, allow_nan=False),
    )
    def test_at_matches_naive_count(self, sample, x):
        e = ecdf(np.array(sample))
        naive = sum(1 for v in sample if v <= x) / len(sample)
        assert e.at(x) == pytest.approx(naive)
