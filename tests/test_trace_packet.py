"""Tests for repro.trace.packet."""

import numpy as np
import pytest

from repro.trace.packet import ICMP, TCP, UDP, Trace, proto_name


class TestProtoName:
    def test_known_protocols(self):
        assert proto_name(TCP) == "tcp"
        assert proto_name(UDP) == "udp"
        assert proto_name(ICMP) == "icmp"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            proto_name(99)


class TestTraceBasics:
    def test_lengths(self, tiny_trace):
        assert len(tiny_trace) == 10
        assert tiny_trace.n_packets == 10
        assert tiny_trace.n_senders == 3

    def test_sorted_by_time(self, tiny_trace):
        assert np.all(np.diff(tiny_trace.times) >= 0)

    def test_duration(self, tiny_trace):
        assert tiny_trace.start_time == 0.0
        assert tiny_trace.end_time == 9.0
        assert tiny_trace.duration_days == pytest.approx(9.0 / 86_400)

    def test_empty_trace(self):
        empty = Trace.empty()
        assert len(empty) == 0
        assert empty.duration_days == 0.0
        with pytest.raises(ValueError):
            _ = empty.start_time

    def test_unsorted_times_rejected(self, tiny_trace):
        times = tiny_trace.times.copy()
        times[0], times[1] = times[1], times[0]
        with pytest.raises(ValueError):
            Trace(
                times=times,
                senders=tiny_trace.senders,
                ports=tiny_trace.ports,
                protos=tiny_trace.protos,
                receivers=tiny_trace.receivers,
                mirai=tiny_trace.mirai,
                sender_ips=tiny_trace.sender_ips,
            )

    def test_column_length_mismatch_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            Trace(
                times=tiny_trace.times,
                senders=tiny_trace.senders[:-1],
                ports=tiny_trace.ports,
                protos=tiny_trace.protos,
                receivers=tiny_trace.receivers,
                mirai=tiny_trace.mirai,
                sender_ips=tiny_trace.sender_ips,
            )


class TestAggregations:
    def test_packet_counts(self, tiny_trace):
        counts = tiny_trace.packet_counts()
        assert sorted(counts.tolist()) == [2, 3, 5]
        assert counts.sum() == 10

    def test_active_senders_threshold(self, tiny_trace):
        assert len(tiny_trace.active_senders(3)) == 2
        assert len(tiny_trace.active_senders(5)) == 1
        assert len(tiny_trace.active_senders(6)) == 0

    def test_active_senders_invalid_threshold(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.active_senders(0)

    def test_observed_senders(self, tiny_trace):
        assert len(tiny_trace.observed_senders()) == 3

    def test_distinct_ports_counts_port_proto_pairs(self, tiny_trace):
        # ports: 23/tcp, 445/tcp, 80/tcp, 22/tcp, 53/udp -> 5 pairs
        assert tiny_trace.distinct_ports() == 5

    def test_port_packet_counts(self, tiny_trace):
        counts = tiny_trace.port_packet_counts()
        assert counts[(23, TCP)] == 5
        assert counts[(53, UDP)] == 1
        assert sum(counts.values()) == 10


class TestSelection:
    def test_between(self, tiny_trace):
        sub = tiny_trace.between(2.0, 5.0)
        assert len(sub) == 3
        assert sub.start_time == 2.0

    def test_between_shares_sender_table(self, tiny_trace):
        sub = tiny_trace.between(0.0, 3.0)
        assert sub.n_senders == tiny_trace.n_senders

    def test_last_days(self, tiny_trace):
        # Window [end - 5s, end] includes timestamps 4..9 inclusive.
        sub = tiny_trace.last_days(5.0 / 86_400)
        assert len(sub) == 6

    def test_first_days(self, tiny_trace):
        sub = tiny_trace.first_days(5.0 / 86_400)
        assert len(sub) == 5
        assert sub.end_time < 5.0

    def test_from_senders(self, tiny_trace):
        heavy = np.argmax(tiny_trace.packet_counts())
        sub = tiny_trace.from_senders(np.array([heavy]))
        assert len(sub) == 5
        assert np.all(sub.senders == heavy)

    def test_select_requires_boolean_mask(self, tiny_trace):
        with pytest.raises(ValueError):
            tiny_trace.select(np.ones(len(tiny_trace), dtype=int))


class TestFromEvents:
    def test_interns_and_sorts(self):
        trace = Trace.from_events(
            times=np.array([5.0, 1.0, 3.0]),
            sender_ips_per_packet=np.array([30, 10, 30], dtype=np.uint64),
            ports=np.array([1, 2, 3]),
            protos=np.array([TCP, TCP, TCP]),
            receivers=np.array([0, 0, 0]),
            mirai=np.array([False, True, False]),
        )
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.n_senders == 2
        assert trace.ports.tolist() == [2, 3, 1]
        assert trace.mirai.tolist() == [True, False, False]

    def test_extra_sender_ips_in_table(self):
        trace = Trace.from_events(
            times=np.array([1.0]),
            sender_ips_per_packet=np.array([10], dtype=np.uint64),
            ports=np.array([1]),
            protos=np.array([TCP]),
            receivers=np.array([0]),
            mirai=np.array([False]),
            extra_sender_ips=np.array([99], dtype=np.uint64),
        )
        assert trace.n_senders == 2
        assert len(trace.observed_senders()) == 1
