"""Tests for repro.labels.groundtruth."""

import numpy as np
import pytest

from repro.labels.groundtruth import GT_CLASSES, UNKNOWN, GroundTruth


class TestGroundTruth:
    def test_label_of_unlabeled_is_unknown(self):
        truth = GroundTruth()
        assert truth.label_of(12345) == UNKNOWN

    def test_add_and_lookup(self):
        truth = GroundTruth()
        truth.add_class("Censys", np.array([1, 2, 3]))
        assert truth.label_of(2) == "Censys"
        assert truth.classes == ("Censys",)

    def test_relabel_conflict_raises(self):
        truth = GroundTruth()
        truth.add_class("A", np.array([1]))
        with pytest.raises(ValueError):
            truth.add_class("B", np.array([1]))

    def test_relabel_same_class_is_idempotent(self):
        truth = GroundTruth()
        truth.add_class("A", np.array([1]))
        truth.add_class("A", np.array([1, 2]))
        assert truth.label_of(1) == "A"

    def test_explicit_unknown_rejected(self):
        with pytest.raises(ValueError):
            GroundTruth(by_ip={1: UNKNOWN})
        truth = GroundTruth()
        with pytest.raises(ValueError):
            truth.add_class(UNKNOWN, np.array([5]))

    def test_labels_for_trace(self, tiny_trace):
        truth = GroundTruth()
        truth.add_class("Mirai-like", np.array([0x0A000001]))
        labels = truth.labels_for(tiny_trace)
        assert labels[0] == "Mirai-like"
        assert labels[1] == UNKNOWN

    def test_class_counts(self, tiny_trace):
        truth = GroundTruth()
        truth.add_class("X", np.array([0x0A000001, 0x0A000002]))
        counts = truth.class_counts(tiny_trace, np.array([0, 1, 2]))
        assert counts == {"X": 2, UNKNOWN: 1}

    def test_merge(self):
        a = GroundTruth({1: "A"})
        b = GroundTruth({2: "B"})
        merged = a.merge(b)
        assert merged.label_of(1) == "A"
        assert merged.label_of(2) == "B"
        # Originals untouched.
        assert b.label_of(1) == UNKNOWN

    def test_merge_conflict_raises(self):
        a = GroundTruth({1: "A"})
        b = GroundTruth({1: "B"})
        with pytest.raises(ValueError):
            a.merge(b)

    def test_gt_classes_constant(self):
        assert len(GT_CLASSES) == 9
        assert "Mirai-like" in GT_CLASSES
        assert UNKNOWN not in GT_CLASSES
