"""Tests for the run registry, health policy, and drift/quality monitors."""

import json

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.obs.drift import cluster_stability, embedding_drift, neighborhood_churn
from repro.obs.health import HealthPolicy, HealthReport, MonitorResult, classify
from repro.obs.quality import (
    data_profile,
    empty_window_rate,
    port_mix,
    port_mix_shift,
    volume_zscore,
)
from repro.obs.registry import (
    RunRecord,
    RunRegistry,
    code_version,
    config_fingerprint,
    record_run,
)
from repro.w2v.keyedvectors import KeyedVectors


class TestClassify:
    def test_high_direction_ladder(self):
        assert classify("m", 0.1, warn=0.5, fail=0.9).verdict == "ok"
        assert classify("m", 0.5, warn=0.5, fail=0.9).verdict == "warn"
        assert classify("m", 0.9, warn=0.5, fail=0.9).verdict == "fail"

    def test_low_direction_ladder(self):
        assert classify("m", 0.8, warn=0.5, fail=0.1, direction="low").verdict == "ok"
        assert classify("m", 0.5, warn=0.5, fail=0.1, direction="low").verdict == "warn"
        assert classify("m", 0.1, warn=0.5, fail=0.1, direction="low").verdict == "fail"

    def test_none_value_is_ok_with_reason(self):
        result = classify("m", None, warn=0.5, fail=0.9)
        assert result.verdict == "ok"
        assert result.value is None
        assert result.detail == "no baseline"

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            classify("m", 0.5, warn=0.1, fail=0.9, direction="sideways")


class TestHealthPolicy:
    def test_defaults_are_ordered(self):
        policy = HealthPolicy()
        assert policy.drift_warn < policy.drift_fail
        assert policy.stability_warn > policy.stability_fail

    def test_out_of_order_thresholds_rejected(self):
        with pytest.raises(ValueError):
            HealthPolicy(drift_warn=0.9, drift_fail=0.1)
        with pytest.raises(ValueError):
            HealthPolicy(stability_warn=0.05, stability_fail=0.5)

    def test_to_dict_round_trips(self):
        policy = HealthPolicy(gate_updates=True, drift_warn=0.05)
        assert HealthPolicy(**policy.to_dict()) == policy

    def test_config_coerces_dict(self):
        config = DarkVecConfig(health={"gate_updates": True})
        assert isinstance(config.health, HealthPolicy)
        assert config.health.gate_updates is True


class TestHealthReport:
    def _monitor(self, name, verdict):
        return MonitorResult(name=name, value=0.0, verdict=verdict, warn=1, fail=2)

    def test_worst_verdict_wins(self):
        report = HealthReport(
            monitors=[self._monitor("a", "ok"), self._monitor("b", "warn")]
        )
        assert report.verdict == "warn"
        report.monitors.append(self._monitor("c", "fail"))
        assert report.verdict == "fail"

    def test_empty_report_is_ok(self):
        assert HealthReport().verdict == "ok"

    def test_failures_and_warnings_filter(self):
        report = HealthReport(
            monitors=[self._monitor("a", "fail"), self._monitor("b", "warn")]
        )
        assert [m.name for m in report.failures()] == ["a"]
        assert [m.name for m in report.warnings()] == ["b"]


class TestQuality:
    def test_port_mix_shares_sum_to_one(self, tiny_trace):
        mix = port_mix(tiny_trace)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert all(share > 0 for share in mix.values())

    def test_port_mix_shift_bounds(self, tiny_trace):
        mix = port_mix(tiny_trace)
        assert port_mix_shift(mix, mix) == 0.0
        disjoint = {"9999/udp": 1.0}
        assert port_mix_shift(mix, disjoint) == pytest.approx(1.0)

    def test_empty_window_rate(self, tiny_trace):
        # 10 packets over 9 seconds: 1-second bins leave no gap.
        assert empty_window_rate(tiny_trace, delta_t=1.0) == 0.0
        # One 100-second bin span with all packets in the first bin.
        assert empty_window_rate(tiny_trace, delta_t=0.5) > 0.0

    def test_volume_zscore_needs_history(self):
        assert volume_zscore(10.0, []) is None
        assert volume_zscore(10.0, [9.0], min_history=2) is None

    def test_volume_zscore_flags_outlier(self):
        history = [100.0, 101.0, 99.0, 100.0]
        assert abs(volume_zscore(100.0, history)) < 1.0
        assert volume_zscore(200.0, history) > 6.0

    def test_constant_history_does_not_divide_by_zero(self):
        z = volume_zscore(100.0, [50.0, 50.0, 50.0])
        assert np.isfinite(z)

    def test_data_profile_keys(self, tiny_trace):
        profile = data_profile(tiny_trace, delta_t=1.0)
        assert profile["packets"] == 10
        assert profile["senders"] == 3
        assert 0.0 <= profile["empty_window_rate"] <= 1.0
        assert isinstance(profile["port_mix"], dict)


def _keyed(seed, n=30, dim=8):
    rng = np.random.default_rng(seed)
    return KeyedVectors(
        tokens=np.arange(n, dtype=np.int64),
        vectors=rng.normal(size=(n, dim)),
    )


class TestDriftMonitors:
    def test_identical_models_do_not_drift(self):
        keyed = _keyed(0)
        report = embedding_drift(keyed, keyed)
        assert report.mean == pytest.approx(0.0, abs=1e-9)
        assert report.n_shared == 30
        assert neighborhood_churn(keyed, keyed, k=3) == pytest.approx(0.0)
        ari, ami = cluster_stability(keyed, keyed, k_prime=3, seed=1)
        assert ari == pytest.approx(1.0)
        assert ami == pytest.approx(1.0)

    def test_rotation_is_aligned_away(self):
        keyed = _keyed(1)
        rng = np.random.default_rng(2)
        rotation, _ = np.linalg.qr(rng.normal(size=(8, 8)))
        rotated = KeyedVectors(
            tokens=keyed.tokens, vectors=keyed.vectors @ rotation
        )
        report = embedding_drift(keyed, rotated)
        assert report.aligned is True
        assert report.mean == pytest.approx(0.0, abs=1e-6)

    def test_noise_registers_as_drift_and_churn(self):
        keyed = _keyed(3)
        noisy = KeyedVectors(
            tokens=keyed.tokens,
            vectors=keyed.vectors
            + np.random.default_rng(4).normal(scale=2.0, size=(30, 8)),
        )
        assert embedding_drift(keyed, noisy).mean > 0.1
        assert neighborhood_churn(keyed, noisy, k=3) > 0.3

    def test_disjoint_vocabularies_skip(self):
        a = _keyed(5)
        b = KeyedVectors(
            tokens=np.arange(100, 130, dtype=np.int64), vectors=_keyed(6).vectors
        )
        assert neighborhood_churn(a, b, k=3) is None
        assert cluster_stability(a, b) is None


class TestRunRegistry:
    def _record(self, run_id, kind="fit", **extra):
        return RunRecord(
            run_id=run_id,
            kind=kind,
            unix_time=0.0,
            code_version="test",
            config_fingerprint="cafe",
            wall_seconds=1.0,
            extra=extra,
        )

    def test_empty_registry_reads_empty(self, tmp_path):
        registry = RunRegistry(tmp_path / "registry")
        assert registry.runs() == []
        assert registry.last() is None
        assert registry.next_run_id() == "run-0001"

    def test_append_and_get(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(self._record("run-0001"))
        registry.append(self._record("run-0002", kind="update"))
        assert [r["run_id"] for r in registry.runs()] == ["run-0001", "run-0002"]
        assert registry.get("run-0002")["kind"] == "update"
        with pytest.raises(KeyError):
            registry.get("run-9999")

    def test_last_filters_by_kind(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(self._record("run-0001", kind="fit"))
        registry.append(self._record("run-0002", kind="update"))
        assert registry.last()["run_id"] == "run-0002"
        assert registry.last(kind="fit")["run_id"] == "run-0001"

    def test_history_prefers_profile_then_extra(self, tmp_path):
        registry = RunRegistry(tmp_path)
        record = self._record("run-0001", loo_accuracy=0.9)
        record.profile = {"packets": 100}
        registry.append(record)
        registry.append(self._record("run-0002", loo_accuracy=0.8))
        assert registry.history("packets") == [100.0]
        assert registry.history("loo_accuracy") == [0.9, 0.8]
        assert registry.history("loo_accuracy", kind="update") == []

    def test_append_leaves_no_temp_files(self, tmp_path):
        registry = RunRegistry(tmp_path)
        registry.append(self._record("run-0001"))
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        # The file itself is valid NDJSON.
        lines = registry.path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["run_id"] == "run-0001"

    def test_monitor_series(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for run_id, value in (("run-0001", 0.1), ("run-0002", 0.3)):
            record = self._record(run_id)
            record.health = {
                "verdict": "ok",
                "monitors": [{"name": "drift", "value": value, "verdict": "ok"}],
            }
            registry.append(record)
        assert registry.monitor_series("drift") == [0.1, 0.3]
        assert registry.monitor_series("churn") == []

    def test_record_run_snapshots_config(self, tmp_path):
        registry = RunRegistry(tmp_path)
        config = DarkVecConfig(epochs=2)
        doc = record_run(registry, "fit", config, wall_seconds=1.5)
        assert doc["config_fingerprint"] == config_fingerprint(config)
        assert doc["kind"] == "fit"
        assert registry.runs() == [doc]


class TestConfigFingerprint:
    def test_stable_across_instances(self):
        assert config_fingerprint(DarkVecConfig()) == config_fingerprint(
            DarkVecConfig()
        )

    def test_sensitive_to_any_knob(self):
        base = config_fingerprint(DarkVecConfig())
        assert config_fingerprint(DarkVecConfig(epochs=3)) != base
        assert (
            config_fingerprint(DarkVecConfig(health={"drift_warn": 0.01}))
            != base
        )

    def test_code_version_is_a_string(self):
        assert isinstance(code_version(), str)
        assert code_version()


class TestHealthGate:
    @pytest.fixture(scope="class")
    def gated(self, small_bundle, tmp_path_factory):
        """Fit 3 days, then a gated update forced to fail on drift."""
        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        head = trace.between(trace.start_time, cut)
        tail = trace.between(cut, cut + 86400.0)
        config = DarkVecConfig(
            service="domain",
            epochs=2,
            seed=3,
            window_days=3.0,
            cache_dir=tmp_path_factory.mktemp("gate-cache"),
            health={"gate_updates": True, "drift_warn": 1e-9, "drift_fail": 1e-8},
        )
        darkvec = DarkVec(config).fit(head)
        before = darkvec.embedding.vectors.copy()
        n_before = len(darkvec.trace)
        darkvec.update(tail)
        return darkvec, before, n_before

    def test_fit_records_run(self, gated):
        darkvec, _, _ = gated
        kinds = [r["kind"] for r in darkvec.registry.runs()]
        assert kinds == ["fit", "update"]

    def test_gate_refuses_promotion(self, gated):
        darkvec, _, _ = gated
        assert darkvec.last_health.promoted is False
        assert darkvec.last_health.verdict == "fail"
        assert any(m.name == "drift" for m in darkvec.last_health.failures())

    def test_prior_state_stays_live(self, gated):
        darkvec, before, n_before = gated
        np.testing.assert_array_equal(darkvec.embedding.vectors, before)
        assert len(darkvec.trace) == n_before

    def test_refused_update_still_recorded(self, gated):
        darkvec, _, _ = gated
        record = darkvec.registry.last(kind="update")
        assert record["health"]["promoted"] is False
        assert record["health"]["verdict"] == "fail"

    def test_ungated_update_promotes(self, small_bundle, tmp_path):
        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        config = DarkVecConfig(
            service="domain",
            epochs=2,
            seed=3,
            window_days=3.0,
            cache_dir=tmp_path,
            health={"drift_warn": 1e-9, "drift_fail": 1e-8},
        )
        darkvec = DarkVec(config).fit(
            trace.between(trace.start_time, cut)
        )
        before = darkvec.embedding.vectors.copy()
        darkvec.update(trace.between(cut, cut + 86400.0))
        # Monitors still fail, but without the gate the update promotes.
        assert darkvec.last_health.verdict == "fail"
        assert darkvec.last_health.promoted is True
        assert not np.array_equal(darkvec.embedding.vectors, before)
