"""Tests for repro.trace.scenario and repro.trace.generator."""

import numpy as np
import pytest

from repro.labels.groundtruth import GT_CLASSES
from repro.trace.generator import generate_trace
from repro.trace.packet import SECONDS_PER_DAY, TCP
from repro.trace.scenario import Scenario, default_scenario, scaled


class TestScaled:
    def test_small_groups_kept(self):
        assert scaled(50, 0.1) == 50
        assert scaled(110, 0.01) == 110

    def test_large_groups_scaled_with_floor(self):
        assert scaled(7351, 0.1) == 735
        assert scaled(525, 0.1) == 110  # floored

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled(100, 0.0)


class TestDefaultScenario:
    def test_actor_names_unique(self):
        scenario = default_scenario(scale=0.05, days=3)
        names = [a.name for a in scenario.actors]
        assert len(set(names)) == len(names)

    def test_all_gt_classes_present(self):
        scenario = default_scenario(scale=0.05, days=3)
        labels = {a.label for a in scenario.actors if a.label}
        assert labels == set(GT_CLASSES)

    def test_actor_lookup(self):
        scenario = default_scenario(scale=0.05, days=3)
        assert scenario.actor("mirai").label == "Mirai-like"
        with pytest.raises(KeyError):
            scenario.actor("nope")

    def test_mirai_fingerprint_configuration(self):
        scenario = default_scenario(scale=0.05, days=3)
        assert scenario.actor("mirai").mirai_probability == 1.0
        assert scenario.actor("mirai_nofp").mirai_probability == 0.0

    def test_scale_changes_large_populations_only(self):
        small = default_scenario(scale=0.05, days=3)
        large = default_scenario(scale=0.3, days=3)
        assert small.actor("mirai").n_senders < large.actor("mirai").n_senders
        assert small.actor("engin_umich").n_senders == 10
        assert large.actor("engin_umich").n_senders == 10

    def test_invalid_scenario_params(self):
        with pytest.raises(ValueError):
            Scenario(actors=[], n_backscatter=-1)


class TestGenerateTrace:
    def test_deterministic(self):
        scenario = default_scenario(scale=0.02, days=2, seed=5, backscatter_scale=0.005)
        a = generate_trace(scenario).trace
        b = generate_trace(scenario).trace
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.sender_ips, b.sender_ips)
        assert np.array_equal(a.ports, b.ports)

    def test_bundle_structure(self, small_bundle):
        trace = small_bundle.trace
        assert trace.n_packets > 1000
        assert np.all(np.diff(trace.times) >= 0)
        assert trace.start_time >= small_bundle.trace.times[0]

    def test_ground_truth_covers_gt_classes(self, small_bundle):
        labels = set(small_bundle.truth.by_ip.values())
        assert labels == set(GT_CLASSES)

    def test_unlabeled_actors_not_in_truth(self, small_bundle):
        truth_ips = set(small_bundle.truth.by_ip)
        for name in ("unknown1_netbios", "noise_smb", "noise_like_mirai", "mirai_nofp"):
            actor_ips = set(small_bundle.actor_ips[name].tolist())
            assert not (actor_ips & truth_ips)

    def test_mirai_fingerprint_only_on_mirai(self, small_bundle):
        trace = small_bundle.trace
        mirai_ips = set(small_bundle.actor_ips["mirai"].tolist())
        flagged_senders = np.unique(trace.senders[trace.mirai])
        flagged_ips = set(trace.sender_ips[flagged_senders].tolist())
        assert flagged_ips <= mirai_ips

    def test_mirai_targets_telnet(self, small_bundle):
        trace = small_bundle.trace
        rows = small_bundle.sender_indices_of("mirai")
        sub = trace.from_senders(rows)
        counts = sub.port_packet_counts()
        share_23 = counts.get((23, TCP), 0) / max(len(sub), 1)
        assert share_23 > 0.8

    def test_sender_indices_of_roundtrip(self, small_bundle):
        rows = small_bundle.sender_indices_of("engin_umich")
        ips = small_bundle.trace.sender_ips[rows]
        assert set(ips.tolist()) <= set(
            small_bundle.actor_ips["engin_umich"].tolist()
        )

    def test_backscatter_mostly_below_filter(self, small_bundle):
        trace = small_bundle.trace
        counts = trace.packet_counts()
        observed = trace.observed_senders()
        share_active = (counts[observed] >= 10).mean()
        assert share_active < 0.6  # most senders are occasional

    def test_horizon_respected(self, small_bundle):
        trace = small_bundle.trace
        assert trace.duration_days <= 6.0 + 1e-6
