"""Tests for repro.analysis.projection."""

import numpy as np
import pytest

from repro.analysis.projection import PcaModel, fit_pca, scatter_text


class TestPca:
    def test_recovers_dominant_axis(self):
        rng = np.random.default_rng(0)
        # Data varying mostly along (1, 1, 0).
        base = rng.normal(size=(200, 1)) * np.array([[1.0, 1.0, 0.0]])
        noise = rng.normal(0, 0.01, size=(200, 3))
        model = fit_pca(base + noise, n_components=1)
        axis = model.components[0] / np.linalg.norm(model.components[0])
        expected = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        assert abs(abs(axis @ expected) - 1.0) < 0.01

    def test_explained_variance_sorted(self):
        rng = np.random.default_rng(1)
        model = fit_pca(rng.normal(size=(50, 6)), n_components=3)
        ratios = model.explained_variance_ratio
        assert np.all(np.diff(ratios) <= 1e-12)
        assert ratios.sum() <= 1.0 + 1e-9

    def test_transform_shape(self):
        rng = np.random.default_rng(2)
        data = rng.normal(size=(30, 5))
        model = fit_pca(data, n_components=2)
        projected = model.transform(data)
        assert projected.shape == (30, 2)

    def test_transform_centers_data(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(100, 4)) + 100.0
        model = fit_pca(data, n_components=2)
        projected = model.transform(data)
        assert abs(projected.mean(axis=0)).max() < 1e-9

    def test_dimension_mismatch(self):
        model = fit_pca(np.random.rand(10, 4), n_components=2)
        with pytest.raises(ValueError):
            model.transform(np.random.rand(3, 5))

    def test_invalid_components(self):
        with pytest.raises(ValueError):
            fit_pca(np.random.rand(5, 3), n_components=4)
        with pytest.raises(ValueError):
            fit_pca(np.random.rand(5, 3), n_components=0)

    def test_embedding_classes_separate_in_2d(self, fitted_darkvec, small_bundle):
        """Mirai vs Engin-Umich are distinguishable even after PCA."""
        embedding = fitted_darkvec.embedding
        labels = small_bundle.truth.labels_for(small_bundle.trace)[
            embedding.tokens
        ]
        model = fit_pca(embedding.vectors, n_components=2)
        points = model.transform(embedding.vectors)
        mirai = points[labels == "Mirai-like"]
        engin = points[labels == "Engin-umich"]
        if len(mirai) > 5 and len(engin) > 2:
            gap = np.linalg.norm(mirai.mean(axis=0) - engin.mean(axis=0))
            spread = mirai.std() + engin.std()
            assert gap > spread * 0.3


class TestScatterText:
    def test_renders_glyphs_and_legend(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        labels = np.array(["alpha", "beta"], dtype=object)
        text = scatter_text(points, labels, width=10, height=5)
        assert "A" in text and "B" in text
        assert "A=alpha" in text and "B=beta" in text

    def test_constant_points_ok(self):
        points = np.zeros((3, 2))
        labels = np.array(["x", "x", "x"], dtype=object)
        text = scatter_text(points, labels)
        assert "A=x" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            scatter_text(np.zeros((2, 3)), np.array(["a", "b"], dtype=object))
        with pytest.raises(ValueError):
            scatter_text(np.zeros((0, 2)), np.array([], dtype=object))
        many = np.array([str(i) for i in range(25)], dtype=object)
        with pytest.raises(ValueError):
            scatter_text(np.zeros((25, 2)), many)
