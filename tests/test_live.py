"""Tests for the live telemetry plane (repro.obs.live + sketches).

Covers the quantile sketch (accuracy vs exact quantiles, merge
algebra, serialisation), the streaming sink (frames with in-flight
spans, background flusher, Prometheus exposition), cross-process
worker heartbeats, telemetry equality across pool backends and
flusher settings, the frame reader's partial-line tolerance, the
dashboard renderer, and the ``repro top`` CLI verb.
"""

import json
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import QuantileSketch, Telemetry, TelemetrySink
from repro.obs.live import (
    build_frame,
    prometheus_text,
    read_frames,
    render_frame,
)
from repro.obs.sketch import summarize


class TestQuantileSketch:
    def test_exact_under_capacity(self):
        sketch = QuantileSketch(k=64)
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        sketch.observe_many(np.array(values))
        assert sketch.count == 5
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 5.0
        assert sketch.quantile(0.5) == 3.0

    def test_empty_quantiles_are_none(self):
        import math

        sketch = QuantileSketch()
        assert math.isnan(sketch.quantile(0.5))
        summary = summarize(sketch.to_dict())
        assert summary["count"] == 0
        assert summary["p99"] is None

    def test_p99_within_5pct_of_exact(self):
        # Acceptance criterion: sketch p99 within 5% of the exact
        # empirical p99 on a skewed latency-shaped distribution.
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=-4.0, sigma=1.0, size=100_000)
        sketch = QuantileSketch()
        for chunk in np.array_split(values, 37):
            sketch.observe_many(chunk)
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            approx = sketch.quantile(q)
            assert abs(approx - exact) / exact < 0.05, q

    def test_scalar_and_vector_updates_agree(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(size=400)
        one = QuantileSketch(k=32)
        many = QuantileSketch(k=32)
        for value in values:
            one.observe(float(value))
        many.observe_many(values)
        assert one.count == many.count == 400
        assert one.sum == pytest.approx(many.sum)

    def test_min_max_sum_exact(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=10_000)
        sketch = QuantileSketch(k=16)  # tiny k: heavy compaction
        sketch.observe_many(values)
        assert sketch.count == 10_000
        assert sketch.quantile(0.0) == pytest.approx(float(values.min()))
        assert sketch.quantile(1.0) == pytest.approx(float(values.max()))
        assert sketch.sum == pytest.approx(float(values.sum()))

    def test_merge_weight_conserved(self):
        rng = np.random.default_rng(3)
        a, b = QuantileSketch(k=32), QuantileSketch(k=32)
        a.observe_many(rng.normal(size=5_000))
        b.observe_many(rng.normal(size=3_000))
        a.merge_dict(b.to_dict())
        assert a.count == 8_000
        # Total weight across levels must equal the count.
        state = a.to_dict()
        weight = sum(
            len(level) * (1 << h) for h, level in enumerate(state["levels"])
        )
        assert weight == 8_000

    def test_merge_commutative_and_associative(self):
        # Property: merge order must not change the quantile estimates
        # beyond sketch error — estimates from (a+b)+c and a+(c+b)
        # agree on the same data within the sketch's accuracy budget.
        rng = np.random.default_rng(11)
        parts = [rng.lognormal(sigma=0.8, size=4_000) for _ in range(3)]

        def build(order):
            merged = QuantileSketch()
            for index in order:
                piece = QuantileSketch()
                piece.observe_many(parts[index])
                merged.merge_dict(piece.to_dict())
            return merged

        exact = np.concatenate(parts)
        for order in ((0, 1, 2), (2, 1, 0), (1, 0, 2)):
            sketch = build(order)
            assert sketch.count == len(exact)
            for q in (0.5, 0.95, 0.99):
                reference = float(np.quantile(exact, q))
                assert abs(sketch.quantile(q) - reference) / reference < 0.05

    def test_merge_mismatched_k_raises(self):
        a, b = QuantileSketch(k=32), QuantileSketch(k=64)
        b.observe(1.0)  # noqa: placeholder
        with pytest.raises(ValueError, match="different capacities"):
            a.merge_dict(b.to_dict())

    def test_dict_round_trip(self):
        rng = np.random.default_rng(5)
        sketch = QuantileSketch(k=32)
        sketch.observe_many(rng.normal(size=2_000))
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        for q in (0.05, 0.5, 0.95):
            assert clone.quantile(q) == sketch.quantile(q)
        # Round-trip survives JSON (the registry/export path).
        again = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict()))
        )
        assert again.quantile(0.5) == sketch.quantile(0.5)


class TestSketchMetrics:
    def test_observe_routes_to_sketch(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.observe("knn.search_seconds", 0.01)
            obs.observe_many("stage.seconds", np.array([0.5, 1.5]))
        snapshot = telemetry.snapshot()
        assert snapshot["sketches"]["knn.search_seconds"]["count"] == 1
        assert snapshot["sketches"]["stage.seconds"]["count"] == 2

    def test_sketches_merge_through_task_scopes(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            task = obs.wrap_task(
                lambda value: obs.observe("train.epoch_seconds", value)
            )
            for value in (0.1, 0.2, 0.3):
                task(value)
        data = telemetry.snapshot()["sketches"]["train.epoch_seconds"]
        assert data["count"] == 3
        assert summarize(data)["max"] == pytest.approx(0.3)

    def test_sketch_in_ndjson_records(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.observe("knn.search_seconds", 0.25)
        records = obs.telemetry_records(telemetry)
        sketch_records = [r for r in records if r["type"] == "sketch"]
        assert len(sketch_records) == 1
        record = sketch_records[0]
        assert record["name"] == "knn.search_seconds"
        assert record["p50"] == pytest.approx(0.25)
        assert record["state"]["count"] == 1


class TestBuildFrame:
    def test_frame_includes_open_spans(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("pipeline.fit"):
                with obs.span("train.epoch", epoch=3):
                    frame = build_frame(telemetry, seq=1)
        spans = {s["path"]: s for s in frame["spans"]}
        assert spans["pipeline.fit"]["open"] is True
        assert spans["pipeline.fit/train.epoch"]["open"] is True
        assert spans["pipeline.fit/train.epoch"]["elapsed"] >= 0.0
        assert spans["pipeline.fit/train.epoch"]["attrs"]["epoch"] == 3
        # After the spans close, a new frame marks them closed.
        frame2 = build_frame(telemetry, seq=2)
        assert all(not s["open"] for s in frame2["spans"])

    def test_frame_includes_inflight_task_counters(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            # Open a task scope by hand: counts are in the live shard,
            # not yet merged into the aggregate registry.
            with telemetry.task_scope():
                obs.add("train.pairs", 7)
                frame = build_frame(telemetry, seq=1)
                assert frame["counters"].get("train.pairs", 0) == 0
                assert frame["inflight"]["counters"]["train.pairs"] == 7
        merged = build_frame(telemetry, seq=2)
        assert merged["counters"]["train.pairs"] == 7

    def test_frame_has_proc_section(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            frame = build_frame(telemetry, seq=0)
        assert frame["proc"]["rss"] is None or frame["proc"]["rss"] > 0


class TestTelemetrySink:
    def test_flush_appends_frames_and_prom(self, tmp_path):
        stream = tmp_path / "live.ndjson"
        prom = tmp_path / "live.prom"
        telemetry = Telemetry()
        with obs.session(telemetry):
            sink = TelemetrySink(telemetry, stream, prom_path=prom)
            sink.start()
            obs.add("trace.packets", 42)
            obs.observe("knn.search_seconds", 0.003)
            sink.flush()
            sink.stop()
        frames, _ = read_frames(stream)
        assert len(frames) >= 2  # explicit flush + final flush on stop
        last = frames[-1]
        assert last["counters"]["trace.packets"] == 42
        assert last["sketches"]["knn.search_seconds"]["count"] == 1
        text = prom.read_text()
        assert "repro_trace_packets 42" in text
        assert 'repro_knn_search_seconds{quantile="0.99"}' in text

    def test_background_flusher_produces_frames(self, tmp_path):
        stream = tmp_path / "live.ndjson"
        telemetry = Telemetry()
        with obs.session(telemetry):
            with TelemetrySink(telemetry, stream, interval=0.02):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    frames, _ = read_frames(stream)
                    if len(frames) >= 2:
                        break
                    time.sleep(0.02)
        frames, _ = read_frames(stream)
        assert len(frames) >= 2
        assert [f["seq"] for f in frames] == sorted(f["seq"] for f in frames)
        assert telemetry.snapshot()["counters"]["telemetry.flushes"] >= 2

    def test_flush_counts_and_latency_sketch(self, tmp_path):
        telemetry = Telemetry()
        with obs.session(telemetry):
            sink = TelemetrySink(telemetry, tmp_path / "s.ndjson")
            sink.start()
            sink.flush()
            sink.flush()
            sink.stop()
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["telemetry.flushes"] >= 2
        assert snapshot["sketches"]["telemetry.flush_seconds"]["count"] >= 2

    def test_prometheus_text_shapes(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.add("trace.packets", 3)
            obs.set_gauge("graph.nodes", 5)
            obs.observe("corpus.sentence_length", 4)
            obs.observe("stage.seconds", 1.25)
        text = prometheus_text(telemetry.snapshot())
        assert "# TYPE repro_trace_packets counter" in text
        assert "# TYPE repro_graph_nodes gauge" in text
        assert "# TYPE repro_corpus_sentence_length histogram" in text
        assert 'repro_corpus_sentence_length_bucket{le="+Inf"} 1' in text
        assert "# TYPE repro_stage_seconds summary" in text
        assert 'repro_stage_seconds{quantile="0.5"} 1.25' in text
        assert "repro_stage_seconds_count 1" in text


class TestReadFrames:
    def test_partial_trailing_line_deferred(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        whole = json.dumps({"seq": 0}) + "\n"
        partial = json.dumps({"seq": 1})[:-4]
        path.write_text(whole + partial)
        frames, offset = read_frames(path)
        assert [f["seq"] for f in frames] == [0]
        # Writer finishes the line: the reader resumes mid-file.
        with path.open("a") as handle:
            handle.write(json.dumps({"seq": 1})[-4:] + "\n")
        more, _ = read_frames(path, offset)
        assert [f["seq"] for f in more] == [1]

    def test_malformed_line_skipped(self, tmp_path):
        path = tmp_path / "stream.ndjson"
        path.write_text('{"seq": 0}\nnot json\n{"seq": 2}\n')
        frames, _ = read_frames(path)
        assert [f["seq"] for f in frames] == [0, 2]

    def test_missing_file(self, tmp_path):
        frames, offset = read_frames(tmp_path / "absent.ndjson")
        assert frames == [] and offset == 0


class TestRenderFrame:
    def _frame(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.add("train.pairs", 500)
            obs.set_gauge("train.pairs_planned", 1000)
            obs.observe("train.epoch_seconds", 2.0)
            with obs.span("pipeline.fit"):
                with obs.span("train.epoch", epoch=1):
                    frame = build_frame(telemetry, seq=9)
        return frame

    def test_render_mentions_key_sections(self):
        frame = self._frame()
        text = render_frame(frame, rss_history=[1e6, 2e6, 3e6])
        assert "frame 9" in text
        assert "pipeline.fit" in text
        assert "train.epoch" in text
        assert "▶" in text  # open-span marker
        assert "50.0%" in text  # 500/1000 pairs
        assert "train.epoch_seconds" in text
        assert "p99" in text

    def test_render_rates_against_prev(self):
        frame = self._frame()
        prev = dict(frame)
        prev = json.loads(json.dumps(frame))
        prev["time"] = frame["time"] - 1.0
        prev["counters"] = {"train.pairs": 250}
        text = render_frame(frame, prev=prev)
        assert "/s" in text

    def test_render_worker_table(self):
        frame = self._frame()
        frame["workers"] = [
            {
                "pid": 4242,
                "rss": 1 << 20,
                "age": 0.5,
                "counters": {"train.pairs": 10},
            }
        ]
        text = render_frame(frame)
        assert "4242" in text


class TestWorkerVisibility:
    def test_publish_worker_feeds_frame(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            telemetry.publish_worker(
                {
                    "pid": 111,
                    "time": time.time(),
                    "rss": 2 << 20,
                    "metrics": {"counters": {"train.pairs": 12}},
                }
            )
            frame = build_frame(telemetry, seq=0)
        workers = {w["pid"]: w for w in frame["workers"]}
        assert workers[111]["counters"]["train.pairs"] == 12
        # Heartbeats contribute to the in-flight view only — the
        # aggregate registry stays untouched (end-of-task snapshots
        # are the single source of merged truth).
        assert frame["counters"].get("train.pairs", 0) == 0
        assert frame["inflight"]["counters"]["train.pairs"] == 12
        counters = telemetry.snapshot()["counters"]
        assert counters["telemetry.worker_snapshots"] == 1

    def test_stale_workers_dropped_from_frame(self):
        telemetry = Telemetry()
        telemetry.worker_stream_interval = 0.01
        with obs.session(telemetry):
            telemetry.publish_worker(
                {"pid": 5, "time": time.time() - 60.0, "rss": 1, "metrics": {}}
            )
            frame = build_frame(telemetry, seq=0)
        assert frame["workers"] == []

    def test_rss_peak_children_probe(self):
        from repro.obs.proc import rss_peak_children_bytes

        # In this test process there may be no children; the probe
        # must still return a clean int (possibly 0), never raise.
        value = rss_peak_children_bytes()
        assert isinstance(value, int)
        assert value >= 0


class TestBackendEquality:
    """Deterministic telemetry must agree across pool backends and
    flusher settings — streaming observes, it never changes totals."""

    def _fit(self, backend, stream_path=None):
        from repro.w2v.model import Word2Vec

        rng = np.random.default_rng(1)
        sentences = [
            rng.integers(0, 30, size=15).astype(np.int64) for _ in range(60)
        ]
        telemetry = Telemetry()
        with obs.session(telemetry):
            sink = None
            if stream_path is not None:
                sink = TelemetrySink(telemetry, stream_path, interval=0.01)
                sink.start()
            try:
                model = Word2Vec(
                    vector_size=8,
                    epochs=2,
                    seed=3,
                    workers=2,
                    pool_backend=backend,
                ).fit(sentences)
            finally:
                if sink is not None:
                    sink.stop()
        return model, telemetry.snapshot()

    def _deterministic_counters(self, snapshot):
        from repro.obs import METRICS

        return {
            name: value
            for name, value in snapshot["counters"].items()
            if METRICS[name].deterministic
        }

    def test_thread_vs_process_backend_counters(self):
        model_t, snap_t = self._fit("thread")
        model_p, snap_p = self._fit("process")
        assert self._deterministic_counters(
            snap_t
        ) == self._deterministic_counters(snap_p)
        # Sketch counts agree too: one epoch-latency sample per epoch.
        assert (
            snap_t["sketches"]["train.epoch_seconds"]["count"]
            == snap_p["sketches"]["train.epoch_seconds"]["count"]
        )

    def test_flusher_on_vs_off_counters(self, tmp_path):
        model_off, snap_off = self._fit("thread")
        model_on, snap_on = self._fit("thread", tmp_path / "live.ndjson")
        off = self._deterministic_counters(snap_off)
        on = self._deterministic_counters(snap_on)
        assert off == on
        assert np.array_equal(model_off.vectors, model_on.vectors)


class TestTopCli:
    def test_top_once_renders_latest_frame(self, tmp_path, capsys):
        from repro.cli import main

        stream = tmp_path / "live.ndjson"
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.add("trace.packets", 9)
            sink = TelemetrySink(telemetry, stream)
            sink.start()
            sink.stop()
        assert main(["top", "--stream", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "trace.packets" in out
        assert "frame" in out

    def test_top_once_missing_stream(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["top", "--stream", str(tmp_path / "absent.ndjson"), "--once"]
        )
        assert code == 2

    def test_runs_show_quantiles(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core import DarkVecConfig
        from repro.obs.registry import RunRegistry, record_run

        registry = RunRegistry(tmp_path / "registry")
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.observe("knn.search_seconds", 0.125)
            record = record_run(
                registry, "fit", DarkVecConfig(), wall_seconds=1.0
            )
        code = main(
            [
                "runs",
                "show",
                record["run_id"],
                "--quantiles",
                "--registry",
                str(tmp_path / "registry"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "knn.search_seconds" in out
        assert "p99" in out
