"""Tests for repro.trace.address."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.address import (
    AddressSpace,
    ip_to_str,
    str_to_ip,
    subnet16,
    subnet24,
)


class TestConversions:
    def test_roundtrip_known(self):
        assert ip_to_str(0x0A000001) == "10.0.0.1"
        assert str_to_ip("10.0.0.1") == 0x0A000001

    def test_malformed_raises(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                str_to_ip(bad)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            ip_to_str(2**32)

    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, ip):
        assert str_to_ip(ip_to_str(ip)) == ip

    def test_subnet_masks(self):
        ip = str_to_ip("192.168.13.77")
        assert ip_to_str(subnet24(ip)) == "192.168.13.0"
        assert ip_to_str(subnet16(ip)) == "192.168.0.0"


class TestAddressSpace:
    def test_subnet24_same_prefix(self):
        ips = AddressSpace(0).allocate_subnet24(50)
        assert len(np.unique(ips)) == 50
        assert len({subnet24(ip) for ip in ips}) == 1

    def test_subnet24_limit(self):
        with pytest.raises(ValueError):
            AddressSpace(0).allocate_subnet24(255)

    def test_subnet16_same_prefix(self):
        ips = AddressSpace(0).allocate_subnet16(300)
        assert len(np.unique(ips)) == 300
        assert len({subnet16(ip) for ip in ips}) == 1

    def test_multi_subnet24_spread(self):
        ips = AddressSpace(0).allocate_multi_subnet24(61, 23)
        assert len(ips) == 61
        assert len({subnet24(ip) for ip in ips}) == 23

    def test_scattered_unique_and_spread(self):
        ips = AddressSpace(0).allocate_scattered(500)
        assert len(np.unique(ips)) == 500
        # Scattered addresses should nearly all land in distinct /24s.
        assert len({subnet24(ip) for ip in ips}) > 480

    def test_allocations_disjoint(self):
        space = AddressSpace(0)
        a = set(space.allocate_subnet24(100).tolist())
        b = set(space.allocate_subnet16(1000).tolist())
        c = set(space.allocate_scattered(500).tolist())
        assert not (a & b) and not (a & c) and not (b & c)

    def test_deterministic_for_seed(self):
        a = AddressSpace(3).allocate_scattered(20)
        b = AddressSpace(3).allocate_scattered(20)
        assert np.array_equal(a, b)

    def test_no_forbidden_first_octets(self):
        ips = AddressSpace(1).allocate_scattered(300)
        firsts = {int(ip) >> 24 for ip in ips}
        assert not firsts & {0, 10, 127}
        assert all(f < 224 for f in firsts)

    def test_negative_scatter_raises(self):
        with pytest.raises(ValueError):
            AddressSpace(0).allocate_scattered(-1)
