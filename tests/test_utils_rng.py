"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import child_rng, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestChildRng:
    def test_deterministic_given_parent_state(self):
        a = child_rng(make_rng(5), "actor-a").random(4)
        b = child_rng(make_rng(5), "actor-a").random(4)
        assert np.array_equal(a, b)

    def test_different_keys_independent(self):
        parent = make_rng(5)
        a = child_rng(parent, "x")
        parent2 = make_rng(5)
        b = child_rng(parent2, "y")
        assert not np.array_equal(a.random(8), b.random(8))

    def test_integer_keys_accepted(self):
        stream = child_rng(make_rng(0), 3, 4).random(3)
        assert len(stream) == 3

    def test_consuming_parent_changes_children(self):
        parent = make_rng(5)
        first = child_rng(parent, "k").random(3)
        second = child_rng(parent, "k").random(3)
        assert not np.array_equal(first, second)
