"""Million-sender scale-out: mmap artifacts, sharded stages, process
pool, and the IVF-PQ backend.

The scale features are only acceptable if they are invisible to the
results: the sharded corpus/vocab path and the raw mmap container must
be bit-identical to the unsharded npz path, the process pool at
``workers=1`` must match the thread pool exactly, and the IVF-PQ
backend must hold recall while its mis-tunings stay visible to the
health monitors.  These tests pin each of those contracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.ann import AnnSpec, IVFPQIndex, build_index
from repro.ann.exact import exact_topk, score_chunk_rows
from repro.ann.ivfpq import default_pq_m
from repro.core import DarkVec, DarkVecConfig
from repro.core.sharding import (
    build_corpus_sharded,
    build_vocab_streaming,
    plan_window_shards,
    shard_ranges,
)
from repro.corpus.builder import CorpusBuilder
from repro.corpus.windows import window_indices
from repro.io.artifacts import (
    CORPUS_CODEC,
    CORPUS_RAW_CODEC,
    IVFPQ_INDEX_CODEC,
    TRACE_CODEC,
    TRACE_RAW_CODEC,
)
from repro.io.rawio import read_raw, write_raw
from repro.obs.health import HealthPolicy, classify
from repro.obs.metrics import METRICS
from repro.obs.recorder import Telemetry
from repro.parallel.pool import (
    POOL_BACKENDS,
    WorkerPool,
    default_backend,
    fork_available,
    pool_backend,
)
from repro.parallel.shm import SharedArray
from repro.services.domain import DomainServiceMap
from repro.store.cache import ArtifactStore
from repro.w2v.mathutils import unit_rows
from repro.w2v.model import Word2Vec
from repro.w2v.vocab import Vocabulary

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def clustered_units(
    n: int = 2000, dim: int = 32, n_clusters: int = 20, seed: int = 0
) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, dim))
    assign = rng.integers(0, n_clusters, size=n)
    points = centers[assign] + 0.1 * rng.normal(size=(n, dim))
    return unit_rows(points)


# ---------------------------------------------------------------------------
# Raw mmap container
# ---------------------------------------------------------------------------


class TestRawContainer:
    def test_round_trip_and_alignment(self, tmp_path):
        payload = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.linspace(0, 1, 13).reshape(13, 1),
            "c": np.array([], dtype=np.float32),
            "flag": np.array([True, False]),
        }
        path = tmp_path / "arrays.raw"
        write_raw(path, payload)
        back = read_raw(path)
        assert set(back) == set(payload)
        for name, array in payload.items():
            np.testing.assert_array_equal(back[name], array)
            assert back[name].dtype == array.dtype

    def test_mmap_views_are_memmaps(self, tmp_path):
        path = tmp_path / "arrays.raw"
        write_raw(path, {"x": np.arange(100, dtype=np.float64)})
        views = read_raw(path, mmap=True)
        assert isinstance(views["x"], np.memmap)
        np.testing.assert_array_equal(np.asarray(views["x"]), np.arange(100))

    def test_rejects_object_dtype(self, tmp_path):
        with pytest.raises(ValueError):
            write_raw(tmp_path / "bad.raw", {"x": np.array([object()])})

    def test_raw_codec_hash_matches_npz_codec(self, small_trace):
        # Stage fingerprints hash the payload, not the container, so
        # flipping --mmap must not look like different content.
        assert TRACE_RAW_CODEC.content_hash(
            small_trace
        ) == TRACE_CODEC.content_hash(small_trace)

    def test_store_round_trip_and_tamper_detection(self, tmp_path, small_trace):
        store = ArtifactStore(tmp_path)
        store.save("ingest", "f" * 12, TRACE_RAW_CODEC, small_trace)
        loaded = store.load("ingest", "f" * 12, TRACE_RAW_CODEC)
        assert loaded is not None
        np.testing.assert_array_equal(loaded[0].senders, small_trace.senders)
        # Flip one payload byte: sha256 verification must fail closed.
        (payload_path,) = tmp_path.glob("objects/*.raw")
        blob = bytearray(payload_path.read_bytes())
        blob[-1] ^= 0xFF
        payload_path.write_bytes(bytes(blob))
        assert store.load("ingest", "f" * 12, TRACE_RAW_CODEC) is None


# ---------------------------------------------------------------------------
# Sharded streaming stages
# ---------------------------------------------------------------------------


class TestSharding:
    def test_shard_ranges_cover(self):
        assert shard_ranges(10, 4) == [(0, 4), (4, 8), (8, 10)]
        assert shard_ranges(0, 4) == []
        with pytest.raises(ValueError):
            shard_ranges(10, 0)

    def test_plan_window_shards_budget(self, small_trace):
        windows = window_indices(
            small_trace.times, small_trace.start_time, 1800.0
        )
        ranges = plan_window_shards(windows, small_trace.senders, 200)
        # Ranges partition the window span in order, no gaps.
        assert ranges[0][0] == int(windows[0])
        assert ranges[-1][1] == int(windows[-1]) + 1
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        # Each multi-window range respects the distinct-sender budget.
        for w_lo, w_hi in ranges:
            if w_hi - w_lo <= 1:
                continue  # single busy window may exceed the budget
            mask = (windows >= w_lo) & (windows < w_hi)
            assert len(np.unique(small_trace.senders[mask])) <= 200

    def test_sharded_corpus_bit_identical(self, small_trace):
        service_map = DomainServiceMap()
        full = CorpusBuilder(service_map, delta_t=1800.0).build(small_trace)
        for shard_size in (1, 37, 500, 10**9):
            sharded = build_corpus_sharded(
                small_trace,
                service_map,
                delta_t=1800.0,
                shard_size=shard_size,
                t_origin=small_trace.start_time,
            )
            assert CORPUS_CODEC.content_hash(
                sharded
            ) == CORPUS_CODEC.content_hash(full)
            assert CORPUS_RAW_CODEC.content_hash(
                sharded
            ) == CORPUS_CODEC.content_hash(full)

    def test_streaming_vocab_equals_global(self):
        rng = np.random.default_rng(3)
        arrays = [
            rng.integers(0, 50, size=rng.integers(0, 30)) for _ in range(100)
        ]
        full = Vocabulary.build(arrays, min_count=3)
        for chunk_tokens in (1, 17, 1000, 10**9):
            streamed = build_vocab_streaming(
                arrays, chunk_tokens=chunk_tokens, min_count=3
            )
            np.testing.assert_array_equal(streamed.tokens, full.tokens)
            np.testing.assert_array_equal(streamed.counts, full.counts)

    def test_sharded_fit_bit_identical(self, small_trace):
        base = DarkVec(DarkVecConfig(epochs=2, seed=3)).fit(small_trace)
        sharded = DarkVec(
            DarkVecConfig(epochs=2, seed=3, shard_size=64)
        ).fit(small_trace)
        np.testing.assert_array_equal(
            base.embedding.tokens, sharded.embedding.tokens
        )
        np.testing.assert_array_equal(
            base.embedding.vectors, sharded.embedding.vectors
        )

    def test_shard_size_changes_fingerprints(self):
        a = DarkVecConfig(shard_size=0).stage_fields("corpus")
        b = DarkVecConfig(shard_size=64).stage_fields("corpus")
        assert a != b


# ---------------------------------------------------------------------------
# Process-backend worker pool
# ---------------------------------------------------------------------------


class TestProcessPool:
    def test_backend_validation(self):
        assert default_backend() in POOL_BACKENDS
        with pytest.raises(ValueError):
            WorkerPool(2, backend="fibers")
        with pytest.raises(ValueError):
            with pool_backend("fibers"):
                pass

    def test_pool_backend_scope_swaps_default(self):
        before = default_backend()
        with pool_backend("process" if fork_available() else "thread"):
            assert default_backend() in POOL_BACKENDS
        assert default_backend() == before

    @needs_fork
    def test_process_map_matches_thread_map(self):
        items = list(range(23))
        with WorkerPool(4, backend="thread") as pool:
            thread_result = pool.map(lambda x: x * x, items)
        with WorkerPool(4, backend="process") as pool:
            process_result = pool.map(lambda x: x * x, items)
        assert process_result == thread_result

    @needs_fork
    def test_process_map_merges_metric_snapshots(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with WorkerPool(2, backend="process") as pool:
                pool.map(lambda x: obs.add("knn.queries", x), [1, 2, 3, 4])
        assert telemetry.registry.counters["knn.queries"] == 10

    @needs_fork
    def test_shared_array_propagates_across_fork(self):
        import multiprocessing

        shared = SharedArray((8,), np.float64)
        try:
            shared.array[:] = 0.0
            target = shared.array

            def bump(i):
                target[i] = i + 1.0
                return i

            ctx = multiprocessing.get_context("fork")
            with WorkerPool(2, backend="process") as pool:
                pool.map(bump, list(range(8)))
            np.testing.assert_array_equal(
                shared.array, np.arange(1.0, 9.0)
            )
        finally:
            shared.release()

    def test_invalid_model_backend_rejected(self):
        with pytest.raises(ValueError):
            Word2Vec(pool_backend="fibers")
        with pytest.raises(ValueError):
            DarkVecConfig(pool_backend="fibers")


class TestProcessTraining:
    @needs_fork
    def test_workers1_process_bit_identical_to_thread(self, small_trace):
        thread = DarkVec(DarkVecConfig(epochs=2, seed=3, workers=1)).fit(
            small_trace
        )
        process = DarkVec(
            DarkVecConfig(
                epochs=2, seed=3, workers=1, pool_backend="process"
            )
        ).fit(small_trace)
        np.testing.assert_array_equal(
            thread.embedding.vectors, process.embedding.vectors
        )

    @needs_fork
    def test_process_training_metrics_match_thread(self, small_trace):
        def metrics_with(backend):
            telemetry = Telemetry()
            with obs.session(telemetry):
                DarkVec(
                    DarkVecConfig(
                        epochs=2, seed=3, workers=2, pool_backend=backend
                    )
                ).fit(small_trace)
            return telemetry.registry.counters

        thread = metrics_with("thread")
        process = metrics_with("process")
        # Hogwild float sums differ across schedules, but the
        # deterministic counters (work accounting) must agree exactly.
        for name, value in thread.items():
            if METRICS[name].deterministic:
                assert process[name] == value, name

    @needs_fork
    def test_process_fit_learns(self, small_bundle):
        config = DarkVecConfig(
            epochs=6, seed=3, workers=2, pool_backend="process"
        )
        darkvec = DarkVec(config).fit(small_bundle.trace)
        report = darkvec.evaluate(small_bundle.truth, eval_days=None)
        baseline = DarkVec(DarkVecConfig(epochs=6, seed=3)).fit(
            small_bundle.trace
        ).evaluate(small_bundle.truth, eval_days=None)
        # Hogwild schedules differ across backends, so only degradation
        # is a bug; the process run may legitimately score higher.
        assert report.accuracy > baseline.accuracy - 0.1


# ---------------------------------------------------------------------------
# Exact-backend chunk budget
# ---------------------------------------------------------------------------


class TestChunkBudget:
    def test_single_arg_values_unchanged(self):
        assert score_chunk_rows(100) == 1024
        assert score_chunk_rows(1 << 17) == 64
        assert score_chunk_rows(1 << 16) == 128
        assert score_chunk_rows(1 << 20) == 16
        assert score_chunk_rows(1 << 30) == 16

    def test_concurrency_divides_budget(self):
        n = 1 << 16
        assert score_chunk_rows(n, concurrency=2) == 64
        assert score_chunk_rows(n, concurrency=4) == 32
        # The floor holds even under huge fan-out.
        assert score_chunk_rows(n, concurrency=1024) == 16

    def test_exact_topk_identical_across_workers(self):
        units = clustered_units(n=600, dim=16)
        rows = np.arange(200)
        nb1, s1 = exact_topk(units, rows, 7, workers=1)
        nb4, s4 = exact_topk(units, rows, 7, workers=4)
        np.testing.assert_array_equal(nb1, nb4)
        np.testing.assert_array_equal(s1, s4)


# ---------------------------------------------------------------------------
# IVF-PQ backend
# ---------------------------------------------------------------------------


class TestIVFPQ:
    def test_build_shapes_and_auto_m(self):
        units = clustered_units()
        index = build_index(units, AnnSpec(backend="ivfpq"))
        assert isinstance(index, IVFPQIndex)
        assert index.m == default_pq_m(units.shape[1])
        assert index.codes.shape == (len(units), index.m)
        assert index.codes.dtype == np.uint8
        assert index.codebooks.shape[1] == 256  # 2**8 codewords

    def test_recall_at_operating_point(self):
        units = clustered_units()
        spec = AnnSpec(backend="ivfpq", nprobe=16, recall_sample=0, seed=1)
        index = build_index(units, spec)
        rows = np.arange(300)
        nb, _ = index.search(rows, 7)
        exact_nb, _ = exact_topk(units, rows, 7)
        overlap = sum(
            len(np.intersect1d(nb[i], exact_nb[i])) for i in range(len(rows))
        )
        assert overlap / (len(rows) * 7) >= 0.9

    def test_returned_similarities_are_exact(self):
        units = clustered_units(n=800)
        index = build_index(units, AnnSpec(backend="ivfpq", nprobe=8))
        rows = np.arange(50)
        nb, sims = index.search(rows, 5)
        expected = np.einsum(
            "qkd,qkd->qk", units[rows][:, None, :].repeat(5, axis=1), units[nb]
        )
        np.testing.assert_allclose(sims, expected, rtol=0, atol=1e-12)

    def test_search_identical_across_workers(self):
        units = clustered_units()
        index = build_index(units, AnnSpec(backend="ivfpq", nprobe=8))
        rows = np.arange(500)
        nb1, s1 = index.search(rows, 7, workers=1)
        nb3, s3 = index.search(rows, 7, workers=3)
        np.testing.assert_array_equal(nb1, nb3)
        np.testing.assert_array_equal(s1, s3)

    def test_self_audit_records_recall(self):
        units = clustered_units()
        index = build_index(
            units, AnnSpec(backend="ivfpq", nprobe=16, recall_sample=64)
        )
        index.search(np.arange(200), 7)
        assert index.last_recall is not None
        assert 0.0 <= index.last_recall <= 1.0

    def test_mistuned_quantizer_trips_health_monitor(self):
        # Near-random codes (1 bit) + a single probed list: recall
        # collapses, and the audited value must cross the policy's
        # warn threshold so the ann_recall monitor says so.
        units = clustered_units()
        spec = AnnSpec(
            backend="ivfpq", nprobe=1, pq_bits=1, recall_sample=128, seed=1
        )
        index = build_index(units, spec)
        index.search(np.arange(400), 7)
        policy = HealthPolicy()
        verdict = classify(
            "ann_recall",
            index.last_recall,
            policy.recall_warn,
            policy.recall_fail,
            direction="low",
        )
        assert verdict.verdict in ("warn", "fail")

    def test_updated_reencodes_and_preserves_search(self):
        units = clustered_units()
        spec = AnnSpec(backend="ivfpq", nprobe=16, recall_sample=0)
        index = build_index(units, spec)
        # Perturb vectors (a warm refit) and drop/keep/add rows.
        rng = np.random.default_rng(9)
        moved = unit_rows(units + 0.01 * rng.normal(size=units.shape))
        prior_rows = np.arange(len(units))
        evolved = index.updated(moved, prior_rows)
        assert isinstance(evolved, IVFPQIndex)
        assert evolved.codes.shape == index.codes.shape
        # Codes were re-encoded against the moved vectors, so ADC
        # search still tracks the exact result.
        rows = np.arange(200)
        nb, _ = evolved.search(rows, 7)
        exact_nb, _ = exact_topk(moved, rows, 7)
        overlap = sum(
            len(np.intersect1d(nb[i], exact_nb[i])) for i in range(len(rows))
        )
        assert overlap / (len(rows) * 7) >= 0.9

    def test_updated_retrains_on_imbalance(self):
        units = clustered_units(n=500)
        index = build_index(units, AnnSpec(backend="ivfpq", recall_sample=0))
        telemetry = Telemetry()
        with obs.session(telemetry):
            index.updated(units, np.arange(len(units)), retrain_threshold=0.0)
        assert telemetry.registry.counters.get("ann.retrains", 0) == 1

    def test_store_round_trip(self, tmp_path):
        units = clustered_units(n=600)
        spec = AnnSpec(
            backend="ivfpq", nprobe=8, pq_m=4, pq_bits=6, recall_sample=0
        )
        index = build_index(units, spec)
        store = ArtifactStore(tmp_path)
        store.save("ann-index", "a" * 12, IVFPQ_INDEX_CODEC, index)
        loaded = store.load("ann-index", "a" * 12, IVFPQ_INDEX_CODEC)
        assert loaded is not None
        back = loaded[0]
        assert isinstance(back, IVFPQIndex)
        assert back.spec == spec
        rows = np.arange(100)
        nb_a, s_a = index.search(rows, 5)
        nb_b, s_b = back.search(rows, 5)
        np.testing.assert_array_equal(nb_a, nb_b)
        np.testing.assert_array_equal(s_a, s_b)

    def test_pipeline_end_to_end_with_ivfpq(self, small_bundle):
        config = DarkVecConfig(
            epochs=4, seed=3, ann_backend="ivfpq", ann_nprobe=16
        )
        darkvec = DarkVec(config).fit(small_bundle.trace)
        report = darkvec.evaluate(small_bundle.truth, eval_days=None)
        assert report.accuracy >= 0.0  # runs end to end
        result = darkvec.cluster()
        assert result.n_clusters > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AnnSpec(backend="ivfpq", pq_bits=0)
        with pytest.raises(ValueError):
            AnnSpec(backend="ivfpq", pq_bits=9)
        with pytest.raises(ValueError):
            AnnSpec(backend="ivfpq", pq_m=-1)
        with pytest.raises(ValueError):
            DarkVecConfig(ann_pq_bits=12)


# ---------------------------------------------------------------------------
# RSS gauge + CLI flags
# ---------------------------------------------------------------------------


class TestRssGauge:
    def test_sample_rss_peak_sets_gauge(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.sample_rss_peak()
        value = telemetry.registry.gauges.get("proc.rss_peak")
        assert value is not None and value > 0

    def test_rss_readers_positive(self):
        assert obs.rss_bytes() > 0
        assert obs.rss_peak_bytes() >= obs.rss_bytes() // 2


class TestCliFlags:
    def test_run_parser_accepts_scale_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run",
                "--trace", "t.csv",
                "--cache-dir", "cache",
                "--shard-size", "50000",
                "--mmap",
                "--pool-backend", "process",
                "--ann-backend", "ivfpq",
                "--ann-pq-m", "10",
                "--ann-pq-bits", "6",
            ]
        )
        assert args.shard_size == 50000
        assert args.use_mmap is True
        assert args.pool_backend == "process"
        assert args.ann_backend == "ivfpq"
        assert args.ann_pq_m == 10
        assert args.ann_pq_bits == 6

    def test_no_mmap_negation(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--trace", "t.csv", "--cache-dir", "c", "--no-mmap"]
        )
        assert args.use_mmap is False

    def test_update_parser_accepts_overrides(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "update",
                "--trace", "d.csv",
                "--cache-dir", "c",
                "--pool-backend", "process",
                "--shard-size", "1000",
            ]
        )
        assert args.pool_backend == "process"
        assert args.shard_size == 1000

    def test_registry_fingerprint_covers_scale_knobs(self, tmp_path, small_trace):
        from repro.obs.registry import config_fingerprint

        base = DarkVecConfig(epochs=1, seed=3)
        assert config_fingerprint(base) != config_fingerprint(
            DarkVecConfig(epochs=1, seed=3, shard_size=64)
        )
        assert config_fingerprint(base) != config_fingerprint(
            DarkVecConfig(epochs=1, seed=3, pool_backend="process")
        )
        assert config_fingerprint(base) != config_fingerprint(
            DarkVecConfig(epochs=1, seed=3, use_mmap=True)
        )
        assert config_fingerprint(base) != config_fingerprint(
            DarkVecConfig(epochs=1, seed=3, ann_pq_m=4)
        )
        config = DarkVecConfig(
            epochs=1, seed=3, shard_size=64, use_mmap=True, cache_dir=tmp_path
        )
        darkvec = DarkVec(config).fit(small_trace)
        record = darkvec.registry.last()
        assert record["config_fingerprint"] == config_fingerprint(config)
