"""Documentation-drift checks for the observability metric registry.

The README "Observability" section carries a metric table; these tests
pin it to :data:`repro.obs.metrics.METRICS` in both directions, and
check that every declared metric is actually emitted somewhere in the
source tree — so code, registry and documentation cannot drift apart.
"""

import re
from pathlib import Path

from repro.obs.metrics import METRICS

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
SRC = REPO_ROOT / "src"


def _readme_metric_rows() -> dict[str, tuple[str, str]]:
    """Metric name -> (kind, deterministic cell) from the README table."""
    rows = {}
    pattern = re.compile(
        r"^\|\s*`(?P<name>[a-z_.]+)`\s*\|\s*(?P<kind>\w+)\s*\|"
        r"\s*(?P<det>yes|no)\s*\|"
    )
    for line in README.read_text().splitlines():
        match = pattern.match(line)
        if match:
            rows[match["name"]] = (match["kind"], match["det"])
    return rows


class TestReadmeMetricTable:
    def test_table_parsed(self):
        assert len(_readme_metric_rows()) > 0

    def test_every_metric_documented(self):
        documented = _readme_metric_rows()
        missing = sorted(set(METRICS) - set(documented))
        assert not missing, f"metrics missing from README table: {missing}"

    def test_no_stale_documentation(self):
        documented = _readme_metric_rows()
        stale = sorted(set(documented) - set(METRICS))
        assert not stale, f"README documents unknown metrics: {stale}"

    def test_kind_and_determinism_match(self):
        documented = _readme_metric_rows()
        for name, spec in METRICS.items():
            kind, det = documented[name]
            assert kind == spec.kind, f"{name}: README kind {kind!r}"
            expected = "yes" if spec.deterministic else "no"
            assert det == expected, f"{name}: README deterministic {det!r}"


class TestMetricsEmitted:
    def test_every_metric_referenced_in_source(self):
        emitting = ""
        for path in SRC.rglob("*.py"):
            if path.name == "metrics.py" and "obs" in path.parts:
                continue  # exclude only the registry itself
            emitting += path.read_text()
        unused = sorted(
            name
            for name in METRICS
            if f'"{name}"' not in emitting and f"'{name}'" not in emitting
        )
        assert not unused, f"declared but never emitted: {unused}"
