"""Tests for repro.w2v.keyedvectors."""

import numpy as np
import pytest

from repro.w2v.keyedvectors import KeyedVectors


@pytest.fixture()
def keyed():
    tokens = np.array([10, 20, 30, 40], dtype=np.int64)
    vectors = np.array(
        [[1.0, 0.0], [0.9, 0.1], [0.0, 1.0], [-1.0, 0.0]], dtype=np.float32
    )
    return KeyedVectors(tokens=tokens, vectors=vectors)


class TestLookup:
    def test_contains(self, keyed):
        assert 10 in keyed
        assert 99 not in keyed

    def test_vector(self, keyed):
        assert np.allclose(keyed.vector(30), [0.0, 1.0])
        with pytest.raises(KeyError):
            keyed.vector(99)

    def test_rows_of_mixed(self, keyed):
        rows = keyed.rows_of(np.array([20, 99, 40]))
        assert rows.tolist() == [1, -1, 3]

    def test_unsorted_tokens_rejected(self):
        with pytest.raises(ValueError):
            KeyedVectors(tokens=np.array([2, 1]), vectors=np.zeros((2, 2)))

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            KeyedVectors(tokens=np.array([1]), vectors=np.zeros((2, 2)))


class TestSimilarity:
    def test_similarity_values(self, keyed):
        assert keyed.similarity(10, 40) == pytest.approx(-1.0)
        assert keyed.similarity(10, 30) == pytest.approx(0.0, abs=1e-6)
        assert keyed.similarity(10, 20) > 0.9

    def test_most_similar_excludes_self(self, keyed):
        neighbors = keyed.most_similar(10, k=2)
        tokens = [t for t, _ in neighbors]
        assert 10 not in tokens
        assert tokens[0] == 20  # nearest

    def test_most_similar_order(self, keyed):
        neighbors = keyed.most_similar(10, k=3)
        sims = [s for _, s in neighbors]
        assert sims == sorted(sims, reverse=True)

    def test_unknown_token_raises(self, keyed):
        with pytest.raises(KeyError):
            keyed.most_similar(99)


class TestPersistence:
    def test_save_load_roundtrip(self, keyed, tmp_path):
        path = tmp_path / "vectors.npz"
        keyed.save(path)
        loaded = KeyedVectors.load(path)
        assert np.array_equal(loaded.tokens, keyed.tokens)
        assert np.allclose(loaded.vectors, keyed.vectors)

    def test_subset(self, keyed):
        sub = keyed.subset(np.array([40, 10, 99]))
        assert sub.tokens.tolist() == [10, 40]
        assert len(sub) == 2
