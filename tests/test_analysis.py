"""Tests for repro.analysis (stats, heatmap, patterns)."""

import numpy as np
import pytest

from repro.analysis.heatmap import service_class_heatmap
from repro.analysis.patterns import activity_matrix, arrival_order
from repro.analysis.stats import (
    cumulative_senders,
    dataset_stats,
    packets_per_sender_ecdf,
    port_rank_ecdf,
    top_ports,
)
from repro.labels.groundtruth import GroundTruth
from repro.trace.packet import SECONDS_PER_DAY, TCP


class TestDatasetStats:
    def test_tiny_trace(self, tiny_trace):
        stats = dataset_stats(tiny_trace)
        assert stats.n_sources == 3
        assert stats.n_packets == 10
        assert stats.n_ports == 5
        port, share, sources = stats.top_tcp_ports[0]
        assert port == 23
        assert share == pytest.approx(50.0)
        assert sources == 3

    def test_small_trace_consistency(self, small_trace):
        stats = dataset_stats(small_trace)
        assert stats.n_sources == len(small_trace.observed_senders())
        assert stats.n_packets == small_trace.n_packets
        shares = [s for _, s, _ in stats.top_tcp_ports]
        assert shares == sorted(shares, reverse=True)

    def test_telnet_is_heavy(self, small_trace):
        stats = dataset_stats(small_trace)
        top_port_numbers = [p for p, _, _ in stats.top_tcp_ports]
        assert 23 in top_port_numbers


class TestEcdfs:
    def test_port_rank_ecdf_monotone(self, small_trace):
        ranks, share = port_rank_ecdf(small_trace)
        assert len(ranks) == len(share)
        assert np.all(np.diff(share) >= 0)
        assert share[-1] == pytest.approx(1.0)

    def test_top_ports_sorted(self, small_trace):
        ranked = top_ports(small_trace, n=14)
        counts = [c for _, c in ranked]
        assert counts == sorted(counts, reverse=True)
        assert len(ranked) == 14

    def test_packets_per_sender_ecdf(self, small_trace):
        e = packets_per_sender_ecdf(small_trace)
        # A visible share of senders are one-shot backscatter (the
        # session fixture uses a reduced backscatter population).
        assert e.at(1) > 0.05
        assert e.at(1e9) == 1.0

    def test_cumulative_senders_monotone(self, small_trace):
        days, unfiltered, filtered = cumulative_senders(small_trace)
        assert len(days) == int(np.ceil(small_trace.duration_days))
        assert np.all(np.diff(unfiltered) >= 0)
        assert np.all(np.diff(filtered) >= 0)
        assert np.all(filtered <= unfiltered)


class TestHeatmap:
    def test_columns_normalised(self, small_bundle):
        matrix, services, classes = service_class_heatmap(
            small_bundle.trace, small_bundle.truth
        )
        assert matrix.shape == (len(services), len(classes))
        assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_engin_umich_dns_dominant(self, small_bundle):
        matrix, services, classes = service_class_heatmap(
            small_bundle.trace, small_bundle.truth
        )
        dns_row = services.index("DNS")
        engin_col = classes.index("Engin-umich")
        assert matrix[dns_row, engin_col] == pytest.approx(1.0)

    def test_mirai_telnet_dominant(self, small_bundle):
        matrix, services, classes = service_class_heatmap(
            small_bundle.trace, small_bundle.truth
        )
        telnet_row = services.index("Telnet")
        mirai_col = classes.index("Mirai-like")
        assert matrix[telnet_row, mirai_col] > 0.7

    def test_sender_restriction(self, small_bundle):
        active = small_bundle.trace.active_senders(10)
        matrix, _, _ = service_class_heatmap(
            small_bundle.trace, small_bundle.truth, eval_senders=active
        )
        assert np.isfinite(matrix).all()


class TestPatterns:
    def test_activity_matrix_shape(self, small_trace):
        senders = small_trace.observed_senders()[:20]
        matrix = activity_matrix(small_trace, senders, bin_seconds=SECONDS_PER_DAY)
        assert matrix.shape[0] == 20
        assert matrix.shape[1] == int(np.ceil(small_trace.duration_days))

    def test_every_observed_sender_has_activity(self, small_trace):
        senders = small_trace.observed_senders()[:50]
        matrix = activity_matrix(small_trace, senders, bin_seconds=SECONDS_PER_DAY)
        assert matrix.any(axis=1).all()

    def test_order_permutes_rows(self, small_trace):
        senders = small_trace.observed_senders()[:10]
        base = activity_matrix(small_trace, senders, bin_seconds=SECONDS_PER_DAY)
        flipped = activity_matrix(
            small_trace,
            senders,
            bin_seconds=SECONDS_PER_DAY,
            order=np.arange(10)[::-1],
        )
        assert np.array_equal(base[::-1], flipped)

    def test_time_range_restriction(self, small_trace):
        senders = small_trace.observed_senders()[:10]
        matrix = activity_matrix(
            small_trace,
            senders,
            bin_seconds=3600.0,
            t_start=small_trace.start_time,
            t_end=small_trace.start_time + SECONDS_PER_DAY,
        )
        assert matrix.shape[1] == 24

    def test_arrival_order_sorts_by_first_seen(self, tiny_trace):
        order = arrival_order(tiny_trace, np.array([2, 1, 0]))
        # Sender 0 appears at t=0, sender 1 at t=5, sender 2 at t=8.
        assert np.array_equal(order, np.array([2, 1, 0]))

    def test_invalid_bin(self, small_trace):
        with pytest.raises(ValueError):
            activity_matrix(small_trace, np.array([0]), bin_seconds=0.0)


class TestRampVisible:
    def test_adb_worm_ramp(self, small_bundle):
        """The unknown4 raster shows growth over time (Figure 15)."""
        trace = small_bundle.trace
        senders = small_bundle.sender_indices_of("unknown4_adb")
        matrix = activity_matrix(trace, senders, bin_seconds=SECONDS_PER_DAY)
        per_day = matrix.sum(axis=0)
        assert per_day[-1] > per_day[0]
