"""Tests for repro.knn.classifier and repro.knn.loo."""

import numpy as np
import pytest

from repro.knn.classifier import CosineKnn, knn_search, majority_vote
from repro.knn.loo import leave_one_out_predictions
from repro.w2v.mathutils import unit_rows


@pytest.fixture()
def two_clusters():
    """20 points: 10 near (1,0), 10 near (0,1)."""
    rng = np.random.default_rng(0)
    a = np.array([1.0, 0.0]) + rng.normal(0, 0.05, size=(10, 2))
    b = np.array([0.0, 1.0]) + rng.normal(0, 0.05, size=(10, 2))
    vectors = np.vstack([a, b])
    labels = np.array(["A"] * 10 + ["B"] * 10, dtype=object)
    return vectors, labels


class TestKnnSearch:
    def test_neighbors_sorted_by_similarity(self, two_clusters):
        vectors, _ = two_clusters
        units = unit_rows(vectors)
        _, sims = knn_search(units, np.array([0]), k=5)
        assert np.all(np.diff(sims[0]) <= 0)

    def test_self_excluded(self, two_clusters):
        vectors, _ = two_clusters
        units = unit_rows(vectors)
        neighbors, _ = knn_search(units, np.arange(20), k=3)
        for i, row in enumerate(neighbors):
            assert i not in row

    def test_self_included_when_asked(self, two_clusters):
        vectors, _ = two_clusters
        units = unit_rows(vectors)
        neighbors, _ = knn_search(units, np.arange(20), k=1, exclude_self=False)
        assert np.array_equal(neighbors[:, 0], np.arange(20))

    def test_neighbors_from_same_cluster(self, two_clusters):
        vectors, _ = two_clusters
        units = unit_rows(vectors)
        neighbors, _ = knn_search(units, np.arange(10), k=5)
        assert (neighbors < 10).all()

    def test_k_too_large_raises(self, two_clusters):
        vectors, _ = two_clusters
        with pytest.raises(ValueError):
            knn_search(unit_rows(vectors), np.array([0]), k=20)

    def test_invalid_k(self, two_clusters):
        vectors, _ = two_clusters
        with pytest.raises(ValueError):
            knn_search(unit_rows(vectors), np.array([0]), k=0)


class TestMajorityVote:
    def test_simple_majority(self):
        labels = np.array(["A", "A", "B"], dtype=object)
        neighbors = np.array([[0, 1, 2]])
        sims = np.array([[0.9, 0.8, 0.99]])
        assert majority_vote(labels, neighbors, sims)[0] == "A"

    def test_tie_breaks_on_similarity(self):
        labels = np.array(["A", "B"], dtype=object)
        neighbors = np.array([[0, 1]])
        sims = np.array([[0.5, 0.9]])
        assert majority_vote(labels, neighbors, sims)[0] == "B"

    def test_deterministic_lexicographic_fallback(self):
        labels = np.array(["B", "A"], dtype=object)
        neighbors = np.array([[0, 1]])
        sims = np.array([[0.5, 0.5]])
        assert majority_vote(labels, neighbors, sims)[0] == "B"  # max lex


class TestCosineKnn:
    def test_predicts_cluster_labels(self, two_clusters):
        vectors, labels = two_clusters
        classifier = CosineKnn(vectors, labels, k=3)
        predictions = classifier.predict_rows(np.arange(20), exclude_self=True)
        assert (predictions == labels).all()

    def test_neighbor_distances_small_within_cluster(self, two_clusters):
        vectors, labels = two_clusters
        classifier = CosineKnn(vectors, labels, k=3)
        distances = classifier.neighbor_distances(np.arange(20), exclude_self=True)
        assert distances.max() < 0.05

    def test_misaligned_inputs(self, two_clusters):
        vectors, labels = two_clusters
        with pytest.raises(ValueError):
            CosineKnn(vectors, labels[:-1])

    def test_memo_cache_safe_under_concurrent_queries(self, two_clusters):
        """Threads querying *different* rows never cross cached results.

        The serving read path runs one classifier under many handler
        threads; the last-search memo must never hand thread A the
        neighbours computed for thread B's key (the old two-read check
        raced exactly there).
        """
        import threading

        vectors, labels = two_clusters
        classifier = CosineKnn(vectors, labels, k=3)
        rows = [np.array([i]) for i in range(8)]
        expected = [
            (
                classifier.predict_rows(row, exclude_self=True)[0],
                classifier.neighbor_distances(row, exclude_self=True)[0],
            )
            for row in rows
        ]
        crossed: list[tuple] = []
        start = threading.Barrier(len(rows))

        def hammer(i: int) -> None:
            row, (want_label, want_dist) = rows[i], expected[i]
            start.wait()
            for _ in range(300):
                label = classifier.predict_rows(row, exclude_self=True)[0]
                dist = classifier.neighbor_distances(row, exclude_self=True)[0]
                if label != want_label or dist != want_dist:
                    crossed.append((i, label, dist))
                    return

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(len(rows))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert crossed == []


class TestLeaveOneOut:
    def test_perfect_on_separated_clusters(self, two_clusters):
        vectors, labels = two_clusters
        predictions = leave_one_out_predictions(vectors, labels, np.arange(20), k=3)
        assert (predictions == labels).all()

    def test_subset_evaluation(self, two_clusters):
        vectors, labels = two_clusters
        rows = np.array([0, 15])
        predictions = leave_one_out_predictions(vectors, labels, rows, k=3)
        assert predictions.tolist() == ["A", "B"]
