"""Tests for repro.analysis.regularity."""

import numpy as np
import pytest

from repro.analysis.regularity import (
    activity_series,
    autocorrelation,
    periodicity,
)
from repro.trace.packet import SECONDS_PER_DAY, TCP, Trace


def _periodic_trace(period_s=SECONDS_PER_DAY / 4, days=8, pkts_per_burst=40):
    """One sender firing a burst every `period_s` seconds."""
    rng = np.random.default_rng(0)
    times = []
    t = 0.0
    while t < days * SECONDS_PER_DAY:
        times.extend(t + rng.random(pkts_per_burst) * 600.0)
        t += period_s
    times = np.sort(np.array(times))
    n = len(times)
    return Trace.from_events(
        times=times,
        sender_ips_per_packet=np.full(n, 42, dtype=np.uint64),
        ports=np.full(n, 23),
        protos=np.full(n, TCP),
        receivers=np.zeros(n, dtype=np.uint8),
        mirai=np.zeros(n, dtype=bool),
    )


def _random_trace(days=8, n=2000):
    rng = np.random.default_rng(1)
    times = np.sort(rng.random(n) * days * SECONDS_PER_DAY)
    return Trace.from_events(
        times=times,
        sender_ips_per_packet=np.full(n, 42, dtype=np.uint64),
        ports=np.full(n, 23),
        protos=np.full(n, TCP),
        receivers=np.zeros(n, dtype=np.uint8),
        mirai=np.zeros(n, dtype=bool),
    )


class TestActivitySeries:
    def test_bins_cover_trace(self):
        trace = _random_trace()
        series = activity_series(trace, np.array([0]), bin_seconds=3600.0)
        assert series.sum() == len(trace)
        assert len(series) == int(np.ceil(trace.duration_days * 24))

    def test_invalid_bin(self):
        trace = _random_trace()
        with pytest.raises(ValueError):
            activity_series(trace, np.array([0]), bin_seconds=0)


class TestAutocorrelation:
    def test_periodic_series_peaks_at_period(self):
        series = np.tile([10.0, 0.0, 0.0, 0.0], 50)
        values = autocorrelation(series, max_lag=10)
        assert np.argmax(values) + 1 == 4

    def test_constant_series_is_zero(self):
        assert np.allclose(autocorrelation(np.ones(50), 10), 0.0)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        values = autocorrelation(rng.random(200), 20)
        assert np.abs(values).max() <= 1.0 + 1e-9

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(10), 0)


class TestPeriodicity:
    def test_detects_six_hour_period(self):
        trace = _periodic_trace(period_s=SECONDS_PER_DAY / 4)
        result = periodicity(trace, np.array([0]), bin_seconds=900.0)
        assert result.is_regular
        assert result.period_seconds == pytest.approx(
            SECONDS_PER_DAY / 4, rel=0.15
        )

    def test_random_traffic_not_regular(self):
        trace = _random_trace()
        result = periodicity(trace, np.array([0]), bin_seconds=900.0)
        assert not result.is_regular

    def test_simulated_periodic_actor(self, small_bundle):
        """unknown1 (NetBIOS) has a daily duty cycle: ~1 day period."""
        trace = small_bundle.trace
        senders = small_bundle.sender_indices_of("unknown1_netbios")
        result = periodicity(trace, senders, bin_seconds=1800.0)
        assert result.is_regular
        assert result.period_seconds == pytest.approx(
            SECONDS_PER_DAY, rel=0.25
        )

    def test_simulated_sparse_actor_irregular(self, small_bundle):
        """Stretchoid has no coherent period."""
        trace = small_bundle.trace
        senders = small_bundle.sender_indices_of("stretchoid")
        result = periodicity(trace, senders, bin_seconds=1800.0)
        sharashka = periodicity(
            trace,
            small_bundle.sender_indices_of("sharashka"),
            bin_seconds=1800.0,
        )
        # Stretchoid's periodicity score is much weaker than a truly
        # periodic class like Sharashka.
        assert result.score < sharashka.score
