"""Tests for repro.w2v.negative."""

import numpy as np
import pytest

from repro.utils.rng import make_rng
from repro.w2v.negative import NegativeSampler


class TestNegativeSampler:
    def test_distribution_follows_smoothed_counts(self):
        counts = np.array([1.0, 16.0])
        sampler = NegativeSampler(counts, power=0.75)
        draws = sampler.sample(make_rng(0), (50_000,))
        share_1 = (draws == 1).mean()
        expected = 16**0.75 / (1 + 16**0.75)
        assert abs(share_1 - expected) < 0.02

    def test_power_zero_is_uniform(self):
        sampler = NegativeSampler(np.array([1.0, 1000.0]), power=0.0)
        draws = sampler.sample(make_rng(0), (20_000,))
        assert abs((draws == 0).mean() - 0.5) < 0.02

    def test_shape(self):
        sampler = NegativeSampler(np.array([3.0, 2.0, 1.0]))
        draws = sampler.sample(make_rng(0), (7, 5))
        assert draws.shape == (7, 5)
        assert draws.min() >= 0 and draws.max() <= 2

    def test_probability_of_sums_to_one(self):
        sampler = NegativeSampler(np.array([5.0, 3.0, 2.0]))
        total = sum(sampler.probability_of(i) for i in range(3))
        assert total == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            NegativeSampler(np.array([]))
        with pytest.raises(ValueError):
            NegativeSampler(np.array([0.0]))
        with pytest.raises(ValueError):
            NegativeSampler(np.array([1.0]), power=-1)
        with pytest.raises(ValueError):
            NegativeSampler(np.array([1.0])).probability_of(5)
