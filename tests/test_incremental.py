"""Staged fit equivalence, warm starts, and incremental update()."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.core.pipeline import NotFittedError
from repro.corpus.builder import CorpusBuilder
from repro.trace.merge import merge_traces
from repro.trace.packet import SECONDS_PER_DAY
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec
from repro.w2v.vocab import Vocabulary

DAY = float(SECONDS_PER_DAY)


class TestStagedFitEquivalence:
    def test_bit_identical_to_monolithic_path(self, small_trace):
        """The staged fit reproduces the historical fit exactly.

        Reference: filter-first corpus build + cold Word2Vec, i.e. the
        monolithic pipeline before the stage-graph refactor.
        """
        config = DarkVecConfig(epochs=3, seed=3)
        active = small_trace.active_senders(config.min_packets)
        service_map = config.resolve_service_map(small_trace)
        corpus = CorpusBuilder(service_map, delta_t=config.delta_t).build(
            small_trace, keep_senders=active
        )
        reference = Word2Vec(
            vector_size=config.vector_size,
            context=config.context,
            negative=config.negative,
            epochs=config.epochs,
            seed=config.seed,
            workers=config.workers,
        ).fit([sentence.tokens for sentence in corpus])

        darkvec = DarkVec(config).fit(small_trace)
        assert np.array_equal(darkvec.embedding.tokens, reference.tokens)
        assert np.array_equal(darkvec.embedding.vectors, reference.vectors)

    def test_filtered_corpus_matches_legacy_view(self, small_trace):
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(small_trace)
        active = small_trace.active_senders(config.min_packets)
        service_map = config.resolve_service_map(small_trace)
        legacy = CorpusBuilder(service_map, delta_t=config.delta_t).build(
            small_trace, keep_senders=active
        )
        assert len(darkvec.corpus) == len(legacy)
        for got, want in zip(darkvec.corpus, legacy):
            assert np.array_equal(got.tokens, want.tokens)


class TestWarmStart:
    def test_seeds_prior_vectors(self):
        sentences = [np.array([0, 1, 2, 0, 1, 2, 1, 0])] * 4
        prior = KeyedVectors(
            tokens=np.array([0, 2]),
            vectors=np.full((2, 8), 0.5, dtype=np.float32),
        )
        model = Word2Vec(
            vector_size=8, context=2, epochs=1, seed=5, alpha=1e-10,
            min_alpha=1e-12, negative=0,
        )
        warm = model.fit(sentences, init=prior)
        rows = warm.rows_of(np.array([0, 2]))
        # with a negligible learning rate the seeded vectors survive
        np.testing.assert_allclose(
            warm.vectors[rows], prior.vectors, atol=1e-4
        )
        fresh_row = int(warm.rows_of(np.array([1]))[0])
        assert not np.allclose(warm.vectors[fresh_row], 0.5, atol=1e-2)

    def test_rng_stream_unchanged_by_warm_start(self):
        sentences = [np.array([0, 1, 2, 3, 0, 1, 2, 3])] * 4
        prior = KeyedVectors(
            tokens=np.array([7]),  # disjoint: seeds nothing
            vectors=np.zeros((1, 8), dtype=np.float32),
        )
        kw = dict(vector_size=8, context=2, epochs=2, seed=5)
        cold = Word2Vec(**kw).fit(sentences)
        warm = Word2Vec(**kw).fit(sentences, init=prior)
        assert np.array_equal(cold.vectors, warm.vectors)

    def test_dimension_mismatch_raises(self):
        prior = KeyedVectors(
            tokens=np.array([0]), vectors=np.zeros((1, 4), dtype=np.float32)
        )
        model = Word2Vec(vector_size=8, context=2, epochs=1)
        with pytest.raises(ValueError, match="dimension mismatch"):
            model.fit([np.array([0, 1, 0, 1])], init=prior)

    def test_context_matrix_round_trips(self, tmp_path):
        sentences = [np.array([0, 1, 2, 0, 1, 2])] * 3
        keyed = Word2Vec(vector_size=4, context=2, epochs=1, seed=2).fit(
            sentences
        )
        assert keyed.context_vectors is not None
        assert keyed.context_vectors.shape == keyed.vectors.shape
        keyed.save(tmp_path / "kv")
        loaded = KeyedVectors.load(tmp_path / "kv")
        assert np.array_equal(loaded.context_vectors, keyed.context_vectors)


class TestKeyedVectorsSuffix:
    def test_save_load_round_trip_without_suffix(self, tmp_path):
        keyed = KeyedVectors(
            tokens=np.array([1, 5]), vectors=np.eye(2, dtype=np.float32)
        )
        keyed.save(tmp_path / "emb")  # np.savez appends .npz
        loaded = KeyedVectors.load(tmp_path / "emb")
        assert np.array_equal(loaded.tokens, keyed.tokens)
        assert np.array_equal(loaded.vectors, keyed.vectors)

    def test_save_load_round_trip_with_suffix(self, tmp_path):
        keyed = KeyedVectors(
            tokens=np.array([1, 5]), vectors=np.eye(2, dtype=np.float32)
        )
        keyed.save(tmp_path / "emb.npz")
        assert (tmp_path / "emb.npz").exists()
        assert not (tmp_path / "emb.npz.npz").exists()
        loaded = KeyedVectors.load(tmp_path / "emb.npz")
        assert np.array_equal(loaded.vectors, keyed.vectors)


class TestMergeTraces:
    def test_union_table_and_monotone_remaps(self, tiny_trace):
        half = tiny_trace.between(0.0, 5.0)
        rest = tiny_trace.between(5.0, np.inf)
        merged, remap_a, remap_b = merge_traces(half, rest)
        assert len(merged) == len(tiny_trace)
        assert np.array_equal(merged.times, tiny_trace.times)
        assert np.all(np.diff(remap_a) > 0)
        assert np.all(np.diff(remap_b) >= 0)
        # per-packet sender IPs are preserved
        assert np.array_equal(
            merged.sender_ips[merged.senders],
            tiny_trace.sender_ips[tiny_trace.senders],
        )

    def test_self_merge_is_identity_remap(self, tiny_trace):
        merged, remap_a, remap_b = merge_traces(tiny_trace, tiny_trace)
        assert merged.n_senders == tiny_trace.n_senders
        assert np.array_equal(remap_a, np.arange(tiny_trace.n_senders))
        assert np.array_equal(remap_a, remap_b)
        assert len(merged) == 2 * len(tiny_trace)


class TestVocabularyOps:
    def test_restricted_to_preserves_counts(self):
        vocab = Vocabulary(
            tokens=np.array([1, 3, 5, 7]), counts=np.array([10, 2, 4, 8])
        )
        sub = vocab.restricted_to(np.array([3, 7, 99]))
        assert np.array_equal(sub.tokens, [3, 7])
        assert np.array_equal(sub.counts, [2, 8])

    def test_merge_sums_counts(self):
        a = Vocabulary(tokens=np.array([1, 2]), counts=np.array([3, 4]))
        b = Vocabulary(tokens=np.array([2, 5]), counts=np.array([1, 6]))
        merged = Vocabulary.merge(a, b)
        assert np.array_equal(merged.tokens, [1, 2, 5])
        assert np.array_equal(merged.counts, [3, 5, 6])


class TestUpdate:
    @pytest.fixture(scope="class")
    def split_trace(self, small_trace):
        t0 = small_trace.start_time
        cut = t0 + 5 * DAY
        return (
            small_trace.between(t0, cut),
            small_trace.between(cut, np.inf),
        )

    def test_requires_fit(self, tiny_trace):
        with pytest.raises(NotFittedError):
            DarkVec().update(tiny_trace)

    def test_rejects_empty_trace(self, small_trace):
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(small_trace)
        empty = small_trace.between(-2.0, -1.0)
        with pytest.raises(ValueError, match="non-empty"):
            darkvec.update(empty)

    def test_appends_and_reports(self, split_trace):
        head, tail = split_trace
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(head)
        darkvec.update(tail)
        report = darkvec.last_update
        assert report.new_packets == len(tail)
        assert report.evicted_packets == 0
        assert report.sentences_rebuilt > 0
        assert report.sentences_retained > 0
        assert report.warm_tokens > 0
        assert len(darkvec.trace) == len(head) + len(tail)
        # all new-day senders are now embedded (if active)
        active = darkvec.trace.active_senders(config.min_packets)
        assert np.array_equal(darkvec.embedding.tokens, np.sort(active))

    def test_rolling_window_eviction(self, split_trace):
        head, tail = split_trace
        config = DarkVecConfig(epochs=2, seed=3, window_days=2.0)
        darkvec = DarkVec(config).fit(head)
        darkvec.update(tail)
        report = darkvec.last_update
        assert report.evicted_packets > 0
        assert report.sentences_evicted > 0
        span_days = (
            darkvec.trace.end_time - darkvec.trace.start_time
        ) / DAY
        # eviction is at dT-window granularity: at most one window over
        assert span_days <= 2.0 + config.delta_t / DAY + 1e-6

    def test_update_matches_cold_retrain_closely(self, small_bundle, split_trace):
        head, tail = split_trace
        config = DarkVecConfig(epochs=6, seed=3)
        warm = DarkVec(config).fit(head)
        warm.update(tail)
        cold = DarkVec(config).fit(warm.trace)
        report_warm = warm.evaluate(small_bundle.truth, eval_days=1.0)
        report_cold = cold.evaluate(small_bundle.truth, eval_days=1.0)
        assert abs(report_warm.accuracy - report_cold.accuracy) <= 0.05

    def test_state_round_trip_then_update(self, split_trace, tmp_path):
        head, tail = split_trace
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(head)
        darkvec.save_state(tmp_path / "state")
        restored = DarkVec.load_state(tmp_path / "state")
        assert np.array_equal(
            restored.embedding.vectors, darkvec.embedding.vectors
        )
        restored.update(tail)
        darkvec.update(tail)
        assert np.array_equal(
            restored.embedding.vectors, darkvec.embedding.vectors
        )


class TestEmptyEvaluationWindow:
    def test_evaluation_rows_raises_clearly(self, small_bundle, small_trace):
        config = DarkVecConfig(epochs=2, seed=3)
        # train on the first day only; senders of the last day that
        # never appear in day one are not embedded
        head = small_trace.between(
            small_trace.start_time, small_trace.start_time + 0.5 * DAY
        )
        darkvec = DarkVec(config).fit(head)
        # the fitted trace is day one, so its "last day" overlaps; force
        # an empty window with an impossible eval_days slice instead
        darkvec.trace = small_trace.between(-2.0, -1.0)
        with pytest.raises(ValueError, match="empty evaluation window"):
            darkvec.evaluation_rows(1.0)

    def test_evaluate_propagates_the_error(self, small_bundle, small_trace):
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(small_trace)
        darkvec.trace = small_trace.between(-2.0, -1.0)
        with pytest.raises(ValueError, match="empty evaluation window"):
            darkvec.evaluate(small_bundle.truth, eval_days=1.0)

    def test_eval_days_none_still_works(self, small_trace):
        config = DarkVecConfig(epochs=2, seed=3)
        darkvec = DarkVec(config).fit(small_trace)
        rows = darkvec.evaluation_rows(None)
        assert len(rows) == len(darkvec.embedding)
