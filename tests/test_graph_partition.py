"""Tests for partition agreement metrics (repro.graph.partition)."""

import numpy as np
import pytest

from repro.graph.partition import (
    adjusted_mutual_info,
    adjusted_rand_index,
    contingency_table,
    mutual_information,
    rand_index,
)


class TestContingency:
    def test_counts_pair_occurrences(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 1, 1])
        table = contingency_table(a, b)
        assert table.sum() == 4
        assert table[0, 0] == 1
        assert table[1, 1] == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([0, 1]), np.array([0]))


class TestRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert rand_index(labels, labels) == 1.0
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabeling_invariance(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 7, 7])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05
        # The unadjusted index has no such calibration.
        assert rand_index(a, b) > 0.5

    def test_partial_agreement_between_zero_and_one(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        ari = adjusted_rand_index(a, b)
        assert 0.0 < ari < 1.0


class TestAdjustedMutualInfo:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_mutual_info(labels, labels) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, size=2000)
        b = rng.integers(0, 4, size=2000)
        assert abs(adjusted_mutual_info(a, b)) < 0.05

    def test_single_cluster_pair_is_one(self):
        labels = np.zeros(5, dtype=np.int64)
        assert adjusted_mutual_info(labels, labels) == 1.0

    def test_mutual_information_nonnegative(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        assert mutual_information(a, b) >= 0.0

    def test_matches_brute_force_reference_case(self):
        # Reference values computed independently: ARI by explicit pair
        # counting, AMI by direct evaluation of the hypergeometric EMI.
        a = np.array([0, 0, 0, 1, 1, 1, 2, 2])
        b = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        assert rand_index(a, b) == pytest.approx(0.71428571, abs=1e-6)
        assert adjusted_rand_index(a, b) == pytest.approx(0.23809524, abs=1e-6)
        assert adjusted_mutual_info(a, b) == pytest.approx(0.31967265, abs=1e-6)
