"""Tests for repro.transfer (vantage split, alignment, metrics)."""

import numpy as np
import pytest

from repro.transfer.align import (
    apply_alignment,
    orthogonal_alignment,
    shared_tokens,
)
from repro.transfer.evaluate import (
    adjusted_rand_index,
    cross_embedding_report,
    neighborhood_overlap,
    partition_agreement,
)
from repro.transfer.vantage import split_vantage_points
from repro.w2v.keyedvectors import KeyedVectors


class TestVantageSplit:
    def test_partition_is_complete_and_disjoint(self, small_trace):
        view_a, view_b = split_vantage_points(small_trace)
        assert len(view_a) + len(view_b) == len(small_trace)
        assert view_a.receivers.max() < 128 if len(view_a) else True
        assert view_b.receivers.min() >= 128 if len(view_b) else True

    def test_shared_sender_table(self, small_trace):
        view_a, view_b = split_vantage_points(small_trace)
        assert view_a.n_senders == small_trace.n_senders
        assert view_b.n_senders == small_trace.n_senders

    def test_active_senders_overlap(self, small_trace):
        """Scanners hit the whole /24: both views see most actives."""
        view_a, view_b = split_vantage_points(small_trace)
        active_a = set(view_a.active_senders(5).tolist())
        active_b = set(view_b.active_senders(5).tolist())
        union = active_a | active_b
        assert len(active_a & active_b) > 0.5 * len(union)

    def test_invalid_boundary(self, small_trace):
        with pytest.raises(ValueError):
            split_vantage_points(small_trace, boundary=0)


def _rotated_pair(seed=0, n=60, v=8, noise=0.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, v))
    rotation = np.linalg.qr(rng.normal(size=(v, v)))[0]
    other = base @ rotation + noise * rng.normal(size=(n, v))
    tokens = np.arange(n, dtype=np.int64)
    return (
        KeyedVectors(tokens=tokens, vectors=base),
        KeyedVectors(tokens=tokens, vectors=other),
    )


class TestAlignment:
    def test_recovers_rotation(self):
        source, target = _rotated_pair()
        rotation = orthogonal_alignment(source, target)
        aligned = apply_alignment(source, rotation)
        # After alignment, cosine similarity of matching rows is ~1.
        a = aligned.unit_vectors
        b = target.unit_vectors
        assert (a * b).sum(axis=1).min() > 0.99

    def test_rotation_is_orthogonal(self):
        source, target = _rotated_pair(seed=3)
        rotation = orthogonal_alignment(source, target)
        assert np.allclose(rotation @ rotation.T, np.eye(rotation.shape[0]), atol=1e-8)

    def test_shared_tokens(self):
        a = KeyedVectors(tokens=np.array([1, 2, 3]), vectors=np.eye(3))
        b = KeyedVectors(tokens=np.array([2, 3, 4]), vectors=np.eye(3))
        assert shared_tokens(a, b).tolist() == [2, 3]

    def test_too_few_anchors_raises(self):
        a = KeyedVectors(tokens=np.array([1, 2]), vectors=np.random.rand(2, 8))
        b = KeyedVectors(tokens=np.array([1, 2]), vectors=np.random.rand(2, 8))
        with pytest.raises(ValueError):
            orthogonal_alignment(a, b)

    def test_dimension_mismatch_raises(self):
        a = KeyedVectors(tokens=np.array([1]), vectors=np.zeros((1, 4)))
        b = KeyedVectors(tokens=np.array([1]), vectors=np.zeros((1, 8)))
        with pytest.raises(ValueError):
            orthogonal_alignment(a, b)


class TestNeighborhoodOverlap:
    def test_identical_embeddings_full_overlap(self):
        source, _ = _rotated_pair()
        assert neighborhood_overlap(source, source, k=5) == pytest.approx(1.0)

    def test_rotated_embedding_full_overlap(self):
        source, target = _rotated_pair()
        # Rotation does not change neighbourhoods.
        assert neighborhood_overlap(source, target, k=5) == pytest.approx(1.0)

    def test_random_embeddings_low_overlap(self):
        rng = np.random.default_rng(0)
        tokens = np.arange(80, dtype=np.int64)
        a = KeyedVectors(tokens=tokens, vectors=rng.normal(size=(80, 8)))
        b = KeyedVectors(tokens=tokens, vectors=rng.normal(size=(80, 8)))
        assert neighborhood_overlap(a, b, k=5) < 0.3

    def test_needs_shared_senders(self):
        a = KeyedVectors(tokens=np.array([1, 2, 3]), vectors=np.eye(3))
        b = KeyedVectors(tokens=np.array([7, 8, 9]), vectors=np.eye(3))
        with pytest.raises(ValueError):
            neighborhood_overlap(a, b, k=2)


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    def test_relabeled_partitions_equal(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        b = np.array([5, 5, 9, 9, 7, 7])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, size=500)
        b = rng.integers(0, 5, size=500)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        a = np.array([0] * 10 + [1] * 10)
        b = a.copy()
        b[:3] = 1  # corrupt three assignments
        score = adjusted_rand_index(a, b)
        assert 0.2 < score < 1.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            adjusted_rand_index(np.array([0]), np.array([0, 1]))


class TestPartitionAgreement:
    def test_same_embedding_full_agreement(self):
        rng = np.random.default_rng(1)
        a = np.array([1.0, 0.0]) + rng.normal(0, 0.02, size=(20, 2))
        b = np.array([0.0, 1.0]) + rng.normal(0, 0.02, size=(20, 2))
        vectors = np.vstack([a, b])
        keyed = KeyedVectors(
            tokens=np.arange(40, dtype=np.int64), vectors=vectors
        )
        assert partition_agreement(keyed, keyed) == pytest.approx(1.0)

    def test_rotation_invariant(self):
        rng = np.random.default_rng(2)
        a = np.array([1.0, 0.0, 0.0]) + rng.normal(0, 0.02, size=(15, 3))
        b = np.array([0.0, 1.0, 0.0]) + rng.normal(0, 0.02, size=(15, 3))
        vectors = np.vstack([a, b])
        rotation = np.linalg.qr(rng.normal(size=(3, 3)))[0]
        tokens = np.arange(30, dtype=np.int64)
        k1 = KeyedVectors(tokens=tokens, vectors=vectors)
        k2 = KeyedVectors(tokens=tokens, vectors=vectors @ rotation)
        assert partition_agreement(k1, k2) == pytest.approx(1.0)

    def test_too_few_shared_raises(self):
        a = KeyedVectors(tokens=np.arange(3), vectors=np.eye(3))
        with pytest.raises(ValueError):
            partition_agreement(a, a)


class TestCrossEmbeddingReport:
    def test_perfect_transfer_on_identical_space(self):
        rng = np.random.default_rng(1)
        a = np.array([1.0, 0.0]) + rng.normal(0, 0.02, size=(20, 2))
        b = np.array([0.0, 1.0]) + rng.normal(0, 0.02, size=(20, 2))
        vectors = np.vstack([a, b])
        tokens = np.arange(40, dtype=np.int64)
        reference = KeyedVectors(tokens=tokens, vectors=vectors)
        query = KeyedVectors(tokens=tokens, vectors=vectors.copy())
        labels = {int(t): ("A" if t < 20 else "B") for t in tokens}
        report = cross_embedding_report(reference, query, labels, tokens, k=3)
        assert report.accuracy == 1.0

    def test_unknown_query_token_raises(self):
        reference = KeyedVectors(
            tokens=np.arange(5, dtype=np.int64), vectors=np.random.rand(5, 3)
        )
        with pytest.raises(ValueError):
            cross_embedding_report(
                reference, reference, {}, np.array([99]), k=2
            )
