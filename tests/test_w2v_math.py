"""Tests for repro.w2v.mathutils."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.w2v.mathutils import cosine_similarity, scatter_add, sigmoid, unit_rows


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_clamped_finite(self):
        values = sigmoid(np.array([-1e9, 1e9]))
        assert 0.0 < values[0] < 0.001
        assert 0.999 < values[1] <= 1.0
        assert np.isfinite(values).all()

    def test_monotone(self):
        x = np.linspace(-10, 10, 50)
        assert np.all(np.diff(sigmoid(x)) > 0)


class TestUnitRows:
    def test_unit_norm(self):
        units = unit_rows(np.array([[3.0, 4.0], [1.0, 0.0]]))
        assert np.allclose(np.linalg.norm(units, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        units = unit_rows(np.array([[0.0, 0.0]]))
        assert np.allclose(units, 0.0)


class TestCosineSimilarity:
    def test_parallel(self):
        assert cosine_similarity(np.array([1, 2]), np.array([2, 4])) == pytest.approx(1)

    def test_orthogonal(self):
        assert cosine_similarity(np.array([1, 0]), np.array([0, 1])) == pytest.approx(0)

    def test_zero_vector(self):
        assert cosine_similarity(np.zeros(3), np.ones(3)) == 0.0


class TestScatterAdd:
    def test_matches_add_at(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            matrix_a = rng.random((20, 4))
            matrix_b = matrix_a.copy()
            rows = rng.integers(0, 20, size=100)
            updates = rng.random((100, 4))
            scatter_add(matrix_a, rows, updates)
            np.add.at(matrix_b, rows, updates)
            assert np.allclose(matrix_a, matrix_b)

    def test_empty_noop(self):
        matrix = np.ones((3, 2))
        scatter_add(matrix, np.empty(0, dtype=np.int64), np.empty((0, 2)))
        assert np.allclose(matrix, 1.0)

    def test_duplicates_summed(self):
        matrix = np.zeros((2, 1))
        scatter_add(
            matrix, np.array([1, 1, 1]), np.array([[1.0], [2.0], [3.0]])
        )
        assert matrix[1, 0] == pytest.approx(6.0)
        assert matrix[0, 0] == 0.0

    @settings(max_examples=30)
    @given(
        arrays(np.int64, st.integers(1, 50), elements=st.integers(0, 9)),
    )
    def test_property_matches_add_at(self, rows):
        updates = np.ones((len(rows), 3))
        a = np.zeros((10, 3))
        b = np.zeros((10, 3))
        scatter_add(a, rows, updates)
        np.add.at(b, rows, updates)
        assert np.allclose(a, b)
