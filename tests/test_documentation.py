"""Documentation coverage: every public item carries a docstring.

The repository promises doc comments on every public module, class and
function; this test walks the package and enforces it.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "._" not in module_info.name:
            names.append(module_info.name)
    return names


@pytest.mark.parametrize("module_name", _public_modules())
def test_module_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", _public_modules())
def test_public_members_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module_name:
            continue  # re-exported from elsewhere
        if not inspect.getdoc(member):
            missing.append(name)
        elif inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if inspect.isfunction(method) and not inspect.getdoc(method):
                    missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: undocumented public items: {missing}"
