"""Tests for repro.baselines."""

import numpy as np
import pytest

from repro.baselines.dante import Dante, DanteDidNotFinish
from repro.baselines.ip2vec import Ip2Vec, Ip2VecDidNotFinish
from repro.baselines.port_features import PortFeatureClassifier


@pytest.fixture(scope="module")
def eval_setup(small_bundle):
    trace = small_bundle.trace
    active = trace.active_senders(10)
    present = trace.last_days(1.0).observed_senders()
    eval_senders = np.intersect1d(active, present)
    return trace, small_bundle.truth, eval_senders


class TestPortFeatureClassifier:
    def test_feature_selection_biased_to_classes(self, eval_setup):
        trace, truth, senders = eval_setup
        classifier = PortFeatureClassifier(k=7)
        labels = truth.labels_for(trace)
        keys = classifier.select_features(trace, labels, senders)
        names = classifier.feature_names()
        assert len(keys) == len(names)
        assert "23/tcp" in names  # Mirai's top port always selected
        assert "53/udp" in names  # Engin-Umich

    def test_feature_matrix_rows_are_fractions(self, eval_setup):
        trace, truth, senders = eval_setup
        classifier = PortFeatureClassifier()
        classifier.select_features(trace, truth.labels_for(trace), senders)
        matrix = classifier.feature_matrix(trace, senders)
        assert matrix.shape[0] == len(senders)
        assert matrix.min() >= 0.0
        assert matrix.max() <= 1.0 + 1e-9
        assert matrix.sum(axis=1).max() <= 1.0 + 1e-9

    def test_evaluate_beats_chance_but_not_perfect(self, eval_setup):
        trace, truth, senders = eval_setup
        report = PortFeatureClassifier(k=7).evaluate(trace, truth, senders)
        assert 0.2 < report.accuracy < 0.98

    def test_feature_names_before_selection_raises(self):
        with pytest.raises(RuntimeError):
            PortFeatureClassifier().feature_names()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PortFeatureClassifier(k=0)


class TestDante:
    def test_skipgram_count_positive(self, eval_setup):
        trace, _, _ = eval_setup
        count = Dante(context=25).skipgram_count(trace)
        assert count > 0

    def test_merged_languages_give_more_skipgrams(self, eval_setup):
        """Per-receiver splitting shortens sentences, reducing pairs."""
        trace, _, _ = eval_setup
        split = Dante(context=25, per_receiver=True).skipgram_count(trace)
        merged = Dante(context=25, per_receiver=False).skipgram_count(trace)
        assert merged > split

    def test_budget_guard(self, eval_setup):
        trace, _, _ = eval_setup
        dante = Dante(max_skipgrams=1)
        with pytest.raises(DanteDidNotFinish):
            dante.fit_sender_vectors(trace)

    def test_fit_and_evaluate_small(self, eval_setup):
        trace, truth, senders = eval_setup
        # Restrict to a small sub-trace so per-language training stays fast.
        sub_senders = senders[:40]
        sub = trace.from_senders(sub_senders)
        dante = Dante(vector_size=16, epochs=1, per_receiver=False)
        keyed = dante.fit_sender_vectors(sub)
        assert len(keyed) == len(np.unique(sub.senders))
        assert np.isfinite(keyed.vectors).all()


class TestIp2Vec:
    def test_pair_count_is_five_per_packet(self, eval_setup):
        trace, _, _ = eval_setup
        assert Ip2Vec().pair_count(trace) == 5 * trace.n_packets

    def test_build_pairs_shapes(self, eval_setup):
        trace, _, _ = eval_setup
        targets, contexts = Ip2Vec().build_pairs(trace)
        assert len(targets) == len(contexts) == 5 * trace.n_packets

    def test_namespaces_disjoint(self, eval_setup):
        trace, _, _ = eval_setup
        targets, contexts = Ip2Vec().build_pairs(trace)
        namespaces = np.unique(np.concatenate([targets, contexts]) >> 33)
        assert set(namespaces.tolist()) == {0, 1, 2, 3}

    def test_budget_guard(self, eval_setup):
        trace, _, _ = eval_setup
        with pytest.raises(Ip2VecDidNotFinish):
            Ip2Vec(max_pairs=10).fit_sender_vectors(trace)

    def test_fit_and_evaluate(self, eval_setup):
        trace, truth, senders = eval_setup
        ip2vec = Ip2Vec(vector_size=16, epochs=3, seed=1)
        report = ip2vec.evaluate(trace, truth, senders, k=7)
        # IP2VEC learns port profiles: clearly better than chance
        # (~0.1 for 9 classes), but the port-identical mimic unknowns
        # keep it well below DarkVec (cf. Table 3).
        assert report.accuracy > 0.15

    def test_sender_vectors_keyed_by_sender_index(self, eval_setup):
        trace, _, _ = eval_setup
        keyed = Ip2Vec(vector_size=8, epochs=1).fit_sender_vectors(trace)
        assert keyed.tokens.max() < trace.n_senders
        assert len(keyed) == len(trace.observed_senders())


class TestIp2VecFlows:
    def test_flow_aggregation_reduces_pairs(self, eval_setup):
        trace, _, _ = eval_setup
        per_packet = Ip2Vec().pair_count(trace)
        per_flow = Ip2Vec(flow_timeout=3600.0).pair_count(trace)
        assert per_flow <= per_packet

    def test_flow_based_training_runs(self, eval_setup):
        trace, truth, senders = eval_setup
        ip2vec = Ip2Vec(vector_size=8, epochs=1, flow_timeout=600.0)
        keyed = ip2vec.fit_sender_vectors(trace)
        assert len(keyed) > 0
        assert np.isfinite(keyed.vectors).all()
