"""Tests for the CBOW architecture and the GloVe trainer."""

import numpy as np
import pytest

from repro.w2v.glove import GloVe, cooccurrence_counts
from repro.w2v.model import Word2Vec
from repro.w2v.vocab import Vocabulary


def _community_sentences(seed=0, n=300):
    rng = np.random.default_rng(seed)
    sentences = []
    for _ in range(n):
        g = rng.integers(0, 2)
        sentences.append(
            (rng.integers(0, 20, size=30) + g * 20).astype(np.int64)
        )
    return sentences


class TestCbow:
    def test_separates_communities(self):
        keyed = Word2Vec(
            vector_size=16, context=5, epochs=5, seed=3, architecture="cbow"
        ).fit(_community_sentences())
        units = keyed.unit_vectors
        sims = units @ units.T
        within = (sims[:20, :20].sum() - 20) / 380
        across = sims[:20, 20:].mean()
        assert within > across + 0.4

    def test_deterministic(self):
        sentences = _community_sentences(n=40)
        a = Word2Vec(vector_size=8, epochs=1, seed=5, architecture="cbow").fit(
            sentences
        )
        b = Word2Vec(vector_size=8, epochs=1, seed=5, architecture="cbow").fit(
            sentences
        )
        assert np.array_equal(a.vectors, b.vectors)

    def test_differs_from_skipgram(self):
        sentences = _community_sentences(n=40)
        cbow = Word2Vec(vector_size=8, epochs=1, seed=5, architecture="cbow").fit(
            sentences
        )
        sg = Word2Vec(
            vector_size=8, epochs=1, seed=5, architecture="skipgram"
        ).fit(sentences)
        assert not np.array_equal(cbow.vectors, sg.vectors)

    def test_invalid_architecture(self):
        with pytest.raises(ValueError):
            Word2Vec(architecture="transformer")

    def test_finite_without_negatives(self):
        keyed = Word2Vec(
            vector_size=8, epochs=1, negative=0, architecture="cbow"
        ).fit(_community_sentences(n=30))
        assert np.isfinite(keyed.vectors).all()


class TestCooccurrence:
    def test_adjacent_pairs_weight_one(self):
        vocab = Vocabulary.build([np.array([1, 2])])
        rows, cols, counts = cooccurrence_counts(
            [np.array([1, 2])], vocab, context=2
        )
        pairs = {(int(r), int(c)): x for r, c, x in zip(rows, cols, counts)}
        assert pairs[(0, 1)] == pytest.approx(1.0)
        assert pairs[(1, 0)] == pytest.approx(1.0)

    def test_harmonic_distance_weighting(self):
        vocab = Vocabulary.build([np.array([1, 2, 3])])
        rows, cols, counts = cooccurrence_counts(
            [np.array([1, 2, 3])], vocab, context=2
        )
        pairs = {(int(r), int(c)): x for r, c, x in zip(rows, cols, counts)}
        assert pairs[(0, 2)] == pytest.approx(0.5)  # distance 2

    def test_symmetric(self):
        vocab = Vocabulary.build([np.array([5, 9, 5, 7])])
        rows, cols, counts = cooccurrence_counts(
            [np.array([5, 9, 5, 7])], vocab, context=3
        )
        pairs = {(int(r), int(c)): x for r, c, x in zip(rows, cols, counts)}
        for (i, j), x in pairs.items():
            assert pairs[(j, i)] == pytest.approx(x)

    def test_empty(self):
        vocab = Vocabulary.build([])
        rows, cols, counts = cooccurrence_counts([], vocab, context=2)
        assert len(rows) == 0

    def test_invalid_context(self):
        vocab = Vocabulary.build([np.array([1, 2])])
        with pytest.raises(ValueError):
            cooccurrence_counts([np.array([1, 2])], vocab, context=0)


class TestGloVe:
    def test_fit_produces_finite_vectors(self):
        keyed = GloVe(vector_size=8, context=3, epochs=3, seed=1).fit(
            _community_sentences(n=60)
        )
        assert len(keyed) == 40
        assert np.isfinite(keyed.vectors).all()

    def test_deterministic(self):
        sentences = _community_sentences(n=30)
        a = GloVe(vector_size=8, context=3, epochs=2, seed=4).fit(sentences)
        b = GloVe(vector_size=8, context=3, epochs=2, seed=4).fit(sentences)
        assert np.allclose(a.vectors, b.vectors)

    def test_empty_corpus(self):
        keyed = GloVe(vector_size=8).fit([])
        assert len(keyed) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GloVe(vector_size=0)
        with pytest.raises(ValueError):
            GloVe(learning_rate=0.0)

    def test_frequency_structure_learned(self):
        """Tokens with strongly different co-occurrence profiles split."""
        rng = np.random.default_rng(0)
        sentences = []
        # Tokens 0-4 always co-occur with hub 100; 5-9 with hub 200.
        for _ in range(500):
            if rng.random() < 0.5:
                sentences.append(
                    np.array([100, rng.integers(0, 5), 100], dtype=np.int64)
                )
            else:
                sentences.append(
                    np.array([200, rng.integers(5, 10), 200], dtype=np.int64)
                )
        keyed = GloVe(vector_size=8, context=2, epochs=30, seed=1).fit(sentences)
        units = keyed.unit_vectors
        rows_a = keyed.rows_of(np.arange(0, 5))
        rows_b = keyed.rows_of(np.arange(5, 10))
        sims = units @ units.T
        within = sims[np.ix_(rows_a, rows_a)].mean()
        across = sims[np.ix_(rows_a, rows_b)].mean()
        assert within > across
