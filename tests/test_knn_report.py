"""Tests for repro.knn.report."""

import numpy as np
import pytest

from repro.knn.report import classification_report
from repro.labels.groundtruth import UNKNOWN


class TestClassificationReport:
    def test_perfect_prediction(self):
        y = np.array(["A", "A", "B"], dtype=object)
        report = classification_report(y, y)
        assert report.accuracy == 1.0
        assert report.per_class["A"].f_score == 1.0

    def test_precision_recall_distinct(self):
        y_true = np.array(["A", "A", "B", "B"], dtype=object)
        y_pred = np.array(["A", "B", "B", "B"], dtype=object)
        report = classification_report(y_true, y_pred)
        a = report.per_class["A"]
        b = report.per_class["B"]
        assert a.precision == 1.0 and a.recall == 0.5
        assert b.precision == pytest.approx(2 / 3)
        assert b.recall == 1.0

    def test_accuracy_excludes_unknown(self):
        y_true = np.array(["A", UNKNOWN, UNKNOWN], dtype=object)
        y_pred = np.array(["A", "A", "A"], dtype=object)
        report = classification_report(y_true, y_pred)
        assert report.accuracy == 1.0  # only the A row counts
        assert report.per_class[UNKNOWN].recall == 0.0

    def test_accuracy_is_weighted_recall(self):
        y_true = np.array(["A"] * 3 + ["B"] * 1, dtype=object)
        y_pred = np.array(["A", "A", "B", "B"], dtype=object)
        report = classification_report(y_true, y_pred)
        expected = (2 / 3 * 3 + 1.0 * 1) / 4
        assert report.accuracy == pytest.approx(expected)

    def test_support_counts(self):
        y_true = np.array(["A", "A", "B"], dtype=object)
        report = classification_report(y_true, y_true)
        assert report.per_class["A"].support == 2
        assert report.per_class["B"].support == 1

    def test_unseen_class_zero_metrics(self):
        y_true = np.array(["A"], dtype=object)
        y_pred = np.array(["A"], dtype=object)
        report = classification_report(y_true, y_pred, classes=("A", "B"))
        assert report.per_class["B"].f_score == 0.0
        assert report.per_class["B"].support == 0

    def test_macro_f(self):
        y_true = np.array(["A", "B"], dtype=object)
        y_pred = np.array(["A", "A"], dtype=object)
        report = classification_report(y_true, y_pred)
        assert 0 < report.macro_f() < 1

    def test_to_text_layout(self):
        y_true = np.array(["A", UNKNOWN], dtype=object)
        y_pred = np.array(["A", UNKNOWN], dtype=object)
        text = classification_report(y_true, y_pred).to_text(title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Accuracy" in lines[-1]
        # Unknown printed last, with dashes for precision/F.
        unknown_line = [l for l in lines if l.startswith(UNKNOWN)][0]
        assert "-" in unknown_line

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            classification_report(
                np.array(["A"], dtype=object), np.array(["A", "B"], dtype=object)
            )
