"""Tests for repro.trace.presets."""

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.graph.silhouette import cluster_silhouettes
from repro.trace.generator import generate_trace
from repro.trace.packet import TCP
from repro.trace.presets import (
    PRESETS,
    minimal_scenario,
    quiet_scenario,
    worm_outbreak_scenario,
)


class TestMinimalScenario:
    def test_generates_quickly_with_structure(self):
        bundle = generate_trace(minimal_scenario(days=3, seed=1))
        trace = bundle.trace
        assert 1_000 < trace.n_packets < 100_000
        assert set(bundle.truth.by_ip.values()) == {"Mirai-like", "Engin-umich"}

    def test_pipeline_separates_botnet(self):
        bundle = generate_trace(minimal_scenario(days=6, seed=1))
        darkvec = DarkVec(
            DarkVecConfig(service="domain", epochs=8, seed=2)
        ).fit(bundle.trace)
        report = darkvec.evaluate(bundle.truth, k=5)
        assert report.per_class["Mirai-like"].recall > 0.6


class TestWormScenario:
    def test_ramp_is_visible(self):
        bundle = generate_trace(worm_outbreak_scenario(days=8, seed=2))
        trace = bundle.trace
        worm = bundle.sender_indices_of("worm")
        sub = trace.from_senders(worm)
        mid = (trace.start_time + trace.end_time) / 2
        early = len(sub.between(-np.inf, mid))
        late = len(sub.between(mid, np.inf))
        assert late > early * 2

    def test_adb_port_dominates_worm(self):
        bundle = generate_trace(worm_outbreak_scenario(days=6, seed=2))
        sub = bundle.trace.from_senders(bundle.sender_indices_of("worm"))
        counts = sub.port_packet_counts()
        assert counts.get((5555, TCP), 0) / max(len(sub), 1) > 0.6


class TestQuietScenario:
    def test_no_ground_truth(self):
        bundle = generate_trace(quiet_scenario(days=3, seed=3))
        assert not bundle.truth.by_ip

    def test_no_strong_spurious_clusters(self):
        """On structure-free data, detected clusters are weak."""
        bundle = generate_trace(quiet_scenario(days=4, seed=3))
        darkvec = DarkVec(
            DarkVecConfig(service="domain", epochs=4, seed=1)
        ).fit(bundle.trace)
        if len(darkvec.embedding) < 30:
            pytest.skip("too few active senders")
        result = darkvec.cluster(k_prime=3, seed=0)
        silhouettes = cluster_silhouettes(
            darkvec.embedding.vectors, result.communities
        )
        # Most clusters are incoherent; strong spurious cohesion would
        # mean the pipeline invents structure.
        strong = [
            c
            for c, s in silhouettes.items()
            if s > 0.6 and (result.communities == c).sum() >= 10
        ]
        assert len(strong) <= max(1, len(silhouettes) // 4)


class TestPresetRegistry:
    def test_all_presets_listed(self):
        assert set(PRESETS) == {"default", "minimal", "worm", "quiet"}
