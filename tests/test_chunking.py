"""Chunked-computation paths: results must not depend on chunk size.

knn_search chunks query rows at 1024 and cosine_silhouette chunks rows
at 512; these tests cross those boundaries and compare against direct
computation.
"""

import numpy as np
import pytest

from repro.graph.silhouette import cosine_silhouette
from repro.knn.classifier import knn_search
from repro.w2v.mathutils import unit_rows


class TestKnnChunking:
    def test_results_cross_chunk_boundary(self):
        rng = np.random.default_rng(0)
        n = 1500  # > one 1024 chunk
        units = unit_rows(rng.normal(size=(n, 8)))
        neighbors, sims = knn_search(units, np.arange(n), k=3)
        # Verify a sample of rows against brute force.
        scores = units @ units.T
        np.fill_diagonal(scores, -np.inf)
        for i in (0, 1023, 1024, 1499):
            expected = np.sort(scores[i])[::-1][:3]
            assert np.allclose(np.sort(sims[i])[::-1], expected, atol=1e-9)

    def test_subset_queries(self):
        rng = np.random.default_rng(1)
        units = unit_rows(rng.normal(size=(300, 4)))
        rows = np.array([5, 100, 299])
        neighbors, sims = knn_search(units, rows, k=2)
        assert neighbors.shape == (3, 2)
        for query, row_neighbors in zip(rows, neighbors):
            assert query not in row_neighbors


class TestSilhouetteChunking:
    def test_chunked_matches_single_chunk(self):
        rng = np.random.default_rng(2)
        n = 1100  # > two 512 chunks
        vectors = rng.normal(size=(n, 6))
        communities = rng.integers(0, 4, size=n)
        scores = cosine_silhouette(vectors, communities)
        assert len(scores) == n
        assert np.isfinite(scores).all()
        # Verify one sample against the naive definition.
        units = unit_rows(vectors)
        distances = 1.0 - units @ units.T
        i = 777
        own = communities == communities[i]
        a = distances[i, own & (np.arange(n) != i)].mean()
        b = min(
            distances[i, communities == c].mean()
            for c in set(communities.tolist())
            if c != communities[i]
        )
        assert scores[i] == pytest.approx((b - a) / max(a, b), abs=1e-9)
