"""Tests for declarative scenario configuration."""

import json

import numpy as np
import pytest

from repro.trace.config import (
    ScenarioConfigError,
    scenario_from_dict,
    scenario_from_json,
)
from repro.trace.generator import generate_trace
from repro.trace.packet import TCP, UDP


def _minimal_doc():
    return {
        "days": 2,
        "seed": 5,
        "backscatter": 50,
        "actors": [
            {
                "name": "botnet",
                "label": "Mirai-like",
                "senders": {"kind": "scattered", "count": 30},
                "schedule": {"kind": "continuous", "rate_per_day": 20},
                "ports": {"head": [["23/tcp", 0.9]], "tail": {"count": 10}},
                "mirai_probability": 1.0,
            },
            {
                "name": "dns_bursts",
                "senders": {"kind": "subnet24", "count": 5},
                "schedule": {
                    "kind": "burst",
                    "n_bursts": 3,
                    "burst_duration_s": 600,
                    "packets_per_burst": 8,
                },
                "ports": {"head": [["53/udp", 1.0]]},
            },
        ],
    }


class TestScenarioFromDict:
    def test_builds_and_generates(self):
        scenario = scenario_from_dict(_minimal_doc())
        assert scenario.days == 2
        assert [a.name for a in scenario.actors] == ["botnet", "dns_bursts"]
        bundle = generate_trace(scenario)
        assert bundle.trace.n_packets > 100
        assert set(bundle.truth.by_ip.values()) == {"Mirai-like"}

    def test_port_spec_parsed(self):
        scenario = scenario_from_dict(_minimal_doc())
        profile = scenario.actor("dns_bursts").profile
        assert profile.head == ((53, UDP, 1.0),)

    def test_explicit_tail_ports(self):
        doc = _minimal_doc()
        doc["actors"][0]["ports"] = {
            "head": [["23/tcp", 0.5]],
            "tail": ["80/tcp", "443/tcp"],
        }
        scenario = scenario_from_dict(doc)
        assert scenario.actor("botnet").profile.tail_ports == (
            (80, TCP),
            (443, TCP),
        )

    def test_gated_schedule(self):
        doc = _minimal_doc()
        doc["actors"][0]["schedule"] = {
            "kind": "gated",
            "base": {"kind": "continuous", "rate_per_day": 20},
            "period_days": 1.0,
            "duty": 0.5,
        }
        scenario = scenario_from_dict(doc)
        from repro.trace.schedule import GatedSchedule

        assert isinstance(scenario.actor("botnet").schedule, GatedSchedule)

    def test_heterogeneity_knobs(self):
        doc = _minimal_doc()
        doc["actors"][0]["tail_fraction"] = 0.3
        doc["actors"][0]["volume_sigma"] = 0.8
        actor = scenario_from_dict(doc).actor("botnet")
        assert actor.tail_fraction == 0.3
        assert actor.volume_sigma == 0.8

    def test_deterministic(self):
        a = generate_trace(scenario_from_dict(_minimal_doc())).trace
        b = generate_trace(scenario_from_dict(_minimal_doc())).trace
        assert np.array_equal(a.times, b.times)


class TestValidation:
    def test_missing_actors(self):
        with pytest.raises(ScenarioConfigError, match="at least one actor"):
            scenario_from_dict({"days": 2})

    def test_missing_name(self):
        doc = _minimal_doc()
        del doc["actors"][0]["name"]
        with pytest.raises(ScenarioConfigError, match=r"actors\[0\]"):
            scenario_from_dict(doc)

    def test_unknown_schedule_kind(self):
        doc = _minimal_doc()
        doc["actors"][0]["schedule"] = {"kind": "quantum"}
        with pytest.raises(ScenarioConfigError, match="unknown schedule kind"):
            scenario_from_dict(doc)

    def test_bad_schedule_params(self):
        doc = _minimal_doc()
        doc["actors"][0]["schedule"] = {"kind": "continuous", "rate_per_day": -1}
        with pytest.raises(ScenarioConfigError, match=r"schedule"):
            scenario_from_dict(doc)

    def test_bad_port_spec(self):
        doc = _minimal_doc()
        doc["actors"][0]["ports"] = {"head": [["23/quic", 1.0]]}
        with pytest.raises(ScenarioConfigError, match=r"ports\.head"):
            scenario_from_dict(doc)

    def test_bad_sender_kind(self):
        doc = _minimal_doc()
        doc["actors"][0]["senders"] = {"kind": "galaxy", "count": 5}
        with pytest.raises(ScenarioConfigError, match="unknown sender pool"):
            scenario_from_dict(doc)

    def test_gated_needs_base(self):
        doc = _minimal_doc()
        doc["actors"][0]["schedule"] = {"kind": "gated", "duty": 0.5, "period_days": 1}
        with pytest.raises(ScenarioConfigError, match="needs 'base'"):
            scenario_from_dict(doc)


class TestScenarioFromJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(_minimal_doc()))
        scenario = scenario_from_json(path)
        assert scenario.actor("botnet").n_senders == 30

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ScenarioConfigError, match="invalid JSON"):
            scenario_from_json(path)
