"""Tests for the observability subsystem (repro.obs)."""

import gzip
import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.obs import recorder
from repro.io.ndjson import read_ndjson, write_ndjson
from repro.obs import (
    METRICS,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    Telemetry,
    counters_from_records,
    epoch_event,
    format_stage_table,
    telemetry_records,
    write_metrics_ndjson,
)
from repro.parallel.pool import WorkerPool, fork_available


class TestNullRecorder:
    def test_disabled_by_default(self):
        assert obs.current().enabled is False

    def test_span_and_metrics_are_noops(self):
        with obs.span("train.fit", workers=1) as sp:
            sp.set(items=10)
        obs.add("trace.packets", 5)
        obs.set_gauge("graph.nodes", 3)
        obs.observe("corpus.sentence_length", 4)
        obs.observe_many("corpus.sentence_length", np.array([1.0, 2.0]))

    def test_unknown_names_not_validated_when_disabled(self):
        # Zero-overhead path: no dict lookup, no validation.
        obs.add("not.a.metric")

    def test_wrap_task_returns_fn_unchanged(self):
        def fn(x):
            return x + 1

        assert obs.wrap_task(fn) is fn


class TestSpans:
    def test_nesting_and_attributes(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("pipeline.fit", stage="outer") as outer:
                with obs.span("train.fit", workers=1):
                    pass
                outer.set(items=7, items_unit="pairs")
        root = telemetry.root
        assert [child.name for child in root.children] == ["pipeline.fit"]
        fit = root.children[0]
        assert fit.attrs["stage"] == "outer"
        assert fit.attrs["items"] == 7
        assert [child.name for child in fit.children] == ["train.fit"]
        assert fit.elapsed >= fit.children[0].elapsed >= 0.0

    def test_walk_paths(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("a"):
                with obs.span("b"):
                    pass
        paths = [path for _, _, path in telemetry.root.walk()]
        assert paths == ["root", "root/a", "root/a/b"]

    def test_find(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("a"):
                with obs.span("b", tag=1):
                    pass
        found = telemetry.root.find("b")
        assert found is not None and found.attrs["tag"] == 1
        assert telemetry.root.find("missing") is None

    def test_exception_propagates_and_span_closes(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with pytest.raises(ValueError):
                with obs.span("a"):
                    raise ValueError("boom")
        assert telemetry.root.children[0].elapsed >= 0.0

    def test_throughput_from_items(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("a") as sp:
                sp.set(items=1000, items_unit="pairs")
        span = telemetry.root.children[0]
        assert span.throughput is not None and span.throughput > 0

    def test_memory_profiling_records_peaks(self):
        telemetry = Telemetry(profile_memory=True)
        with obs.session(telemetry):
            with obs.span("alloc"):
                _ = np.zeros(200_000)
        span = telemetry.root.children[0]
        assert span.mem_peak_bytes is not None
        assert span.mem_peak_bytes > 1_000_000

    def test_nested_peak_folds_into_parent(self):
        telemetry = Telemetry(profile_memory=True)
        with obs.session(telemetry):
            with obs.span("outer"):
                with obs.span("inner"):
                    _ = np.zeros(200_000)
        outer, inner = (
            telemetry.root.children[0],
            telemetry.root.children[0].children[0],
        )
        assert outer.mem_peak_bytes >= inner.mem_peak_bytes


class TestMetrics:
    def test_unknown_name_raises_when_enabled(self):
        with obs.session(Telemetry()):
            with pytest.raises(ValueError, match="unknown metric"):
                obs.add("not.a.metric")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="is a counter"):
            registry.set_gauge("trace.packets", 1.0)

    def test_counter_accumulates(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.add("trace.packets", 3)
            obs.add("trace.packets", 4)
        assert telemetry.snapshot()["counters"]["trace.packets"] == 7

    def test_gauge_last_write_wins(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.set_gauge("graph.nodes", 5)
            obs.set_gauge("graph.nodes", 9)
        assert telemetry.snapshot()["gauges"]["graph.nodes"] == 9

    def test_metric_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            MetricSpec("bogus", "x")
        with pytest.raises(ValueError, match="buckets"):
            MetricSpec("histogram", "x")
        with pytest.raises(ValueError, match="buckets"):
            MetricSpec("counter", "x", buckets=(1, 2))


class TestHistogram:
    def test_bucket_edges_upper_inclusive(self):
        hist = Histogram((2, 4, 8))
        hist.observe_many(np.array([1, 2, 3, 4, 5, 8, 9, 100]))
        # v <= 2 -> bucket 0; 2 < v <= 4 -> bucket 1; 4 < v <= 8 ->
        # bucket 2; v > 8 -> overflow.
        assert hist.counts.tolist() == [2, 2, 2, 2]
        assert hist.total == 8
        assert hist.sum == 132.0

    def test_mean(self):
        hist = Histogram((10,))
        assert hist.mean == 0.0
        hist.observe(4)
        hist.observe(6)
        assert hist.mean == 5.0

    def test_bad_edges_raise(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((5, 5))

    def test_merge(self):
        a, b = Histogram((2, 4)), Histogram((2, 4))
        a.observe(1)
        b.observe(3)
        b.observe(100)
        a.merge_dict(b.to_dict())
        assert a.counts.tolist() == [1, 1, 1]
        assert a.total == 3

    def test_merge_mismatched_edges_raises(self):
        a, b = Histogram((2, 4)), Histogram((2, 8))
        with pytest.raises(ValueError, match="different edges"):
            a.merge_dict(b.to_dict())

    def test_scalar_observe_matches_observe_many(self):
        # The scalar fast path (bisect on a plain list) must land every
        # value in the same bucket as the vectorised searchsorted path,
        # including the upper-inclusive edge cases.
        edges = (0.001, 0.01, 0.1, 1.0, 10.0)
        values = [0.0005, 0.001, 0.0011, 0.01, 0.05, 0.1, 1.0, 5.0, 10.0, 99.0]
        scalar, vectored = Histogram(edges), Histogram(edges)
        for value in values:
            scalar.observe(value)
        vectored.observe_many(np.array(values))
        assert scalar.counts.tolist() == vectored.counts.tolist()
        assert scalar.total == vectored.total
        assert scalar.sum == pytest.approx(vectored.sum)


class TestWorkerPoolAggregation:
    def _count_task(self, n):
        obs.add("trace.packets", n)
        obs.observe("corpus.sentence_length", n)
        return n

    def test_submit_merges_task_metrics(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with WorkerPool(workers=2) as pool:
                futures = [
                    pool.submit(self._count_task, n) for n in range(1, 11)
                ]
                assert sorted(f.result() for f in futures) == list(
                    range(1, 11)
                )
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["trace.packets"] == 55
        assert snapshot["histograms"]["corpus.sentence_length"]["total"] == 10

    def test_map_merges_task_metrics(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with WorkerPool(workers=3) as pool:
                pool.map(self._count_task, range(1, 11))
        assert telemetry.snapshot()["counters"]["trace.packets"] == 55

    def test_inline_pool_same_aggregation(self):
        results = {}
        for workers in (1, 4):
            telemetry = Telemetry()
            with obs.session(telemetry):
                with WorkerPool(workers=workers) as pool:
                    pool.map(self._count_task, range(1, 11))
            results[workers] = telemetry.snapshot()["counters"]
        assert results[1] == results[4]


class TestForkSafety:
    def test_refresh_releases_inherited_locks(self):
        # Simulate what a forked child inherits when another thread of
        # the parent sat inside a recorder critical section at fork
        # time: a locked mutex with nobody left to unlock it.
        telemetry = Telemetry()
        telemetry._lock.acquire()
        recorder._refresh_locks_after_fork()
        assert not telemetry._lock.locked()
        with obs.session(telemetry):
            obs.add("trace.packets", 1)  # must not deadlock
        assert telemetry.snapshot()["counters"]["trace.packets"] == 1

    @pytest.mark.skipif(
        not fork_available(), reason="fork-based pools unavailable"
    )
    def test_forked_child_records_while_parent_holds_lock(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            telemetry._lock.acquire()  # stands in for a mid-write thread
            try:
                pid = os.fork()
                if pid == 0:  # pragma: no cover - child process
                    status = 1
                    try:
                        obs.add("trace.packets", 1)
                        status = 0
                    finally:
                        os._exit(status)
                # poll so a regression shows up as a failure, not a hang
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    done, raw_status = os.waitpid(pid, os.WNOHANG)
                    if done:
                        break
                    time.sleep(0.05)
                else:
                    os.kill(pid, 9)
                    os.waitpid(pid, 0)
                    pytest.fail("forked child deadlocked on recorder lock")
            finally:
                telemetry._lock.release()
        assert raw_status == 0


class TestNdjsonExport:
    def _session(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("pipeline.fit") as sp:
                sp.set(items=10, items_unit="pairs")
                obs.add("trace.packets", 42)
                obs.set_gauge("graph.nodes", 7)
                obs.observe_many(
                    "corpus.sentence_length", np.array([3.0, 9.0])
                )
        return telemetry

    def test_records_structure(self):
        records = telemetry_records(self._session())
        kinds = [record["type"] for record in records]
        assert kinds == ["span", "counter", "gauge", "histogram"]
        span = records[0]
        assert span["path"] == "pipeline.fit" and span["depth"] == 0
        counter = records[1]
        assert counter["name"] == "trace.packets"
        assert counter["value"] == 42
        assert counter["deterministic"] is True

    def test_round_trip(self, tmp_path):
        telemetry = self._session()
        path = tmp_path / "metrics.ndjson"
        write_metrics_ndjson(telemetry, path)
        records = read_ndjson(path)
        assert records == telemetry_records(telemetry)

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "metrics.ndjson.gz"
        write_ndjson([{"a": 1}, {"b": [1, 2]}], path)
        with gzip.open(path, "rt") as handle:
            assert json.loads(handle.readline()) == {"a": 1}
        assert read_ndjson(path) == [{"a": 1}, {"b": [1, 2]}]

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"ok": 1}\nnot-json\n')
        with pytest.raises(ValueError, match=":2: malformed"):
            read_ndjson(path)

    def test_counters_from_records_filters_deterministic(self):
        records = [
            {"type": "counter", "name": "a", "value": 1, "deterministic": True},
            {"type": "counter", "name": "b", "value": 2, "deterministic": False},
            {"type": "gauge", "name": "c", "value": 3, "deterministic": True},
        ]
        assert counters_from_records(records) == {"a": 1, "b": 2}
        assert counters_from_records(records, deterministic_only=True) == {
            "a": 1
        }


class TestProgress:
    def test_epoch_event_rates(self):
        event = epoch_event(0, 4, 500, 2000, 2.0, loss=1.5)
        assert event.pairs_per_second == 250.0
        assert event.eta_seconds == pytest.approx(6.0)
        assert event.loss == 1.5

    def test_zero_elapsed_is_safe(self):
        event = epoch_event(0, 1, 0, 0, 0.0)
        assert event.pairs_per_second == 0.0
        assert event.eta_seconds == 0.0
        assert event.loss is None

    def test_fit_emits_one_event_per_epoch(self):
        from repro.w2v.model import Word2Vec

        rng = np.random.default_rng(3)
        sentences = [
            rng.integers(0, 20, size=12).astype(np.int64) for _ in range(30)
        ]
        events = []
        model = Word2Vec(
            vector_size=8, epochs=3, seed=5, progress=events.append
        )
        model.fit(sentences)
        assert [event.epoch for event in events] == [0, 1, 2]
        assert all(event.total_epochs == 3 for event in events)
        assert events[-1].pairs_processed > 0
        # pairs_processed tracks the *expected* pair count only
        # approximately (buffered pairs carry over), so the final ETA
        # is near zero, not exactly zero.
        assert 0.0 <= events[-1].eta_seconds < 0.1
        assert all(event.loss is not None and event.loss > 0 for event in events)

    def test_parallel_fit_emits_events(self):
        from repro.w2v.model import Word2Vec

        rng = np.random.default_rng(3)
        sentences = [
            rng.integers(0, 20, size=12).astype(np.int64) for _ in range(30)
        ]
        events = []
        model = Word2Vec(
            vector_size=8, epochs=2, seed=5, workers=2, progress=events.append
        )
        model.fit(sentences)
        assert [event.epoch for event in events] == [0, 1]
        assert all(event.loss is not None and event.loss > 0 for event in events)


class TestDeterminism:
    """Instrumentation must not perturb the reference RNG streams."""

    def _sentences(self):
        rng = np.random.default_rng(0)
        return [
            rng.integers(0, 40, size=rng.integers(3, 25)).astype(np.int64)
            for _ in range(80)
        ]

    def test_instrumented_fit_bit_identical(self):
        from repro.w2v.model import Word2Vec

        sentences = self._sentences()
        plain = Word2Vec(vector_size=12, epochs=2, seed=9).fit(sentences)
        instrumented_model = Word2Vec(
            vector_size=12, epochs=2, seed=9, progress=lambda event: None
        )
        with obs.session(Telemetry(profile_memory=True)):
            instrumented = instrumented_model.fit(sentences)
        assert np.array_equal(plain.vectors, instrumented.vectors)
        assert np.array_equal(plain.tokens, instrumented.tokens)

    def test_fit_bit_identical_with_live_sink(self, tmp_path):
        # The background flusher must observe, never perturb: a fit
        # streamed at a fast flush interval is bit-identical to the
        # uninstrumented one.
        from repro.obs import TelemetrySink
        from repro.w2v.model import Word2Vec

        sentences = self._sentences()
        plain = Word2Vec(vector_size=12, epochs=2, seed=9).fit(sentences)
        telemetry = Telemetry()
        sink = TelemetrySink(
            telemetry, tmp_path / "live.ndjson", interval=0.01
        )
        with obs.session(telemetry):
            with sink:
                streamed = Word2Vec(vector_size=12, epochs=2, seed=9).fit(
                    sentences
                )
        assert np.array_equal(plain.vectors, streamed.vectors)
        assert np.array_equal(plain.tokens, streamed.tokens)
        assert (tmp_path / "live.ndjson").exists()


class TestStageTable:
    def test_table_contains_stages_and_throughput(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            with obs.span("pipeline.fit"):
                with obs.span("train.fit") as sp:
                    sp.set(items=50_000, items_unit="pairs")
        table = format_stage_table(telemetry, title="Stages")
        lines = table.splitlines()
        assert lines[0] == "Stages"
        assert any(line.startswith("pipeline.fit") for line in lines)
        assert any(line.startswith("  train.fit") for line in lines)
        assert "pairs/s" in table
        assert "Peak mem" in table

    def test_counters_table(self):
        telemetry = Telemetry()
        with obs.session(telemetry):
            obs.add("trace.packets", 1234)
        table = obs.format_counters_table(telemetry)
        assert "trace.packets" in table
        assert "1,234" in table


class TestMetricDeclarations:
    def test_all_spec_kinds_valid(self):
        for name, spec in METRICS.items():
            assert spec.kind in (
                "counter",
                "gauge",
                "histogram",
                "sketch",
            ), name
            assert spec.description, name

    def test_deterministic_flags(self):
        # Schedule-dependent training/louvain metrics must be flagged.
        assert not METRICS["train.pairs"].deterministic
        assert not METRICS["train.negative_draws"].deterministic
        assert not METRICS["louvain.passes"].deterministic
        assert METRICS["trace.packets"].deterministic
        assert METRICS["corpus.tokens"].deterministic
        assert METRICS["knn.distance_computations"].deterministic


class TestUpdateMetricsDeterminism:
    """Deterministic metrics must agree between workers=1 and workers=2
    through a full fit + warm update, exercising snapshot/merge across
    worker task scopes."""

    @pytest.fixture(scope="class")
    def snapshots(self, small_bundle, tmp_path_factory):
        from repro.core import DarkVec, DarkVecConfig

        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        head = trace.between(trace.start_time, cut)
        tail = trace.between(cut, cut + 86400.0)
        snapshots = {}
        for workers in (1, 2):
            config = DarkVecConfig(
                service="domain",
                epochs=2,
                seed=3,
                workers=workers,
                window_days=3.0,
                cache_dir=tmp_path_factory.mktemp(f"workers{workers}"),
            )
            telemetry = Telemetry()
            with obs.session(telemetry):
                darkvec = DarkVec(config).fit(head)
                darkvec.update(tail)
            snapshots[workers] = telemetry.snapshot()
        return snapshots

    def test_deterministic_counters_agree(self, snapshots):
        names = set(snapshots[1]["counters"]) | set(snapshots[2]["counters"])
        for name in names:
            if not METRICS[name].deterministic:
                continue
            assert snapshots[1]["counters"].get(name) == snapshots[2][
                "counters"
            ].get(name), name

    def test_deterministic_gauges_agree(self, snapshots):
        names = set(snapshots[1]["gauges"]) | set(snapshots[2]["gauges"])
        for name in names:
            if not METRICS[name].deterministic:
                continue
            assert snapshots[1]["gauges"].get(name) == pytest.approx(
                snapshots[2]["gauges"].get(name)
            ), name

    def test_deterministic_histograms_agree(self, snapshots):
        names = set(snapshots[1]["histograms"]) | set(snapshots[2]["histograms"])
        for name in names:
            if not METRICS[name].deterministic:
                continue
            assert (
                snapshots[1]["histograms"][name]
                == snapshots[2]["histograms"][name]
            ), name

    def test_monitor_gauges_present(self, snapshots):
        # The update path with a registry attached emits quality gauges.
        for workers in (1, 2):
            gauges = snapshots[workers]["gauges"]
            assert "quality.empty_window_rate" in gauges
            assert "drift.cosine_displacement" in gauges

    def test_ingest_histogram_records_all_senders(self, snapshots, small_bundle):
        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        head = trace.between(trace.start_time, cut)
        hist = snapshots[1]["histograms"]["ingest.sender_packets"]
        # fit ingests the 3-day head; update adds the day-4 slice.
        assert hist["total"] >= len(head.observed_senders())
