"""Cross-module property-based tests (hypothesis).

These pin down invariants that the unit tests only sample:
- the corpus conserves filtered packets for any service map / dT;
- k-NN search returns the exact nearest rows for random point sets;
- Louvain partitions are valid and never worse than the trivial
  all-in-one partition;
- the negative-sampling distribution matches the analytic form.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.builder import CorpusBuilder
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.knn.classifier import knn_search
from repro.services.single import SingleServiceMap
from repro.trace.packet import TCP, Trace
from repro.w2v.mathutils import unit_rows
from repro.w2v.vocab import Vocabulary


@st.composite
def random_traces(draw):
    n = draw(st.integers(2, 60))
    times = sorted(
        draw(
            st.lists(
                st.floats(0, 1e5, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    senders = draw(
        st.lists(st.integers(0, 9), min_size=n, max_size=n)
    )
    ports = draw(st.lists(st.integers(0, 65_535), min_size=n, max_size=n))
    return Trace.from_events(
        times=np.array(times),
        sender_ips_per_packet=np.array(senders, dtype=np.uint64) + 100,
        ports=np.array(ports),
        protos=np.full(n, TCP),
        receivers=np.zeros(n, dtype=np.uint8),
        mirai=np.zeros(n, dtype=bool),
    )


class TestCorpusConservation:
    @settings(max_examples=40, deadline=None)
    @given(random_traces(), st.floats(10.0, 1e5))
    def test_tokens_conserved(self, trace, delta_t):
        corpus = CorpusBuilder(SingleServiceMap(), delta_t=delta_t).build(trace)
        assert corpus.n_tokens == len(trace)

    @settings(max_examples=40, deadline=None)
    @given(random_traces(), st.integers(1, 20))
    def test_filter_conserves_kept_packets(self, trace, min_packets):
        active = trace.active_senders(min_packets)
        corpus = CorpusBuilder(SingleServiceMap(), delta_t=3600.0).build(
            trace, keep_senders=active
        )
        expected = int(
            np.isin(trace.senders, active).sum()
        )
        assert corpus.n_tokens == expected


class TestKnnExactness:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 10_000),
        st.integers(5, 40),
        st.integers(1, 4),
    )
    def test_matches_bruteforce(self, seed, n, k):
        rng = np.random.default_rng(seed)
        vectors = rng.normal(size=(n, 4))
        units = unit_rows(vectors)
        neighbors, sims = knn_search(units, np.arange(n), k=k)
        scores = units @ units.T
        np.fill_diagonal(scores, -np.inf)
        for i in range(n):
            best = np.sort(scores[i])[::-1][:k]
            assert np.allclose(np.sort(sims[i])[::-1], best, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000), st.integers(5, 30))
    def test_similarity_bounds(self, seed, n):
        rng = np.random.default_rng(seed)
        units = unit_rows(rng.normal(size=(n, 3)))
        _, sims = knn_search(units, np.arange(n), k=2)
        assert sims.max() <= 1.0 + 1e-9
        assert sims.min() >= -1.0 - 1e-9


class TestLouvainProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1_000), st.integers(4, 25), st.floats(0.05, 0.5))
    def test_partition_valid_and_not_worse_than_trivial(self, seed, n, p):
        rng = np.random.default_rng(seed)
        adjacency = [dict() for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    w = float(rng.random()) + 0.1
                    adjacency[i][j] = w
                    adjacency[j][i] = w
        communities = louvain_communities(adjacency, seed=seed)
        assert len(communities) == n
        assert communities.min() >= 0
        trivial = modularity(adjacency, np.zeros(n, dtype=int))
        ours = modularity(adjacency, communities)
        assert ours >= trivial - 1e-9


class TestVocabularyProperties:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.lists(st.integers(-100, 100), min_size=1, max_size=30),
            min_size=1,
            max_size=10,
        ),
        st.integers(1, 5),
    )
    def test_total_count_after_pruning(self, sentences, min_count):
        arrays = [np.array(s, dtype=np.int64) for s in sentences]
        vocab = Vocabulary.build(arrays, min_count=min_count)
        flat = np.concatenate(arrays)
        expected = sum(
            count
            for count in np.unique(flat, return_counts=True)[1]
            if count >= min_count
        )
        assert vocab.total_count == expected

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
    def test_encode_decode_consistency(self, tokens):
        arr = np.array(tokens, dtype=np.int64)
        vocab = Vocabulary.build([arr])
        ids = vocab.encode(arr)
        assert (ids >= 0).all()
        assert np.array_equal(vocab.decode(ids), arr)
