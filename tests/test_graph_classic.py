"""Tests for repro.graph.classic (k-Means, DBSCAN, agglomerative)."""

import numpy as np
import pytest

from repro.graph.classic import (
    cosine_agglomerative,
    cosine_dbscan,
    cosine_kmeans,
)


@pytest.fixture()
def three_blobs():
    rng = np.random.default_rng(0)
    directions = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
    vectors = np.vstack(
        [d + rng.normal(0, 0.05, size=(15, 3)) for d in directions]
    )
    truth = np.repeat(np.arange(3), 15)
    return vectors, truth


def _partition_matches(labels, truth):
    """Every true cluster maps to exactly one predicted label."""
    for t in np.unique(truth):
        if len(np.unique(labels[truth == t])) != 1:
            return False
    return len(np.unique(labels)) == len(np.unique(truth))


class TestCosineKmeans:
    def test_recovers_blobs(self, three_blobs):
        vectors, truth = three_blobs
        labels = cosine_kmeans(vectors, 3, seed=1)
        assert _partition_matches(labels, truth)

    def test_deterministic_for_seed(self, three_blobs):
        vectors, _ = three_blobs
        a = cosine_kmeans(vectors, 3, seed=5)
        b = cosine_kmeans(vectors, 3, seed=5)
        assert np.array_equal(a, b)

    def test_k_equals_n(self, three_blobs):
        vectors, _ = three_blobs
        labels = cosine_kmeans(vectors[:5], 5, seed=0)
        assert len(np.unique(labels)) == 5

    def test_invalid_k(self, three_blobs):
        vectors, _ = three_blobs
        with pytest.raises(ValueError):
            cosine_kmeans(vectors, 0)
        with pytest.raises(ValueError):
            cosine_kmeans(vectors[:2], 5)


class TestCosineDbscan:
    def test_recovers_blobs(self, three_blobs):
        vectors, truth = three_blobs
        labels = cosine_dbscan(vectors, eps=0.05, min_samples=3)
        clustered = labels >= 0
        assert clustered.mean() > 0.9
        assert _partition_matches(labels[clustered], truth[clustered])

    def test_isolated_points_are_noise(self, three_blobs):
        vectors, _ = three_blobs
        outlier = np.array([[-1.0, -1.0, -1.0]])
        labels = cosine_dbscan(
            np.vstack([vectors, outlier]), eps=0.05, min_samples=3
        )
        assert labels[-1] == -1

    def test_validation(self, three_blobs):
        vectors, _ = three_blobs
        with pytest.raises(ValueError):
            cosine_dbscan(vectors, eps=0.0)
        with pytest.raises(ValueError):
            cosine_dbscan(vectors, min_samples=0)


class TestCosineAgglomerative:
    def test_recovers_blobs(self, three_blobs):
        vectors, truth = three_blobs
        labels = cosine_agglomerative(vectors, 3)
        assert _partition_matches(labels, truth)

    def test_single_point(self):
        labels = cosine_agglomerative(np.array([[1.0, 0.0]]), 1)
        assert labels.tolist() == [0]

    def test_n_clusters_respected(self, three_blobs):
        vectors, _ = three_blobs
        labels = cosine_agglomerative(vectors, 5)
        assert len(np.unique(labels)) == 5

    def test_invalid(self, three_blobs):
        vectors, _ = three_blobs
        with pytest.raises(ValueError):
            cosine_agglomerative(vectors, 0)
