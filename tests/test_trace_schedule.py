"""Tests for repro.trace.schedule."""

import numpy as np
import pytest

from repro.trace.packet import SECONDS_PER_DAY
from repro.trace.schedule import (
    BurstSchedule,
    ChurnSchedule,
    CompositeSchedule,
    ContinuousSchedule,
    PeriodicSchedule,
    RampSchedule,
    SparseSchedule,
    StaggeredSchedule,
)
from repro.utils.rng import make_rng

T0 = 0.0
T1 = 10 * SECONDS_PER_DAY


def _sample(schedule, n=20, seed=0):
    return schedule.sample(make_rng(seed), T0, T1, n)


def _all_in_range(events):
    return all(((e >= T0) & (e <= T1)).all() for e in events if len(e))


class TestContinuous:
    def test_rate_controls_volume(self):
        low = sum(len(e) for e in _sample(ContinuousSchedule(1.0)))
        high = sum(len(e) for e in _sample(ContinuousSchedule(20.0)))
        assert high > low * 5

    def test_in_range(self):
        assert _all_in_range(_sample(ContinuousSchedule(5.0)))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ContinuousSchedule(0.0)

    def test_expected_count_close(self):
        events = _sample(ContinuousSchedule(10.0), n=100, seed=1)
        mean = np.mean([len(e) for e in events])
        assert 80 < mean < 120  # 10/day * 10 days


class TestChurn:
    def test_lifetimes_limit_span(self):
        events = _sample(ChurnSchedule(50.0, mean_lifetime_days=1.0), n=50)
        spans = [e.max() - e.min() for e in events if len(e) > 1]
        assert np.median(spans) < 5 * SECONDS_PER_DAY

    def test_in_range(self):
        assert _all_in_range(_sample(ChurnSchedule(5.0, 2.0)))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ChurnSchedule(0, 1)
        with pytest.raises(ValueError):
            ChurnSchedule(1, 0)


class TestPeriodic:
    def test_activity_only_in_duty_windows(self):
        schedule = PeriodicSchedule(period_days=1.0, duty=0.25, rate_per_active_day=80)
        events = np.concatenate(_sample(schedule, n=10))
        phase = (events % SECONDS_PER_DAY) / SECONDS_PER_DAY
        assert phase.max() <= 0.25 + 1e-9

    def test_phase_shifts_windows(self):
        schedule = PeriodicSchedule(1.0, 0.25, 80, phase=0.5)
        events = np.concatenate(_sample(schedule, n=10))
        phase = (events % SECONDS_PER_DAY) / SECONDS_PER_DAY
        assert phase.min() >= 0.5 - 1e-9
        assert phase.max() <= 0.75 + 1e-9

    def test_full_duty_equals_continuous_coverage(self):
        schedule = PeriodicSchedule(1.0, 1.0, 10)
        events = np.concatenate(_sample(schedule, n=50))
        assert len(events) > 0
        assert _all_in_range([events])

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            PeriodicSchedule(1.0, 0.0, 10)
        with pytest.raises(ValueError):
            PeriodicSchedule(1.0, 1.5, 10)


class TestBurst:
    def test_events_inside_bursts(self):
        schedule = BurstSchedule(n_bursts=3, burst_duration_s=600, packets_per_burst=5)
        events = _sample(schedule, n=8)
        # All senders share burst times: the union of events clusters
        # into at most 3 windows of 600 s.
        merged = np.sort(np.concatenate(events))
        gaps = np.diff(merged)
        assert (gaps > 600).sum() <= 2

    def test_final_day_pinning(self):
        schedule = BurstSchedule(4, 600, 5, include_final_day=True)
        events = np.concatenate(_sample(schedule, n=5))
        assert events.max() >= T1 - SECONDS_PER_DAY

    def test_every_sender_fires(self):
        events = _sample(BurstSchedule(2, 60, 3), n=10)
        assert all(len(e) >= 2 for e in events)


class TestSparse:
    def test_senders_independent_without_anchors(self):
        a, b = _sample(SparseSchedule(10, 2), n=2)
        # Distinct senders should not share event times.
        assert not np.intersect1d(np.round(a), np.round(b)).size > 5

    def test_shared_anchors_create_overlap(self):
        schedule = SparseSchedule(
            30, 1, shared_anchor_prob=1.0, n_anchors=3, jitter_s=1.0
        )
        events = _sample(schedule, n=10)
        merged = np.sort(np.concatenate(events))
        gaps = np.diff(merged)
        # Everything concentrates near 3 anchors.
        assert (gaps > 3600).sum() <= 2

    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            SparseSchedule(5, 2, shared_anchor_prob=0.5, n_anchors=0)


class TestStaggered:
    def test_subgroup_assignment_balanced(self):
        schedule = StaggeredSchedule(4, 10)
        groups = schedule.subgroups(20)
        assert np.bincount(groups).tolist() == [5, 5, 5, 5]

    def test_subgroups_active_in_own_slice(self):
        schedule = StaggeredSchedule(2, 50)
        events = _sample(schedule, n=4)
        mid = (T0 + T1) / 2
        assert all(e.max() <= mid for e in events[:2] if len(e))
        assert all(e.min() >= mid for e in events[2:] if len(e))


class TestRamp:
    def test_late_heavy(self):
        events = np.concatenate(_sample(RampSchedule(20.0, growth=3.0), n=50))
        first_half = (events < (T0 + T1) / 2).sum()
        second_half = (events >= (T0 + T1) / 2).sum()
        assert second_half > first_half * 1.5


class TestComposite:
    def test_merges_components(self):
        composite = CompositeSchedule(
            ContinuousSchedule(5.0), ContinuousSchedule(5.0)
        )
        merged = _sample(composite, n=30)
        single = _sample(ContinuousSchedule(5.0), n=30)
        assert sum(len(e) for e in merged) > sum(len(e) for e in single) * 1.5

    def test_subgroups_from_component(self):
        composite = CompositeSchedule(
            StaggeredSchedule(3, 10), ContinuousSchedule(1.0)
        )
        assert composite.subgroups(9).max() == 2

    def test_needs_two_components(self):
        with pytest.raises(ValueError):
            CompositeSchedule(ContinuousSchedule(1.0))
