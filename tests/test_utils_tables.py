"""Tests for repro.utils.tables and repro.utils.timer."""

import time

import pytest

from repro.utils.tables import format_table
from repro.utils.timer import Timer


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "count"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0] == "  1"
        assert rows[1] == "100"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005
        assert t.elapsed != first or t.elapsed >= 0

    def test_exit_without_enter_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)
