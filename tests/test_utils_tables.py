"""Tests for repro.utils.tables and repro.utils.timer."""

import time

import pytest

from repro.utils.tables import format_table
from repro.utils.timer import Timer


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "count"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")

    def test_title_included(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0] == "  1"
        assert rows[1] == "100"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005
        assert t.elapsed != first or t.elapsed >= 0

    def test_exit_without_enter_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            t.__exit__(None, None, None)

    def test_exit_does_not_mask_propagating_exception(self):
        t = Timer()
        # A broken exit path while ValueError propagates must not
        # replace it with the timer's own RuntimeError.
        with pytest.raises(ValueError, match="original"):
            with t:
                t.__exit__(None, None, None)  # spuriously closes the block
                raise ValueError("original")

    def test_reentrant_nesting(self):
        t = Timer()
        with t:
            time.sleep(0.002)
            with t:
                time.sleep(0.002)
            inner = t.elapsed
            time.sleep(0.002)
        outer = t.elapsed
        assert inner >= 0.002
        assert outer >= inner + 0.002

    def test_lap_returns_consecutive_splits(self):
        with Timer() as t:
            time.sleep(0.002)
            first = t.lap()
            time.sleep(0.004)
            second = t.lap()
        assert first >= 0.002
        assert second >= 0.004
        assert t.elapsed >= first + second

    def test_lap_outside_block_raises(self):
        t = Timer()
        with pytest.raises(RuntimeError, match="lap"):
            t.lap()
        with t:
            t.lap()
        with pytest.raises(RuntimeError, match="lap"):
            t.lap()
