"""Smoke checks for the example scripts.

Running the examples end-to-end takes minutes, so the test suite only
verifies that each script parses, imports its dependencies, and exposes
a ``main`` callable guarded by ``__main__``.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{path.name} lacks a main()"
    has_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert has_guard, f"{path.name} lacks an __main__ guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Importing the module must not raise (main() is not executed)."""
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert callable(module.main)


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "cluster_discovery.py",
        "extend_ground_truth.py",
        "compare_baselines.py",
        "transfer_darknets.py",
        "visualize_embedding.py",
    } <= names
