"""Tests for repro.core.report (automatic cluster characterisation)."""

import numpy as np
import pytest

from repro.core.inspection import inspect_clusters
from repro.core.report import describe_cluster, describe_clusters


@pytest.fixture(scope="module")
def findings(fitted_darkvec, small_bundle):
    result = fitted_darkvec.cluster(k_prime=3, seed=0)
    labels = small_bundle.truth.labels_for(small_bundle.trace)
    profiles = inspect_clusters(
        small_bundle.trace,
        fitted_darkvec.embedding.tokens,
        result.communities,
        labels=labels,
        min_size=5,
    )
    return describe_clusters(small_bundle.trace, profiles)


class TestDescribeClusters:
    def test_every_cluster_described(self, findings):
        assert len(findings) > 3
        for finding in findings:
            assert finding.headline.startswith("C")

    def test_netbios_cluster_flagged_as_single_subnet(
        self, findings, small_bundle
    ):
        unknown1 = set(
            small_bundle.sender_indices_of("unknown1_netbios").tolist()
        )
        for finding in findings:
            members = set(finding.profile.senders.tolist())
            overlap = len(members & unknown1)
            # Only a cluster that is essentially the netbios actor must
            # carry the single-subnet trait; merged clusters need not.
            if overlap > len(unknown1) * 0.5 and overlap > 0.7 * len(members):
                assert any("/24" in t for t in finding.traits), finding.traits
                return
        pytest.skip("netbios cluster not isolated on the tiny fixture")

    def test_mirai_cluster_has_fingerprint_trait(self, findings):
        flagged = [
            f
            for f in findings
            if any("Mirai fingerprint" in t for t in f.traits)
        ]
        assert flagged, "no cluster with a Mirai-fingerprint majority"
        for finding in flagged:
            assert finding.profile.label_composition.get("Mirai-like", 0) > 0

    def test_periodicity_annotated_for_regular_groups(
        self, small_bundle, fitted_darkvec
    ):
        # Build a profile for the strictly periodic unknown1 actor.
        from repro.core.inspection import ClusterProfile

        senders = small_bundle.sender_indices_of("unknown1_netbios")
        profile = ClusterProfile(
            cluster_id=999,
            sender_rows=np.arange(len(senders)),
            senders=senders,
            n_packets=0,
            n_ports=0,
            top_ports=[],
            n_subnets24=1,
            n_subnets16=1,
        )
        finding = describe_cluster(small_bundle.trace, profile)
        assert finding.period is not None
        assert finding.period.is_regular

    def test_check_period_disabled(self, small_bundle, findings):
        finding = describe_cluster(
            small_bundle.trace, findings[0].profile, check_period=False
        )
        assert finding.period is None
