"""Tests for repro.corpus."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus, Sentence, _one_sided_pairs
from repro.corpus.windows import WindowGrid, window_indices
from repro.services.domain import DomainServiceMap
from repro.services.single import SingleServiceMap


class TestWindowIndices:
    def test_basic_binning(self):
        idx = window_indices(np.array([0.0, 10.0, 3599.0, 3600.0]), 0.0, 3600.0)
        assert idx.tolist() == [0, 0, 0, 1]

    def test_before_start_raises(self):
        with pytest.raises(ValueError):
            window_indices(np.array([-1.0]), 0.0, 10.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            window_indices(np.array([1.0]), 0.0, 0.0)

    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50),
        st.floats(1.0, 1e5),
    )
    def test_window_contains_timestamp(self, times, delta):
        times_arr = np.sort(np.array(times))
        idx = window_indices(times_arr, 0.0, delta)
        assert np.all(idx * delta <= times_arr)
        assert np.all(times_arr < (idx + 1) * delta + 1e-6 * delta)


class TestWindowGrid:
    def test_indices_match_window_indices(self):
        times = np.array([0.0, 10.0, 3599.0, 3600.0, 7200.0])
        grid = WindowGrid(origin=0.0, delta_t=3600.0)
        assert np.array_equal(
            grid.indices(times), window_indices(times, 0.0, 3600.0)
        )

    def test_index_of_and_start_roundtrip(self):
        grid = WindowGrid(origin=100.0, delta_t=50.0)
        for index in (0, 1, 7):
            assert grid.index_of(grid.start(index)) == index
            # any instant strictly inside the cell maps back to it
            assert grid.index_of(grid.start(index) + 49.999) == index

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            WindowGrid(origin=0.0, delta_t=0.0)

    def test_keep_from_clamps_at_origin(self):
        grid = WindowGrid(origin=0.0, delta_t=3600.0)
        # end time well inside the window: nothing to evict
        assert grid.keep_from(end_time=7200.0, window_days=30.0) == 0

    def test_keep_from_evicts_whole_windows(self):
        grid = WindowGrid(origin=0.0, delta_t=3600.0)
        day = 86400.0
        keep = grid.keep_from(end_time=3 * day, window_days=1.0)
        # the cut instant (end - 1 day) lands exactly on a boundary
        assert keep == grid.index_of(2 * day)

    def test_invalid_window_days(self):
        grid = WindowGrid(origin=0.0, delta_t=3600.0)
        with pytest.raises(ValueError):
            grid.keep_from(end_time=100.0, window_days=0.0)

    def test_rebuild_from_floors_at_keep_from(self):
        grid = WindowGrid(origin=0.0, delta_t=3600.0)
        assert grid.rebuild_from(start_time=10 * 3600.0, keep_from=3) == 10
        # a batch starting before the eviction cut rebuilds from the cut
        assert grid.rebuild_from(start_time=1 * 3600.0, keep_from=3) == 3

    @given(
        st.floats(0.0, 1e6, allow_nan=False),
        st.floats(1.0, 1e5),
        st.floats(0.1, 40.0),
        st.floats(0.0, 50.0 * 86400.0),
    )
    def test_keep_from_monotone_in_end_time(
        self, origin, delta, window_days, span
    ):
        """Eviction never moves backwards as time advances.

        This is the property the sub-day update path relies on: the
        windows an intermediate micro-batch evicts are always a subset
        of what the merged daily update would evict.
        """
        grid = WindowGrid(origin=origin, delta_t=delta)
        early = origin + span
        late = early + span / 2 + 1.0
        assert grid.keep_from(early, window_days) <= grid.keep_from(
            late, window_days
        )


class TestSentenceAndCorpus:
    def test_sentence_length(self):
        s = Sentence(tokens=np.array([1, 2, 3]), service_id=0, window=0)
        assert len(s) == 3

    def test_sentence_must_be_1d(self):
        with pytest.raises(ValueError):
            Sentence(tokens=np.zeros((2, 2)), service_id=0, window=0)

    def test_corpus_counters(self):
        corpus = Corpus(
            sentences=[
                Sentence(np.array([1, 1, 2]), 0, 0),
                Sentence(np.array([2, 3]), 1, 0),
            ]
        )
        assert corpus.n_tokens == 5
        assert corpus.vocabulary_size == 3
        assert corpus.token_counts() == {1: 2, 2: 2, 3: 1}

    def test_sentence_length_stats(self):
        corpus = Corpus(
            sentences=[Sentence(np.array([1]), 0, 0), Sentence(np.array([1, 2, 3]), 0, 1)]
        )
        stats = corpus.sentence_length_stats()
        assert stats == {"min": 1.0, "mean": 2.0, "max": 3.0}

    def test_skipgram_count_matches_bruteforce(self):
        def brute(n, c):
            return sum(min(i, c) + min(n - 1 - i, c) for i in range(n))

        for n in (2, 5, 10, 60):
            for c in (1, 3, 25):
                corpus = Corpus(
                    sentences=[Sentence(np.arange(n), 0, 0)]
                )
                assert corpus.skipgram_count(c) == brute(n, c), (n, c)

    @given(st.integers(2, 500), st.integers(1, 100))
    def test_one_sided_pairs_property(self, n, c):
        assert _one_sided_pairs(n, c) == sum(min(i, c) for i in range(n))


class TestCorpusBuilder:
    def test_tokens_conserved(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=100.0)
        corpus = builder.build(tiny_trace)
        assert corpus.n_tokens == len(tiny_trace)

    def test_sentences_time_ordered(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=1e6)
        corpus = builder.build(tiny_trace)
        assert len(corpus) == 1
        # Tokens appear in packet time order.
        assert corpus.sentences[0].tokens.tolist() == tiny_trace.senders.tolist()

    def test_delta_t_splits_sentences(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=5.0)
        corpus = builder.build(tiny_trace)
        assert len(corpus) == 2  # timestamps 0-9 with dT=5

    def test_services_split_sentences(self, tiny_trace):
        builder = CorpusBuilder(DomainServiceMap(), delta_t=1e6)
        corpus = builder.build(tiny_trace)
        services = {s.service_id for s in corpus.sentences}
        assert len(services) >= 4  # Telnet, SMB, HTTP, SSH, DNS

    def test_keep_senders_filter(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=1e6)
        corpus = builder.build(tiny_trace, keep_senders=np.array([0]))
        assert corpus.n_tokens == 5
        assert set(np.unique(corpus.sentences[0].tokens)) == {0}

    def test_empty_trace(self):
        from repro.trace.packet import Trace

        corpus = CorpusBuilder(SingleServiceMap()).build(Trace.empty())
        assert len(corpus) == 0
        assert corpus.n_tokens == 0

    def test_explicit_t_start(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=5.0)
        corpus = builder.build(tiny_trace, t_start=-1.0)
        windows = {s.window for s in corpus.sentences}
        assert windows == {0, 1, 2}

    def test_invalid_delta_t(self):
        with pytest.raises(ValueError):
            CorpusBuilder(SingleServiceMap(), delta_t=-1.0)

    def test_real_trace_structure(self, small_trace):
        builder = CorpusBuilder(DomainServiceMap(), delta_t=3600.0)
        active = small_trace.active_senders(10)
        corpus = builder.build(small_trace, keep_senders=active)
        assert corpus.n_tokens > 0
        # All tokens are active senders.
        active_set = set(active.tolist())
        for sentence in corpus.sentences[:50]:
            assert set(sentence.tokens.tolist()) <= active_set
        # Window ids fit within the trace span.
        max_window = max(s.window for s in corpus.sentences)
        assert max_window <= int(small_trace.duration_days * 24) + 1
