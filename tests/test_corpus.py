"""Tests for repro.corpus."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.corpus.builder import CorpusBuilder
from repro.corpus.document import Corpus, Sentence, _one_sided_pairs
from repro.corpus.windows import window_indices
from repro.services.domain import DomainServiceMap
from repro.services.single import SingleServiceMap


class TestWindowIndices:
    def test_basic_binning(self):
        idx = window_indices(np.array([0.0, 10.0, 3599.0, 3600.0]), 0.0, 3600.0)
        assert idx.tolist() == [0, 0, 0, 1]

    def test_before_start_raises(self):
        with pytest.raises(ValueError):
            window_indices(np.array([-1.0]), 0.0, 10.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            window_indices(np.array([1.0]), 0.0, 0.0)

    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=50),
        st.floats(1.0, 1e5),
    )
    def test_window_contains_timestamp(self, times, delta):
        times_arr = np.sort(np.array(times))
        idx = window_indices(times_arr, 0.0, delta)
        assert np.all(idx * delta <= times_arr)
        assert np.all(times_arr < (idx + 1) * delta + 1e-6 * delta)


class TestSentenceAndCorpus:
    def test_sentence_length(self):
        s = Sentence(tokens=np.array([1, 2, 3]), service_id=0, window=0)
        assert len(s) == 3

    def test_sentence_must_be_1d(self):
        with pytest.raises(ValueError):
            Sentence(tokens=np.zeros((2, 2)), service_id=0, window=0)

    def test_corpus_counters(self):
        corpus = Corpus(
            sentences=[
                Sentence(np.array([1, 1, 2]), 0, 0),
                Sentence(np.array([2, 3]), 1, 0),
            ]
        )
        assert corpus.n_tokens == 5
        assert corpus.vocabulary_size == 3
        assert corpus.token_counts() == {1: 2, 2: 2, 3: 1}

    def test_sentence_length_stats(self):
        corpus = Corpus(
            sentences=[Sentence(np.array([1]), 0, 0), Sentence(np.array([1, 2, 3]), 0, 1)]
        )
        stats = corpus.sentence_length_stats()
        assert stats == {"min": 1.0, "mean": 2.0, "max": 3.0}

    def test_skipgram_count_matches_bruteforce(self):
        def brute(n, c):
            return sum(min(i, c) + min(n - 1 - i, c) for i in range(n))

        for n in (2, 5, 10, 60):
            for c in (1, 3, 25):
                corpus = Corpus(
                    sentences=[Sentence(np.arange(n), 0, 0)]
                )
                assert corpus.skipgram_count(c) == brute(n, c), (n, c)

    @given(st.integers(2, 500), st.integers(1, 100))
    def test_one_sided_pairs_property(self, n, c):
        assert _one_sided_pairs(n, c) == sum(min(i, c) for i in range(n))


class TestCorpusBuilder:
    def test_tokens_conserved(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=100.0)
        corpus = builder.build(tiny_trace)
        assert corpus.n_tokens == len(tiny_trace)

    def test_sentences_time_ordered(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=1e6)
        corpus = builder.build(tiny_trace)
        assert len(corpus) == 1
        # Tokens appear in packet time order.
        assert corpus.sentences[0].tokens.tolist() == tiny_trace.senders.tolist()

    def test_delta_t_splits_sentences(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=5.0)
        corpus = builder.build(tiny_trace)
        assert len(corpus) == 2  # timestamps 0-9 with dT=5

    def test_services_split_sentences(self, tiny_trace):
        builder = CorpusBuilder(DomainServiceMap(), delta_t=1e6)
        corpus = builder.build(tiny_trace)
        services = {s.service_id for s in corpus.sentences}
        assert len(services) >= 4  # Telnet, SMB, HTTP, SSH, DNS

    def test_keep_senders_filter(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=1e6)
        corpus = builder.build(tiny_trace, keep_senders=np.array([0]))
        assert corpus.n_tokens == 5
        assert set(np.unique(corpus.sentences[0].tokens)) == {0}

    def test_empty_trace(self):
        from repro.trace.packet import Trace

        corpus = CorpusBuilder(SingleServiceMap()).build(Trace.empty())
        assert len(corpus) == 0
        assert corpus.n_tokens == 0

    def test_explicit_t_start(self, tiny_trace):
        builder = CorpusBuilder(SingleServiceMap(), delta_t=5.0)
        corpus = builder.build(tiny_trace, t_start=-1.0)
        windows = {s.window for s in corpus.sentences}
        assert windows == {0, 1, 2}

    def test_invalid_delta_t(self):
        with pytest.raises(ValueError):
            CorpusBuilder(SingleServiceMap(), delta_t=-1.0)

    def test_real_trace_structure(self, small_trace):
        builder = CorpusBuilder(DomainServiceMap(), delta_t=3600.0)
        active = small_trace.active_senders(10)
        corpus = builder.build(small_trace, keep_senders=active)
        assert corpus.n_tokens > 0
        # All tokens are active senders.
        active_set = set(active.tolist())
        for sentence in corpus.sentences[:50]:
            assert set(sentence.tokens.tolist()) <= active_set
        # Window ids fit within the trace span.
        max_window = max(s.window for s in corpus.sentences)
        assert max_window <= int(small_trace.duration_days * 24) + 1
