"""Tests for the fleet-realism features: gated/desync schedules and
per-sender profile/volume heterogeneity."""

import numpy as np
import pytest

from repro.trace.actors import ActorGroup, PortProfile
from repro.trace.packet import SECONDS_PER_DAY, TCP
from repro.trace.schedule import (
    ChurnSchedule,
    ContinuousSchedule,
    DesyncPeriodicSchedule,
    GatedSchedule,
    PeriodicSchedule,
)
from repro.utils.rng import make_rng

T0, T1 = 0.0, 10 * SECONDS_PER_DAY


class TestGatedSchedule:
    def test_events_only_in_duty_windows(self):
        gated = GatedSchedule(
            ContinuousSchedule(rate_per_day=50.0), period_days=1.0, duty=0.3
        )
        events = np.concatenate(gated.sample(make_rng(0), T0, T1, 10))
        phase = (events % SECONDS_PER_DAY) / SECONDS_PER_DAY
        assert phase.max() <= 0.3 + 1e-9

    def test_phase_applied(self):
        gated = GatedSchedule(
            ContinuousSchedule(rate_per_day=50.0),
            period_days=1.0,
            duty=0.3,
            phase=0.5,
        )
        events = np.concatenate(gated.sample(make_rng(0), T0, T1, 10))
        phase = (events % SECONDS_PER_DAY) / SECONDS_PER_DAY
        assert phase.min() >= 0.5 - 1e-9
        assert phase.max() <= 0.8 + 1e-9

    def test_thinning_reduces_volume(self):
        base = ContinuousSchedule(rate_per_day=50.0)
        gated = GatedSchedule(base, period_days=1.0, duty=0.4)
        full = sum(len(e) for e in base.sample(make_rng(0), T0, T1, 20))
        kept = sum(len(e) for e in gated.sample(make_rng(0), T0, T1, 20))
        assert 0.25 * full < kept < 0.55 * full

    def test_validation(self):
        base = ContinuousSchedule(1.0)
        with pytest.raises(ValueError):
            GatedSchedule(base, period_days=0, duty=0.5)
        with pytest.raises(ValueError):
            GatedSchedule(base, period_days=1, duty=0.0)
        with pytest.raises(ValueError):
            GatedSchedule(base, period_days=1, duty=0.5, phase=1.0)


class TestDesyncPeriodic:
    def test_same_volume_as_synchronized(self):
        sync = PeriodicSchedule(1.0, 0.4, 20.0)
        desync = DesyncPeriodicSchedule(1.0, 0.4, 20.0)
        v_sync = sum(len(e) for e in sync.sample(make_rng(0), T0, T1, 30))
        v_desync = sum(len(e) for e in desync.sample(make_rng(0), T0, T1, 30))
        assert abs(v_sync - v_desync) < 0.25 * max(v_sync, v_desync)

    def test_phases_differ_across_senders(self):
        desync = DesyncPeriodicSchedule(1.0, 0.2, 40.0)
        events = desync.sample(make_rng(0), T0, T1, 12)
        starts = []
        for e in events:
            if len(e):
                starts.append(np.min((e % SECONDS_PER_DAY)))
        # Senders wake at different times of day.
        assert np.std(starts) > 3600.0

    def test_group_column_activity_flat(self):
        """Unlike PeriodicSchedule, the group as a whole never rests."""
        desync = DesyncPeriodicSchedule(1.0, 0.3, 60.0)
        events = np.concatenate(desync.sample(make_rng(1), T0, T1, 60))
        hours = ((events % SECONDS_PER_DAY) // 3600).astype(int)
        counts = np.bincount(hours, minlength=24)
        assert counts.min() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DesyncPeriodicSchedule(0.0, 0.5, 1.0)
        with pytest.raises(ValueError):
            DesyncPeriodicSchedule(1.0, 1.5, 1.0)
        with pytest.raises(ValueError):
            DesyncPeriodicSchedule(1.0, 0.5, 0.0)


def _actor(**overrides):
    params = dict(
        name="t",
        label=None,
        addresses=np.arange(100, 160, dtype=np.uint32),
        schedule=ContinuousSchedule(rate_per_day=30.0),
        profile=PortProfile(
            head=((23, TCP, 0.5),),
            tail_ports=tuple((1000 + i, TCP) for i in range(100)),
        ),
    )
    params.update(overrides)
    return ActorGroup(**params)


class TestPerSenderHeterogeneity:
    def test_tail_fraction_limits_ports_per_sender(self):
        actor = _actor(tail_fraction=0.1)
        events = actor.render(make_rng(0), T0, T1)
        # Each sender can reach at most 1 head + 10 tail ports.
        for ip in np.unique(events["ips"])[:10]:
            ports = set(events["ports"][events["ips"] == ip].tolist())
            assert len(ports) <= 11

    def test_tail_slices_differ_between_senders(self):
        actor = _actor(tail_fraction=0.1)
        events = actor.render(make_rng(0), T0, T1)
        ips = np.unique(events["ips"])
        port_sets = [
            frozenset(events["ports"][events["ips"] == ip].tolist()) - {23}
            for ip in ips[:10]
        ]
        assert len(set(port_sets)) > 1

    def test_head_jitter_changes_shares(self):
        actor = _actor(head_jitter=0.8, tail_fraction=1.0)
        events = actor.render(make_rng(0), T0, T1)
        shares = []
        for ip in np.unique(events["ips"]):
            mask = events["ips"] == ip
            if mask.sum() >= 50:
                shares.append((events["ports"][mask] == 23).mean())
        assert np.std(shares) > 0.05

    def test_volume_sigma_spreads_packet_counts(self):
        uniform = _actor(volume_sigma=0.0).render(make_rng(0), T0, T1)
        varied = _actor(volume_sigma=1.2).render(make_rng(0), T0, T1)

        def spread(events):
            _, counts = np.unique(events["ips"], return_counts=True)
            return counts.std() / counts.mean()

        assert spread(varied) > spread(uniform) * 2

    def test_volume_sigma_only_removes_packets(self):
        base = _actor(volume_sigma=0.0).render(make_rng(0), T0, T1)
        thinned = _actor(volume_sigma=1.0).render(make_rng(0), T0, T1)
        assert len(thinned["times"]) <= len(base["times"])

    def test_validation(self):
        with pytest.raises(ValueError):
            _actor(tail_fraction=0.0)
        with pytest.raises(ValueError):
            _actor(tail_fraction=1.5)
        with pytest.raises(ValueError):
            _actor(head_jitter=-0.1)
        with pytest.raises(ValueError):
            _actor(volume_sigma=-0.1)


class TestScheduleRangeProperty:
    """All schedules emit events strictly inside the horizon."""

    def test_all_schedule_types_in_range(self):
        from repro.trace.schedule import (
            BurstSchedule,
            ChurnSchedule,
            CompositeSchedule,
            ContinuousSchedule,
            DesyncPeriodicSchedule,
            GatedSchedule,
            PeriodicSchedule,
            RampSchedule,
            SparseSchedule,
            StaggeredSchedule,
        )

        schedules = [
            ContinuousSchedule(5.0),
            ChurnSchedule(5.0, 2.0),
            PeriodicSchedule(1.0, 0.5, 10.0),
            DesyncPeriodicSchedule(1.0, 0.5, 10.0),
            BurstSchedule(3, 600.0, 5.0, include_final_day=True),
            SparseSchedule(10.0, 2.0, shared_anchor_prob=0.5, n_anchors=4),
            StaggeredSchedule(3, 10.0),
            RampSchedule(10.0),
            GatedSchedule(ContinuousSchedule(10.0), 1.0, 0.5),
            CompositeSchedule(ContinuousSchedule(2.0), ContinuousSchedule(2.0)),
        ]
        for seed in (0, 1):
            rng = make_rng(seed)
            for schedule in schedules:
                events = schedule.sample(rng, T0, T1, 7)
                assert len(events) == 7, type(schedule).__name__
                for sender_events in events:
                    if len(sender_events):
                        assert sender_events.min() >= T0, type(schedule).__name__
                        assert sender_events.max() <= T1, type(schedule).__name__
