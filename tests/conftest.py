"""Shared fixtures: small deterministic traces and trained pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.trace import default_scenario, generate_trace
from repro.trace.packet import TCP, UDP, Trace


@pytest.fixture(scope="session")
def small_bundle():
    """A small but structurally complete simulated trace (6 days)."""
    scenario = default_scenario(
        scale=0.04, days=6.0, seed=11, backscatter_scale=0.01
    )
    return generate_trace(scenario)


@pytest.fixture(scope="session")
def small_trace(small_bundle):
    return small_bundle.trace


@pytest.fixture(scope="session")
def fitted_darkvec(small_bundle):
    """DarkVec trained on the small trace (few epochs for speed)."""
    config = DarkVecConfig(service="domain", epochs=6, seed=3)
    return DarkVec(config).fit(small_bundle.trace)


@pytest.fixture()
def tiny_trace() -> Trace:
    """A hand-written 10-packet trace with known structure."""
    times = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0])
    # Three senders: 10.0.0.1 (x5), 10.0.0.2 (x3), 10.0.0.3 (x2).
    ips = np.array(
        [0x0A000001] * 5 + [0x0A000002] * 3 + [0x0A000003] * 2, dtype=np.uint64
    )
    ports = np.array([23, 23, 445, 80, 22, 23, 445, 53, 23, 23])
    protos = np.array([TCP, TCP, TCP, TCP, TCP, TCP, TCP, UDP, TCP, TCP])
    receivers = np.arange(10) % 256
    mirai = np.array([True] * 5 + [False] * 5)
    return Trace.from_events(
        times=times,
        sender_ips_per_packet=ips,
        ports=ports,
        protos=protos,
        receivers=receivers,
        mirai=mirai,
    )
