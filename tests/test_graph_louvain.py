"""Tests for repro.graph.louvain and repro.graph.modularity.

The from-scratch Louvain is validated against networkx's reference
implementation on random graphs: partitions need not be identical, but
modularity must be comparable.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity


def _adjacency_from_nx(graph):
    adjacency = [dict() for _ in range(graph.number_of_nodes())]
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        adjacency[u][v] = adjacency[u].get(v, 0.0) + w
        adjacency[v][u] = adjacency[v].get(u, 0.0) + w
    return adjacency


def _two_cliques(n=8, bridge_weight=0.1):
    graph = nx.Graph()
    for base in (0, n):
        for i in range(base, base + n):
            for j in range(i + 1, base + n):
                graph.add_edge(i, j, weight=1.0)
    graph.add_edge(0, n, weight=bridge_weight)
    return graph


class TestModularity:
    def test_perfect_split_positive(self):
        graph = _two_cliques()
        adjacency = _adjacency_from_nx(graph)
        communities = np.array([0] * 8 + [1] * 8)
        assert modularity(adjacency, communities) > 0.4

    def test_single_community_zero_ish(self):
        graph = _two_cliques()
        adjacency = _adjacency_from_nx(graph)
        communities = np.zeros(16, dtype=int)
        assert modularity(adjacency, communities) == pytest.approx(0.0, abs=1e-9)

    def test_matches_networkx(self):
        graph = nx.gnm_random_graph(30, 90, seed=2)
        adjacency = _adjacency_from_nx(graph)
        communities = np.array([i % 3 for i in range(30)])
        sets = [set(np.flatnonzero(communities == c)) for c in range(3)]
        ours = modularity(adjacency, communities)
        theirs = nx.community.modularity(graph, sets)
        assert ours == pytest.approx(theirs, abs=1e-9)

    def test_empty_graph(self):
        assert modularity([{}, {}], np.array([0, 1])) == 0.0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            modularity([{}], np.array([0, 1]))


class TestLouvain:
    def test_two_cliques_split(self):
        adjacency = _adjacency_from_nx(_two_cliques())
        communities = louvain_communities(adjacency, seed=0)
        assert len(np.unique(communities)) == 2
        assert len(set(communities[:8])) == 1
        assert len(set(communities[8:])) == 1
        assert communities[0] != communities[8]

    def test_empty_graph(self):
        assert len(louvain_communities([])) == 0

    def test_disconnected_components_separate(self):
        adjacency = [
            {1: 1.0},
            {0: 1.0},
            {3: 1.0},
            {2: 1.0},
        ]
        communities = louvain_communities(adjacency, seed=0)
        assert communities[0] == communities[1]
        assert communities[2] == communities[3]
        assert communities[0] != communities[2]

    def test_deterministic_for_seed(self):
        graph = nx.gnm_random_graph(40, 120, seed=4)
        adjacency = _adjacency_from_nx(graph)
        a = louvain_communities(adjacency, seed=7)
        b = louvain_communities(adjacency, seed=7)
        assert np.array_equal(a, b)

    def test_contiguous_ids(self):
        graph = nx.gnm_random_graph(40, 120, seed=4)
        adjacency = _adjacency_from_nx(graph)
        communities = louvain_communities(adjacency, seed=7)
        ids = np.unique(communities)
        assert ids.tolist() == list(range(len(ids)))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_modularity_comparable_to_networkx(self, seed):
        graph = nx.planted_partition_graph(4, 15, 0.6, 0.05, seed=seed)
        adjacency = _adjacency_from_nx(graph)
        ours = louvain_communities(adjacency, seed=seed)
        our_q = modularity(adjacency, ours)
        nx_partition = nx.community.louvain_communities(graph, seed=seed)
        nx_q = nx.community.modularity(graph, nx_partition)
        assert our_q >= nx_q - 0.05

    def test_isolated_nodes_fine(self):
        adjacency = [{}, {}, {1: 0.0}]  # includes a zero-weight edge
        communities = louvain_communities(adjacency, seed=0)
        assert len(communities) == 3
