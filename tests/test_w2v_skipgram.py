"""Tests for repro.w2v.skipgram."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import make_rng
from repro.w2v.skipgram import skipgram_pairs


class TestStaticWindow:
    def test_full_window_pairs(self):
        sentence = np.array([10, 11, 12, 13, 14])
        centers, contexts = skipgram_pairs(sentence, 2, dynamic=False)
        pairs = set(zip(centers.tolist(), contexts.tolist()))
        assert (10, 11) in pairs and (10, 12) in pairs
        assert (12, 10) in pairs and (12, 14) in pairs
        assert (10, 13) not in pairs  # outside window
        assert all(c != x for c, x in pairs)  # no self-pairs

    def test_pair_count_formula(self):
        sentence = np.arange(10)
        centers, _ = skipgram_pairs(sentence, 3, dynamic=False)
        expected = sum(min(i, 3) + min(9 - i, 3) for i in range(10))
        assert len(centers) == expected

    def test_short_sentence(self):
        centers, contexts = skipgram_pairs(np.array([7]), 5, dynamic=False)
        assert len(centers) == 0

    def test_pair_of_two(self):
        centers, contexts = skipgram_pairs(np.array([1, 2]), 5, dynamic=False)
        assert sorted(zip(centers, contexts)) == [(1, 2), (2, 1)]

    def test_invalid_context(self):
        with pytest.raises(ValueError):
            skipgram_pairs(np.array([1, 2]), 0, dynamic=False)


class TestDynamicWindow:
    def test_requires_rng(self):
        with pytest.raises(ValueError):
            skipgram_pairs(np.array([1, 2, 3]), 2, rng=None, dynamic=True)

    def test_subset_of_static_pairs(self):
        sentence = np.arange(30)
        static = set(
            zip(*(a.tolist() for a in skipgram_pairs(sentence, 5, dynamic=False)))
        )
        dynamic = set(
            zip(
                *(
                    a.tolist()
                    for a in skipgram_pairs(sentence, 5, make_rng(0), dynamic=True)
                )
            )
        )
        assert dynamic <= static

    def test_deterministic_given_rng(self):
        sentence = np.arange(20)
        a = skipgram_pairs(sentence, 5, make_rng(3))
        b = skipgram_pairs(sentence, 5, make_rng(3))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    @given(
        st.lists(st.integers(0, 20), min_size=2, max_size=60),
        st.integers(1, 10),
    )
    def test_pairs_within_window_property(self, tokens, context):
        sentence = np.array(tokens, dtype=np.int64)
        centers, contexts = skipgram_pairs(sentence, context, dynamic=False)
        # Rebuild positions: verify every pair is within `context`
        # positions of some occurrence of the center value.
        positions = {v: [i for i, t in enumerate(tokens) if t == v] for v in set(tokens)}
        for c, x in zip(centers.tolist(), contexts.tolist()):
            ok = any(
                any(0 < abs(i - j) <= context for j in positions[x])
                for i in positions[c]
            )
            assert ok


class TestExpectedPairCount:
    def test_matches_static_formula(self):
        from repro.w2v.skipgram import expected_pair_count

        lengths = np.array([10, 60])
        expected = expected_pair_count(lengths, 3, dynamic=False)
        brute = sum(
            sum(min(i, 3) + min(n - 1 - i, 3) for i in range(n))
            for n in (10, 60)
        )
        assert expected == brute

    def test_dynamic_matches_monte_carlo(self):
        from repro.w2v.skipgram import expected_pair_count

        rng = make_rng(0)
        n, c = 40, 25
        sentence = np.arange(n)
        trials = 400
        total = 0
        for _ in range(trials):
            centers, _ = skipgram_pairs(sentence, c, rng, dynamic=True)
            total += len(centers)
        monte_carlo = total / trials
        analytic = expected_pair_count(np.array([n]), c, dynamic=True)
        assert abs(monte_carlo - analytic) / analytic < 0.05

    def test_short_sentences_contribute_nothing(self):
        from repro.w2v.skipgram import expected_pair_count

        assert expected_pair_count(np.array([0, 1]), 5) == 0.0

    def test_invalid_context(self):
        from repro.w2v.skipgram import expected_pair_count

        with pytest.raises(ValueError):
            expected_pair_count(np.array([5]), 0)
