"""Tests for repro.trace.flows."""

import numpy as np
import pytest

from repro.trace.flows import aggregate_flows
from repro.trace.packet import TCP, Trace


def _trace(times, ips, ports, receivers=None):
    n = len(times)
    return Trace.from_events(
        times=np.array(times, dtype=float),
        sender_ips_per_packet=np.array(ips, dtype=np.uint64),
        ports=np.array(ports),
        protos=np.full(n, TCP),
        receivers=np.zeros(n, dtype=np.uint8)
        if receivers is None
        else np.array(receivers),
        mirai=np.zeros(n, dtype=bool),
    )


class TestAggregateFlows:
    def test_same_key_within_timeout_merges(self):
        trace = _trace([0, 10, 20], [1, 1, 1], [80, 80, 80])
        flows = aggregate_flows(trace, timeout=60)
        assert len(flows) == 1
        assert flows.packets[0] == 3
        assert flows.starts[0] == 0 and flows.ends[0] == 20

    def test_gap_splits_flow(self):
        trace = _trace([0, 10, 1000], [1, 1, 1], [80, 80, 80])
        flows = aggregate_flows(trace, timeout=60)
        assert len(flows) == 2
        assert sorted(flows.packets.tolist()) == [1, 2]

    def test_different_ports_split(self):
        trace = _trace([0, 1, 2], [1, 1, 1], [80, 443, 80])
        flows = aggregate_flows(trace, timeout=60)
        assert len(flows) == 2

    def test_different_receivers_split(self):
        trace = _trace([0, 1], [1, 1], [80, 80], receivers=[5, 9])
        flows = aggregate_flows(trace, timeout=60)
        assert len(flows) == 2

    def test_packet_conservation(self, small_trace):
        flows = aggregate_flows(small_trace, timeout=300)
        assert flows.n_packets == small_trace.n_packets

    def test_flows_fewer_than_packets(self, small_trace):
        flows = aggregate_flows(small_trace, timeout=3600)
        assert len(flows) <= small_trace.n_packets

    def test_sorted_by_start(self, small_trace):
        flows = aggregate_flows(small_trace, timeout=300)
        assert np.all(np.diff(flows.starts) >= 0)

    def test_durations_nonnegative(self, small_trace):
        flows = aggregate_flows(small_trace, timeout=300)
        assert (flows.durations() >= 0).all()

    def test_empty_trace(self):
        flows = aggregate_flows(Trace.empty())
        assert len(flows) == 0
        assert flows.n_packets == 0

    def test_invalid_timeout(self, small_trace):
        with pytest.raises(ValueError):
            aggregate_flows(small_trace, timeout=0)
