"""Tests for repro.w2v.model (SGNS training)."""

import numpy as np
import pytest

from repro.w2v.model import Word2Vec, _cap_norms


def _community_sentences(seed=0, n=300, groups=2, group_size=20, length=30):
    """Sentences drawing tokens from one community each."""
    rng = np.random.default_rng(seed)
    sentences = []
    for _ in range(n):
        g = rng.integers(0, groups)
        tokens = rng.integers(0, group_size, size=length) + g * group_size
        sentences.append(tokens.astype(np.int64))
    return sentences


class TestFit:
    def test_embedding_covers_vocabulary(self):
        sentences = _community_sentences(n=50)
        keyed = Word2Vec(vector_size=8, context=3, epochs=1, seed=1).fit(sentences)
        assert len(keyed) == 40
        assert keyed.vector_size == 8

    def test_separates_cooccurrence_communities(self):
        sentences = _community_sentences(n=400)
        keyed = Word2Vec(vector_size=16, context=5, epochs=5, seed=3).fit(sentences)
        units = keyed.unit_vectors
        sims = units @ units.T
        within = (sims[:20, :20].sum() - 20) / (20 * 19)
        across = sims[:20, 20:].mean()
        assert within > across + 0.4

    def test_deterministic_for_seed(self):
        sentences = _community_sentences(n=30)
        a = Word2Vec(vector_size=8, context=3, epochs=1, seed=5).fit(sentences)
        b = Word2Vec(vector_size=8, context=3, epochs=1, seed=5).fit(sentences)
        assert np.array_equal(a.vectors, b.vectors)

    def test_different_seed_differs(self):
        sentences = _community_sentences(n=30)
        a = Word2Vec(vector_size=8, context=3, epochs=1, seed=5).fit(sentences)
        b = Word2Vec(vector_size=8, context=3, epochs=1, seed=6).fit(sentences)
        assert not np.array_equal(a.vectors, b.vectors)

    def test_min_count_prunes_embedding(self):
        sentences = [np.array([1, 1, 1, 2], dtype=np.int64)] * 3
        keyed = Word2Vec(vector_size=4, context=2, epochs=1, min_count=5).fit(
            sentences
        )
        assert 1 in keyed
        assert 2 not in keyed

    def test_empty_corpus(self):
        keyed = Word2Vec(vector_size=4).fit([])
        assert len(keyed) == 0

    def test_vectors_finite(self):
        sentences = _community_sentences(n=200)
        keyed = Word2Vec(vector_size=16, context=5, epochs=3, seed=0).fit(sentences)
        assert np.isfinite(keyed.vectors).all()

    def test_max_norm_enforced(self):
        sentences = _community_sentences(n=200)
        keyed = Word2Vec(
            vector_size=16, context=5, epochs=3, seed=0, max_norm=2.0
        ).fit(sentences)
        assert np.linalg.norm(keyed.vectors, axis=1).max() <= 2.0 + 1e-5

    def test_subsampling_runs(self):
        sentences = _community_sentences(n=100)
        keyed = Word2Vec(
            vector_size=8, context=3, epochs=2, seed=0, sample=1e-2
        ).fit(sentences)
        assert np.isfinite(keyed.vectors).all()

    def test_no_negative_sampling_path(self):
        sentences = _community_sentences(n=50)
        keyed = Word2Vec(vector_size=8, context=3, epochs=1, negative=0).fit(
            sentences
        )
        assert np.isfinite(keyed.vectors).all()


class TestFitPairs:
    def test_groups_by_shared_context(self):
        rng = np.random.default_rng(0)
        # Tokens 0-9 pair with context 100; tokens 10-19 with 101.
        centers, contexts = [], []
        for _ in range(4000):
            g = rng.integers(0, 2)
            centers.append(rng.integers(0, 10) + g * 10)
            contexts.append(100 + g)
        keyed = Word2Vec(vector_size=8, epochs=8, seed=1).fit_pairs(
            np.array(centers), np.array(contexts)
        )
        units = keyed.unit_vectors
        rows_a = keyed.rows_of(np.arange(10))
        rows_b = keyed.rows_of(np.arange(10, 20))
        sims = units @ units.T
        within = sims[np.ix_(rows_a, rows_a)].mean()
        across = sims[np.ix_(rows_a, rows_b)].mean()
        assert within > across

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            Word2Vec().fit_pairs(np.array([1]), np.array([1, 2]))

    def test_empty_pairs(self):
        keyed = Word2Vec().fit_pairs(np.empty(0), np.empty(0))
        assert len(keyed) == 0


class TestValidation:
    def test_invalid_params(self):
        for kwargs in (
            {"vector_size": 0},
            {"context": 0},
            {"negative": -1},
            {"epochs": 0},
            {"alpha": 0.0},
            {"min_alpha": 1.0, "alpha": 0.5},
        ):
            with pytest.raises(ValueError):
                Word2Vec(**kwargs)

    def test_cap_norms(self):
        matrix = np.array([[3.0, 4.0], [0.1, 0.0]], dtype=np.float32)
        _cap_norms(matrix, 1.0)
        assert np.linalg.norm(matrix[0]) == pytest.approx(1.0, abs=1e-6)
        assert np.allclose(matrix[1], [0.1, 0.0])


class TestLearningRate:
    def test_linear_decay(self):
        model = Word2Vec(alpha=0.1, min_alpha=0.01)
        assert model._learning_rate(0, 100) == pytest.approx(0.1)
        assert model._learning_rate(50, 100) == pytest.approx(0.05)

    def test_floor_at_min_alpha(self):
        model = Word2Vec(alpha=0.1, min_alpha=0.01)
        assert model._learning_rate(99, 100) == pytest.approx(0.01)
        assert model._learning_rate(200, 100) == pytest.approx(0.01)

    def test_keep_probabilities_bounds(self):
        import numpy as np
        from repro.w2v.vocab import Vocabulary

        vocab = Vocabulary(
            tokens=np.array([1, 2, 3]), counts=np.array([1000, 10, 1])
        )
        model = Word2Vec(sample=1e-2)
        probs = model._keep_probabilities(vocab)
        assert probs is not None
        assert (probs > 0).all() and (probs <= 1).all()
        # Frequent tokens are downsampled harder.
        assert probs[0] < probs[2]

    def test_no_subsampling_returns_none(self):
        from repro.w2v.vocab import Vocabulary
        import numpy as np

        vocab = Vocabulary(tokens=np.array([1]), counts=np.array([5]))
        assert Word2Vec(sample=0.0)._keep_probabilities(vocab) is None
