"""Tests for repro.services."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.services import (
    AutoServiceMap,
    DOMAIN_SERVICE_PORTS,
    DomainServiceMap,
    SingleServiceMap,
    format_port,
    parse_port,
)
from repro.trace.packet import ICMP, TCP, UDP


class TestPortHelpers:
    def test_format(self):
        assert format_port(23, TCP) == "23/tcp"
        assert format_port(53, UDP) == "53/udp"
        assert format_port(0, ICMP) == "icmp"

    def test_parse_roundtrip(self):
        assert parse_port("23/tcp") == (23, TCP)
        assert parse_port("icmp") == (0, ICMP)
        assert parse_port(format_port(8080, TCP)) == (8080, TCP)

    def test_parse_malformed(self):
        for bad in ("23", "23/xxx", "99999/tcp", "-1/udp"):
            with pytest.raises(ValueError):
                parse_port(bad)


class TestSingleService:
    def test_everything_one_service(self):
        service_map = SingleServiceMap()
        ids = service_map.service_ids(
            np.array([23, 80, 65535]), np.array([TCP, TCP, UDP])
        )
        assert (ids == 0).all()
        assert service_map.names == ("all",)


class TestAutoService:
    def test_from_trace_top_ports(self, tiny_trace):
        service_map = AutoServiceMap.from_trace(tiny_trace, n=2)
        # 23/tcp (5 packets) and 445/tcp (2) are the top-2.
        assert "23/tcp" in service_map.names
        assert "445/tcp" in service_map.names
        assert service_map.names[-1] == "other"
        assert service_map.n_services == 3

    def test_other_catches_rest(self, tiny_trace):
        service_map = AutoServiceMap.from_trace(tiny_trace, n=2)
        assert service_map.service_of(80, TCP) == "other"
        assert service_map.service_of(23, TCP) == "23/tcp"

    def test_proto_distinguished(self, tiny_trace):
        service_map = AutoServiceMap.from_trace(tiny_trace, n=5)
        # 53/udp is a top port; 53/tcp is not.
        assert service_map.service_of(53, UDP) == "53/udp"
        assert service_map.service_of(53, TCP) == "other"

    def test_empty_trace_rejected(self):
        from repro.trace.packet import Trace

        with pytest.raises(ValueError):
            AutoServiceMap.from_trace(Trace.empty())


class TestDomainService:
    def test_fifteen_services(self):
        service_map = DomainServiceMap()
        assert service_map.n_services == 15

    def test_known_assignments(self):
        service_map = DomainServiceMap()
        assert service_map.service_of(23, TCP) == "Telnet"
        assert service_map.service_of(22, TCP) == "SSH"
        assert service_map.service_of(445, TCP) == "Netbios-SMB"
        assert service_map.service_of(53, UDP) == "DNS"
        assert service_map.service_of(137, UDP) == "Netbios"
        assert service_map.service_of(443, TCP) == "HTTP"
        assert service_map.service_of(25, TCP) == "Mail"
        assert service_map.service_of(1433, UDP) == "Database"

    def test_fallback_ranges(self):
        service_map = DomainServiceMap()
        assert service_map.service_of(7, TCP) == "Unknown System"
        assert service_map.service_of(5060, TCP) == "Unknown User"
        assert service_map.service_of(60_000, TCP) == "Unknown Ephemeral"

    def test_icmp_goes_to_system(self):
        assert DomainServiceMap().service_of(0, ICMP) == "Unknown System"

    def test_proto_matters(self):
        service_map = DomainServiceMap()
        # 445/udp is NOT Netbios-SMB (only 445/tcp is in Table 7).
        assert service_map.service_of(445, UDP) == "Unknown System"

    def test_table7_is_consistent(self):
        # Every listed port parses and no port is in two services.
        seen = {}
        for service, specs in DOMAIN_SERVICE_PORTS.items():
            for spec in specs:
                key = parse_port(spec)
                assert key not in seen, f"{spec} in {service} and {seen.get(key)}"
                seen[key] = service
        assert len(seen) == 100  # Table 7 lists exactly 100 port specs

    @given(
        st.integers(0, 65_535),
        st.sampled_from([TCP, UDP]),
    )
    def test_totality_property(self, port, proto):
        """Every (port, proto) pair maps to exactly one valid service."""
        for service_map in (DomainServiceMap(), SingleServiceMap()):
            ids = service_map.service_ids(np.array([port]), np.array([proto]))
            assert 0 <= ids[0] < service_map.n_services
