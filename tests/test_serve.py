"""Streaming serving layer: sub-day equivalence, service, server.

The anchor test of this file is the window-equivalence property the
serving layer is built on: N sub-day ``update(window)`` calls leave
bit-identical corpus, vocabulary and trace to one merged daily
``update`` (embeddings are drift-bounded — warm refits are applied
more than once), at both worker-pool backends.
"""

from __future__ import annotations

import copy
import json
import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.obs.drift import embedding_drift
from repro.obs.health import HealthPolicy
from repro.serve import (
    DarkVecService,
    ModelSnapshot,
    ServeClient,
    ServeError,
    ServeServer,
    ServiceClosedError,
    UnknownSenderError,
    wait_for_port,
)
from repro.trace.address import ip_to_str
from repro.trace.packet import SECONDS_PER_DAY, Trace

DAY = float(SECONDS_PER_DAY)


def _fit(trace, backend: str = "thread", **overrides) -> DarkVec:
    overrides.setdefault("window_days", 3.0)
    config = DarkVecConfig(
        service="domain",
        epochs=2,
        update_epochs=2,
        seed=3,
        pool_backend=backend,
        **overrides,
    )
    return DarkVec(config).fit(trace)


def _assert_same_corpus(a: DarkVec, b: DarkVec) -> None:
    for corpus_a, corpus_b in ((a._raw_corpus, b._raw_corpus), (a.corpus, b.corpus)):
        assert len(corpus_a) == len(corpus_b)
        for sent_a, sent_b in zip(corpus_a, corpus_b):
            assert sent_a.service_id == sent_b.service_id
            assert sent_a.window == sent_b.window
            assert np.array_equal(sent_a.tokens, sent_b.tokens)


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestSubDayEquivalence:
    def test_micro_batches_match_one_daily_update(self, small_bundle, backend):
        """3 sub-day updates == 1 daily update, bit for bit (corpus/vocab)."""
        trace = small_bundle.trace
        t0 = trace.start_time
        head = trace.between(t0, t0 + 3 * DAY)
        day = trace.between(t0 + 3 * DAY, t0 + 4 * DAY)

        daily = _fit(head, backend)
        daily.update(day)

        micro = _fit(head, backend)
        # Uneven sub-day cuts: none lands on a dT boundary, so the
        # middle batches start mid-window (the hard case: boundary
        # cells must be rebuilt from the merged kept trace).
        cuts = [
            t0 + 3 * DAY,
            t0 + 3.31 * DAY,
            t0 + 3.67 * DAY,
            t0 + 4 * DAY,
        ]
        for lo, hi in zip(cuts, cuts[1:]):
            batch = day.between(lo, hi)
            assert len(batch)  # the cuts must actually split the day
            micro.update(batch)

        # trace, corpus and vocabulary: bit-identical
        np.testing.assert_array_equal(daily.trace.times, micro.trace.times)
        np.testing.assert_array_equal(
            daily.trace.sender_ips, micro.trace.sender_ips
        )
        np.testing.assert_array_equal(daily.trace.senders, micro.trace.senders)
        np.testing.assert_array_equal(daily._active, micro._active)
        _assert_same_corpus(daily, micro)
        np.testing.assert_array_equal(
            daily.embedding.tokens, micro.embedding.tokens
        )

        # embeddings: not identical (micro refit warm three times) but
        # drift-bounded — the models must stay close
        report = embedding_drift(daily.embedding, micro.embedding)
        assert report.n_shared == len(daily.embedding.tokens)
        assert report.mean is not None and report.mean < 0.15

    def test_equivalence_with_eviction(self, small_bundle, backend):
        """The equivalence holds when the updates also evict windows."""
        trace = small_bundle.trace
        t0 = trace.start_time
        head = trace.between(t0, t0 + 3 * DAY)
        # two days of new traffic against window_days=3: the merged
        # update and every intermediate micro-update evict old windows
        fresh = trace.between(t0 + 3 * DAY, t0 + 5 * DAY)

        daily = _fit(head, backend)
        daily.update(fresh)

        micro = _fit(head, backend)
        for lo, hi in (
            (t0 + 3 * DAY, t0 + 3.5 * DAY),
            (t0 + 3.5 * DAY, t0 + 4.25 * DAY),
            (t0 + 4.25 * DAY, t0 + 5 * DAY),
        ):
            micro.update(fresh.between(lo, hi))

        np.testing.assert_array_equal(daily.trace.times, micro.trace.times)
        _assert_same_corpus(daily, micro)
        np.testing.assert_array_equal(
            daily.embedding.tokens, micro.embedding.tokens
        )


class TestEmptyUpdate:
    def test_empty_raises_by_default(self, small_bundle):
        darkvec = _fit(small_bundle.trace.between(-np.inf, small_bundle.trace.start_time + 2 * DAY))
        with pytest.raises(ValueError, match="non-empty"):
            darkvec.update(Trace.empty())

    def test_allow_empty_is_counted_noop(self, small_bundle):
        darkvec = _fit(small_bundle.trace.between(-np.inf, small_bundle.trace.start_time + 2 * DAY))
        embedding = darkvec.embedding
        trace = darkvec.trace
        result = darkvec.update(Trace.empty(), allow_empty=True)
        assert result is darkvec
        assert darkvec.embedding is embedding  # nothing refit
        assert darkvec.trace is trace


class TestAdoptKeepsIndex:
    def test_cache_hit_refit_preserves_live_index(self, small_bundle, tmp_path):
        trace = small_bundle.trace.between(
            -np.inf, small_bundle.trace.start_time + 2 * DAY
        )
        darkvec = _fit(trace, cache_dir=tmp_path)
        index = darkvec._ann_index()
        darkvec.fit(trace)  # pure cache hit: same embedding hash
        assert all(s.status == "hit" for s in darkvec.stage_statuses)
        assert darkvec._index is index

    def test_changed_embedding_still_invalidates(self, small_bundle, tmp_path):
        trace = small_bundle.trace
        t0 = trace.start_time
        darkvec = _fit(trace.between(t0, t0 + 2 * DAY), cache_dir=tmp_path)
        index = darkvec._ann_index()
        darkvec.fit(trace.between(t0, t0 + 3 * DAY))  # different data
        assert darkvec._index is not index


@pytest.fixture(scope="module")
def served_fit(small_bundle):
    """One fitted model for the service tests (deep-copied per test)."""
    trace = small_bundle.trace
    t0 = trace.start_time
    darkvec = _fit(trace.between(t0, t0 + 2 * DAY), window_days=30.0)
    return darkvec, trace


@pytest.fixture()
def fresh_fit(served_fit):
    darkvec, trace = served_fit
    return copy.deepcopy(darkvec), trace


def _batches(trace, start_day: float, cuts: tuple[float, ...]):
    t0 = trace.start_time
    edges = [t0 + start_day * DAY] + [t0 + c * DAY for c in cuts]
    return [
        trace.between(lo, hi) for lo, hi in zip(edges, edges[1:])
    ]


class TestModelSnapshot:
    def test_unknown_ip_raises(self, fresh_fit):
        darkvec, _ = fresh_fit
        snapshot = ModelSnapshot.of(darkvec)
        with pytest.raises(UnknownSenderError):
            snapshot.row_of_ip(0)

    def test_row_lookup_roundtrips(self, fresh_fit):
        darkvec, _ = fresh_fit
        snapshot = ModelSnapshot.of(darkvec)
        for row in (0, len(snapshot) // 2, len(snapshot) - 1):
            assert snapshot.row_of_ip(int(snapshot.sender_ips[row])) == row

    def test_queries_answer_from_truth(self, fresh_fit, small_bundle):
        darkvec, _ = fresh_fit
        snapshot = ModelSnapshot.of(darkvec, truth=small_bundle.truth)
        ip = int(snapshot.sender_ips[0])
        answer = snapshot.classify(ip)
        assert answer["ip"] == ip_to_str(ip)
        assert isinstance(answer["label"], str)
        neighbors = snapshot.neighbors(ip, k=3)
        assert len(neighbors["neighbors"]) == 3
        members = snapshot.membership(ip)
        assert members["size"] >= 1
        assert members["modularity"] == snapshot.modularity

    def test_without_clusters_membership_is_disabled(self, fresh_fit):
        darkvec, _ = fresh_fit
        snapshot = ModelSnapshot.of(darkvec, with_clusters=False)
        with pytest.raises(ValueError, match="disabled"):
            snapshot.membership(int(snapshot.sender_ips[0]))

    def test_batched_queries_match_single(self, fresh_fit, small_bundle):
        darkvec, _ = fresh_fit
        snapshot = ModelSnapshot.of(darkvec, truth=small_bundle.truth)
        ips = [int(snapshot.sender_ips[r]) for r in (0, len(snapshot) // 2, 1)]
        batch = snapshot.classify_many(ips)
        assert batch["version"] == snapshot.version
        assert len(batch["results"]) == len(ips)
        for ip, result in zip(ips, batch["results"]):
            single = snapshot.classify(ip)
            assert result["ip"] == single["ip"]
            assert result["label"] == single["label"]
            assert result["mean_distance"] == pytest.approx(
                single["mean_distance"]
            )
        nbatch = snapshot.neighbors_many(ips, k=3)
        for ip, result in zip(ips, nbatch["results"]):
            single = snapshot.neighbors(ip, k=3)
            # BLAS may differ in the last ulp between 1-row and batched
            # matmuls, so compare sets exactly and sims approximately.
            assert [n["ip"] for n in result["neighbors"]] == [
                n["ip"] for n in single["neighbors"]
            ]
            for got, want in zip(result["neighbors"], single["neighbors"]):
                assert got["label"] == want["label"]
                assert got["similarity"] == pytest.approx(want["similarity"])

    def test_batched_unknown_sender_does_not_fail_batch(self, fresh_fit):
        darkvec, _ = fresh_fit
        snapshot = ModelSnapshot.of(darkvec, with_clusters=False)
        known = int(snapshot.sender_ips[0])
        batch = snapshot.classify_many([known, 1])
        assert batch["results"][0]["label"]
        assert batch["results"][1]["error"] == "unknown sender"
        nbatch = snapshot.neighbors_many([1, known], k=2)
        assert nbatch["results"][0]["error"] == "unknown sender"
        assert len(nbatch["results"][1]["neighbors"]) == 2

    def test_snapshot_build_records_warmup(self, fresh_fit):
        from repro import obs

        darkvec, _ = fresh_fit
        telemetry = obs.Telemetry()
        with obs.session(telemetry):
            ModelSnapshot.of(darkvec, with_clusters=False)
        sketches = telemetry.snapshot().get("sketches") or {}
        assert "serve.warmup_seconds" in sketches

    def test_classify_clamps_k_to_population(self, fresh_fit):
        """A model with fewer than k+1 senders still answers classify."""
        darkvec, _ = fresh_fit
        n = len(darkvec.embedding.tokens)
        snapshot = ModelSnapshot.of(darkvec, k=n + 5, with_clusters=False)
        answer = snapshot.classify(int(snapshot.sender_ips[0]))
        assert answer["k"] == n - 1
        assert isinstance(answer["label"], str)


class TestServiceLifecycle:
    def test_promotions_advance_the_snapshot(self, fresh_fit):
        darkvec, trace = fresh_fit
        with DarkVecService(darkvec, with_clusters=False) as service:
            ip = int(service.snapshot.sender_ips[0])
            assert service.classify(ip)["version"] == 0
            for batch in _batches(trace, 2.0, (2.4, 3.0)):
                service.submit(batch)
            assert service.drain(timeout=300.0)
            status = service.status()
            assert status["version"] == 2
            assert status["promotions"] == 2
            assert status["rollbacks"] == 0
            assert service.classify(ip)["version"] == 2

    def test_empty_batch_is_a_counted_noop(self, fresh_fit):
        darkvec, _ = fresh_fit
        with DarkVecService(darkvec, with_clusters=False) as service:
            service.submit(Trace.empty())
            assert service.drain(timeout=60.0)
            status = service.status()
            assert status["version"] == 0
            assert status["batches"] == 0
            assert status["rollbacks"] == 0

    def test_gated_failure_rolls_back(self, fresh_fit):
        darkvec, trace = fresh_fit
        # a drift threshold no real refit can meet: every batch fails
        darkvec.config = replace(
            darkvec.config,
            health=HealthPolicy(
                gate_updates=True, drift_warn=1e-9, drift_fail=1e-8
            ),
        )
        with DarkVecService(darkvec, with_clusters=False) as service:
            before = service.snapshot
            ip = int(before.sender_ips[0])
            service.submit(_batches(trace, 2.0, (2.5,))[0])
            assert service.drain(timeout=300.0)
            status = service.status()
            assert status["version"] == 0
            assert status["rollbacks"] == 1
            assert status["promotions"] == 0
            assert service.snapshot is before  # old model stayed live
            assert service.classify(ip)["version"] == 0

    def test_crashed_update_keeps_serving(self, fresh_fit):
        darkvec, trace = fresh_fit
        batch = _batches(trace, 2.0, (2.5,))[0]

        def explode(*args, **kwargs):
            raise RuntimeError("boom")

        darkvec.update = explode
        with DarkVecService(darkvec, with_clusters=False) as service:
            ip = int(service.snapshot.sender_ips[0])
            service.submit(batch)
            assert service.drain(timeout=60.0)
            assert service.status()["rollbacks"] == 1
            assert service.classify(ip)["version"] == 0

    def test_submit_after_close_raises(self, fresh_fit):
        darkvec, _ = fresh_fit
        service = DarkVecService(darkvec, with_clusters=False)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(Trace.empty())

    def test_unchanged_embedding_promotion_is_not_a_rollback(self, fresh_fit):
        """An update that changes nothing (cache-hit refit) promotes.

        The writer branches on the health-gate verdict, not on the
        embedding hash — a successful no-change update must not read
        as a phantom rollback in `repro top`.
        """
        darkvec, trace = fresh_fit
        darkvec.update = lambda *args, **kwargs: darkvec
        with DarkVecService(darkvec, with_clusters=False) as service:
            service.submit(_batches(trace, 2.0, (2.5,))[0])
            assert service.drain(timeout=60.0)
            status = service.status()
            assert status["rollbacks"] == 0
            assert status["promotions"] == 1
            assert status["version"] == 1

    def test_submit_racing_close_never_drops_batches(self, fresh_fit):
        """submit vs close: accepted batches are applied, losers raise.

        close() enqueues its shutdown sentinel under the same lock
        submit uses, so no batch can land behind the sentinel — a
        submit either beats close (and the writer applies it before
        exiting) or raises ServiceClosedError; nothing is silently
        dropped and `_pending` always reaches zero.
        """
        darkvec, _ = fresh_fit
        for _ in range(5):
            service = DarkVecService(darkvec, with_clusters=False)
            barrier = threading.Barrier(9)
            outcomes: list[str] = []

            def producer() -> None:
                barrier.wait()
                try:
                    service.submit(Trace.empty())
                    outcomes.append("accepted")
                except ServiceClosedError:
                    outcomes.append("rejected")

            producers = [threading.Thread(target=producer) for _ in range(8)]
            for thread in producers:
                thread.start()
            barrier.wait()
            service.close(timeout=60.0)
            for thread in producers:
                thread.join(timeout=60.0)
            assert len(outcomes) == 8
            assert not service._writer.is_alive()
            with service._idle:
                assert service._pending == 0

    def test_queries_never_fail_across_promotions(self, fresh_fit):
        """Zero failed queries while updates promote concurrently."""
        darkvec, trace = fresh_fit
        errors: list[Exception] = []
        versions: list[list[int]] = [[] for _ in range(3)]
        stop = threading.Event()

        with DarkVecService(darkvec, with_clusters=False) as service:
            ip = int(service.snapshot.sender_ips[0])

            def hammer(seen: list[int]) -> None:
                while not stop.is_set():
                    try:
                        seen.append(service.classify(ip)["version"])
                        service.neighbors(ip, k=3)
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)
                        return

            readers = [
                threading.Thread(target=hammer, args=(seen,))
                for seen in versions
            ]
            for reader in readers:
                reader.start()
            for batch in _batches(trace, 2.0, (2.3, 2.8, 3.2)):
                service.submit(batch)
            assert service.drain(timeout=300.0)
            stop.set()
            for reader in readers:
                reader.join(timeout=30.0)

            assert errors == []
            assert service.status()["version"] == 3
            # each reader observed a monotone sequence of model versions
            for seen in versions:
                assert seen and seen == sorted(seen)
                assert seen[-1] <= 3


class TestServerClient:
    def test_round_trip(self, fresh_fit, tmp_path):
        darkvec, trace = fresh_fit
        port_file = tmp_path / "port"
        service = DarkVecService(darkvec, with_clusters=True)
        server = ServeServer(service, port=0, port_file=port_file)
        server.start_background()
        try:
            port = wait_for_port(port_file, timeout=10.0)
            assert port == server.port
            with ServeClient(port=port) as client:
                assert client.ping()["protocol"] >= 1
                status = client.status()
                assert status["version"] == 0
                ip = ip_to_str(int(service.snapshot.sender_ips[0]))
                assert client.classify(ip)["ip"] == ip
                assert len(client.neighbors(ip, k=2)["neighbors"]) == 2
                assert client.members(ip)["size"] >= 1

                with pytest.raises(ServeError, match="UnknownSender"):
                    client.classify("0.0.0.1")
                with pytest.raises(ServeError, match="unknown op"):
                    client.call("frobnicate")

                batch = _batches(trace, 2.0, (2.5,))[0]
                queued = client.ingest_events(
                    {
                        "times": batch.times.tolist(),
                        "ips": batch.sender_ips[batch.senders].tolist(),
                        "ports": batch.ports.tolist(),
                        "protos": batch.protos.tolist(),
                        "receivers": batch.receivers.tolist(),
                        "mirai": batch.mirai.tolist(),
                    }
                )
                assert queued["queued_packets"] == len(batch)
                drained = client.drain(timeout=300.0)
                assert drained["drained"] is True
                assert drained["version"] == 1
            with ServeClient(port=port) as client:
                assert client.shutdown()["version"] == 1
        finally:
            service.close()
            server.server_close()

    def test_batched_round_trip(self, fresh_fit, tmp_path, capsys):
        darkvec, _ = fresh_fit
        service = DarkVecService(darkvec, with_clusters=False)
        server = ServeServer(service, port=0)
        server.start_background()
        try:
            with ServeClient(port=server.port) as client:
                ips = [
                    ip_to_str(int(service.snapshot.sender_ips[0])),
                    ip_to_str(int(service.snapshot.sender_ips[1])),
                    "0.0.0.1",
                ]
                batch = client.classify_many(ips)
                assert len(batch["results"]) == 3
                assert batch["results"][0]["ip"] == ips[0]
                assert batch["results"][0]["label"]
                assert batch["results"][2]["error"] == "unknown sender"
                nbatch = client.neighbors_many(ips[:2], k=2)
                assert all(
                    len(r["neighbors"]) == 2 for r in nbatch["results"]
                )
                # the list-typed ip field rides the plain verbs too
                assert client.classify(ips[:1])["results"][0]["ip"] == ips[0]
            # the CLI splits a comma list into one batched request
            from repro.cli import main

            assert (
                main(
                    [
                        "query",
                        "classify",
                        "--port",
                        str(server.port),
                        "--ip",
                        f"{ips[0]},{ips[2]}",
                    ]
                )
                == 0
            )
            out = json.loads(capsys.readouterr().out)
            assert out["results"][0]["label"]
            assert out["results"][1]["error"] == "unknown sender"
        finally:
            service.close()
            server.server_close()

    def test_token_and_ingest_root_guard_mutating_ops(self, fresh_fit, tmp_path):
        darkvec, _ = fresh_fit
        service = DarkVecService(darkvec, with_clusters=False)
        server = ServeServer(
            service, port=0, token="s3cret", ingest_root=tmp_path
        )
        server.start_background()
        try:
            with ServeClient(port=server.port) as client:
                # the read path stays open without the token
                assert client.status()["version"] == 0
                with pytest.raises(ServeError, match="token"):
                    client.call("ingest", path=str(tmp_path / "batch.csv"))
                with pytest.raises(ServeError, match="token"):
                    client.call("shutdown")
            with ServeClient(port=server.port, token="wrong") as client:
                with pytest.raises(ServeError, match="token"):
                    client.shutdown()
            with ServeClient(port=server.port, token="s3cret") as client:
                # valid token, but the path escapes the ingest root
                with pytest.raises(ServeError, match="outside the allowed root"):
                    client.ingest_path(tmp_path / ".." / "escape.csv")
                # inside the root the path check passes (the missing
                # file fails later, in the reader, not the guard)
                with pytest.raises(ServeError, match="missing"):
                    client.ingest_path(tmp_path / "missing.csv")
                assert client.shutdown()["version"] == 0
        finally:
            service.close()
            server.server_close()

    def test_ingest_needs_a_payload(self, fresh_fit):
        darkvec, _ = fresh_fit
        service = DarkVecService(darkvec, with_clusters=False)
        server = ServeServer(service, port=0)
        server.start_background()
        try:
            with ServeClient(port=server.port) as client:
                with pytest.raises(ServeError, match="'path' or 'events'"):
                    client.call("ingest")
        finally:
            service.close()
            server._shutdown_requested.set()


class TestServeCli:
    def test_parser_accepts_serve_and_query(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "serve",
                "--cache-dir",
                "cache",
                "--port-file",
                "p.txt",
                "--health-gate",
                "--no-clusters",
            ]
        )
        assert args.command == "serve"
        assert args.with_clusters is False
        args = parser.parse_args(
            ["query", "neighbors", "--port", "1234", "--ip", "1.2.3.4", "--k", "5"]
        )
        assert args.command == "query"
        assert args.op == "neighbors"
        assert args.k == 5

    def test_parser_accepts_trust_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "serve",
                "--cache-dir",
                "cache",
                "--token",
                "s3cret",
                "--ingest-root",
                "batches",
            ]
        )
        assert args.token == "s3cret"
        assert str(args.ingest_root) == "batches"
        args = parser.parse_args(
            ["query", "shutdown", "--port", "1", "--token", "s3cret"]
        )
        assert args.token == "s3cret"

    def test_query_without_port_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["query", "status"]) == 2
        assert "needs --port" in capsys.readouterr().err

    def test_query_ip_ops_require_ip(self):
        from repro.cli import main

        assert main(["query", "classify", "--port", "1"]) == 2
