"""Tests for the parallel engine and the vectorized hot paths.

Covers the PR's contract: ``workers=1`` stays on the exact sequential
path, ``workers>1`` trains statistically equivalent embeddings, and the
vectorized ``majority_vote`` / ``symmetric_adjacency`` /
``expected_pair_count`` / flat pair generation match their reference
(loop-based) implementations exactly.
"""

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig
from repro.graph.knn_graph import KnnGraph, build_knn_graph
from repro.knn.classifier import knn_search, majority_vote
from repro.knn.loo import leave_one_out_predictions
from repro.parallel.pool import WorkerPool, resolve_workers
from repro.parallel.sgd import dedup_pairs, scaled_scatter_add, sigmoid_table
from repro.w2v.mathutils import scatter_add, sigmoid
from repro.w2v.model import Word2Vec
from repro.w2v.skipgram import (
    expected_pair_count,
    skipgram_pairs,
    skipgram_pairs_flat,
)


def _community_sentences(seed=0, n=300, groups=2, group_size=20, length=30):
    """Sentences drawing tokens from one community each."""
    rng = np.random.default_rng(seed)
    sentences = []
    for _ in range(n):
        g = rng.integers(0, groups)
        tokens = rng.integers(0, group_size, size=length) + g * group_size
        sentences.append(tokens.astype(np.int64))
    return sentences


class TestWorkerPool:
    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        assert resolve_workers(-1) >= 1

    def test_map_preserves_order(self):
        for workers in (1, 4):
            with WorkerPool(workers) as pool:
                assert pool.map(lambda x: x * x, range(10)) == [
                    x * x for x in range(10)
                ]

    def test_submit_returns_result(self):
        with WorkerPool(4) as pool:
            assert pool.submit(sum, [1, 2, 3]).result() == 6

    def test_submit_propagates_exception(self):
        def boom():
            raise ValueError("boom")

        with WorkerPool(1) as pool:
            with pytest.raises(ValueError, match="boom"):
                pool.submit(boom).result()

    def test_threads_capped_at_cores(self):
        import os

        pool = WorkerPool(10_000)
        assert pool.threads <= (os.cpu_count() or 1)
        assert pool.workers == 10_000


class TestSgdKernels:
    def test_sigmoid_table_close_to_exact(self):
        x = np.linspace(-15, 15, 1001).astype(np.float32)
        assert np.abs(sigmoid_table(x) - sigmoid(x)).max() < 5e-3

    def test_scaled_scatter_add_matches_reference(self):
        rng = np.random.default_rng(0)
        for n_rows, batch in ((8, 200), (500, 40)):  # both code paths
            matrix = rng.normal(size=(n_rows, 6)).astype(np.float32)
            reference = matrix.copy()
            rows = rng.integers(0, n_rows, size=batch)
            updates = rng.normal(size=(batch, 6)).astype(np.float32)
            scale = rng.random(batch).astype(np.float32)
            scaled_scatter_add(matrix, rows, updates, scale=scale)
            scatter_add(reference, rows, updates * scale[:, None])
            np.testing.assert_allclose(matrix, reference, atol=1e-5)

    def test_dedup_pairs_roundtrip(self):
        rng = np.random.default_rng(1)
        centers = rng.integers(0, 30, size=500)
        contexts = rng.integers(0, 30, size=500)
        uc, ux, mult = dedup_pairs(centers, contexts, 30)
        assert mult.sum() == 500
        rebuilt = set()
        for c, x, m in zip(uc, ux, mult):
            rebuilt.add((int(c), int(x), int(m)))
        from collections import Counter

        raw = Counter(zip(centers.tolist(), contexts.tolist()))
        assert rebuilt == {(c, x, m) for (c, x), m in raw.items()}


class TestSkipgramFlat:
    def _sentences(self, seed=2, n=40):
        rng = np.random.default_rng(seed)
        return [
            rng.integers(0, 50, size=rng.integers(2, 30)).astype(np.int64)
            for _ in range(n)
        ]

    def test_static_matches_per_sentence(self):
        sentences = self._sentences()
        flat = np.concatenate(sentences)
        starts = np.concatenate(
            [[0], np.cumsum([len(s) for s in sentences])]
        )
        centers, contexts = skipgram_pairs_flat(flat, starts, 5, dynamic=False)
        parts = [skipgram_pairs(s, 5, dynamic=False) for s in sentences]
        np.testing.assert_array_equal(
            centers, np.concatenate([p[0] for p in parts])
        )
        np.testing.assert_array_equal(
            contexts, np.concatenate([p[1] for p in parts])
        )

    def test_dynamic_matches_per_sentence_with_same_seed(self):
        sentences = self._sentences(seed=3)
        flat = np.concatenate(sentences)
        starts = np.concatenate(
            [[0], np.cumsum([len(s) for s in sentences])]
        )
        centers, contexts = skipgram_pairs_flat(
            flat, starts, 7, np.random.default_rng(9), dynamic=True
        )
        rng = np.random.default_rng(9)
        parts = [skipgram_pairs(s, 7, rng, dynamic=True) for s in sentences]
        np.testing.assert_array_equal(
            centers, np.concatenate([p[0] for p in parts])
        )
        np.testing.assert_array_equal(
            contexts, np.concatenate([p[1] for p in parts])
        )

    def test_empty_and_short_sentences(self):
        tokens = np.array([4, 7], dtype=np.int64)
        starts = np.array([0, 0, 1, 2])  # empty, [4], [7]
        centers, contexts = skipgram_pairs_flat(tokens, starts, 3, dynamic=False)
        assert len(centers) == 0 and len(contexts) == 0


class TestExpectedPairCount:
    @staticmethod
    def _reference(lengths, context, dynamic):
        """The pre-vectorization per-sentence loop."""
        total = 0.0
        for n in np.asarray(lengths, dtype=np.int64):
            n = int(n)
            if n < 2:
                continue
            k = np.arange(n)
            if dynamic:
                clipped = np.minimum(k, context)
                expected = (
                    clipped * (clipped + 1) / 2 + (context - clipped) * clipped
                ) / context
                expected[k >= context] = (context + 1) / 2
            else:
                expected = np.minimum(k, context).astype(float)
            total += 2.0 * float(expected.sum())
        return total

    @pytest.mark.parametrize("dynamic", [True, False])
    @pytest.mark.parametrize("context", [1, 3, 25])
    def test_matches_loop_reference(self, context, dynamic):
        rng = np.random.default_rng(4)
        lengths = rng.integers(0, 120, size=300)  # includes 0s and 1s
        assert expected_pair_count(
            lengths, context, dynamic=dynamic
        ) == pytest.approx(self._reference(lengths, context, dynamic))

    def test_empty_lengths(self):
        assert expected_pair_count(np.array([], dtype=np.int64), 5) == 0.0
        assert expected_pair_count(np.array([1, 1, 0]), 5) == 0.0


class TestMajorityVote:
    @staticmethod
    def _reference(labels, neighbors, similarities):
        """The pre-vectorization per-row dict loop."""
        predictions = np.empty(len(neighbors), dtype=object)
        for i, (row_neighbors, row_sims) in enumerate(
            zip(neighbors, similarities)
        ):
            votes: dict = {}
            weight: dict = {}
            for neighbor, sim in zip(row_neighbors, row_sims):
                label = labels[neighbor]
                votes[label] = votes.get(label, 0) + 1
                weight[label] = weight.get(label, 0.0) + float(sim)
            predictions[i] = max(
                votes, key=lambda lab: (votes[lab], weight[lab], lab)
            )
        return predictions

    def test_matches_reference_on_random_inputs(self):
        rng = np.random.default_rng(5)
        label_pool = np.array(
            ["Mirai", "Censys", "Unknown", "Shodan", "Stretchoid"], dtype=object
        )
        for trial in range(20):
            n_points = int(rng.integers(10, 60))
            k = int(rng.integers(1, 9))
            n_queries = int(rng.integers(1, 40))
            labels = label_pool[rng.integers(0, len(label_pool), n_points)]
            neighbors = rng.integers(0, n_points, size=(n_queries, k))
            sims = rng.random((n_queries, k))
            np.testing.assert_array_equal(
                majority_vote(labels, neighbors, sims),
                self._reference(labels, neighbors, sims),
            )

    def test_exact_ties_break_lexicographically(self):
        labels = np.array(["A", "B"], dtype=object)
        neighbors = np.array([[0, 1]])
        sims = np.array([[0.5, 0.5]])  # equal count, equal weight
        assert majority_vote(labels, neighbors, sims)[0] == "B"

    def test_weight_breaks_count_ties(self):
        labels = np.array(["A", "B"], dtype=object)
        neighbors = np.array([[0, 1]])
        sims = np.array([[0.9, 0.3]])
        assert majority_vote(labels, neighbors, sims)[0] == "A"

    def test_empty_queries(self):
        labels = np.array(["A"], dtype=object)
        out = majority_vote(
            labels, np.empty((0, 3), dtype=np.int64), np.empty((0, 3))
        )
        assert len(out) == 0


class TestSymmetricAdjacency:
    @staticmethod
    def _reference(graph):
        """The pre-vectorization dict-of-dicts edge loop."""
        adjacency = [dict() for _ in range(graph.n_nodes)]
        for u, v, w in zip(graph.sources, graph.targets, graph.weights):
            u, v, w = int(u), int(v), float(w)
            if u == v:
                continue
            adjacency[u][v] = adjacency[u].get(v, 0.0) + w
            adjacency[v][u] = adjacency[v].get(u, 0.0) + w
        return adjacency

    def test_matches_reference_on_random_graphs(self):
        rng = np.random.default_rng(6)
        for trial in range(10):
            n = int(rng.integers(2, 40))
            e = int(rng.integers(1, 120))
            graph = KnnGraph(
                n_nodes=n,
                sources=rng.integers(0, n, e),
                targets=rng.integers(0, n, e),
                weights=rng.random(e),
            )
            result = graph.symmetric_adjacency()
            reference = self._reference(graph)
            assert len(result) == len(reference)
            for got, want in zip(result, reference):
                assert set(got) == set(want)
                for key in want:
                    assert got[key] == pytest.approx(want[key], abs=1e-12)

    def test_csr_consistent_with_dicts(self):
        rng = np.random.default_rng(7)
        vectors = rng.normal(size=(30, 8))
        graph = build_knn_graph(vectors, k_prime=3)
        indptr, indices, weights = graph.symmetric_csr()
        adjacency = graph.symmetric_adjacency()
        assert indptr[0] == 0 and indptr[-1] == len(indices)
        for node, neighbors in enumerate(adjacency):
            lo, hi = indptr[node], indptr[node + 1]
            assert dict(zip(indices[lo:hi].tolist(), weights[lo:hi].tolist())) == neighbors


class TestParallelKnnSearch:
    def test_workers_do_not_change_results(self, monkeypatch):
        monkeypatch.setattr("repro.ann.exact._MAX_CHUNK_ROWS", 16)
        rng = np.random.default_rng(8)
        vectors = rng.normal(size=(120, 10))
        from repro.w2v.mathutils import unit_rows

        units = unit_rows(vectors)
        queries = np.arange(120)
        serial = knn_search(units, queries, 5, workers=1)
        threaded = knn_search(units, queries, 5, workers=4)
        np.testing.assert_array_equal(serial[0], threaded[0])
        np.testing.assert_array_equal(serial[1], threaded[1])

    def test_graph_identical_across_workers(self):
        rng = np.random.default_rng(9)
        vectors = rng.normal(size=(40, 6))
        a = build_knn_graph(vectors, k_prime=3, workers=1)
        b = build_knn_graph(vectors, k_prime=3, workers=4)
        np.testing.assert_array_equal(a.sources, b.sources)
        np.testing.assert_array_equal(a.targets, b.targets)
        np.testing.assert_array_equal(a.weights, b.weights)


class TestParallelTrainer:
    def test_workers1_never_touches_parallel_engine(self, monkeypatch):
        class Boom:
            def __init__(self, *args, **kwargs):
                raise AssertionError("parallel engine invoked at workers=1")

        monkeypatch.setattr("repro.parallel.trainer.ShardedTrainer", Boom)
        sentences = _community_sentences(n=30)
        keyed = Word2Vec(vector_size=8, context=3, epochs=1, seed=5).fit(sentences)
        assert len(keyed) == 40

    def test_workers2_uses_parallel_engine(self, monkeypatch):
        calls = []
        from repro.parallel.trainer import ShardedTrainer

        original = ShardedTrainer.train_corpus

        def spy(self, *args, **kwargs):
            calls.append(True)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(ShardedTrainer, "train_corpus", spy)
        Word2Vec(vector_size=8, context=3, epochs=1, seed=5, workers=2).fit(
            _community_sentences(n=30)
        )
        assert calls

    def test_workers1_fit_is_deterministic(self):
        sentences = _community_sentences(n=40)
        a = Word2Vec(vector_size=8, context=3, epochs=2, seed=5, workers=1).fit(
            sentences
        )
        b = Word2Vec(vector_size=8, context=3, epochs=2, seed=5, workers=1).fit(
            sentences
        )
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_parallel_fit_separates_communities(self):
        sentences = _community_sentences(n=400)
        keyed = Word2Vec(
            vector_size=16, context=5, epochs=5, seed=3, workers=4
        ).fit(sentences)
        assert np.isfinite(keyed.vectors).all()
        units = keyed.unit_vectors
        sims = units @ units.T
        within = (sims[:20, :20].sum() - 20) / (20 * 19)
        across = sims[:20, 20:].mean()
        assert within > across + 0.3

    def test_parallel_fit_covers_vocabulary(self):
        sentences = _community_sentences(n=50)
        keyed = Word2Vec(
            vector_size=8, context=3, epochs=1, seed=1, workers=0
        ).fit(sentences)
        assert len(keyed) == 40

    def test_parallel_fit_pairs(self):
        rng = np.random.default_rng(10)
        group = rng.integers(0, 2, size=4000)
        centers = rng.integers(0, 10, size=4000) + group * 10
        contexts = rng.integers(0, 10, size=4000) + group * 10
        keyed = Word2Vec(vector_size=8, epochs=3, seed=1, workers=2).fit_pairs(
            centers, contexts
        )
        assert len(keyed) == 20
        assert np.isfinite(keyed.vectors).all()

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            Word2Vec(workers=-1)

    def test_subsampling_supported_in_parallel(self):
        sentences = _community_sentences(n=60)
        keyed = Word2Vec(
            vector_size=8, context=3, epochs=2, seed=1, sample=1e-2, workers=2
        ).fit(sentences)
        assert np.isfinite(keyed.vectors).all()
        assert len(keyed)


class TestParallelAccuracy:
    """workers>1 must track sequential LOO accuracy on the seed scenario."""

    @pytest.fixture(scope="class")
    def reports(self, small_bundle):
        reports = {}
        for workers in (1, 4):
            config = DarkVecConfig(
                service="domain", epochs=3, seed=3, workers=workers
            )
            darkvec = DarkVec(config).fit(small_bundle.trace)
            reports[workers] = darkvec.evaluate(small_bundle.truth)
        return reports

    def test_parallel_close_to_sequential(self, reports):
        sequential, parallel = reports[1].accuracy, reports[4].accuracy
        assert parallel >= sequential - 0.1

    def test_both_paths_learn_signal(self, reports):
        assert reports[1].accuracy > 0.2
        assert reports[4].accuracy > 0.2


class TestPipelineWorkers:
    def test_config_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            DarkVecConfig(workers=-2)

    def test_loo_predictions_identical_across_workers(self, fitted_darkvec):
        embedding = fitted_darkvec.embedding
        labels = np.array(
            ["L%d" % (i % 5) for i in range(len(embedding))], dtype=object
        )
        rows = np.arange(len(embedding))
        serial = leave_one_out_predictions(
            embedding.vectors, labels, rows, k=5, workers=1
        )
        threaded = leave_one_out_predictions(
            embedding.vectors, labels, rows, k=5, workers=4
        )
        np.testing.assert_array_equal(serial, threaded)


class TestDanteParallel:
    def test_workers_do_not_change_result(self, tiny_trace):
        from repro.baselines.dante import Dante

        serial = Dante(vector_size=8, context=3, epochs=2, workers=1)
        threaded = Dante(vector_size=8, context=3, epochs=2, workers=4)
        a = serial.fit_sender_vectors(tiny_trace)
        b = threaded.fit_sender_vectors(tiny_trace)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        np.testing.assert_array_equal(a.vectors, b.vectors)
