"""Tests for repro.w2v.vocab."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.w2v.vocab import Vocabulary


class TestBuild:
    def test_counts(self):
        vocab = Vocabulary.build([np.array([1, 2, 2]), np.array([2, 3])])
        assert len(vocab) == 3
        assert vocab.counts[vocab.id_of(2)] == 3
        assert vocab.total_count == 5

    def test_min_count_prunes(self):
        vocab = Vocabulary.build([np.array([1, 1, 2])], min_count=2)
        assert len(vocab) == 1
        assert vocab.id_of(2) == -1
        assert vocab.id_of(1) == 0

    def test_empty(self):
        vocab = Vocabulary.build([])
        assert len(vocab) == 0
        assert vocab.encode(np.array([1])).tolist() == [-1]

    def test_invalid_min_count(self):
        with pytest.raises(ValueError):
            Vocabulary.build([], min_count=0)


class TestEncodeDecode:
    def test_roundtrip(self):
        vocab = Vocabulary.build([np.array([5, 9, 100])])
        ids = vocab.encode(np.array([100, 5, 9]))
        assert np.array_equal(vocab.decode(ids), np.array([100, 5, 9]))

    def test_oov_is_minus_one(self):
        vocab = Vocabulary.build([np.array([1])])
        assert vocab.encode(np.array([1, 42])).tolist() == [0, -1]

    def test_encode_sentence_drops_oov(self):
        vocab = Vocabulary.build([np.array([1, 2])])
        encoded = vocab.encode_sentence(np.array([1, 99, 2, 99]))
        assert encoded.tolist() == [0, 1]

    def test_decode_out_of_range(self):
        vocab = Vocabulary.build([np.array([1])])
        with pytest.raises(ValueError):
            vocab.decode(np.array([5]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Vocabulary(tokens=np.array([2, 1]), counts=np.array([1, 1]))
        with pytest.raises(ValueError):
            Vocabulary(tokens=np.array([1]), counts=np.array([0]))
        with pytest.raises(ValueError):
            Vocabulary(tokens=np.array([1, 2]), counts=np.array([1]))

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=100))
    def test_counts_match_naive(self, tokens):
        vocab = Vocabulary.build([np.array(tokens, dtype=np.int64)])
        for token in set(tokens):
            word_id = vocab.id_of(token)
            assert vocab.counts[word_id] == tokens.count(token)
