"""Fidelity of the default scenario against the paper's Table 2 shapes.

These tests pin the simulator to the published class fingerprints so a
future refactor cannot silently drift away from the paper.
"""

import numpy as np
import pytest

from repro.trace.packet import TCP, UDP


def _class_port_share(bundle, actor, port, proto):
    trace = bundle.trace
    sub = trace.from_senders(bundle.sender_indices_of(actor))
    if not len(sub):
        return 0.0
    return sub.port_packet_counts().get((port, proto), 0) / len(sub)


class TestTable2Fingerprints:
    def test_mirai_telnet_share(self, small_bundle):
        # Paper: 89.6% of Mirai traffic to 23/TCP.
        share = _class_port_share(small_bundle, "mirai", 23, TCP)
        assert 0.8 < share < 0.98

    def test_engin_umich_dns_only(self, small_bundle):
        share = _class_port_share(small_bundle, "engin_umich", 53, UDP)
        assert share == 1.0

    def test_ipip_sip_heavy(self, small_bundle):
        # Paper: 41.5% of Ipip traffic to 5060/TCP.
        share = _class_port_share(small_bundle, "ipip", 5060, TCP)
        assert 0.25 < share < 0.6

    def test_unknown3_smb_dominant(self, small_bundle):
        # Paper: 99.5% of unknown3 traffic to 445/TCP.
        share = _class_port_share(small_bundle, "unknown3_smb", 445, TCP)
        assert share > 0.9

    def test_unknown4_adb_dominant(self, small_bundle):
        # Paper: 75% of the ADB worm's traffic to 5555/TCP.
        share = _class_port_share(small_bundle, "unknown4_adb", 5555, TCP)
        assert 0.55 < share < 0.9

    def test_unknown1_netbios_share(self, small_bundle):
        # Paper: 60% of unknown1 traffic to 137/UDP.
        share = _class_port_share(small_bundle, "unknown1_netbios", 137, UDP)
        assert 0.4 < share < 0.8

    def test_sharashka_near_uniform(self, small_bundle):
        trace = small_bundle.trace
        sub = trace.from_senders(small_bundle.sender_indices_of("sharashka"))
        counts = np.array(list(sub.port_packet_counts().values()))
        # Paper: top port holds only ~0.5% of Sharashka's traffic;
        # at test scale the share is higher but no port dominates.
        assert counts.max() / counts.sum() < 0.05


class TestAddressLayouts:
    @pytest.mark.parametrize(
        "actor, max_subnets",
        [
            ("unknown1_netbios", 1),
            ("unknown2_smtp", 1),
            ("engin_umich", 1),
            ("sharashka", 1),
        ],
    )
    def test_single_subnet_groups(self, small_bundle, actor, max_subnets):
        from repro.trace.address import subnet24

        ips = small_bundle.actor_ips[actor]
        assert len({subnet24(ip) for ip in ips}) <= max_subnets

    def test_unknown3_spread_over_23_subnets(self, small_bundle):
        from repro.trace.address import subnet24

        ips = small_bundle.actor_ips["unknown3_smb"]
        assert len({subnet24(ip) for ip in ips}) == 23

    def test_shadowserver_one_slash16(self, small_bundle):
        from repro.trace.address import subnet16

        ips = np.concatenate(
            [
                small_bundle.actor_ips[f"shadowserver_c{i}"]
                for i in range(3)
            ]
        )
        assert len({subnet16(ip) for ip in ips}) == 1

    def test_mirai_scattered(self, small_bundle):
        from repro.trace.address import subnet24

        ips = small_bundle.actor_ips["mirai"]
        assert len({subnet24(ip) for ip in ips}) > len(ips) * 0.9


class TestMimicParity:
    """Mimic unknowns must stay port-indistinguishable from their class."""

    @pytest.mark.parametrize(
        "actor, mimic",
        [
            ("stretchoid", "noise_like_stretchoid"),
            ("shodan", "noise_like_shodan"),
        ],
    )
    def test_port_sets_overlap_heavily(self, small_bundle, actor, mimic):
        from repro.core.inspection import port_jaccard

        trace = small_bundle.trace
        score = port_jaccard(
            trace,
            small_bundle.sender_indices_of(actor),
            small_bundle.sender_indices_of(mimic),
        )
        assert score > 0.25
