"""Edge cases for the service maps."""

import numpy as np
import pytest

from repro.services.auto import AutoServiceMap
from repro.services.domain import DomainServiceMap
from repro.trace.packet import TCP, UDP, Trace


def _trace(ports, protos=None):
    n = len(ports)
    return Trace.from_events(
        times=np.arange(n, dtype=float),
        sender_ips_per_packet=np.arange(n, dtype=np.uint64) + 1,
        ports=np.array(ports),
        protos=np.full(n, TCP) if protos is None else np.array(protos),
        receivers=np.zeros(n, dtype=np.uint8),
        mirai=np.zeros(n, dtype=bool),
    )


class TestAutoServiceEdges:
    def test_n_larger_than_distinct_ports(self):
        trace = _trace([80, 80, 443])
        service_map = AutoServiceMap.from_trace(trace, n=10)
        # Only two distinct ports exist; map still total.
        assert service_map.n_services == 3  # 2 ports + other
        assert service_map.service_of(80, TCP) == "80/tcp"
        assert service_map.service_of(22, TCP) == "other"

    def test_single_packet_trace(self):
        trace = _trace([23])
        service_map = AutoServiceMap.from_trace(trace, n=1)
        assert service_map.service_of(23, TCP) == "23/tcp"

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            AutoServiceMap.from_trace(_trace([1]), n=0)

    def test_port_zero_handled(self):
        trace = _trace([0, 0, 80])
        service_map = AutoServiceMap.from_trace(trace, n=1)
        assert service_map.service_of(0, TCP) == "0/tcp"

    def test_same_port_different_proto_distinct_services(self):
        trace = _trace([53, 53, 53], protos=[UDP, UDP, TCP])
        service_map = AutoServiceMap.from_trace(trace, n=2)
        assert service_map.service_of(53, UDP) != service_map.service_of(53, TCP)


class TestDomainServiceEdges:
    def test_port_boundaries(self):
        service_map = DomainServiceMap()
        assert service_map.service_of(1023, TCP) == "Unknown System"
        assert service_map.service_of(1024, TCP) == "Unknown User"
        assert service_map.service_of(49_151, TCP) == "Unknown User"
        assert service_map.service_of(49_152, TCP) == "Unknown Ephemeral"
        assert service_map.service_of(65_535, TCP) == "Unknown Ephemeral"

    def test_vectorised_matches_scalar(self):
        service_map = DomainServiceMap()
        rng = np.random.default_rng(0)
        ports = rng.integers(0, 65_536, size=500)
        protos = rng.choice([TCP, UDP], size=500)
        ids = service_map.service_ids(ports, protos)
        for i in range(0, 500, 37):
            assert (
                service_map.names[ids[i]]
                == service_map.service_of(int(ports[i]), int(protos[i]))
            )
