"""Tests for repro.io (CSV round-trip, anonymisation)."""

import numpy as np
import pytest

from repro.io.anonymize import anonymize_trace
from repro.io.csvio import read_trace_csv, write_trace_csv
from repro.trace.address import subnet16, subnet24


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, tiny_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace_csv(tiny_trace, path)
        loaded = read_trace_csv(path)
        assert np.allclose(loaded.times, tiny_trace.times)
        assert np.array_equal(loaded.sender_ips, tiny_trace.sender_ips)
        assert np.array_equal(loaded.senders, tiny_trace.senders)
        assert np.array_equal(loaded.ports, tiny_trace.ports)
        assert np.array_equal(loaded.protos, tiny_trace.protos)
        assert np.array_equal(loaded.receivers, tiny_trace.receivers)
        assert np.array_equal(loaded.mirai, tiny_trace.mirai)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            read_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text(
            "timestamp,src_ip,dst_host,dst_port,proto,mirai\n1.0,10.0.0.1,2\n"
        )
        with pytest.raises(ValueError):
            read_trace_csv(path)


class TestAnonymize:
    def test_structure_preserved(self, small_trace):
        anonymized = anonymize_trace(small_trace, key="k1")
        assert anonymized.n_packets == small_trace.n_packets
        assert anonymized.n_senders == small_trace.n_senders
        assert np.array_equal(anonymized.times, small_trace.times)
        assert np.array_equal(anonymized.ports, small_trace.ports)
        # Per-sender packet counts are a permutation of the originals.
        assert sorted(anonymized.packet_counts()) == sorted(
            small_trace.packet_counts()
        )

    def test_addresses_change(self, small_trace):
        anonymized = anonymize_trace(small_trace, key="k1")
        overlap = np.intersect1d(anonymized.sender_ips, small_trace.sender_ips)
        assert len(overlap) < small_trace.n_senders / 10

    def test_prefix_preservation(self, tiny_trace):
        anonymized = anonymize_trace(tiny_trace, key="k2")
        # The three tiny-trace senders share a /24: still true after.
        assert len({subnet24(ip) for ip in anonymized.sender_ips}) == 1
        assert len({subnet16(ip) for ip in anonymized.sender_ips}) == 1

    def test_deterministic_per_key(self, tiny_trace):
        a = anonymize_trace(tiny_trace, key="same")
        b = anonymize_trace(tiny_trace, key="same")
        c = anonymize_trace(tiny_trace, key="different")
        assert np.array_equal(a.sender_ips, b.sender_ips)
        assert not np.array_equal(a.sender_ips, c.sender_ips)

    def test_packet_to_sender_mapping_consistent(self, tiny_trace):
        anonymized = anonymize_trace(tiny_trace, key="k3")
        # Packets that shared a sender still share one.
        original_groups = {}
        for i in range(len(tiny_trace)):
            original_groups.setdefault(int(tiny_trace.senders[i]), []).append(i)
        for packets in original_groups.values():
            anon_senders = {int(anonymized.senders[i]) for i in packets}
            assert len(anon_senders) == 1


class TestNdjsonRoundtrip:
    def test_roundtrip(self, tiny_trace, tmp_path):
        from repro.io.ndjson import read_trace_ndjson, write_trace_ndjson

        path = tmp_path / "trace.ndjson"
        write_trace_ndjson(tiny_trace, path)
        loaded = read_trace_ndjson(path)
        assert np.allclose(loaded.times, tiny_trace.times)
        assert np.array_equal(loaded.sender_ips, tiny_trace.sender_ips)
        assert np.array_equal(loaded.ports, tiny_trace.ports)
        assert np.array_equal(loaded.mirai, tiny_trace.mirai)

    def test_gzip_roundtrip(self, tiny_trace, tmp_path):
        from repro.io.ndjson import read_trace_ndjson, write_trace_ndjson

        path = tmp_path / "trace.ndjson.gz"
        write_trace_ndjson(tiny_trace, path)
        assert path.stat().st_size > 0
        loaded = read_trace_ndjson(path)
        assert len(loaded) == len(tiny_trace)

    def test_malformed_line_reports_position(self, tmp_path):
        from repro.io.ndjson import read_trace_ndjson

        path = tmp_path / "bad.ndjson"
        path.write_text('{"ts": 1.0}\n')
        with pytest.raises(ValueError, match="bad.ndjson:1"):
            read_trace_ndjson(path)

    def test_blank_lines_skipped(self, tiny_trace, tmp_path):
        from repro.io.ndjson import read_trace_ndjson, write_trace_ndjson

        path = tmp_path / "trace.ndjson"
        write_trace_ndjson(tiny_trace, path)
        path.write_text(path.read_text() + "\n\n")
        loaded = read_trace_ndjson(path)
        assert len(loaded) == len(tiny_trace)
