"""Tests for the bipartite sender-port clustering baseline."""

import numpy as np
import pytest

from repro.baselines.bipartite import bipartite_communities
from repro.trace.packet import TCP, UDP, Trace


def _two_group_trace():
    """Group A hits ports 1000-1004; group B hits ports 2000-2004."""
    rng = np.random.default_rng(0)
    times, ips, ports = [], [], []
    for sender in range(10):
        for _ in range(20):
            times.append(rng.random() * 1e4)
            ips.append(100 + sender)
            base = 1000 if sender < 5 else 2000
            ports.append(base + rng.integers(0, 5))
    n = len(times)
    return Trace.from_events(
        times=np.array(times),
        sender_ips_per_packet=np.array(ips, dtype=np.uint64),
        ports=np.array(ports),
        protos=np.full(n, TCP),
        receivers=np.zeros(n, dtype=np.uint8),
        mirai=np.zeros(n, dtype=bool),
    )


class TestBipartiteCommunities:
    def test_separates_port_disjoint_groups(self):
        trace = _two_group_trace()
        result = bipartite_communities(trace, senders=np.arange(10))
        group_a = set(result.communities[:5].tolist())
        group_b = set(result.communities[5:].tolist())
        assert len(group_a) == 1
        assert len(group_b) == 1
        assert group_a != group_b

    def test_modularity_positive(self):
        trace = _two_group_trace()
        result = bipartite_communities(trace, senders=np.arange(10))
        assert result.modularity > 0.3
        assert result.n_ports == 10

    def test_absent_sender_gets_minus_one(self):
        trace = _two_group_trace()
        result = bipartite_communities(trace, senders=np.array([0, 9]))
        # Requested senders exist, so both assigned.
        assert (result.communities >= 0).all()

    def test_empty_selection(self):
        trace = _two_group_trace()
        result = bipartite_communities(
            trace, senders=np.empty(0, dtype=np.int64)
        )
        assert result.n_clusters == 0

    def test_weight_validation(self):
        trace = _two_group_trace()
        with pytest.raises(ValueError):
            bipartite_communities(trace, weight="bogus")

    def test_on_simulated_trace(self, small_bundle):
        """Port-coherent hidden groups are found even without timing."""
        trace = small_bundle.trace
        result = bipartite_communities(trace)
        lookup = {int(s): int(c) for s, c in zip(result.senders, result.communities)}
        engin = [
            lookup[s]
            for s in small_bundle.sender_indices_of("engin_umich")
            if int(s) in lookup
        ]
        if len(engin) >= 5:
            # DNS-only senders share a community.
            values, counts = np.unique(engin, return_counts=True)
            assert counts.max() / len(engin) > 0.7
