"""Tests for the ANN subsystem (repro.ann): exact and IVF backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.ann import (
    AnnSpec,
    ExactIndex,
    HNSWIndex,
    IVFIndex,
    build_index,
    score_chunk_rows,
)
from repro.ann import audit
from repro.ann import exact as exact_mod
from repro.ann import hnsw as hnsw_mod
from repro.ann.ivf import RETRAIN_IMBALANCE
from repro.core import DarkVec, DarkVecConfig
from repro.io.artifacts import (
    HNSW_INDEX_CODEC,
    HNSW_INDEX_RAW_CODEC,
    IVF_INDEX_CODEC,
)
from repro.knn.classifier import CosineKnn, knn_search
from repro.obs.recorder import Telemetry
from repro.store.cache import ArtifactStore
from repro.w2v.mathutils import unit_rows


def clustered_units(
    n: int = 600, dim: int = 16, n_clusters: int = 12, seed: int = 0
) -> np.ndarray:
    """Row-normalised vectors with clear cluster structure."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_clusters, dim))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assign = rng.integers(0, n_clusters, size=n)
    points = centers[assign] + 0.15 * rng.normal(size=(n, dim))
    return unit_rows(points)


def random_units(n: int = 400, dim: int = 32, seed: int = 5) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return unit_rows(rng.normal(size=(n, dim)))


def legacy_knn_search(units, query_rows, k, exclude_self=True):
    """The pre-ANN knn_search: fixed 1024-row chunks, brute force."""
    n = len(units)
    query_rows = np.asarray(query_rows, dtype=np.int64)
    neighbors = np.empty((len(query_rows), k), dtype=np.int64)
    sims = np.empty((len(query_rows), k))
    for lo in range(0, len(query_rows), 1024):
        chunk = query_rows[lo : lo + 1024]
        scores = units[chunk] @ units.T
        if exclude_self:
            scores[np.arange(len(chunk)), chunk] = -np.inf
        top = np.argpartition(scores, -k, axis=1)[:, -k:]
        top_scores = np.take_along_axis(scores, top, axis=1)
        order = np.argsort(top_scores, axis=1)[:, ::-1]
        neighbors[lo : lo + 1024] = np.take_along_axis(top, order, axis=1)
        sims[lo : lo + 1024] = np.take_along_axis(top_scores, order, axis=1)
    return neighbors, sims


class TestAnnSpec:
    def test_defaults(self):
        spec = AnnSpec()
        assert spec.backend == "exact"
        assert spec.nlist == 0

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            AnnSpec(backend="nope")

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="nlist"):
            AnnSpec(nlist=-1)
        with pytest.raises(ValueError, match="nprobe"):
            AnnSpec(nprobe=0)
        with pytest.raises(ValueError, match="recall_sample"):
            AnnSpec(recall_sample=-1)

    def test_config_validates_ann_knobs(self):
        with pytest.raises(ValueError, match="backend"):
            DarkVecConfig(ann_backend="annoy")
        with pytest.raises(ValueError, match="nprobe"):
            DarkVecConfig(ann_nprobe=0)

    def test_config_spec_carries_seed(self):
        spec = DarkVecConfig(seed=42, ann_backend="ivf").ann_spec()
        assert spec.seed == 42
        assert spec.backend == "ivf"


class TestChunkBudget:
    def test_small_corpora_keep_historical_chunks(self):
        # Fixed 1024-row chunks for every N the repo historically saw.
        for n in (1, 100, 1024, 8192):
            assert score_chunk_rows(n) == 1024

    def test_large_corpora_shrink(self):
        assert score_chunk_rows(1 << 17) == 64
        assert score_chunk_rows(1 << 16) == 128

    def test_floor(self):
        assert score_chunk_rows(1 << 20) == 16
        assert score_chunk_rows(1 << 30) == 16


class TestExactIndex:
    def test_bit_identical_to_legacy_search(self):
        units = random_units(n=1500)
        rows = np.arange(1500)
        legacy_nb, legacy_s = legacy_knn_search(units, rows, 7)
        nb, s = ExactIndex(units).search(rows, 7)
        np.testing.assert_array_equal(nb, legacy_nb)
        np.testing.assert_array_equal(s, legacy_s)

    def test_bit_identical_across_chunk_sizes(self, monkeypatch):
        units = random_units(n=300)
        rows = np.arange(300)
        baseline = ExactIndex(units).search(rows, 5)
        monkeypatch.setattr(exact_mod, "_MAX_CHUNK_ROWS", 16)
        chunked = ExactIndex(units).search(rows, 5)
        # Chunk shape changes BLAS blocking, so sims may differ by one
        # ULP; the neighbour sets must not.
        np.testing.assert_array_equal(baseline[0], chunked[0])
        np.testing.assert_allclose(baseline[1], chunked[1], atol=1e-12)

    def test_workers_do_not_change_results(self, monkeypatch):
        monkeypatch.setattr(exact_mod, "_MAX_CHUNK_ROWS", 32)
        units = random_units(n=200)
        rows = np.arange(200)
        one = ExactIndex(units).search(rows, 4, workers=1)
        three = ExactIndex(units).search(rows, 4, workers=3)
        np.testing.assert_array_equal(one[0], three[0])
        np.testing.assert_array_equal(one[1], three[1])

    def test_knn_search_routes_through_exact_by_default(self):
        units = random_units(n=60)
        rows = np.arange(60)
        via_api = knn_search(units, rows, 3)
        direct = ExactIndex(units).search(rows, 3)
        np.testing.assert_array_equal(via_api[0], direct[0])

    def test_validation(self):
        units = random_units(n=5)
        with pytest.raises(ValueError, match="k must be positive"):
            ExactIndex(units).search(np.arange(5), 0)
        with pytest.raises(ValueError, match="need at least"):
            ExactIndex(units).search(np.arange(5), 5, exclude_self=True)


class TestIVFIndex:
    @pytest.fixture(scope="class")
    def units(self):
        return clustered_units()

    def test_recall_on_clustered_data(self, units):
        spec = AnnSpec(backend="ivf", nlist=16, nprobe=4, seed=1)
        index = IVFIndex.build(units, spec)
        rows = np.arange(len(units))
        nb, _ = index.search(rows, 7)
        exact_nb, _ = ExactIndex(units).search(rows, 7)
        overlap = np.mean(
            [
                len(np.intersect1d(nb[i], exact_nb[i])) / 7
                for i in range(len(rows))
            ]
        )
        assert overlap >= 0.95

    def test_exhaustive_probe_matches_exact(self, units):
        # nprobe >= nlist scores every list: same sets as brute force.
        spec = AnnSpec(backend="ivf", nlist=8, nprobe=8, seed=1)
        nb, s = IVFIndex.build(units, spec).search(np.arange(len(units)), 5)
        exact_nb, exact_s = ExactIndex(units).search(np.arange(len(units)), 5)
        np.testing.assert_array_equal(np.sort(nb, 1), np.sort(exact_nb, 1))
        np.testing.assert_allclose(np.sort(s, 1), np.sort(exact_s, 1), atol=1e-9)

    def test_workers_do_not_change_results(self, units):
        spec = AnnSpec(backend="ivf", nlist=16, nprobe=4, seed=1)
        index = IVFIndex.build(units, spec)
        rows = np.arange(len(units))
        one = index.search(rows, 6, workers=1)
        three = index.search(rows, 6, workers=3)
        np.testing.assert_array_equal(one[0], three[0])
        np.testing.assert_array_equal(one[1], three[1])

    def test_deterministic_rebuild(self, units):
        spec = AnnSpec(backend="ivf", nlist=16, nprobe=4, seed=7)
        a = IVFIndex.build(units, spec)
        b = IVFIndex.build(units, spec)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.assign, b.assign)

    def test_self_exclusion(self, units):
        spec = AnnSpec(backend="ivf", nlist=16, nprobe=16, seed=1)
        rows = np.arange(len(units))
        nb, _ = IVFIndex.build(units, spec).search(rows, 5, exclude_self=True)
        assert not (nb == rows[:, None]).any()

    def test_small_list_fallback_is_exact(self):
        # Far more lists than points per list: probed candidates < k,
        # so every query falls back to exhaustive search.
        units = random_units(n=40, seed=2)
        spec = AnnSpec(backend="ivf", nlist=20, nprobe=1, seed=1)
        rows = np.arange(40)
        nb, s = IVFIndex.build(units, spec).search(rows, 10)
        exact_nb, exact_s = ExactIndex(units).search(rows, 10)
        np.testing.assert_array_equal(nb, exact_nb)
        np.testing.assert_array_equal(s, exact_s)

    def test_similarities_are_float64_exact(self, units):
        # Returned sims come from a float64 rescore of the winners.
        spec = AnnSpec(backend="ivf", nlist=16, nprobe=4, seed=1)
        rows = np.arange(100)
        nb, s = IVFIndex.build(units, spec).search(rows, 3)
        expected = np.einsum(
            "qkd,qd->qk", units[nb], units[rows]
        )
        np.testing.assert_allclose(s, expected, atol=1e-12)

    def test_build_via_factory(self, units):
        index = build_index(units, AnnSpec(backend="ivf", nlist=12))
        assert isinstance(index, IVFIndex)
        assert index.nlist == 12

    def test_auto_nlist_is_sqrt_n(self, units):
        index = build_index(units, AnnSpec(backend="ivf"))
        assert index.nlist == round(np.sqrt(len(units)))


class TestRecallAudit:
    def test_audit_records_recall(self):
        units = clustered_units(n=300, seed=3)
        audit.reset()
        spec = AnnSpec(backend="ivf", nlist=10, nprobe=4, recall_sample=32)
        index = IVFIndex.build(units, spec)
        index.search(np.arange(300), 5)
        assert index.last_recall is not None
        assert 0.0 <= index.last_recall <= 1.0
        assert audit.last_recall() == index.last_recall
        assert audit.audited_queries() == 32

    def test_audit_disabled(self):
        units = clustered_units(n=200, seed=4)
        audit.reset()
        spec = AnnSpec(backend="ivf", nlist=8, nprobe=4, recall_sample=0)
        index = IVFIndex.build(units, spec)
        index.search(np.arange(200), 5)
        assert index.last_recall is None
        assert audit.last_recall() is None

    def test_exhaustive_probe_audits_perfect_recall(self):
        units = clustered_units(n=200, seed=4)
        spec = AnnSpec(backend="ivf", nlist=8, nprobe=8, recall_sample=200)
        index = IVFIndex.build(units, spec)
        index.search(np.arange(200), 5)
        assert index.last_recall == 1.0

    def test_exact_backend_records_nothing(self):
        audit.reset()
        ExactIndex(random_units(n=50)).search(np.arange(50), 3)
        assert audit.last_recall() is None


class TestIncrementalUpdate:
    @pytest.fixture(scope="class")
    def built(self):
        units = clustered_units(n=500, seed=6)
        spec = AnnSpec(backend="ivf", nlist=12, nprobe=4, seed=1)
        return units, IVFIndex.build(units, spec)

    def test_identity_update_preserves_index(self, built):
        units, index = built
        evolved = index.updated(units, np.arange(len(units)))
        np.testing.assert_array_equal(evolved.centroids, index.centroids)
        np.testing.assert_array_equal(evolved.assign, index.assign)

    def test_add_and_evict(self, built):
        units, index = built
        # Drop the first 50 rows, append 30 fresh points.
        kept = units[50:]
        fresh = clustered_units(n=30, seed=9)
        new_units = np.vstack([kept, fresh])
        prior_rows = np.concatenate(
            [np.arange(50, len(units)), np.full(30, -1)]
        )
        evolved = index.updated(new_units, prior_rows)
        assert len(evolved) == len(new_units)
        # Kept rows keep their prior list assignment.
        np.testing.assert_array_equal(
            evolved.assign[: len(kept)], index.assign[50:]
        )
        # Fresh rows landed in their nearest list.
        expected = np.argmax(
            new_units[len(kept) :].astype(np.float32) @ index.centroids.T,
            axis=1,
        )
        np.testing.assert_array_equal(evolved.assign[len(kept) :], expected)

    def test_evolved_index_still_searches_well(self, built):
        units, index = built
        evolved = index.updated(units[100:], np.arange(100, len(units)))
        rows = np.arange(len(evolved))
        nb, _ = evolved.search(rows, 5)
        exact_nb, _ = ExactIndex(units[100:]).search(rows, 5)
        overlap = np.mean(
            [
                len(np.intersect1d(nb[i], exact_nb[i])) / 5
                for i in range(len(rows))
            ]
        )
        assert overlap >= 0.9

    def test_forced_retrain_equals_cold_build(self, built):
        units, index = built
        evolved = index.updated(
            units, np.arange(len(units)), retrain_threshold=0.0
        )
        cold = IVFIndex.build(units, index.spec)
        np.testing.assert_array_equal(evolved.centroids, cold.centroids)
        np.testing.assert_array_equal(evolved.assign, cold.assign)

    def test_imbalance_triggers_retrain(self, built):
        units, index = built
        # Pile every fresh row onto one list by duplicating one point.
        n_dup = int(RETRAIN_IMBALANCE * len(units) / index.nlist) + 50
        new_units = np.vstack([units, np.tile(units[:1], (n_dup, 1))])
        prior_rows = np.concatenate(
            [np.arange(len(units)), np.full(n_dup, -1)]
        )
        evolved = index.updated(new_units, prior_rows)
        cold = IVFIndex.build(new_units, index.spec)
        np.testing.assert_array_equal(evolved.centroids, cold.centroids)

    def test_misaligned_prior_rows_raises(self, built):
        units, index = built
        with pytest.raises(ValueError, match="align"):
            index.updated(units, np.arange(10))


class TestStoreRoundTrip:
    def test_codec_round_trip_search_equality(self, tmp_path):
        units = clustered_units(n=250, seed=8)
        spec = AnnSpec(backend="ivf", nlist=10, nprobe=3, seed=2)
        index = IVFIndex.build(units, spec)
        store = ArtifactStore(tmp_path)
        store.save("ann-index", "fp-test", IVF_INDEX_CODEC, index)
        loaded, _ = store.load("ann-index", "fp-test", IVF_INDEX_CODEC)
        assert isinstance(loaded, IVFIndex)
        assert loaded.spec == spec
        rows = np.arange(250)
        original = index.search(rows, 5)
        restored = loaded.search(rows, 5)
        np.testing.assert_array_equal(original[0], restored[0])
        np.testing.assert_array_equal(original[1], restored[1])


class TestCosineKnnCache:
    def test_predict_and_distances_share_one_search(self):
        units = clustered_units(n=120, seed=10)
        labels = np.array(["a", "b"] * 60, dtype=object)
        telemetry = Telemetry()
        with obs.session(telemetry):
            knn = CosineKnn(units, labels, k=5)
            rows = np.arange(40)
            knn.predict_rows(rows, exclude_self=True)
            knn.neighbor_distances(rows, exclude_self=True)
        assert telemetry.registry.counters["knn.queries"] == 40

    def test_cache_misses_on_different_queries(self):
        units = clustered_units(n=120, seed=10)
        labels = np.array(["a", "b"] * 60, dtype=object)
        telemetry = Telemetry()
        with obs.session(telemetry):
            knn = CosineKnn(units, labels, k=5)
            knn.predict_rows(np.arange(40), exclude_self=True)
            knn.predict_rows(np.arange(40, 80), exclude_self=True)
        assert telemetry.registry.counters["knn.queries"] == 80

    def test_accepts_prebuilt_index(self):
        units = clustered_units(n=80, seed=11)
        labels = np.array(["x", "y"] * 40, dtype=object)
        index = ExactIndex(units)
        knn = CosineKnn(None, labels, k=3, index=index)
        direct = CosineKnn(units, labels, k=3)
        rows = np.arange(80)
        np.testing.assert_array_equal(
            knn.predict_rows(rows, exclude_self=True),
            direct.predict_rows(rows, exclude_self=True),
        )


class TestPipelineIntegration:
    def test_exact_default_is_unchanged(self, fitted_darkvec, small_trace):
        # The default config routes every consumer through ExactIndex;
        # the LOO probe must match a direct legacy-style search.
        embedding = fitted_darkvec.embedding
        units = unit_rows(embedding.vectors)
        rows = np.arange(min(50, len(units)))
        nb, s = knn_search(units, rows, 7)
        legacy_nb, legacy_s = legacy_knn_search(units, rows, 7)
        np.testing.assert_array_equal(nb, legacy_nb)
        np.testing.assert_array_equal(s, legacy_s)

    def test_ivf_graph_edges_mostly_match_exact(self, fitted_darkvec):
        from repro.graph.knn_graph import build_knn_graph

        vectors = fitted_darkvec.embedding.vectors
        exact_graph = build_knn_graph(vectors, k_prime=3)
        ivf_graph = build_knn_graph(
            vectors,
            k_prime=3,
            spec=AnnSpec(backend="ivf", nprobe=8, seed=1),
        )
        exact_nb = exact_graph.targets.reshape(-1, 3)
        ivf_nb = ivf_graph.targets.reshape(-1, 3)
        recall = np.mean(
            [
                len(np.intersect1d(a, b)) / 3
                for a, b in zip(ivf_nb, exact_nb)
            ]
        )
        assert recall >= 0.9


def _recall(nb, exact_nb):
    k = nb.shape[1]
    return np.mean(
        [len(np.intersect1d(nb[i], exact_nb[i])) / k for i in range(len(nb))]
    )


class TestHNSWIndex:
    # Larger than _SCAN_WINDOW so queries exercise the graph beam, not
    # just the exhaustive id-window scan small corpora collapse to.
    @pytest.fixture(scope="class")
    def units(self):
        return clustered_units(n=4096, n_clusters=24, seed=0)

    @pytest.fixture(scope="class")
    def built(self, units):
        return HNSWIndex.build(units, AnnSpec(backend="hnsw", seed=1))

    def test_recall_at_default_ef(self, units, built):
        rows = np.arange(len(units))
        nb, _ = built.search(rows, 7)
        exact_nb, _ = ExactIndex(units).search(rows, 7)
        assert _recall(nb, exact_nb) >= 0.95

    def test_similarities_are_float64_exact(self, units, built):
        # Returned sims come from a float64 rescore of the winners.
        rows = np.arange(100)
        nb, s = built.search(rows, 3)
        expected = np.einsum("qkd,qd->qk", units[nb], units[rows])
        np.testing.assert_allclose(s, expected, atol=1e-12)

    def test_self_exclusion(self, units, built):
        rows = np.arange(len(units))
        nb, _ = built.search(rows, 5, exclude_self=True)
        assert not (nb == rows[:, None]).any()

    def test_workers_do_not_change_results(self, units, built):
        rows = np.arange(len(units))
        one = built.search(rows, 6, workers=1)
        three = built.search(rows, 6, workers=3)
        np.testing.assert_array_equal(one[0], three[0])
        np.testing.assert_array_equal(one[1], three[1])

    def test_deterministic_rebuild(self, units, built):
        again = HNSWIndex.build(units, AnnSpec(backend="hnsw", seed=1))
        np.testing.assert_array_equal(again.node_row, built.node_row)
        np.testing.assert_array_equal(again.levels, built.levels)
        np.testing.assert_array_equal(again.links0, built.links0)

    def test_build_via_factory(self):
        units = clustered_units(n=200, seed=2)
        index = build_index(units, AnnSpec(backend="hnsw"))
        assert isinstance(index, HNSWIndex)

    def test_ef_search_is_a_recall_knob(self, units, monkeypatch):
        # With a crippled seed window, a starved beam (ef_search=1)
        # must lose recall vs the default: ef is the tuning knob.
        monkeypatch.setattr(hnsw_mod, "_SCAN_WINDOW", 64)
        rows = np.arange(len(units))
        exact_nb, _ = ExactIndex(units).search(rows, 7)
        starved = HNSWIndex.build(
            units, AnnSpec(backend="hnsw", seed=1, hnsw_ef_search=1)
        )
        wide = HNSWIndex.build(
            units, AnnSpec(backend="hnsw", seed=1, hnsw_ef_search=64)
        )
        r_starved = _recall(starved.search(rows, 7)[0], exact_nb)
        r_wide = _recall(wide.search(rows, 7)[0], exact_nb)
        assert r_wide > r_starved


class TestHNSWUpdate:
    @pytest.fixture(scope="class")
    def built(self):
        units = clustered_units(n=500, seed=6)
        return units, HNSWIndex.build(units, AnnSpec(backend="hnsw", seed=1))

    def test_identity_update_preserves_search(self, built):
        units, index = built
        evolved = index.updated(units, np.arange(len(units)))
        rows = np.arange(len(units))
        np.testing.assert_array_equal(
            evolved.search(rows, 5)[0], index.search(rows, 5)[0]
        )

    def test_insert_and_evict_tracks_fresh_build(self, built):
        units, index = built
        kept = units[50:]
        fresh = clustered_units(n=30, seed=9)
        new_units = np.vstack([kept, fresh])
        prior_rows = np.concatenate(
            [np.arange(50, len(units)), np.full(30, -1)]
        )
        evolved = index.updated(new_units, prior_rows)
        assert len(evolved.units) == len(new_units)
        rows = np.arange(len(new_units))
        exact_nb, _ = ExactIndex(new_units).search(rows, 5)
        r_evolved = _recall(evolved.search(rows, 5)[0], exact_nb)
        cold = HNSWIndex.build(new_units, index.spec)
        r_cold = _recall(cold.search(rows, 5)[0], exact_nb)
        assert r_evolved >= r_cold - 0.05
        assert r_evolved >= 0.9

    def test_heavy_eviction_triggers_rebuild(self, built):
        units, index = built
        # 100 live rows over 500 graph nodes: occupancy 5.0 crosses
        # RETRAIN_OCCUPANCY, so the graph is rebuilt from scratch and
        # must equal a cold build (same spec, same seed).
        new_units = units[400:]
        evolved = index.updated(new_units, np.arange(400, len(units)))
        cold = HNSWIndex.build(new_units, index.spec)
        np.testing.assert_array_equal(evolved.node_row, cold.node_row)
        np.testing.assert_array_equal(evolved.links0, cold.links0)

    def test_misaligned_prior_rows_raises(self, built):
        units, index = built
        with pytest.raises(ValueError, match="align"):
            index.updated(units, np.arange(10))


class TestHNSWStoreRoundTrip:
    @pytest.mark.parametrize(
        "codec",
        [HNSW_INDEX_CODEC, HNSW_INDEX_RAW_CODEC],
        ids=["npz", "raw"],
    )
    def test_codec_round_trip_search_equality(self, tmp_path, codec):
        units = clustered_units(n=250, seed=8)
        spec = AnnSpec(backend="hnsw", seed=2)
        index = HNSWIndex.build(units, spec)
        store = ArtifactStore(tmp_path)
        store.save("ann-index", "fp-hnsw", codec, index)
        loaded, _ = store.load("ann-index", "fp-hnsw", codec)
        assert isinstance(loaded, HNSWIndex)
        assert loaded.spec == spec
        rows = np.arange(250)
        original = index.search(rows, 5)
        restored = loaded.search(rows, 5)
        np.testing.assert_array_equal(original[0], restored[0])
        np.testing.assert_array_equal(original[1], restored[1])

    def test_round_trip_preserves_tombstones(self, tmp_path):
        units = clustered_units(n=300, seed=8)
        index = HNSWIndex.build(units, AnnSpec(backend="hnsw", seed=2))
        new_units = units[30:]
        evolved = index.updated(new_units, np.arange(30, 300))
        store = ArtifactStore(tmp_path)
        store.save("ann-index", "fp-ghost", HNSW_INDEX_CODEC, evolved)
        loaded, _ = store.load("ann-index", "fp-ghost", HNSW_INDEX_CODEC)
        rows = np.arange(len(new_units))
        np.testing.assert_array_equal(
            evolved.search(rows, 5)[0], loaded.search(rows, 5)[0]
        )


class TestHNSWCrossBackend:
    def test_loo_agreement_with_exact(self):
        units = clustered_units(n=600, seed=12)
        rng = np.random.default_rng(12)
        labels = np.array(list("abcdef"))[rng.integers(0, 6, size=600)]
        exact_knn = CosineKnn(units, labels, k=7)
        hnsw_knn = CosineKnn(
            None,
            labels,
            k=7,
            index=HNSWIndex.build(units, AnnSpec(backend="hnsw", seed=3)),
        )
        rows = np.arange(600)
        agree = (
            exact_knn.predict_rows(rows, exclude_self=True)
            == hnsw_knn.predict_rows(rows, exclude_self=True)
        ).mean()
        assert agree >= 0.95


class TestHealthMonitor:
    def test_mistuned_ivf_flags_low_recall(self, small_bundle, tmp_path):
        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        config = DarkVecConfig(
            service="domain",
            epochs=2,
            seed=3,
            window_days=3.0,
            cache_dir=tmp_path,
            ann_backend="ivf",
            ann_nlist=64,
            ann_nprobe=1,
            ann_recall_sample=64,
        )
        darkvec = DarkVec(config).fit(trace.between(trace.start_time, cut))
        darkvec.update(trace.between(cut, cut + 86400.0))
        monitors = {m.name: m for m in darkvec.last_health.monitors}
        assert "ann_recall" in monitors
        monitor = monitors["ann_recall"]
        assert monitor.value is not None
        assert monitor.verdict in ("warn", "fail")

    def test_mistuned_hnsw_ef_flags_low_recall(
        self, small_bundle, tmp_path, monkeypatch
    ):
        # Small corpora fit inside the seed scan window, which hides a
        # starved beam; shrink the window so ef_search=1 actually
        # bites, then expect the recall audit to raise the monitor.
        monkeypatch.setattr(hnsw_mod, "_SCAN_WINDOW", 64)
        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        config = DarkVecConfig(
            service="domain",
            epochs=2,
            seed=3,
            window_days=3.0,
            cache_dir=tmp_path,
            ann_backend="hnsw",
            ann_hnsw_ef_search=1,
            ann_recall_sample=64,
        )
        darkvec = DarkVec(config).fit(trace.between(trace.start_time, cut))
        darkvec.update(trace.between(cut, cut + 86400.0))
        monitors = {m.name: m for m in darkvec.last_health.monitors}
        monitor = monitors["ann_recall"]
        assert monitor.value is not None
        assert monitor.verdict in ("warn", "fail")

    def test_exact_backend_reports_no_baseline(self, small_bundle, tmp_path):
        trace = small_bundle.trace
        cut = trace.start_time + 3 * 86400.0
        config = DarkVecConfig(
            service="domain",
            epochs=2,
            seed=3,
            window_days=3.0,
            cache_dir=tmp_path,
        )
        darkvec = DarkVec(config).fit(trace.between(trace.start_time, cut))
        darkvec.update(trace.between(cut, cut + 86400.0))
        monitors = {m.name: m for m in darkvec.last_health.monitors}
        assert monitors["ann_recall"].verdict == "ok"
        assert monitors["ann_recall"].value is None
