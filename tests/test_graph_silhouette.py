"""Tests for repro.graph.silhouette."""

import numpy as np
import pytest

from repro.graph.silhouette import cluster_silhouettes, cosine_silhouette


@pytest.fixture()
def separated():
    rng = np.random.default_rng(0)
    a = np.array([1.0, 0.0]) + rng.normal(0, 0.01, size=(10, 2))
    b = np.array([0.0, 1.0]) + rng.normal(0, 0.01, size=(10, 2))
    vectors = np.vstack([a, b])
    communities = np.array([0] * 10 + [1] * 10)
    return vectors, communities


class TestCosineSilhouette:
    def test_well_separated_near_one(self, separated):
        vectors, communities = separated
        scores = cosine_silhouette(vectors, communities)
        assert scores.min() > 0.9

    def test_wrong_assignment_negative(self, separated):
        vectors, communities = separated
        flipped = communities.copy()
        flipped[0] = 1  # point near (1,0) assigned to the (0,1) cluster
        scores = cosine_silhouette(vectors, flipped)
        assert scores[0] < 0

    def test_range(self, separated):
        vectors, communities = separated
        scores = cosine_silhouette(vectors, communities)
        assert scores.min() >= -1.0 and scores.max() <= 1.0

    def test_single_cluster_zero(self):
        vectors = np.random.default_rng(0).normal(size=(5, 3))
        scores = cosine_silhouette(vectors, np.zeros(5, dtype=int))
        assert np.allclose(scores, 0.0)

    def test_singleton_cluster_zero(self, separated):
        vectors, communities = separated
        communities = communities.copy()
        communities[0] = 99  # singleton
        scores = cosine_silhouette(vectors, communities)
        assert scores[0] == 0.0

    def test_empty(self):
        assert len(cosine_silhouette(np.empty((0, 2)), np.empty(0))) == 0

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            cosine_silhouette(np.zeros((3, 2)), np.zeros(2))

    def test_matches_naive_computation(self):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(12, 4))
        communities = rng.integers(0, 3, size=12)
        # Make sure every cluster has >= 2 members.
        communities[:6] = [0, 0, 1, 1, 2, 2]
        scores = cosine_silhouette(vectors, communities)

        units = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        distances = 1.0 - units @ units.T
        for i in range(12):
            own = communities == communities[i]
            a = distances[i, own & (np.arange(12) != i)].mean()
            b = min(
                distances[i, communities == c].mean()
                for c in set(communities)
                if c != communities[i]
            )
            expected = (b - a) / max(a, b)
            assert scores[i] == pytest.approx(expected, abs=1e-9)


class TestClusterSilhouettes:
    def test_per_cluster_means(self, separated):
        vectors, communities = separated
        means = cluster_silhouettes(vectors, communities)
        assert set(means) == {0, 1}
        assert all(v > 0.9 for v in means.values())
