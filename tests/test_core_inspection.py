"""Tests for repro.core.inspection."""

import numpy as np
import pytest

from repro.core.inspection import inspect_clusters, port_jaccard
from repro.trace.packet import TCP


class TestInspectClusters:
    def test_profiles_cover_all_clusters(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
        )
        assert len(profiles) == result.n_clusters
        total = sum(p.size for p in profiles)
        assert total == len(fitted_darkvec.embedding)

    def test_sorted_by_size(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
        )
        sizes = [p.size for p in profiles]
        assert sizes == sorted(sizes, reverse=True)

    def test_label_composition(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        labels = small_bundle.truth.labels_for(small_bundle.trace)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
            labels=labels,
        )
        for profile in profiles:
            assert sum(profile.label_composition.values()) == profile.size
            assert profile.dominant_label in profile.label_composition

    def test_min_size_filters(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
            min_size=5,
        )
        assert all(p.size >= 5 for p in profiles)

    def test_top_ports_shares_sum_below_one(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
            top_ports=3,
        )
        for profile in profiles:
            total = sum(share for _, share in profile.top_ports)
            assert 0 < total <= 1.0 + 1e-9
            assert len(profile.top_ports) <= 3

    def test_subnet_counts(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
        )
        for profile in profiles:
            assert 1 <= profile.n_subnets16 <= profile.n_subnets24 <= profile.size

    def test_port_share_lookup(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
        )
        top_name, top_share = profiles[0].top_ports[0]
        assert profiles[0].port_share(top_name) == top_share
        assert profiles[0].port_share("1/tcp") in (0.0, profiles[0].port_share("1/tcp"))

    def test_misaligned_raises(self, small_bundle):
        with pytest.raises(ValueError):
            inspect_clusters(small_bundle.trace, np.array([0, 1]), np.array([0]))


class TestPortJaccard:
    def test_identical_groups(self, small_bundle):
        senders = small_bundle.sender_indices_of("engin_umich")
        assert port_jaccard(small_bundle.trace, senders, senders) == 1.0

    def test_disjoint_port_groups(self, small_bundle):
        engin = small_bundle.sender_indices_of("engin_umich")  # 53/udp only
        smb = small_bundle.sender_indices_of("unknown3_smb")  # 445/tcp mostly
        score = port_jaccard(small_bundle.trace, engin, smb)
        assert score < 0.2

    def test_censys_shifts_low_overlap(self, small_bundle):
        """The staggered Censys shifts scan mostly disjoint port sets."""
        trace = small_bundle.trace
        senders = small_bundle.sender_indices_of("censys")
        subgroups = small_bundle.actor_subgroups["censys"]
        a = senders[subgroups[: len(senders)] == 0]
        b = senders[subgroups[: len(senders)] == 3]
        if len(a) and len(b):
            score = port_jaccard(trace, a, b)
            assert score < 0.55
