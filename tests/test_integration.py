"""End-to-end integration tests: the full DarkVec story on one trace.

These tests mirror the paper's workflow: simulate a darknet, train the
embedding, verify the semi-supervised and unsupervised results have the
qualitative shape the paper reports.
"""

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig, inspect_clusters
from repro.graph.silhouette import cluster_silhouettes
from repro.labels.groundtruth import UNKNOWN


class TestSemiSupervised:
    def test_coordinated_classes_recovered(self, fitted_darkvec, small_bundle):
        report = fitted_darkvec.evaluate(small_bundle.truth, k=7)
        # Bursty coordinated classes separate even on the tiny trace.
        assert report.per_class["Engin-umich"].recall >= 0.8
        assert report.per_class["Mirai-like"].recall >= 0.7

    def test_stretchoid_hard_to_recover(self, fitted_darkvec, small_bundle):
        """Incoherent senders have markedly lower recall (paper §6.3)."""
        report = fitted_darkvec.evaluate(small_bundle.truth, k=7)
        stretchoid = report.per_class["Stretchoid"].recall
        coordinated = report.per_class["Engin-umich"].recall
        assert stretchoid < coordinated

    def test_single_service_worse(self, small_bundle, fitted_darkvec):
        single = DarkVec(
            DarkVecConfig(service="single", epochs=4, seed=3)
        ).fit(small_bundle.trace)
        single_report = single.evaluate(small_bundle.truth, k=7)
        domain_report = fitted_darkvec.evaluate(small_bundle.truth, k=7)
        assert single_report.accuracy < domain_report.accuracy


class TestUnsupervised:
    def test_clusters_align_with_actors(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        embedding = fitted_darkvec.embedding
        # Coordinated unlabeled groups should concentrate in few clusters.
        for actor in ("unknown1_netbios", "unknown2_smtp"):
            rows = embedding.rows_of(small_bundle.sender_indices_of(actor))
            rows = rows[rows >= 0]
            if len(rows) < 4:
                continue
            communities = result.communities[rows]
            dominant = np.bincount(communities).max() / len(communities)
            assert dominant > 0.6, actor

    def test_silhouette_identifies_coherent_clusters(
        self, fitted_darkvec, small_bundle
    ):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        silhouettes = cluster_silhouettes(
            fitted_darkvec.embedding.vectors, result.communities
        )
        assert max(silhouettes.values()) > 0.5

    def test_inspection_recovers_port_fingerprints(
        self, fitted_darkvec, small_bundle
    ):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        labels = small_bundle.truth.labels_for(small_bundle.trace)
        profiles = inspect_clusters(
            small_bundle.trace,
            fitted_darkvec.embedding.tokens,
            result.communities,
            labels=labels,
        )
        # Some cluster must be dominated by NetBIOS traffic (unknown1
        # or the Shadowserver C37 subgroup both fit that fingerprint).
        netbios = [
            p
            for p in profiles
            if p.top_ports and p.top_ports[0][0] == "137/udp"
        ]
        assert netbios, "no NetBIOS-dominated cluster found"
        # unknown1's members concentrate into few clusters.
        unknown1 = set(small_bundle.sender_indices_of("unknown1_netbios").tolist())
        best_overlap = max(
            len(set(p.senders.tolist()) & unknown1) / max(len(unknown1), 1)
            for p in profiles
        )
        assert best_overlap > 0.5


class TestReproducibility:
    def test_full_pipeline_deterministic(self, small_bundle):
        config = DarkVecConfig(service="domain", epochs=2, seed=9)
        a = DarkVec(config).fit(small_bundle.trace)
        b = DarkVec(config).fit(small_bundle.trace)
        assert np.array_equal(a.embedding.vectors, b.embedding.vectors)
        ca = a.cluster(k_prime=3, seed=1)
        cb = b.cluster(k_prime=3, seed=1)
        assert np.array_equal(ca.communities, cb.communities)

    def test_unknown_majority_in_eval(self, fitted_darkvec, small_bundle):
        embedding = fitted_darkvec.embedding
        labels = small_bundle.truth.labels_for(small_bundle.trace)[embedding.tokens]
        unknown_share = (labels == UNKNOWN).mean()
        assert unknown_share > 0.3  # as in the paper, unknowns dominate
