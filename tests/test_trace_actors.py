"""Tests for repro.trace.actors."""

import numpy as np
import pytest

from repro.trace.actors import ActorGroup, PortProfile
from repro.trace.packet import ICMP, SECONDS_PER_DAY, TCP, UDP
from repro.trace.schedule import ContinuousSchedule, StaggeredSchedule
from repro.utils.rng import make_rng


class TestPortProfile:
    def test_head_shares_respected(self):
        profile = PortProfile(
            head=((23, TCP, 0.9),), tail_ports=((80, TCP), (443, TCP))
        )
        ports, protos = profile.sample(make_rng(0), 20_000)
        share_23 = (ports == 23).mean()
        assert 0.88 < share_23 < 0.92
        assert set(np.unique(ports)) <= {23, 80, 443}

    def test_uniform_profile(self):
        profile = PortProfile.uniform([(1, TCP), (2, TCP), (3, TCP)])
        ports, _ = profile.sample(make_rng(0), 9_000)
        counts = np.bincount(ports)[1:4]
        assert counts.min() > 2_700

    def test_head_only_profile(self):
        profile = PortProfile(head=((53, UDP, 1.0),))
        ports, protos = profile.sample(make_rng(0), 100)
        assert (ports == 53).all()
        assert (protos == UDP).all()

    def test_icmp_pseudo_port(self):
        profile = PortProfile(head=((0, ICMP, 1.0),))
        ports, protos = profile.sample(make_rng(0), 10)
        assert (ports == 0).all()
        assert (protos == ICMP).all()

    def test_icmp_with_nonzero_port_rejected(self):
        with pytest.raises(ValueError):
            PortProfile(head=((5, ICMP, 1.0),))

    def test_overweight_head_rejected(self):
        with pytest.raises(ValueError):
            PortProfile(head=((1, TCP, 0.7), (2, TCP, 0.5)))

    def test_underweight_head_without_tail_rejected(self):
        with pytest.raises(ValueError):
            PortProfile(head=((1, TCP, 0.5),))

    def test_n_ports_deduplicates(self):
        profile = PortProfile(
            head=((1, TCP, 0.5),), tail_ports=((1, TCP), (2, TCP))
        )
        assert profile.n_ports == 2

    def test_random_tail_sorted_unique(self):
        tail = PortProfile.random_tail(make_rng(0), 50, TCP)
        ports = [p for p, _ in tail]
        assert ports == sorted(ports)
        assert len(set(ports)) == 50


class TestActorGroup:
    def _actor(self, **overrides):
        params = dict(
            name="test",
            label="TestClass",
            addresses=np.arange(100, 110, dtype=np.uint32),
            schedule=ContinuousSchedule(rate_per_day=10.0),
            profile=PortProfile(head=((23, TCP, 1.0),)),
        )
        params.update(overrides)
        return ActorGroup(**params)

    def test_render_columns_aligned(self):
        events = self._actor().render(make_rng(0), 0.0, 5 * SECONDS_PER_DAY)
        n = len(events["times"])
        assert n > 0
        for key in ("ips", "ports", "protos", "mirai"):
            assert len(events[key]) == n

    def test_all_ips_from_pool(self):
        actor = self._actor()
        events = actor.render(make_rng(0), 0.0, 5 * SECONDS_PER_DAY)
        assert set(np.unique(events["ips"])) <= set(actor.addresses.tolist())

    def test_mirai_probability_extremes(self):
        always = self._actor(mirai_probability=1.0).render(
            make_rng(0), 0.0, SECONDS_PER_DAY
        )
        never = self._actor(mirai_probability=0.0).render(
            make_rng(0), 0.0, SECONDS_PER_DAY
        )
        assert always["mirai"].all()
        assert not never["mirai"].any()

    def test_subgroup_profiles_used(self):
        actor = self._actor(
            profile=None,
            schedule=StaggeredSchedule(2, 40.0),
            subgroup_profiles=(
                PortProfile(head=((1, TCP, 1.0),)),
                PortProfile(head=((2, TCP, 1.0),)),
            ),
        )
        events = actor.render(make_rng(0), 0.0, 10 * SECONDS_PER_DAY)
        assert {1, 2} == set(np.unique(events["ports"]))

    def test_needs_profile(self):
        with pytest.raises(ValueError):
            self._actor(profile=None)

    def test_needs_addresses(self):
        with pytest.raises(ValueError):
            self._actor(addresses=np.empty(0, dtype=np.uint32))

    def test_render_deterministic(self):
        a = self._actor().render(make_rng(5), 0.0, SECONDS_PER_DAY)
        b = self._actor().render(make_rng(5), 0.0, SECONDS_PER_DAY)
        assert np.array_equal(a["times"], b["times"])
        assert np.array_equal(a["ports"], b["ports"])
