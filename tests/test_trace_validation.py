"""Tests for repro.trace.validation."""

import numpy as np
import pytest

from repro.trace.packet import ICMP, TCP, Trace
from repro.trace.validation import validate_trace


class TestValidateTrace:
    def test_clean_trace_ok(self, small_trace):
        report = validate_trace(small_trace)
        assert report.ok
        assert "OK" in report.to_text()

    def test_empty_trace_warns(self):
        report = validate_trace(Trace.empty())
        assert report.ok
        assert any("empty" in w for w in report.warnings)

    def test_unsorted_times_error(self, tiny_trace):
        # Constructing such a Trace normally raises; build via __new__
        # to simulate corrupted external data.
        broken = object.__new__(Trace)
        broken.times = tiny_trace.times[::-1].copy()
        broken.senders = tiny_trace.senders
        broken.ports = tiny_trace.ports
        broken.protos = tiny_trace.protos
        broken.receivers = tiny_trace.receivers
        broken.mirai = tiny_trace.mirai
        broken.sender_ips = tiny_trace.sender_ips
        broken._packet_counts = None
        report = validate_trace(broken)
        assert not report.ok
        assert any("sorted" in e for e in report.errors)

    def test_bad_port_error(self, tiny_trace):
        broken = object.__new__(Trace)
        broken.times = tiny_trace.times
        broken.senders = tiny_trace.senders
        broken.ports = tiny_trace.ports.copy()
        broken.ports[0] = 70_000
        broken.protos = tiny_trace.protos
        broken.receivers = tiny_trace.receivers
        broken.mirai = tiny_trace.mirai
        broken.sender_ips = tiny_trace.sender_ips
        broken._packet_counts = None
        report = validate_trace(broken)
        assert any("ports" in e for e in report.errors)

    def test_unknown_protocol_error(self, tiny_trace):
        broken = object.__new__(Trace)
        broken.times = tiny_trace.times
        broken.senders = tiny_trace.senders
        broken.ports = tiny_trace.ports
        broken.protos = tiny_trace.protos.copy()
        broken.protos[0] = 99
        broken.receivers = tiny_trace.receivers
        broken.mirai = tiny_trace.mirai
        broken.sender_ips = tiny_trace.sender_ips
        broken._packet_counts = None
        report = validate_trace(broken)
        assert any("protocol" in e for e in report.errors)

    def test_icmp_with_port_warns(self):
        trace = Trace.from_events(
            times=np.array([1.0]),
            sender_ips_per_packet=np.array([10], dtype=np.uint64),
            ports=np.array([0]),
            protos=np.array([ICMP]),
            receivers=np.array([0]),
            mirai=np.array([False]),
        )
        clean = validate_trace(trace)
        assert clean.ok and not clean.warnings

        broken = object.__new__(Trace)
        broken.times = trace.times
        broken.senders = trace.senders
        broken.ports = np.array([80])
        broken.protos = trace.protos
        broken.receivers = trace.receivers
        broken.mirai = trace.mirai
        broken.sender_ips = trace.sender_ips
        broken._packet_counts = None
        report = validate_trace(broken)
        assert report.ok  # warning only
        assert any("ICMP" in w for w in report.warnings)

    def test_silent_table_entries_warn(self):
        trace = Trace.from_events(
            times=np.array([1.0]),
            sender_ips_per_packet=np.array([10], dtype=np.uint64),
            ports=np.array([80]),
            protos=np.array([TCP]),
            receivers=np.array([0]),
            mirai=np.array([False]),
            extra_sender_ips=np.array([99], dtype=np.uint64),
        )
        report = validate_trace(trace)
        assert any("no packets" in w for w in report.warnings)
