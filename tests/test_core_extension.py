"""Tests for repro.core.extension (ground-truth extension, §6.4)."""

import numpy as np
import pytest

from repro.core.extension import extend_ground_truth
from repro.labels.groundtruth import UNKNOWN


def _embedding_with_hidden_members():
    """Two tight clusters; some members of each are unlabeled."""
    rng = np.random.default_rng(0)
    a = np.array([1.0, 0.0]) + rng.normal(0, 0.02, size=(12, 2))
    b = np.array([0.0, 1.0]) + rng.normal(0, 0.02, size=(12, 2))
    far = rng.normal(0, 1.0, size=(6, 2)) + np.array([-3.0, -3.0])
    vectors = np.vstack([a, b, far])
    labels = np.array(
        ["A"] * 8 + [UNKNOWN] * 4 + ["B"] * 8 + [UNKNOWN] * 4 + [UNKNOWN] * 6,
        dtype=object,
    )
    return vectors, labels


class TestExtendGroundTruth:
    def test_hidden_members_recovered(self):
        vectors, labels = _embedding_with_hidden_members()
        result = extend_ground_truth(vectors, labels, k=5)
        # The acceptance rule is deliberately conservative (the paper
        # stops at the max in-class distance): every accepted row must
        # be a genuine hidden member, and most of them are found.
        assert set(result.accepted["A"].tolist()) <= {8, 9, 10, 11}
        assert set(result.accepted["B"].tolist()) <= {20, 21, 22, 23}
        assert len(result.accepted["A"]) >= 2
        assert len(result.accepted["B"]) >= 1

    def test_far_points_not_accepted(self):
        vectors, labels = _embedding_with_hidden_members()
        result = extend_ground_truth(vectors, labels, k=5)
        far_rows = set(range(24, 30))
        accepted = {int(r) for rows in result.accepted.values() for r in rows}
        assert not (accepted & far_rows)

    def test_distances_sorted(self):
        vectors, labels = _embedding_with_hidden_members()
        result = extend_ground_truth(vectors, labels, k=5)
        for distances in result.distances.values():
            assert np.all(np.diff(distances) >= 0)

    def test_total_accepted(self):
        vectors, labels = _embedding_with_hidden_members()
        result = extend_ground_truth(vectors, labels, k=5)
        assert result.total_accepted == sum(
            len(rows) for rows in result.accepted.values()
        )
        assert 3 <= result.total_accepted <= 8

    def test_no_unknowns(self):
        vectors = np.random.default_rng(0).normal(size=(5, 2))
        labels = np.array(["A"] * 5, dtype=object)
        result = extend_ground_truth(vectors, labels, k=2)
        assert result.total_accepted == 0

    def test_all_unknown(self):
        vectors = np.random.default_rng(0).normal(size=(5, 2))
        labels = np.array([UNKNOWN] * 5, dtype=object)
        result = extend_ground_truth(vectors, labels, k=2)
        assert result.total_accepted == 0

    def test_pipeline_extension(self, fitted_darkvec, small_bundle):
        """On the simulated trace, mirai_nofp senders extend Mirai-like."""
        embedding = fitted_darkvec.embedding
        labels = small_bundle.truth.labels_for(small_bundle.trace)[embedding.tokens]
        result = extend_ground_truth(embedding.vectors, labels, k=7)
        accepted_mirai = result.accepted.get("Mirai-like", np.empty(0))
        if len(accepted_mirai):
            nofp = set(small_bundle.sender_indices_of("mirai_nofp").tolist())
            accepted_senders = set(
                embedding.tokens[accepted_mirai.astype(int)].tolist()
            )
            # A visible share of accepted senders are the hidden Mirai
            # bots (the rest are mostly mimic unknowns that genuinely
            # behave like the botnet's port profile).
            overlap = len(accepted_senders & nofp) / len(accepted_senders)
            assert overlap > 0.2
