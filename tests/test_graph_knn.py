"""Tests for repro.graph.knn_graph."""

import numpy as np
import pytest

from repro.graph.knn_graph import KnnGraph, build_knn_graph


@pytest.fixture()
def clustered_vectors():
    rng = np.random.default_rng(1)
    a = np.array([1.0, 0.0]) + rng.normal(0, 0.02, size=(8, 2))
    b = np.array([0.0, 1.0]) + rng.normal(0, 0.02, size=(8, 2))
    return np.vstack([a, b])


class TestBuildKnnGraph:
    def test_edge_count(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, k_prime=3)
        assert graph.n_nodes == 16
        assert graph.n_edges == 16 * 3

    def test_no_self_loops(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, k_prime=3)
        assert (graph.sources != graph.targets).all()

    def test_edges_stay_within_clusters(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, k_prime=3)
        same_side = (graph.sources < 8) == (graph.targets < 8)
        assert same_side.all()

    def test_weights_nonnegative(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, k_prime=3)
        assert (graph.weights >= 0).all()
        assert graph.weights.max() <= 1.0 + 1e-6

    def test_invalid_k(self, clustered_vectors):
        with pytest.raises(ValueError):
            build_knn_graph(clustered_vectors, k_prime=0)


class TestSymmetricAdjacency:
    def test_symmetry(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, k_prime=3)
        adjacency = graph.symmetric_adjacency()
        for u, neighbors in enumerate(adjacency):
            for v, w in neighbors.items():
                assert adjacency[v][u] == pytest.approx(w)

    def test_mutual_edges_double_weight(self):
        graph = KnnGraph(
            n_nodes=2,
            sources=np.array([0, 1]),
            targets=np.array([1, 0]),
            weights=np.array([0.5, 0.5]),
        )
        adjacency = graph.symmetric_adjacency()
        assert adjacency[0][1] == pytest.approx(1.0)

    def test_self_loop_dropped(self):
        graph = KnnGraph(
            n_nodes=1,
            sources=np.array([0]),
            targets=np.array([0]),
            weights=np.array([1.0]),
        )
        assert graph.symmetric_adjacency() == [{}]


class TestNetworkxExport:
    def test_digraph_matches(self, clustered_vectors):
        graph = build_knn_graph(clustered_vectors, k_prime=2)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 16
        assert nx_graph.number_of_edges() <= 32  # parallel edges merge

    def test_endpoint_validation(self):
        with pytest.raises(ValueError):
            KnnGraph(
                n_nodes=1,
                sources=np.array([0]),
                targets=np.array([5]),
                weights=np.array([1.0]),
            )
