"""Tests for the command-line interface (end-to-end workflow)."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """Run the full CLI workflow once; commands share the artefacts."""
    root = tmp_path_factory.mktemp("cli")
    trace_file = root / "trace.csv"
    vectors_file = root / "vectors.npz"
    rc = main(
        [
            "simulate",
            "--out",
            str(trace_file),
            "--scale",
            "0.02",
            "--days",
            "3",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    rc = main(
        [
            "train",
            "--trace",
            str(trace_file),
            "--out",
            str(vectors_file),
            "--epochs",
            "3",
            "--vector-size",
            "16",
        ]
    )
    assert rc == 0
    return root, trace_file, vectors_file


class TestSimulate:
    def test_artifacts_written(self, workspace):
        root, trace_file, _ = workspace
        assert trace_file.exists()
        labels_file = root / "trace.csv.labels.csv"
        assert labels_file.exists()
        assert labels_file.read_text().startswith("src_ip,label")

    def test_trace_readable(self, workspace):
        from repro.io.csvio import read_trace_csv

        _, trace_file, _ = workspace
        trace = read_trace_csv(trace_file)
        assert trace.n_packets > 100


class TestStats:
    def test_prints_summary(self, workspace, capsys):
        _, trace_file, _ = workspace
        assert main(["stats", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "full trace" in out
        assert "active senders" in out


class TestTrain:
    def test_vectors_keyed_by_ip(self, workspace):
        from repro.w2v.keyedvectors import KeyedVectors

        _, _, vectors_file = workspace
        keyed = KeyedVectors.load(vectors_file)
        assert len(keyed) > 50
        assert keyed.vector_size == 16
        # Tokens are IPv4 addresses (large ints), sorted.
        assert keyed.tokens.min() > 2**20
        assert np.all(np.diff(keyed.tokens) > 0)


class TestEvaluate:
    def test_report_printed(self, workspace, capsys):
        root, trace_file, vectors_file = workspace
        rc = main(
            [
                "evaluate",
                "--trace",
                str(trace_file),
                "--vectors",
                str(vectors_file),
                "--labels",
                str(root / "trace.csv.labels.csv"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Accuracy" in out
        assert "Mirai-like" in out


class TestCluster:
    def test_clusters_printed(self, workspace, capsys):
        _, trace_file, vectors_file = workspace
        rc = main(
            [
                "cluster",
                "--trace",
                str(trace_file),
                "--vectors",
                str(vectors_file),
                "--min-size",
                "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "modularity" in out
        assert "Cluster" in out


class TestTelemetryFlags:
    def test_metrics_out_writes_ndjson(self, workspace, tmp_path):
        from repro.io.ndjson import read_ndjson

        _, trace_file, _ = workspace
        metrics_file = tmp_path / "train.ndjson"
        rc = main(
            [
                "train",
                "--trace",
                str(trace_file),
                "--out",
                str(tmp_path / "v.npz"),
                "--epochs",
                "2",
                "--vector-size",
                "8",
                "--metrics-out",
                str(metrics_file),
            ]
        )
        assert rc == 0
        records = read_ndjson(metrics_file)
        types = {record["type"] for record in records}
        assert {"span", "counter", "gauge"} <= types
        counters = {
            record["name"]: record["value"]
            for record in records
            if record["type"] == "counter"
        }
        assert counters["train.epochs"] == 2
        assert counters["corpus.tokens"] > 0
        paths = [r["path"] for r in records if r["type"] == "span"]
        assert "pipeline.fit/stage.train/train.fit" in paths

    def test_profile_flag_prints_tables(self, workspace, tmp_path, capsys):
        _, trace_file, _ = workspace
        rc = main(
            [
                "train",
                "--trace",
                str(trace_file),
                "--out",
                str(tmp_path / "v.npz"),
                "--epochs",
                "2",
                "--vector-size",
                "8",
                "--profile",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "epoch 1/2" in out
        assert "Pipeline stages" in out
        assert "train.fit" in out
        assert "Peak mem" in out
        assert "train.pairs" in out

    def test_profile_subcommand_smoke(self, tmp_path, capsys):
        metrics_file = tmp_path / "profile.ndjson"
        rc = main(
            [
                "profile",
                "--preset",
                "small",
                "--epochs",
                "2",
                "--metrics-out",
                str(metrics_file),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "modularity" in out
        assert "pipeline.cluster" in out
        assert metrics_file.exists()

    def test_deterministic_counters_match_across_workers(self, tmp_path):
        from repro.io.ndjson import read_ndjson
        from repro.obs import counters_from_records

        counters = {}
        for workers in (1, 2):
            metrics_file = tmp_path / f"w{workers}.ndjson"
            rc = main(
                [
                    "profile",
                    "--preset",
                    "small",
                    "--epochs",
                    "2",
                    "--workers",
                    str(workers),
                    "--metrics-out",
                    str(metrics_file),
                ]
            )
            assert rc == 0
            counters[workers] = counters_from_records(
                read_ndjson(metrics_file), deterministic_only=True
            )
        assert counters[1] and counters[1] == counters[2]


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestPresets:
    def test_minimal_preset_simulation(self, tmp_path, capsys):
        out = tmp_path / "mini.csv"
        rc = main(
            [
                "simulate",
                "--out",
                str(out),
                "--preset",
                "minimal",
                "--days",
                "2",
            ]
        )
        assert rc == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "packets" in text

    def test_quiet_preset_has_empty_labels(self, tmp_path):
        out = tmp_path / "quiet.csv"
        rc = main(
            ["simulate", "--out", str(out), "--preset", "quiet", "--days", "2"]
        )
        assert rc == 0
        labels = (tmp_path / "quiet.csv.labels.csv").read_text()
        assert labels.strip() == "src_ip,label"

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "simulate",
                    "--out",
                    str(tmp_path / "x.csv"),
                    "--preset",
                    "bogus",
                ]
            )

    def test_config_document_simulation(self, tmp_path):
        import json

        config = {
            "days": 2,
            "seed": 1,
            "actors": [
                {
                    "name": "a",
                    "senders": {"kind": "subnet24", "count": 5},
                    "schedule": {"kind": "continuous", "rate_per_day": 30},
                    "ports": {"head": [["80/tcp", 1.0]]},
                }
            ],
        }
        config_file = tmp_path / "scenario.json"
        config_file.write_text(json.dumps(config))
        out = tmp_path / "custom.csv"
        rc = main(
            ["simulate", "--out", str(out), "--config", str(config_file)]
        )
        assert rc == 0
        assert out.exists()


@pytest.fixture(scope="module")
def staged_workspace(tmp_path_factory):
    """Simulate 4 days, split off the last day, run the staged pipeline."""
    import numpy as np

    from repro.io.csvio import read_trace_csv, write_trace_csv
    from repro.trace.packet import SECONDS_PER_DAY

    root = tmp_path_factory.mktemp("staged")
    full_file = root / "full.csv"
    rc = main(
        [
            "simulate",
            "--out",
            str(full_file),
            "--scale",
            "0.02",
            "--days",
            "4",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    full = read_trace_csv(full_file)
    cut = full.start_time + 3 * SECONDS_PER_DAY
    head_file = root / "head.csv"
    tail_file = root / "tail.csv"
    write_trace_csv(full.between(full.start_time, cut), head_file)
    write_trace_csv(full.between(cut, np.inf), tail_file)

    cache_dir = root / "cache"
    run_args = [
        "--trace",
        str(head_file),
        "--cache-dir",
        str(cache_dir),
        "--epochs",
        "2",
        "--vector-size",
        "16",
    ]
    rc = main(["run", *run_args])
    assert rc == 0
    return root, run_args, cache_dir, tail_file


class TestRunResumeUpdate:
    def test_run_populates_cache_and_state(self, staged_workspace):
        _, _, cache_dir, _ = staged_workspace
        objects = list((cache_dir / "objects").iterdir())
        assert objects, "artifact store is empty after run"
        state_dir = cache_dir / "state"
        for name in (
            "config.json",
            "meta.json",
            "trace.npz",
            "corpus.npz",
            "embedding.npz",
        ):
            assert (state_dir / name).exists(), name

    def test_resume_is_all_cache_hits(self, staged_workspace, capsys):
        _, run_args, _, _ = staged_workspace
        rc = main(["resume", *run_args])
        assert rc == 0
        out = capsys.readouterr().out
        assert "5/5 stages served" in out
        assert out.count(" hit ") >= 5

    def test_run_exports_vectors(self, staged_workspace, tmp_path):
        from repro.w2v.keyedvectors import KeyedVectors

        _, run_args, _, _ = staged_workspace
        out_file = tmp_path / "vec.npz"
        rc = main(["run", *run_args, "--out", str(out_file)])
        assert rc == 0
        keyed = KeyedVectors.load(out_file)
        assert len(keyed) > 0
        assert keyed.vector_size == 16

    def test_update_appends_the_new_day(self, staged_workspace, capsys):
        from repro.core import DarkVec

        _, _, cache_dir, tail_file = staged_workspace
        before = DarkVec.load_state(cache_dir / "state")
        rc = main(
            ["update", "--trace", str(tail_file), "--cache-dir", str(cache_dir)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "appended" in out
        assert "warm-started" in out
        after = DarkVec.load_state(cache_dir / "state")
        assert len(after.trace) > len(before.trace)
        assert after.embedding.context_vectors is not None

    def test_update_without_state_location_fails(self, tmp_path, capsys):
        rc = main(["update", "--trace", str(tmp_path / "x.csv")])
        assert rc == 2
        assert "needs --state or --cache-dir" in capsys.readouterr().err


@pytest.fixture(scope="module")
def registry_workspace(tmp_path_factory):
    """Staged run + gated update with a registry to query."""
    from repro.io.csvio import read_trace_csv, write_trace_csv
    from repro.trace.packet import SECONDS_PER_DAY

    root = tmp_path_factory.mktemp("registry")
    full_file = root / "full.csv"
    rc = main(
        [
            "simulate",
            "--out",
            str(full_file),
            "--scale",
            "0.02",
            "--days",
            "4",
            "--seed",
            "5",
        ]
    )
    assert rc == 0
    full = read_trace_csv(full_file)
    cut = full.start_time + 3 * SECONDS_PER_DAY
    head_file = root / "head.csv"
    tail_file = root / "tail.csv"
    write_trace_csv(full.between(full.start_time, cut), head_file)
    write_trace_csv(full.between(cut, np.inf), tail_file)

    cache_dir = root / "cache"
    rc = main(
        [
            "run",
            "--trace",
            str(head_file),
            "--cache-dir",
            str(cache_dir),
            "--epochs",
            "2",
            "--vector-size",
            "16",
        ]
    )
    assert rc == 0
    metrics_file = root / "update-metrics.ndjson"
    rc = main(
        [
            "update",
            "--trace",
            str(tail_file),
            "--cache-dir",
            str(cache_dir),
            "--labels",
            str(root / "full.csv.labels.csv"),
            "--metrics-out",
            str(metrics_file),
        ]
    )
    assert rc == 0
    return root, cache_dir, tail_file, metrics_file


class TestRunRegistryCli:
    def test_registry_file_written(self, registry_workspace):
        _, cache_dir, _, _ = registry_workspace
        registry_file = cache_dir / "registry" / "runs.ndjson"
        assert registry_file.exists()
        lines = registry_file.read_text().strip().splitlines()
        assert len(lines) == 2
        assert not list((cache_dir / "registry").glob("*.tmp*"))

    def test_update_metrics_out_written(self, registry_workspace):
        _, _, _, metrics_file = registry_workspace
        assert metrics_file.exists()
        assert "span" in metrics_file.read_text()

    def test_runs_list(self, registry_workspace, capsys):
        _, cache_dir, _, _ = registry_workspace
        rc = main(["runs", "list", "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run-0001" in out
        assert "run-0002" in out
        assert "fit" in out
        assert "update" in out

    def test_runs_show(self, registry_workspace, capsys):
        _, cache_dir, _, _ = registry_workspace
        rc = main(["runs", "show", "run-0002", "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run-0002" in out
        assert "Health" in out
        assert "drift" in out

    def test_runs_show_unknown_id_fails(self, registry_workspace, capsys):
        _, cache_dir, _, _ = registry_workspace
        rc = main(["runs", "show", "run-9999", "--cache-dir", str(cache_dir)])
        assert rc == 2
        assert "unknown run" in capsys.readouterr().err

    def test_runs_compare_last(self, registry_workspace, capsys):
        _, cache_dir, _, _ = registry_workspace
        rc = main(["runs", "compare", "--last", "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "run-0001" in out
        assert "run-0002" in out
        assert "wall" in out

    def test_runs_compare_explicit_ids(self, registry_workspace, capsys):
        _, cache_dir, _, _ = registry_workspace
        rc = main(
            [
                "runs",
                "compare",
                "run-0001",
                "run-0002",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        assert rc == 0
        assert "Timing" in capsys.readouterr().out

    def test_health_renders_monitors(self, registry_workspace, capsys):
        _, cache_dir, _, _ = registry_workspace
        rc = main(["health", "--cache-dir", str(cache_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "drift" in out

    def test_runs_without_registry_fails(self, tmp_path, capsys):
        rc = main(["runs", "list", "--cache-dir", str(tmp_path / "nope")])
        assert rc in (0, 2)  # empty registry is not an error, missing dir is

    def test_gated_update_refuses_and_keeps_state(
        self, registry_workspace, capsys
    ):
        from repro.core import DarkVec, DarkVecConfig
        from repro.io.csvio import read_trace_csv
        from repro.store.state import save_state

        root, _, tail_file, _ = registry_workspace
        # A fresh cache whose saved state carries a hair-trigger policy.
        strict_cache = root / "strict-cache"
        head = read_trace_csv(root / "head.csv")
        config = DarkVecConfig(
            service="domain",
            epochs=2,
            seed=3,
            vector_size=16,
            window_days=3.0,
            cache_dir=strict_cache,
            health={"drift_warn": 1e-9, "drift_fail": 1e-8},
        )
        darkvec = DarkVec(config).fit(head)
        save_state(darkvec, strict_cache / "state")
        before = (strict_cache / "state" / "embedding.npz").read_bytes()

        rc = main(
            [
                "update",
                "--trace",
                str(tail_file),
                "--cache-dir",
                str(strict_cache),
                "--health-gate",
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "fail" in out
        assert "not promoted" in out or "refus" in out
        # The on-disk state is untouched.
        assert (strict_cache / "state" / "embedding.npz").read_bytes() == before
