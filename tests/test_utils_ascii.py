"""Tests for repro.utils.ascii_plot."""

import numpy as np
import pytest

from repro.utils.ascii_plot import heatmap, line_chart, raster


class TestLineChart:
    def test_contains_points(self):
        text = line_chart([0, 1, 2], [0, 1, 4], width=20, height=5)
        assert "*" in text

    def test_title_and_ranges(self):
        text = line_chart([0, 10], [1, 2], title="T", x_label="d", y_label="v")
        assert text.splitlines()[0] == "T"
        assert "[0, 10]" in text
        assert "[1, 2]" in text

    def test_constant_series_ok(self):
        text = line_chart([0, 1], [5, 5])
        assert "*" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            line_chart([], [])

    def test_mismatched_raises(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], [1])


class TestRaster:
    def test_marks_active_cells(self):
        matrix = np.zeros((3, 5), dtype=bool)
        matrix[1, 2] = True
        text = raster(matrix)
        assert "#" in text
        assert "." in text

    def test_downsampling_preserves_any(self):
        matrix = np.zeros((100, 300), dtype=bool)
        matrix[50, 150] = True
        text = raster(matrix, max_rows=10, max_cols=20)
        assert "#" in text

    def test_shape_reported(self):
        text = raster(np.zeros((7, 9), dtype=bool))
        assert "(7 senders x 9 time bins)" in text

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            raster(np.zeros(5, dtype=bool))


class TestHeatmap:
    def test_shading_monotone(self):
        matrix = np.array([[0.0, 0.5, 1.0]])
        text = heatmap(matrix, ["row"], ["a", "b", "c"])
        row_line = [l for l in text.splitlines() if l.startswith("row")][0]
        cells = row_line.split("|")[1]
        shades = " .:-=+*#%@"
        assert shades.index(cells[0]) <= shades.index(cells[1]) <= shades.index(cells[2])

    def test_label_mismatch_raises(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 2)), ["one"], ["a", "b"])

    def test_all_zero_matrix_ok(self):
        text = heatmap(np.zeros((2, 2)), ["r1", "r2"], ["c1", "c2"])
        assert "r1" in text


class TestSparkline:
    def test_monotone_series_uses_full_ramp(self):
        from repro.utils.ascii_plot import sparkline

        text = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert text == "▁▂▃▄▅▆▇█"

    def test_empty_series_is_empty(self):
        from repro.utils.ascii_plot import sparkline

        assert sparkline([]) == ""

    def test_constant_series_ok(self):
        from repro.utils.ascii_plot import sparkline

        text = sparkline([3.0, 3.0, 3.0])
        assert len(text) == 3
        assert len(set(text)) == 1

    def test_width_pools_series(self):
        from repro.utils.ascii_plot import sparkline

        text = sparkline(list(range(100)), width=10)
        assert len(text) == 10
        assert text[0] == "▁"
        assert text[-1] == "█"

    def test_non_finite_renders_as_space(self):
        from repro.utils.ascii_plot import sparkline

        text = sparkline([0.0, float("nan"), 1.0])
        assert text[1] == " "

    def test_pinned_scale(self):
        from repro.utils.ascii_plot import sparkline

        # 0.5 on a [0, 1] scale sits mid-ramp even alone.
        text = sparkline([0.5], lo=0.0, hi=1.0)
        assert text in ("▄", "▅")
