"""Tests for repro.core.pipeline, config, and filtering."""

import numpy as np
import pytest

from repro.core import DarkVec, DarkVecConfig, active_filter, coverage
from repro.services.domain import DomainServiceMap


class TestConfig:
    def test_defaults_match_paper(self):
        config = DarkVecConfig()
        assert config.service == "domain"
        assert config.vector_size == 50
        assert config.context == 25
        assert config.delta_t == 3600.0
        assert config.min_packets == 10

    def test_invalid_service_name(self):
        with pytest.raises(ValueError):
            DarkVecConfig(service="bogus")

    def test_custom_service_map_accepted(self, small_trace):
        config = DarkVecConfig(service=DomainServiceMap())
        assert config.resolve_service_map(small_trace).n_services == 15

    def test_resolvers(self, small_trace):
        assert DarkVecConfig(service="single").resolve_service_map(
            small_trace
        ).n_services == 1
        auto = DarkVecConfig(service="auto", auto_top_n=5).resolve_service_map(
            small_trace
        )
        assert auto.n_services == 6


class TestFiltering:
    def test_active_filter_threshold(self, small_trace):
        active = active_filter(small_trace, 10)
        counts = small_trace.packet_counts()
        assert (counts[active] >= 10).all()

    def test_coverage_increases_with_training_window(self, small_trace):
        evaluation = small_trace.last_days(1.0)
        short = coverage(small_trace.first_days(1.0), evaluation)
        full = coverage(small_trace, evaluation)
        assert 0.0 <= short <= full <= 1.0
        assert full > 0.3

    def test_coverage_requires_shared_table(self, small_trace, tiny_trace):
        with pytest.raises(ValueError):
            coverage(small_trace, tiny_trace)


class TestDarkVecPipeline:
    def test_fit_builds_embedding(self, fitted_darkvec, small_trace):
        embedding = fitted_darkvec.embedding
        active = small_trace.active_senders(10)
        assert embedding is not None
        assert set(embedding.tokens.tolist()) <= set(active.tolist())
        assert embedding.vector_size == 50

    def test_analyse_before_fit_raises(self):
        darkvec = DarkVec()
        with pytest.raises(RuntimeError):
            darkvec.cluster()

    def test_not_fitted_error_type_and_message(self):
        from repro.core import NotFittedError
        from repro.labels.groundtruth import GroundTruth

        darkvec = DarkVec()
        with pytest.raises(NotFittedError, match="not fitted"):
            darkvec.cluster()
        with pytest.raises(NotFittedError, match="fit\\(trace\\)"):
            darkvec.evaluate(GroundTruth())
        with pytest.raises(NotFittedError):
            darkvec.evaluation_rows()
        # Backwards compatible with except RuntimeError handlers.
        assert issubclass(NotFittedError, RuntimeError)

    def test_evaluation_rows_subset(self, fitted_darkvec):
        rows_last_day = fitted_darkvec.evaluation_rows(1.0)
        rows_all = fitted_darkvec.evaluation_rows(None)
        assert len(rows_last_day) <= len(rows_all)
        assert len(rows_all) == len(fitted_darkvec.embedding)

    def test_evaluate_recovers_labels(self, fitted_darkvec, small_bundle):
        report = fitted_darkvec.evaluate(small_bundle.truth, k=7)
        # Even on the tiny test trace (4% scale, 6 days, 6 epochs),
        # well-coordinated classes separate clearly.
        assert report.accuracy > 0.3
        assert report.per_class["Engin-umich"].recall >= 0.8

    def test_cluster_result(self, fitted_darkvec):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        assert result.n_clusters > 3
        assert 0.0 < result.modularity <= 1.0
        assert len(result.communities) == len(fitted_darkvec.embedding)

    def test_cluster_finds_engin_group(self, fitted_darkvec, small_bundle):
        result = fitted_darkvec.cluster(k_prime=3, seed=0)
        embedding = fitted_darkvec.embedding
        rows = embedding.rows_of(small_bundle.sender_indices_of("engin_umich"))
        rows = rows[rows >= 0]
        if len(rows) >= 3:
            # The Engin-Umich senders share one community.
            communities = result.communities[rows]
            dominant_share = np.bincount(communities).max() / len(communities)
            assert dominant_share >= 0.8
