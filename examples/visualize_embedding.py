#!/usr/bin/env python3
"""Visualise the DarkVec embedding in 2-D (terminal scatter plot).

Projects the trained 50-dimensional sender embedding down to two PCA
components and renders an ASCII scatter, one glyph per ground-truth
class — the "senders performing the same activity land in the same
region" picture from the paper, without a plotting backend.

Run with::

    python examples/visualize_embedding.py
"""

import numpy as np

from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace
from repro.analysis.projection import fit_pca, scatter_text
from repro.labels.groundtruth import UNKNOWN


def main() -> None:
    print("Simulating 10 days of darknet traffic...")
    bundle = generate_trace(default_scenario(scale=0.06, days=10, seed=13))

    print("Training the embedding...")
    darkvec = DarkVec(DarkVecConfig(service="domain", epochs=8, seed=1)).fit(
        bundle.trace
    )
    embedding = darkvec.embedding
    assert embedding is not None

    labels = bundle.truth.labels_for(bundle.trace)[embedding.tokens]
    # Plot a readable subset: all labelled senders plus a sample of
    # unknowns for context.
    known = np.flatnonzero(labels != UNKNOWN)
    unknown = np.flatnonzero(labels == UNKNOWN)
    rng = np.random.default_rng(0)
    sample = np.concatenate(
        [known, rng.choice(unknown, size=min(150, len(unknown)), replace=False)]
    )

    model = fit_pca(embedding.vectors, n_components=2)
    points = model.transform(embedding.vectors[sample])
    print(
        f"PCA explains "
        f"{model.explained_variance_ratio.sum():.0%} of the variance "
        f"in 2 components.\n"
    )
    print(
        scatter_text(
            points,
            labels[sample],
            width=90,
            height=30,
            title="DarkVec embedding, 2-D PCA projection",
        )
    )


if __name__ == "__main__":
    main()
