#!/usr/bin/env python3
"""Unsupervised discovery of coordinated sender groups (paper §7).

Builds the k'-NN graph over the embedding, extracts Louvain
communities, and characterises each discovered cluster the way the
paper's Table 5 does: size, targeted ports, address layout, silhouette
— then checks the findings against the simulator's hidden actors.

Run with::

    python examples/cluster_discovery.py
"""

import numpy as np

from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace
from repro.core.inspection import inspect_clusters
from repro.graph.silhouette import cluster_silhouettes
from repro.utils.tables import format_table


def main() -> None:
    print("Simulating 15 days of darknet traffic...")
    bundle = generate_trace(default_scenario(scale=0.08, days=15, seed=7))
    trace = bundle.trace

    print("Training the embedding...")
    darkvec = DarkVec(DarkVecConfig(service="domain", epochs=8, seed=1)).fit(trace)
    assert darkvec.embedding is not None

    print("Clustering (k'-NN graph + Louvain)...")
    result = darkvec.cluster(k_prime=3, seed=0)
    print(
        f"  {result.n_clusters} clusters, modularity {result.modularity:.3f}"
    )

    silhouettes = cluster_silhouettes(
        darkvec.embedding.vectors, result.communities
    )
    labels = bundle.truth.labels_for(trace)
    profiles = inspect_clusters(
        trace,
        darkvec.embedding.tokens,
        result.communities,
        silhouettes=silhouettes,
        labels=labels,
        min_size=8,
    )

    rows = []
    for profile in profiles[:15]:
        top = ", ".join(
            f"{name} ({share:.0%})" for name, share in profile.top_ports[:2]
        )
        rows.append(
            [
                f"C{profile.cluster_id}",
                profile.size,
                profile.n_ports,
                f"{profile.silhouette:.2f}",
                profile.n_subnets24,
                profile.dominant_label,
                top,
            ]
        )
    print()
    print(
        format_table(
            ["Cluster", "IPs", "Ports", "Sh", "/24s", "Dominant", "Top ports"],
            rows,
            title="Largest discovered clusters (cf. paper Table 5)",
        )
    )

    # Cross-check one discovery against the simulator's hidden truth:
    # the cluster dominated by 137/udp should be the unknown1 scanner.
    unknown1 = set(bundle.sender_indices_of("unknown1_netbios").tolist())
    for profile in profiles:
        if profile.top_ports and profile.top_ports[0][0] == "137/udp":
            overlap = len(set(profile.senders.tolist()) & unknown1)
            print(
                f"\nCluster C{profile.cluster_id} is NetBIOS-dominated: "
                f"{overlap}/{len(unknown1)} members of the hidden "
                f"'unknown1' /24 scanner recovered "
                f"({profile.n_subnets24} distinct /24s in the cluster)."
            )
            break


if __name__ == "__main__":
    main()
