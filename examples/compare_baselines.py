#!/usr/bin/env python3
"""DarkVec vs the baselines on one trace (paper §4 and §6.1).

Trains DarkVec, IP2VEC and the port-feature classifier on the same
simulated trace and compares leave-one-out accuracy and runtime; also
reports DANTE's skip-gram blow-up, the reason the paper could not train
it to completion.

Run with::

    python examples/compare_baselines.py
"""

import numpy as np

from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace
from repro.baselines import Dante, Ip2Vec, PortFeatureClassifier
from repro.utils.tables import format_table
from repro.utils.timer import Timer


def main() -> None:
    print("Simulating 10 days of darknet traffic...")
    bundle = generate_trace(default_scenario(scale=0.08, days=10, seed=3))
    trace = bundle.trace
    active = trace.active_senders(10)
    present = trace.last_days(1.0).observed_senders()
    eval_senders = np.intersect1d(active, present)
    print(f"  evaluating on {len(eval_senders):,} active last-day senders")

    rows = []

    with Timer() as timer:
        darkvec = DarkVec(DarkVecConfig(service="domain", epochs=8, seed=1)).fit(
            trace
        )
        report = darkvec.evaluate(bundle.truth, k=7, eval_days=1.0)
    assert darkvec.corpus is not None
    rows.append(
        [
            "DarkVec (domain)",
            darkvec.corpus.skipgram_count(25),
            f"{timer.elapsed:.1f}",
            f"{report.accuracy:.3f}",
        ]
    )

    with Timer() as timer:
        ip2vec = Ip2Vec(epochs=8, seed=1)
        ip2vec_report = ip2vec.evaluate(trace, bundle.truth, eval_senders, k=7)
    rows.append(
        [
            "IP2VEC",
            ip2vec.pair_count(trace),
            f"{timer.elapsed:.1f}",
            f"{ip2vec_report.accuracy:.3f}",
        ]
    )

    with Timer() as timer:
        baseline = PortFeatureClassifier(k=7)
        baseline_report = baseline.evaluate(
            trace.last_days(1.0), bundle.truth, eval_senders
        )
    rows.append(
        [
            "Port features (§4)",
            len(baseline.feature_names()),
            f"{timer.elapsed:.1f}",
            f"{baseline_report.accuracy:.3f}",
        ]
    )

    dante = Dante(context=25, per_receiver=False)
    rows.append(["DANTE (count only)", dante.skipgram_count(trace), "-", "-"])

    print()
    print(
        format_table(
            ["Method", "Skip-grams/features", "Time [s]", "Accuracy"],
            rows,
            title="Comparison on the same trace (cf. paper Table 3)",
        )
    )
    print(
        "\nDANTE trains one Word2Vec language per sender, which is why the"
        "\npaper could not finish training it within ten days at full scale."
    )


if __name__ == "__main__":
    main()
