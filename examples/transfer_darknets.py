#!/usr/bin/env python3
"""Embedding transfer between darknets and over time (paper §8).

The paper closes by asking whether a DarkVec embedding trained on one
darknet is useful on another darknet, or at another time.  This example
measures both on the simulator:

* two /25 views of the same /24 observe the same coordinated events ->
  structure and classification transfer well;
* two halves of the month observe different sender populations and
  behaviours -> transfer degrades, matching the paper's conjecture.

Run with::

    python examples/transfer_darknets.py
"""

import numpy as np

from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace
from repro.transfer import (
    apply_alignment,
    cross_embedding_report,
    orthogonal_alignment,
    partition_agreement,
    shared_tokens,
    split_vantage_points,
)


def embed(trace):
    return DarkVec(DarkVecConfig(service="domain", epochs=8, seed=1)).fit(
        trace
    ).embedding


def measure(trace_a, trace_b, truth, full_trace, setting):
    print(f"\n{setting}")
    embedding_a = embed(trace_a)
    embedding_b = embed(trace_b)
    common = shared_tokens(embedding_a, embedding_b)
    print(f"  shared embedded senders: {len(common)}")

    agreement = partition_agreement(embedding_a, embedding_b, k_prime=3)
    print(f"  cluster-structure agreement (ARI): {agreement:.3f}")

    rotation = orthogonal_alignment(embedding_b, embedding_a)
    aligned = apply_alignment(embedding_b, rotation)
    labels = truth.labels_for(full_trace)
    labels_of_token = {int(t): labels[t] for t in common}
    queries = np.array(
        [t for t in common if labels[t] != "Unknown"], dtype=np.int64
    )
    report = cross_embedding_report(
        embedding_a, aligned, labels_of_token, queries, k=7
    )
    print(
        f"  task transfer: classify {len(queries)} GT senders of the "
        f"second embedding against the first -> accuracy "
        f"{report.accuracy:.3f}"
    )
    return agreement, report.accuracy


def main() -> None:
    print("Simulating 14 days of darknet traffic...")
    bundle = generate_trace(default_scenario(scale=0.08, days=14, seed=9))
    trace = bundle.trace

    view_a, view_b = split_vantage_points(trace)
    vantage = measure(
        view_a,
        view_b,
        bundle.truth,
        trace,
        "Two darknets (/25 halves), same period:",
    )

    half = trace.duration_days / 2
    temporal = measure(
        trace.first_days(half),
        trace.last_days(half),
        bundle.truth,
        trace,
        "Same darknet, first vs second week:",
    )

    print(
        "\nConclusion: across simultaneous vantage points the embedding "
        f"transfers well (ARI {vantage[0]:.2f}, task accuracy "
        f"{vantage[1]:.2f}); across time the task accuracy drops to "
        f"{temporal[1]:.2f} as the sender population churns — supporting "
        "the paper's closing discussion on the limits of darknet "
        "embedding transfer."
    )


if __name__ == "__main__":
    main()
