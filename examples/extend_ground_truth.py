#!/usr/bin/env python3
"""Semi-supervised ground-truth extension (paper §6.4).

Uses the embedding to find Unknown senders that behave exactly like a
known class — here, Mirai-variant bots that do *not* carry the Mirai
fingerprint — and proposes them as new class members, stopping at the
maximum in-class neighbour distance as the paper does.

Run with::

    python examples/extend_ground_truth.py
"""

from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace
from repro.core.extension import extend_ground_truth
from repro.trace.address import ip_to_str


def main() -> None:
    print("Simulating 15 days of darknet traffic...")
    bundle = generate_trace(default_scenario(scale=0.08, days=15, seed=21))
    trace = bundle.trace

    print("Training the embedding...")
    darkvec = DarkVec(DarkVecConfig(service="domain", epochs=8, seed=1)).fit(trace)
    embedding = darkvec.embedding
    assert embedding is not None

    labels = bundle.truth.labels_for(trace)[embedding.tokens]
    print("Proposing new class members among the Unknown senders...")
    result = extend_ground_truth(embedding.vectors, labels, k=7)

    # The simulator knows which Unknowns really are Mirai variants.
    hidden = set(bundle.sender_indices_of("mirai_nofp").tolist())
    for class_name in sorted(result.accepted):
        rows = result.accepted[class_name]
        if not len(rows):
            continue
        distances = result.distances[class_name]
        senders = embedding.tokens[rows]
        print(f"\n{class_name}: {len(rows)} Unknown senders accepted")
        for sender, distance in list(zip(senders, distances))[:5]:
            truly_hidden = "  <- hidden Mirai variant" if int(sender) in hidden else ""
            print(
                f"  {ip_to_str(trace.sender_ips[sender]):<16} "
                f"mean 7-NN distance {distance:.4f}{truly_hidden}"
            )
        if class_name == "Mirai-like":
            found = sum(1 for s in senders if int(s) in hidden)
            present = sum(1 for s in hidden if s in embedding)
            print(
                f"  -> {found} of the {present} embedded fingerprint-less "
                f"Mirai bots were recovered; precision "
                f"{found / max(len(rows), 1):.0%}"
            )


if __name__ == "__main__":
    main()
