#!/usr/bin/env python3
"""Quickstart: simulate a darknet, embed its senders, classify them.

Runs the full DarkVec pipeline end to end on a small synthetic trace:

1. generate a 10-day darknet trace with labelled scanner populations;
2. train the Word2Vec embedding over domain-knowledge services;
3. recover the ground-truth classes with a leave-one-out 7-NN test;
4. look at a sender's nearest neighbours in the embedding.

Run with::

    python examples/quickstart.py
"""

from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace
from repro.trace.address import ip_to_str


def main() -> None:
    print("Simulating 10 days of darknet traffic...")
    scenario = default_scenario(scale=0.08, days=10, seed=42)
    bundle = generate_trace(scenario)
    trace = bundle.trace
    print(
        f"  {trace.n_packets:,} packets from {trace.n_senders:,} senders, "
        f"{len(trace.active_senders(10)):,} active (>= 10 packets)"
    )

    print("\nTraining the DarkVec embedding (domain-knowledge services)...")
    config = DarkVecConfig(service="domain", epochs=8, seed=1)
    darkvec = DarkVec(config).fit(trace)
    assert darkvec.corpus is not None and darkvec.embedding is not None
    print(
        f"  corpus: {len(darkvec.corpus):,} sentences, "
        f"{darkvec.corpus.n_tokens:,} tokens; "
        f"embedding: {len(darkvec.embedding):,} senders x "
        f"{darkvec.embedding.vector_size} dims"
    )

    print("\nLeave-one-out 7-NN classification on the last day:")
    report = darkvec.evaluate(bundle.truth, k=7, eval_days=1.0)
    print(report.to_text())

    # Nearest neighbours of one Mirai bot: more Mirai bots.
    mirai_senders = bundle.sender_indices_of("mirai")
    embedding = darkvec.embedding
    labels = bundle.truth.labels_for(trace)
    for sender in mirai_senders:
        if sender in embedding:
            print(f"\nNearest neighbours of Mirai bot "
                  f"{ip_to_str(trace.sender_ips[sender])}:")
            for token, similarity in embedding.most_similar(int(sender), k=5):
                ip = ip_to_str(trace.sender_ips[token])
                print(f"  {ip:<16} {labels[token]:<12} cos={similarity:.3f}")
            break


if __name__ == "__main__":
    main()
