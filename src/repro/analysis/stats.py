"""Dataset statistics (Table 1, Figures 1a, 2a, 2b)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.services.ports import format_port
from repro.trace.packet import SECONDS_PER_DAY, TCP, Trace
from repro.utils.ecdf import Ecdf, ecdf


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 1."""

    n_sources: int
    n_packets: int
    n_ports: int
    top_tcp_ports: list[tuple[int, float, int]]
    """``(port, traffic_share_percent, n_sources)`` for top TCP ports."""


def dataset_stats(trace: Trace, n_top: int = 3) -> DatasetStats:
    """Compute the Table 1 row of a trace."""
    observed = trace.observed_senders()
    tcp_mask = trace.protos == TCP
    tcp_ports = trace.ports[tcp_mask]
    tcp_senders = trace.senders[tcp_mask]
    top: list[tuple[int, float, int]] = []
    if len(tcp_ports):
        ports, counts = np.unique(tcp_ports, return_counts=True)
        order = np.argsort(counts)[::-1][:n_top]
        for idx in order:
            port = int(ports[idx])
            share = 100.0 * counts[idx] / trace.n_packets
            n_sources = len(np.unique(tcp_senders[tcp_ports == port]))
            top.append((port, float(share), n_sources))
    return DatasetStats(
        n_sources=len(observed),
        n_packets=trace.n_packets,
        n_ports=trace.distinct_ports(),
        top_tcp_ports=top,
    )


def port_rank_ecdf(trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Figure 1a: cumulative traffic share by port rank.

    Returns ``(ranks, cumulative_share)`` with ports ranked by
    decreasing packet count (TCP and UDP summed, as in the paper).
    """
    if not len(trace):
        return np.empty(0), np.empty(0)
    ports, counts = np.unique(trace.ports, return_counts=True)
    counts = np.sort(counts)[::-1]
    share = np.cumsum(counts) / counts.sum()
    return np.arange(1, len(ports) + 1), share


def top_ports(trace: Trace, n: int = 14) -> list[tuple[str, int]]:
    """The inset of Figure 1a: the top-``n`` ports by packets."""
    ranked = sorted(
        trace.port_packet_counts().items(), key=lambda kv: kv[1], reverse=True
    )
    return [(format_port(port, proto), count) for (port, proto), count in ranked[:n]]


def packets_per_sender_ecdf(trace: Trace) -> Ecdf:
    """Figure 2a: ECDF of monthly packets per sender."""
    counts = trace.packet_counts()
    return ecdf(counts[counts > 0])


def cumulative_senders(
    trace: Trace, min_packets: int = 10
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Figure 2b: distinct senders seen in the first ``d`` days.

    Returns ``(days, unfiltered, filtered)`` where ``filtered`` counts
    senders with at least ``min_packets`` packets in those days.
    """
    if not len(trace):
        return np.empty(0), np.empty(0), np.empty(0)
    n_days = int(np.ceil(trace.duration_days))
    days = np.arange(1, n_days + 1)
    unfiltered = np.empty(n_days, dtype=np.int64)
    filtered = np.empty(n_days, dtype=np.int64)
    for i, d in enumerate(days):
        cutoff = trace.start_time + d * SECONDS_PER_DAY
        hi = int(np.searchsorted(trace.times, cutoff, side="left"))
        counts = np.bincount(trace.senders[:hi], minlength=trace.n_senders)
        unfiltered[i] = int((counts > 0).sum())
        filtered[i] = int((counts >= min_packets).sum())
    return days, unfiltered, filtered
