"""Figure 3: traffic of each ground-truth class per generic service."""

from __future__ import annotations

import numpy as np

from repro.labels.groundtruth import GroundTruth, UNKNOWN
from repro.services.base import ServiceMap
from repro.services.domain import DomainServiceMap
from repro.trace.packet import Trace


def service_class_heatmap(
    trace: Trace,
    truth: GroundTruth,
    service_map: ServiceMap | None = None,
    eval_senders: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[str, ...], tuple[str, ...]]:
    """Fraction of each class's packets going to each generic service.

    Args:
        trace: the (typically last-day) trace.
        truth: ground-truth labels.
        service_map: generic services; defaults to the Table 7 map.
        eval_senders: restrict to these sender indices (e.g. actives).

    Returns:
        ``(matrix, service_names, class_names)`` where ``matrix[i, j]``
        is the fraction of class ``j``'s packets hitting service ``i``
        (columns sum to 1, matching the paper's normalisation).
    """
    if service_map is None:
        service_map = DomainServiceMap()
    if eval_senders is not None:
        trace = trace.from_senders(np.asarray(eval_senders))
    labels = truth.labels_for(trace)
    class_names = tuple(sorted(set(truth.by_ip.values()))) + (UNKNOWN,)
    class_index = {name: j for j, name in enumerate(class_names)}
    service_ids = service_map.service_ids(trace.ports, trace.protos)
    packet_classes = np.array(
        [class_index[labels[s]] for s in trace.senders], dtype=np.int64
    )

    matrix = np.zeros((service_map.n_services, len(class_names)))
    np.add.at(matrix, (service_ids, packet_classes), 1.0)
    column_sums = matrix.sum(axis=0, keepdims=True)
    column_sums[column_sums == 0] = 1.0
    return matrix / column_sums, service_map.names, class_names
