"""Trace analysis: dataset statistics, heatmaps, activity patterns.

These functions compute the raw series behind the paper's overview
tables and figures (Table 1, Figures 1-3, 9, 12-15).
"""

from repro.analysis.heatmap import service_class_heatmap
from repro.analysis.patterns import activity_matrix, arrival_order
from repro.analysis.projection import PcaModel, fit_pca, scatter_text
from repro.analysis.regularity import (
    PeriodicityResult,
    activity_series,
    autocorrelation,
    periodicity,
)
from repro.analysis.stats import (
    DatasetStats,
    cumulative_senders,
    dataset_stats,
    packets_per_sender_ecdf,
    port_rank_ecdf,
    top_ports,
)

__all__ = [
    "DatasetStats",
    "PcaModel",
    "PeriodicityResult",
    "fit_pca",
    "scatter_text",
    "activity_matrix",
    "activity_series",
    "arrival_order",
    "autocorrelation",
    "cumulative_senders",
    "periodicity",
    "dataset_stats",
    "packets_per_sender_ecdf",
    "port_rank_ecdf",
    "service_class_heatmap",
    "top_ports",
]
