"""Sender activity rasters (Figures 1b, 9, 12-15).

An activity matrix is a boolean (senders x time-bins) raster: cell
``(i, t)`` is True when sender ``i`` sent at least one packet during
time bin ``t``.  The paper's scatter figures are these matrices with
senders ordered by first appearance or by cluster id.
"""

from __future__ import annotations

import numpy as np

from repro.trace.packet import SECONDS_PER_DAY, Trace


def activity_matrix(
    trace: Trace,
    senders: np.ndarray,
    bin_seconds: float = SECONDS_PER_DAY / 4,
    order: np.ndarray | None = None,
    t_start: float | None = None,
    t_end: float | None = None,
) -> np.ndarray:
    """Boolean activity raster for the given senders.

    Args:
        trace: packet trace.
        senders: sender indices (rows of the raster, in this order
            unless ``order`` is given).
        bin_seconds: raster resolution.
        order: optional permutation of ``senders`` for the row order.
        t_start, t_end: raster time range; defaults to the trace span.
    """
    senders = np.asarray(senders, dtype=np.int64)
    if order is not None:
        senders = senders[np.asarray(order, dtype=np.int64)]
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if t_start is None:
        t_start = trace.start_time if len(trace) else 0.0
    if t_end is None:
        t_end = trace.end_time + 1e-9 if len(trace) else bin_seconds
    n_bins = max(int(np.ceil((t_end - t_start) / bin_seconds)), 1)

    row_of = np.full(trace.n_senders, -1, dtype=np.int64)
    row_of[senders] = np.arange(len(senders))
    rows = row_of[trace.senders]
    in_range = (rows >= 0) & (trace.times >= t_start) & (trace.times < t_end)
    bins = ((trace.times[in_range] - t_start) / bin_seconds).astype(np.int64)
    matrix = np.zeros((len(senders), n_bins), dtype=bool)
    matrix[rows[in_range], bins] = True
    return matrix


def arrival_order(trace: Trace, senders: np.ndarray) -> np.ndarray:
    """Permutation sorting ``senders`` by first-packet time (Figure 1b)."""
    senders = np.asarray(senders, dtype=np.int64)
    first_seen = np.full(trace.n_senders, np.inf)
    # Times are sorted, so traversing backwards leaves the first packet.
    np.minimum.at(first_seen, trace.senders, trace.times)
    return np.argsort(first_seen[senders], kind="stable")
