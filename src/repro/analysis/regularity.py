"""Temporal regularity of sender groups.

Table 5 repeatedly justifies cluster identities with phrases like
"very regular daily pattern" or "regular hourly pattern".  This module
quantifies that: the autocorrelation of a group's binned activity
series reveals whether the group acts on a fixed period, and at which
lag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.packet import SECONDS_PER_DAY, Trace


@dataclass(frozen=True)
class PeriodicityResult:
    """Dominant period of a group's activity.

    Attributes:
        period_seconds: lag of the strongest autocorrelation peak, or
            0.0 when no periodic structure was found.
        score: autocorrelation value at that lag (0..1-ish); values
            above ~0.3 indicate a clearly regular pattern.
    """

    period_seconds: float
    score: float

    @property
    def is_regular(self) -> bool:
        return self.score > 0.3 and self.period_seconds > 0


def activity_series(
    trace: Trace,
    senders: np.ndarray,
    bin_seconds: float = 900.0,
) -> np.ndarray:
    """Packets per time bin for the given sender group."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    sub = trace.from_senders(np.asarray(senders, dtype=np.int64))
    if not len(sub):
        return np.zeros(1)
    n_bins = max(int(np.ceil((trace.end_time - trace.start_time) / bin_seconds)), 1)
    bins = ((sub.times - trace.start_time) / bin_seconds).astype(np.int64)
    bins = np.clip(bins, 0, n_bins - 1)
    return np.bincount(bins, minlength=n_bins).astype(float)


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Normalised autocorrelation for lags ``1..max_lag``."""
    series = np.asarray(series, dtype=float)
    if max_lag < 1:
        raise ValueError("max_lag must be positive")
    centered = series - series.mean()
    variance = float(centered @ centered)
    if variance == 0.0:
        return np.zeros(max_lag)
    values = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        if lag >= len(series):
            values[lag - 1] = 0.0
        else:
            values[lag - 1] = float(centered[:-lag] @ centered[lag:]) / variance
    return values


def periodicity(
    trace: Trace,
    senders: np.ndarray,
    bin_seconds: float = 900.0,
    max_period_s: float = 2 * SECONDS_PER_DAY,
) -> PeriodicityResult:
    """Detect the dominant activity period of a sender group.

    The strongest autocorrelation peak (a local maximum that beats its
    neighbours) between 1 hour and ``max_period_s`` wins.
    """
    series = activity_series(trace, senders, bin_seconds)
    max_lag = min(int(max_period_s / bin_seconds), len(series) - 2)
    if max_lag < 2:
        return PeriodicityResult(period_seconds=0.0, score=0.0)
    values = autocorrelation(series, max_lag)
    min_lag = max(int(3600.0 / bin_seconds), 1)
    best_lag, best_score = 0, 0.0
    for lag in range(min_lag, max_lag - 1):
        value = values[lag - 1]
        if (
            value > best_score
            and value >= values[lag]  # peak vs next lag
            and (lag - 1 == 0 or value >= values[lag - 2])
        ):
            best_lag, best_score = lag, float(value)
    if best_lag == 0:
        return PeriodicityResult(period_seconds=0.0, score=0.0)
    return PeriodicityResult(
        period_seconds=best_lag * bin_seconds, score=best_score
    )
