"""Low-dimensional projections of the embedding space.

The paper's narrative ("senders performing the same activity are
projected into the same latent-space regions") is easiest to *see* in
two dimensions.  PCA is implemented directly on top of numpy's SVD so
examples can scatter-plot the embedding without extra dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PcaModel:
    """A fitted PCA projection.

    Attributes:
        mean: feature means subtracted before projection.
        components: principal axes, shape (n_components, n_features).
        explained_variance_ratio: variance share of each component.
    """

    mean: np.ndarray
    components: np.ndarray
    explained_variance_ratio: np.ndarray

    def transform(self, vectors: np.ndarray) -> np.ndarray:
        """Project vectors onto the principal components."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.shape[1] != self.mean.shape[0]:
            raise ValueError("feature dimension mismatch")
        return (vectors - self.mean) @ self.components.T


def fit_pca(vectors: np.ndarray, n_components: int = 2) -> PcaModel:
    """Fit PCA via SVD of the centred data matrix."""
    vectors = np.asarray(vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ValueError("vectors must be a 2-D matrix")
    n, d = vectors.shape
    if not 1 <= n_components <= min(n, d):
        raise ValueError(
            f"n_components must be in [1, {min(n, d)}], got {n_components}"
        )
    mean = vectors.mean(axis=0)
    centered = vectors - mean
    _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
    variances = singular_values**2
    total = variances.sum()
    ratio = variances / total if total > 0 else np.zeros_like(variances)
    return PcaModel(
        mean=mean,
        components=vt[:n_components],
        explained_variance_ratio=ratio[:n_components],
    )


def scatter_text(
    points: np.ndarray,
    labels: np.ndarray,
    width: int = 72,
    height: int = 24,
    title: str | None = None,
) -> str:
    """ASCII scatter plot of 2-D points, one glyph per label.

    Up to 20 distinct labels get their own letter; overlapping cells
    show the label that appears last.
    """
    points = np.asarray(points, dtype=float)
    labels = np.asarray(labels, dtype=object)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    if len(points) != len(labels):
        raise ValueError("points and labels must align")
    if len(points) == 0:
        raise ValueError("nothing to plot")

    distinct = list(dict.fromkeys(labels.tolist()))
    glyphs = "ABCDEFGHIJKLMNOPQRST"
    if len(distinct) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} labels supported")
    glyph_of = {label: glyphs[i] for i, label in enumerate(distinct)}

    x, y = points[:, 0], points[:, 1]
    x_span = x.max() - x.min() or 1.0
    y_span = y.max() - y.min() or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi, label in zip(x, y, labels):
        col = int((xi - x.min()) / x_span * (width - 1))
        row = height - 1 - int((yi - y.min()) / y_span * (height - 1))
        grid[row][col] = glyph_of[label]

    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    legend = ", ".join(f"{glyph_of[label]}={label}" for label in distinct)
    lines.append(f" {legend}")
    return "\n".join(lines)
