"""Split one darknet trace into two vantage points.

Scanners targeting the whole /24 are seen by every address in it, so
partitioning the packets by destination address yields two traces that
behave like two smaller darknets observing the same senders during the
same period — exactly the §8 thought experiment.  The sender table is
shared between the two views, which makes cross-view comparisons
straightforward.
"""

from __future__ import annotations

from repro.trace.packet import Trace


def split_vantage_points(
    trace: Trace, boundary: int = 128
) -> tuple[Trace, Trace]:
    """Partition packets by darknet destination address.

    Args:
        trace: the full darknet trace.
        boundary: packets with ``receiver < boundary`` go to the first
            view, the rest to the second (128 = two /25 darknets).

    Returns:
        ``(view_a, view_b)`` sharing the sender table of ``trace``.
    """
    if not 1 <= boundary <= 255:
        raise ValueError("boundary must split the /24 into two parts")
    mask = trace.receivers < boundary
    return trace.select(mask), trace.select(~mask)
