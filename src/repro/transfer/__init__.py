"""Embedding transfer across darknets and across time (paper §8).

The paper closes with two open questions: can an embedding trained on
one darknet be used on another darknet observing the same period, and
can it be used at a different time?  This package provides the
machinery to answer both on the simulator:

* :func:`split_vantage_points` turns one /24 trace into two half-sized
  darknet views (senders hit both, with independent packet samples);
* :func:`orthogonal_alignment` maps one embedding space onto another
  with a Procrustes rotation over the shared senders;
* :func:`neighborhood_overlap` and :func:`cross_embedding_report`
  quantify how much structure and task performance survive transfer.
"""

from repro.transfer.align import (
    apply_alignment,
    orthogonal_alignment,
    shared_tokens,
)
from repro.transfer.evaluate import (
    adjusted_rand_index,
    cross_embedding_report,
    neighborhood_overlap,
    partition_agreement,
)
from repro.transfer.vantage import split_vantage_points

__all__ = [
    "adjusted_rand_index",
    "apply_alignment",
    "cross_embedding_report",
    "neighborhood_overlap",
    "orthogonal_alignment",
    "partition_agreement",
    "shared_tokens",
    "split_vantage_points",
]
