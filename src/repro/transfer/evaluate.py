"""Transfer metrics: structure preservation and task transfer."""

from __future__ import annotations

import numpy as np

from repro.graph.knn_graph import build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.knn.classifier import knn_search, majority_vote
from repro.knn.report import ClassificationReport, classification_report
from repro.transfer.align import shared_tokens
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.mathutils import unit_rows


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Adjusted Rand Index between two partitions of the same items.

    1.0 means identical partitions, ~0 means chance-level agreement.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if len(labels_a) != len(labels_b):
        raise ValueError("partitions must cover the same items")
    n = len(labels_a)
    if n < 2:
        return 1.0
    _, a_idx = np.unique(labels_a, return_inverse=True)
    _, b_idx = np.unique(labels_b, return_inverse=True)
    contingency = np.zeros((a_idx.max() + 1, b_idx.max() + 1), dtype=np.int64)
    np.add.at(contingency, (a_idx, b_idx), 1)

    def comb2(x):
        return x * (x - 1) / 2.0

    sum_cells = comb2(contingency).sum()
    sum_rows = comb2(contingency.sum(axis=1)).sum()
    sum_cols = comb2(contingency.sum(axis=0)).sum()
    total = comb2(np.int64(n))
    expected = sum_rows * sum_cols / total
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:
        return 1.0
    return float((sum_cells - expected) / (maximum - expected))


def partition_agreement(
    embedding_a: KeyedVectors,
    embedding_b: KeyedVectors,
    k_prime: int = 3,
    seed: int = 0,
) -> float:
    """Cluster-level structure transfer between two embeddings.

    Louvain partitions the *shared* senders independently in each
    space; the ARI of the two partitions measures whether both
    embeddings discover the same coordinated groups.  Robust to the
    within-cluster neighbour shuffling that makes raw k-NN overlap
    pessimistic.
    """
    common = shared_tokens(embedding_a, embedding_b)
    if len(common) < 10:
        raise ValueError("not enough shared senders")

    def communities_of(embedding):
        vectors = embedding.vectors[embedding.rows_of(common)]
        graph = build_knn_graph(vectors, k_prime=k_prime)
        return louvain_communities(graph.symmetric_adjacency(), seed=seed)

    return adjusted_rand_index(
        communities_of(embedding_a), communities_of(embedding_b)
    )


def neighborhood_overlap(
    embedding_a: KeyedVectors,
    embedding_b: KeyedVectors,
    k: int = 7,
    workers: int = 1,
    spec=None,
) -> float:
    """Mean Jaccard overlap of k-NN sets over the shared senders.

    Rotation-invariant (neighbourhoods only depend on cosine geometry
    within each space), so no alignment is needed.  1.0 means both
    embeddings organise the shared senders identically; values near
    ``k / n`` mean no common structure.  ``workers`` parallelises the
    two searches and ``spec`` (an :class:`~repro.ann.base.AnnSpec`)
    selects their backend.
    """
    common = shared_tokens(embedding_a, embedding_b)
    if len(common) < k + 2:
        raise ValueError("not enough shared senders for the overlap metric")
    units_a = unit_rows(embedding_a.vectors[embedding_a.rows_of(common)])
    units_b = unit_rows(embedding_b.vectors[embedding_b.rows_of(common)])
    rows = np.arange(len(common))
    neighbors_a, _ = knn_search(units_a, rows, k, workers=workers, spec=spec)
    neighbors_b, _ = knn_search(units_b, rows, k, workers=workers, spec=spec)
    overlaps = []
    for row_a, row_b in zip(neighbors_a, neighbors_b):
        set_a, set_b = set(row_a.tolist()), set(row_b.tolist())
        overlaps.append(len(set_a & set_b) / len(set_a | set_b))
    return float(np.mean(overlaps))


def cross_embedding_report(
    reference: KeyedVectors,
    query: KeyedVectors,
    labels_of_token: dict[int, str],
    query_tokens: np.ndarray,
    k: int = 7,
) -> ClassificationReport:
    """Classify ``query`` senders against a *reference* embedding.

    This is the §8 task-transfer experiment: the reference embedding
    (and its labelled senders) come from one darknet or time window;
    the query vectors come from another.  The query embedding must
    already be aligned into the reference coordinate system (see
    :func:`repro.transfer.align.orthogonal_alignment`).

    Query tokens that also exist in the reference are excluded from
    their own neighbourhoods by matching token identity.
    """
    query_tokens = np.asarray(query_tokens, dtype=np.int64)
    query_rows = query.rows_of(query_tokens)
    if (query_rows < 0).any():
        raise ValueError("every query token must be in the query embedding")
    reference_labels = np.array(
        [labels_of_token.get(int(t), "Unknown") for t in reference.tokens],
        dtype=object,
    )
    ref_units = unit_rows(reference.vectors)
    query_units = unit_rows(query.vectors[query_rows])

    scores = query_units @ ref_units.T  # (Q, R)
    # Exclude self-matches (same sender in both embeddings).
    ref_positions = reference.rows_of(query_tokens)
    has_self = ref_positions >= 0
    scores[np.flatnonzero(has_self), ref_positions[has_self]] = -np.inf

    top = np.argpartition(scores, -k, axis=1)[:, -k:]
    top_scores = np.take_along_axis(scores, top, axis=1)
    order = np.argsort(top_scores, axis=1)[:, ::-1]
    neighbors = np.take_along_axis(top, order, axis=1)
    similarities = np.take_along_axis(top_scores, order, axis=1)

    predictions = majority_vote(reference_labels, neighbors, similarities)
    true_labels = np.array(
        [labels_of_token.get(int(t), "Unknown") for t in query_tokens],
        dtype=object,
    )
    return classification_report(true_labels, predictions)
