"""Orthogonal alignment of two embedding spaces.

Word2Vec solutions are only defined up to rotation, so two embeddings
of the *same* senders trained on different data live in incompatible
coordinate systems.  The classic fix (used for cross-lingual word
vectors) is an orthogonal Procrustes rotation fitted on anchor points —
here, the senders common to both embeddings.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import orthogonal_procrustes

from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.mathutils import unit_rows


def shared_tokens(source: KeyedVectors, target: KeyedVectors) -> np.ndarray:
    """Tokens present in both embeddings."""
    return np.intersect1d(source.tokens, target.tokens)


def orthogonal_alignment(
    source: KeyedVectors,
    target: KeyedVectors,
    anchors: np.ndarray | None = None,
) -> np.ndarray:
    """Rotation matrix mapping ``source`` space onto ``target`` space.

    Args:
        source, target: embeddings with overlapping token sets.
        anchors: tokens to fit the rotation on; defaults to all shared
            tokens.

    Returns:
        An orthogonal matrix ``R`` such that ``source.vectors @ R``
        approximates the target coordinates of the anchor tokens.
    """
    if source.vector_size != target.vector_size:
        raise ValueError("embeddings must share the vector size")
    if anchors is None:
        anchors = shared_tokens(source, target)
    anchors = np.asarray(anchors, dtype=np.int64)
    if len(anchors) < source.vector_size:
        raise ValueError(
            f"need at least {source.vector_size} anchors, got {len(anchors)}"
        )
    source_rows = source.rows_of(anchors)
    target_rows = target.rows_of(anchors)
    valid = (source_rows >= 0) & (target_rows >= 0)
    if valid.sum() < source.vector_size:
        raise ValueError("not enough anchors present in both embeddings")
    a = unit_rows(source.vectors[source_rows[valid]])
    b = unit_rows(target.vectors[target_rows[valid]])
    rotation, _ = orthogonal_procrustes(a, b)
    return rotation


def apply_alignment(source: KeyedVectors, rotation: np.ndarray) -> KeyedVectors:
    """Rotate an embedding into the target coordinate system."""
    if rotation.shape != (source.vector_size, source.vector_size):
        raise ValueError("rotation shape must match the vector size")
    return KeyedVectors(
        tokens=source.tokens.copy(),
        vectors=source.vectors @ rotation,
    )


def aligned_displacement(
    source: KeyedVectors,
    target: KeyedVectors,
    anchors: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Per-token cosine displacement after orthogonal alignment.

    The drift-monitor primitive: for every token present in both
    embeddings, how far did its direction move between ``source`` and
    ``target``, once the arbitrary rotation between the two training
    runs has been removed?  Falls back to the unaligned displacement
    when the shared set is too small to fit a Procrustes rotation.

    Returns:
        ``(tokens, displacement, aligned)`` — the shared tokens, their
        cosine distances ``1 - cos(R @ source, target)`` (in [0, 2]),
        and whether a rotation was actually fitted.
    """
    tokens = shared_tokens(source, target) if anchors is None else anchors
    tokens = np.asarray(tokens, dtype=np.int64)
    source_rows = source.rows_of(tokens)
    target_rows = target.rows_of(tokens)
    valid = (source_rows >= 0) & (target_rows >= 0)
    tokens = tokens[valid]
    if len(tokens) == 0:
        return tokens, np.empty(0), False
    a = unit_rows(source.vectors[source_rows[valid]])
    b = unit_rows(target.vectors[target_rows[valid]])
    aligned = len(tokens) >= source.vector_size
    if aligned:
        rotation, _ = orthogonal_procrustes(a, b)
        a = a @ rotation
    displacement = 1.0 - np.einsum("ij,ij->i", a, b)
    return tokens, displacement, aligned
