"""Approximate and exact nearest-neighbour indexes (see :mod:`.base`)."""

from repro.ann.base import AnnSpec, NeighborIndex, build_index
from repro.ann.exact import ExactIndex, score_chunk_rows
from repro.ann.ivf import IVFIndex

__all__ = [
    "AnnSpec",
    "NeighborIndex",
    "ExactIndex",
    "IVFIndex",
    "build_index",
    "score_chunk_rows",
]
