"""Approximate and exact nearest-neighbour indexes (see :mod:`.base`)."""

from repro.ann.base import AnnSpec, NeighborIndex, build_index
from repro.ann.exact import ExactIndex, score_chunk_rows
from repro.ann.hnsw import HNSWIndex
from repro.ann.ivf import IVFIndex
from repro.ann.ivfpq import IVFPQIndex

__all__ = [
    "AnnSpec",
    "NeighborIndex",
    "ExactIndex",
    "HNSWIndex",
    "IVFIndex",
    "IVFPQIndex",
    "build_index",
    "score_chunk_rows",
]
