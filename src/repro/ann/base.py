"""Pluggable nearest-neighbour indexes behind one interface.

Every DarkVec result — the k = 7 LOO classifier, the k' = 3 Louvain
graph, drift churn, new-sender extension — reduces to cosine k-NN over
the row-normalised embedding.  :class:`NeighborIndex` is the single
contract those consumers search through; :func:`build_index` picks the
backend from an :class:`AnnSpec`:

* ``"exact"`` — :class:`repro.ann.exact.ExactIndex`, the brute-force
  chunked matmul search (bit-identical to the historical
  ``knn_search``).
* ``"ivf"`` — :class:`repro.ann.ivf.IVFIndex`, an inverted-file index
  with a spherical k-means coarse quantizer and multi-probe search.
* ``"ivfpq"`` — :class:`repro.ann.ivfpq.IVFPQIndex`, the inverted file
  with product-quantized residuals: candidates are scored from a
  compressed code table (ADC lookups) and only a shortlist is rescored
  exactly, cutting both memory and scan cost at large N.
* ``"hnsw"`` — :class:`repro.ann.hnsw.HNSWIndex`, a hierarchical
  navigable small-world graph: greedy descent through geometrically
  thinning upper layers, then an ``ef_search``-wide beam over the
  layer-0 graph, so per-query cost tracks the graph diameter
  (logarithmic in N) instead of the probed-list mass.

All backends return ``(neighbors, similarities)`` of shape (Q, k) with
neighbours sorted by decreasing float64 cosine similarity, so callers
never need to know which backend served them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

#: Backends :func:`build_index` knows how to construct.
BACKENDS = ("exact", "ivf", "ivfpq", "hnsw")


@dataclass(frozen=True)
class AnnSpec:
    """Backend selection and tuning knobs for a neighbour index.

    Attributes:
        backend: ``"exact"`` (brute force, the default), ``"ivf"``,
            ``"ivfpq"`` (inverted file + product-quantized residuals),
            or ``"hnsw"`` (hierarchical navigable small-world graph).
        nlist: IVF coarse-quantizer centroids; ``0`` (default) picks
            ``round(sqrt(N))`` at build time, which balances the coarse
            scan (Q x nlist) against the list scans (Q x nprobe x N/nlist).
        nprobe: inverted lists probed per query.  Higher values trade
            speed for recall; ``nprobe >= nlist`` degenerates to exact
            scoring through the list layout.
        recall_sample: queries per search that are re-run exactly to
            measure ``ann.recall_at_k``.  ``0`` disables the audit.
            The audit observes — it never changes returned results —
            so it is deliberately absent from stage fingerprints.
        seed: seed for the k-means sample, centroid init, and the
            recall-audit query sample.
        pq_m: product-quantizer subspaces (``"ivfpq"`` only); ``0``
            (default) picks ``min(16, max(1, dim // 4))`` at build.
        pq_bits: bits per PQ code (``"ivfpq"`` only); each subspace
            trains a codebook of ``2**pq_bits`` entries, 1..8 so codes
            fit one uint8 per subspace.
        hnsw_m: HNSW links per node on the upper layers (layer 0 holds
            ``2 * hnsw_m``); also sets the level decay ``1 / ln(M)``.
        hnsw_ef_build: beam width while inserting nodes at build time.
            Wider beams find better links — a one-time cost paid at
            construction, not per query.
        hnsw_ef_search: beam width at query time; the recall/speed
            knob (IVF's ``nprobe`` analogue).  Values below ``k`` are
            raised to ``k`` (+1 with self-exclusion) per search.
    """

    backend: str = "exact"
    nlist: int = 0
    nprobe: int = 8
    recall_sample: int = 32
    seed: int = 1
    pq_m: int = 0
    pq_bits: int = 8
    hnsw_m: int = 16
    hnsw_ef_build: int = 80
    hnsw_ef_search: int = 8

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"ann backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.nlist < 0:
            raise ValueError("nlist must be >= 0 (0 means sqrt(N) auto)")
        if self.nprobe < 1:
            raise ValueError("nprobe must be positive")
        if self.recall_sample < 0:
            raise ValueError("recall_sample must be >= 0")
        if self.pq_m < 0:
            raise ValueError("pq_m must be >= 0 (0 means auto)")
        if not 1 <= self.pq_bits <= 8:
            raise ValueError("pq_bits must be in 1..8")
        if self.hnsw_m < 2:
            raise ValueError("hnsw_m must be >= 2")
        if self.hnsw_ef_build < 1:
            raise ValueError("hnsw_ef_build must be positive")
        if self.hnsw_ef_search < 1:
            raise ValueError("hnsw_ef_search must be positive")


class NeighborIndex(ABC):
    """A searchable snapshot of one row-normalised vector set.

    Attributes:
        units: the indexed row-normalised float64 matrix, shape (N, V).
            Consumers (e.g. :class:`repro.knn.classifier.CosineKnn`)
            read it back instead of re-normalising.
    """

    units: np.ndarray

    def __len__(self) -> int:
        return len(self.units)

    @abstractmethod
    def search(
        self,
        query_rows: np.ndarray,
        k: int,
        exclude_self: bool = True,
        workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The ``k`` nearest indexed rows (by cosine) per query row.

        Args:
            query_rows: indices into :attr:`units` of the query points.
            k: neighbours per query.
            exclude_self: drop the query row from its own list.
            workers: query chunks dispatched to a thread pool (0 = all
                cores).  Chunks write disjoint output slices, so the
                result is bitwise identical for every ``workers`` value.

        Returns:
            ``(neighbors, similarities)`` of shape (Q, k); neighbours
            sorted by decreasing float64 similarity.
        """


def check_query(
    n: int, query_rows: np.ndarray, k: int, exclude_self: bool
) -> np.ndarray:
    """Shared argument validation for every backend's ``search``."""
    if k < 1:
        raise ValueError("k must be positive")
    limit = k + 1 if exclude_self else k
    if n < limit:
        raise ValueError(f"need at least {limit} points for k={k}")
    return np.asarray(query_rows, dtype=np.int64)


def build_index(
    units: np.ndarray, spec: AnnSpec | None = None, workers: int = 1
) -> NeighborIndex:
    """Construct the index ``spec`` asks for over row-normalised ``units``."""
    from repro.ann.exact import ExactIndex
    from repro.ann.hnsw import HNSWIndex
    from repro.ann.ivf import IVFIndex
    from repro.ann.ivfpq import IVFPQIndex

    spec = spec or AnnSpec()
    if spec.backend == "exact":
        return ExactIndex(units)
    if spec.backend == "ivfpq":
        return IVFPQIndex.build(units, spec, workers=workers)
    if spec.backend == "hnsw":
        return HNSWIndex.build(units, spec, workers=workers)
    return IVFIndex.build(units, spec, workers=workers)
