"""Product-quantized inverted-file (IVF-PQ) cosine k-NN, pure numpy.

Builds on the IVF layout (:mod:`repro.ann.ivf`): rows partition into
``nlist`` inverted lists by a spherical k-means coarse quantizer.  The
PQ layer then compresses each row's *residual* (vector minus its list
centroid) into ``m`` uint8 codes — one per subspace — against per-
subspace codebooks of ``2**pq_bits`` entries trained with Euclidean
k-means.  At ``m = 16`` and 8 bits a float32 embedding row of V = 50
shrinks from 200 bytes to 16, so the scan structure of a million-row
index fits comfortably in cache-friendly memory.

Search is asymmetric distance computation (ADC): a query builds one
lookup table of ``q · codebook`` dot products per subspace — the table
is independent of which list is probed — and scores every candidate as

    q · x_hat  =  q · c_list  +  sum_j  LUT[j, codes[x, j]]

i.e. one coarse term plus ``m`` table lookups, no float vector math per
candidate.  Because ADC scores are approximate, each query keeps a
*shortlist* several times larger than ``k``, rescored exactly in
float64 against the original vectors; returned similarities are
therefore exact for the neighbours found and directly comparable with
the exact backend's, just like plain IVF.  Queries whose probed lists
held fewer than ``k`` candidates fall back to exhaustive search.

Every search self-audits recall on a seeded query sample
(:func:`repro.ann.audit.audit_recall`), so a mis-tuned quantizer is
visible in ``ann.recall_at_k`` and the ``ann_recall`` health monitor
instead of silently degrading accuracy.  :meth:`IVFPQIndex.updated`
supports warm daily retrains exactly like IVF, re-encoding codes
against the retained codebooks and retraining everything only when
list imbalance crosses the threshold.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import obs
from repro.ann import audit
from repro.ann.base import AnnSpec, NeighborIndex, check_query
from repro.ann.exact import exact_topk
from repro.ann.ivf import (
    RETRAIN_IMBALANCE,
    _SCORE_BUDGET_BYTES,
    _nearest_centroid,
    _train_centroids,
)
from repro.parallel.pool import WorkerPool

#: Lloyd iterations for the per-subspace Euclidean codebooks.
_PQ_KMEANS_ITERS = 10

#: Shortlist multiplier: ADC keeps ``max(_MIN_SHORTLIST, mult * k)``
#: candidates per query for exact rescoring.  Deep relative to ``k``
#: on purpose: quantization noise can shuffle near-tied candidates, and
#: the exact rescore of a few-hundred-row shortlist costs almost
#: nothing next to the scan it replaces.
_SHORTLIST_MULT = 16
_MIN_SHORTLIST = 64


def default_pq_m(dim: int) -> int:
    """The auto subspace count: ~4 dims per subspace, capped at 16."""
    return min(16, max(1, dim // 4))


def _subspace_slices(dim: int, m: int) -> list[np.ndarray]:
    """Index arrays of the ``m`` (near-)even subspaces of ``dim``."""
    return [s for s in np.array_split(np.arange(dim), m)]


def _train_codebook(
    points: np.ndarray, ksub: int, rng: np.random.Generator
) -> np.ndarray:
    """Euclidean k-means codebook over one subspace's residual sample."""
    n = len(points)
    ksub = min(ksub, n)
    centers = points[np.sort(rng.choice(n, ksub, replace=False))].astype(
        np.float32
    )
    for _ in range(_PQ_KMEANS_ITERS):
        # argmin ||p - c||^2 == argmax p.c - ||c||^2 / 2
        bias = 0.5 * np.einsum("kd,kd->k", centers, centers)
        assign = np.argmax(points @ centers.T - bias, axis=1)
        order = np.argsort(assign, kind="stable")
        sorted_assign = assign[order]
        bounds = np.flatnonzero(np.r_[True, np.diff(sorted_assign) != 0])
        sums = np.add.reduceat(points[order].astype(np.float64), bounds, axis=0)
        counts = np.diff(np.r_[bounds, n])
        new = np.zeros_like(centers, dtype=np.float64)
        new[sorted_assign[bounds]] = sums / counts[:, None]
        live = np.zeros(ksub, dtype=bool)
        live[sorted_assign[bounds]] = True
        if not live.all():
            reseed = rng.choice(n, int((~live).sum()), replace=False)
            new[~live] = points[reseed]
        centers = new.astype(np.float32)
    return centers


class IVFPQIndex(NeighborIndex):
    """Inverted-file index with product-quantized residual scoring.

    Construct through :meth:`build` (trains quantizer + codebooks) or
    :meth:`updated` (evolves an existing one); the bare constructor
    wires pre-computed parts (store loads).

    Attributes:
        centroids: coarse quantizer, shape (nlist, dim) float32.
        assign: list id per row, shape (n,).
        codes: PQ codes, shape (n, m) uint8.
        codebooks: zero-padded codebook tensor, shape (m, ksub, maxd)
            float32 — subspace ``j`` uses only its first ``subdim_j``
            columns; the zero padding makes the ADC lookup-table einsum
            uniform across uneven subspaces.
    """

    def __init__(
        self,
        units: np.ndarray,
        spec: AnnSpec,
        centroids: np.ndarray,
        assign: np.ndarray,
        codes: np.ndarray,
        codebooks: np.ndarray,
        units32: np.ndarray | None = None,
    ) -> None:
        self.units = np.asarray(units, dtype=np.float64)
        self.spec = spec
        self.centroids = np.asarray(centroids, dtype=np.float32)
        self.assign = np.asarray(assign, dtype=np.int64)
        self.codes = np.asarray(codes, dtype=np.uint8)
        self.codebooks = np.asarray(codebooks, dtype=np.float32)
        if len(self.assign) != len(self.units):
            raise ValueError("assignments and units must align")
        if self.codes.shape != (len(self.units), len(self.codebooks)):
            raise ValueError("codes must be (n, m)")
        self.nlist = len(self.centroids)
        self.m = len(self.codebooks)
        self.units32 = (
            units32 if units32 is not None else self.units.astype(np.float32)
        )
        dim = self.units.shape[1]
        self.subspaces = _subspace_slices(dim, self.m)
        self.members = np.argsort(self.assign, kind="stable")
        counts = np.bincount(self.assign, minlength=self.nlist)
        self.offsets = np.concatenate(([0], np.cumsum(counts)))
        #: recall@k measured by the most recent search's audit.
        self.last_recall: float | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, units: np.ndarray, spec: AnnSpec, workers: int = 1
    ) -> "IVFPQIndex":
        """Train quantizer + codebooks and encode every row."""
        units = np.asarray(units, dtype=np.float64)
        n, dim = units.shape if units.ndim == 2 else (len(units), 0)
        if n == 0:
            raise ValueError("cannot build an index over zero vectors")
        nlist = min(n, spec.nlist or max(1, int(round(math.sqrt(n)))))
        m = min(spec.pq_m or default_pq_m(dim), dim)
        ksub = 1 << spec.pq_bits
        units32 = units.astype(np.float32)
        with obs.span("ann.build", n=n, nlist=nlist, backend="ivfpq", pq_m=m):
            centroids = _train_centroids(units32, nlist, spec.seed)
            assign = _nearest_centroid(units32, centroids)
            codebooks = cls._train_codebooks(
                units32, centroids, assign, m, ksub, dim, spec.seed
            )
            codes = cls._encode(units32, centroids, assign, codebooks, dim)
        return cls(
            units, spec, centroids, assign, codes, codebooks, units32=units32
        )

    @staticmethod
    def _train_codebooks(
        units32: np.ndarray,
        centroids: np.ndarray,
        assign: np.ndarray,
        m: int,
        ksub: int,
        dim: int,
        seed: int,
    ) -> np.ndarray:
        """Per-subspace codebooks over a seeded residual sample."""
        n = len(units32)
        rng = np.random.default_rng([seed, 17])
        sample_size = min(n, max(4096, 64 * ksub))
        if sample_size < n:
            rows = np.sort(rng.choice(n, sample_size, replace=False))
        else:
            rows = np.arange(n)
        residuals = units32[rows] - centroids[assign[rows]]
        subspaces = _subspace_slices(dim, m)
        maxd = max(len(s) for s in subspaces)
        actual_ksub = min(ksub, len(rows))
        codebooks = np.zeros((m, actual_ksub, maxd), dtype=np.float32)
        for j, sub in enumerate(subspaces):
            codebooks[j, :, : len(sub)] = _train_codebook(
                residuals[:, sub], actual_ksub, rng
            )
        return codebooks

    @staticmethod
    def _encode(
        units32: np.ndarray,
        centroids: np.ndarray,
        assign: np.ndarray,
        codebooks: np.ndarray,
        dim: int,
    ) -> np.ndarray:
        """Nearest-codeword codes for every row, chunked for memory."""
        n = len(units32)
        m, ksub, _ = codebooks.shape
        subspaces = _subspace_slices(dim, m)
        codes = np.empty((n, m), dtype=np.uint8)
        step = max(1024, _SCORE_BUDGET_BYTES // max(1, 4 * ksub))
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            residual = units32[lo:hi] - centroids[assign[lo:hi]]
            for j, sub in enumerate(subspaces):
                cb = codebooks[j, :, : len(sub)]
                bias = 0.5 * np.einsum("kd,kd->k", cb, cb)
                codes[lo:hi, j] = np.argmax(
                    residual[:, sub] @ cb.T - bias, axis=1
                )
        return codes

    def updated(
        self,
        units: np.ndarray,
        prior_rows: np.ndarray,
        workers: int = 1,
        retrain_threshold: float = RETRAIN_IMBALANCE,
    ) -> "IVFPQIndex":
        """Index for the next model generation, reusing this quantizer.

        Retained rows keep their list; fresh rows join their nearest
        list; every row is **re-encoded** against the retained
        codebooks (warm refits move vectors, so stale codes would decay
        ADC quality even where the list layout is still fine).  The
        full quantizer + codebooks retrain only when list imbalance
        crosses ``retrain_threshold`` — the same evolution contract as
        :meth:`repro.ann.ivf.IVFIndex.updated`, guarded by the same
        recall audit and health monitor.
        """
        units = np.asarray(units, dtype=np.float64)
        prior_rows = np.asarray(prior_rows, dtype=np.int64)
        if len(prior_rows) != len(units):
            raise ValueError("prior_rows and units must align")
        n = len(units)
        if n == 0:
            raise ValueError("cannot build an index over zero vectors")
        units32 = units.astype(np.float32)
        assign = np.empty(n, dtype=np.int64)
        kept = prior_rows >= 0
        assign[kept] = self.assign[prior_rows[kept]]
        if (~kept).any():
            assign[~kept] = _nearest_centroid(units32[~kept], self.centroids)
        counts = np.bincount(assign, minlength=self.nlist)
        imbalance = float(counts.max()) / max(n / self.nlist, 1e-9)
        if imbalance > retrain_threshold:
            obs.add("ann.retrains")
            return IVFPQIndex.build(units, self.spec, workers=workers)
        codes = self._encode(
            units32, self.centroids, assign, self.codebooks, units.shape[1]
        )
        return IVFPQIndex(
            units,
            self.spec,
            self.centroids,
            assign,
            codes,
            self.codebooks,
            units32=units32,
        )

    # -- search --------------------------------------------------------

    def search(
        self,
        query_rows: np.ndarray,
        k: int,
        exclude_self: bool = True,
        workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = check_query(len(self.units), query_rows, k, exclude_self)
        q = len(rows)
        neighbors = np.empty((q, k), dtype=np.int64)
        sims = np.empty((q, k))
        ksub = self.codebooks.shape[1]
        list_sizes = self.offsets[1:] - self.offsets[:-1]
        max_list = int(list_sizes.max()) if self.nlist else 1
        # Chunk so the per-chunk LUT (c x m x ksub f32) and the widest
        # per-list ADC block both stay inside the score budget.
        widest = max(self.nlist, max_list, self.m * ksub, 1)
        step = max(64, min(4096, _SCORE_BUDGET_BYTES // (4 * widest)))
        chunks = [(lo, min(lo + step, q)) for lo in range(0, q, step)]

        def search_chunk(bounds: tuple[int, int]) -> tuple:
            lo, hi = bounds
            nb, s64, chunk_stats = self._search_chunk(rows[lo:hi], k, exclude_self)
            return lo, hi, nb, s64, chunk_stats

        n = len(self.units)
        rec = obs.current()
        t0 = time.perf_counter() if rec.enabled else 0.0
        with obs.span("knn.search", k=k, queries=q, backend="ivfpq") as sp:
            obs.add("knn.queries", q)
            if workers == 1 or len(chunks) <= 1:
                results = [search_chunk(bounds) for bounds in chunks]
            else:
                with WorkerPool(workers) as pool:
                    results = pool.map(search_chunk, chunks)
            stats = []
            for lo, hi, nb, s64, chunk_stats in results:
                neighbors[lo:hi] = nb
                sims[lo:hi] = s64
                stats.append(chunk_stats)
            probes = sum(s["probes"] for s in stats)
            scored = sum(s["scored"] for s in stats)
            rescored = sum(s["rescored"] for s in stats)
            fallbacks = sum(s["fallbacks"] for s in stats)
            computed = q * self.nlist + scored + rescored + fallbacks * n
            obs.add("knn.distance_computations", computed)
            obs.add("ann.probes", probes)
            obs.add("ann.candidates_scored", scored)
            sp.set(items=computed, items_unit="dists")
            obs.observe_many("knn.neighbor_distance", 1.0 - sims.ravel())
            if rec.enabled:
                obs.observe("knn.search_seconds", time.perf_counter() - t0)
            self._audit(rows, neighbors, k, exclude_self)
        return neighbors, sims

    def _lookup_tables(self, q32: np.ndarray) -> np.ndarray:
        """ADC tables ``q · codeword`` per (query, subspace, codeword).

        List-independent: built once per chunk and reused for every
        probed list.  Queries are zero-padded into the codebook tensor's
        ``maxd`` so one einsum covers uneven subspaces.
        """
        c = len(q32)
        maxd = self.codebooks.shape[2]
        padded = np.zeros((c, self.m, maxd), dtype=np.float32)
        for j, sub in enumerate(self.subspaces):
            padded[:, j, : len(sub)] = q32[:, sub]
        return np.einsum("cjd,jkd->cjk", padded, self.codebooks)

    def _search_chunk(
        self,
        rows: np.ndarray,
        k: int,
        exclude_self: bool,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, int]]:
        """Search one query chunk; returns (neighbors, sims, stats)."""
        c = len(rows)
        q32 = self.units32[rows]
        coarse = q32 @ self.centroids.T  # (c, nlist) float32
        lut = self._lookup_tables(q32)  # (c, m, ksub) float32
        p = min(self.spec.nprobe, self.nlist)
        if p < self.nlist:
            probe_lists = np.argpartition(coarse, -p, axis=1)[:, -p:]
        else:
            probe_lists = np.broadcast_to(np.arange(self.nlist), (c, self.nlist))
        shortlist = max(_MIN_SHORTLIST, _SHORTLIST_MULT * k)
        # Group (query, list) pairs by list, as in the IVF backend.
        flat_q = np.repeat(np.arange(c), p)
        flat_l = probe_lists.ravel()
        order = np.argsort(flat_l, kind="stable")
        fq, fl = flat_q[order], flat_l[order]
        group_starts = np.flatnonzero(np.r_[True, np.diff(fl) != 0])
        group_ends = np.r_[group_starts[1:], len(fl)]
        cand_q: list[np.ndarray] = []
        cand_m: list[np.ndarray] = []
        cand_s: list[np.ndarray] = []
        scored = 0
        for start, end in zip(group_starts, group_ends):
            list_id = fl[start]
            m0, m1 = self.offsets[list_id], self.offsets[list_id + 1]
            members = self.members[m0:m1]
            if len(members) == 0:
                continue
            qs = fq[start:end]
            member_codes = self.codes[members]  # (|list|, m)
            lut_q = lut[qs]  # (|qs|, m, ksub)
            scores = np.broadcast_to(
                coarse[qs, list_id][:, None], (len(qs), len(members))
            ).copy()
            for j in range(self.m):
                scores += lut_q[:, j, :][:, member_codes[:, j]]
            scored += scores.size
            if exclude_self:
                scores[members[None, :] == rows[qs][:, None]] = -np.inf
            kk = min(shortlist, scores.shape[1])
            if kk < scores.shape[1]:
                top = np.argpartition(scores, -kk, axis=1)[:, -kk:]
                cand_q.append(np.repeat(qs, kk))
                cand_m.append(members[top].ravel())
                cand_s.append(np.take_along_axis(scores, top, axis=1).ravel())
            else:
                cand_q.append(np.repeat(qs, scores.shape[1]))
                cand_m.append(np.tile(members, len(qs)))
                cand_s.append(scores.ravel())
        if cand_q:
            merged_q = np.concatenate(cand_q)
            merged_m = np.concatenate(cand_m)
            merged_s = np.concatenate(cand_s)
        else:
            merged_q = np.empty(0, dtype=np.int64)
            merged_m = np.empty(0, dtype=np.int64)
            merged_s = np.empty(0, dtype=np.float32)
        finite = np.isfinite(merged_s)
        merged_q, merged_m, merged_s = (
            merged_q[finite],
            merged_m[finite],
            merged_s[finite],
        )
        # Global per-query top-shortlist over the merged ADC scores.
        sel = np.lexsort((-merged_s, merged_q))
        merged_q, merged_m = merged_q[sel], merged_m[sel]
        counts = np.bincount(merged_q, minlength=c)
        seg_starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        ranks = np.arange(len(merged_q)) - np.repeat(seg_starts, counts)
        keep = ranks < shortlist
        short_q, short_m = merged_q[keep], merged_m[keep]
        # Exact float64 rescore of the shortlist: similarities returned
        # to callers are true cosines, and ranking inside the shortlist
        # is immune to quantization error.
        s_exact = np.einsum(
            "ij,ij->i", self.units[rows[short_q]], self.units[short_m]
        )
        rescored = len(s_exact)
        sel2 = np.lexsort((-s_exact, short_q))
        short_q, short_m, s_exact = short_q[sel2], short_m[sel2], s_exact[sel2]
        counts2 = np.bincount(short_q, minlength=c)
        seg2 = np.concatenate(([0], np.cumsum(counts2[:-1])))
        ranks2 = np.arange(len(short_q)) - np.repeat(seg2, counts2)
        take = ranks2 < k
        nb = np.full((c, k), -1, dtype=np.int64)
        s64 = np.full((c, k), -np.inf)
        nb[short_q[take], ranks2[take]] = short_m[take]
        s64[short_q[take], ranks2[take]] = s_exact[take]
        short = counts < k
        fallbacks = int(short.sum())
        if fallbacks:
            fb_nb, fb_s = exact_topk(self.units, rows[short], k, exclude_self)
            nb[short] = fb_nb
            s64[short] = fb_s
        return nb, s64, {
            "probes": c * p,
            "scored": scored,
            "rescored": rescored,
            "fallbacks": fallbacks,
        }

    # -- self-audit ----------------------------------------------------

    def _audit(
        self,
        rows: np.ndarray,
        neighbors: np.ndarray,
        k: int,
        exclude_self: bool,
    ) -> None:
        """Exact-rescore a seeded query sample; record recall@k."""
        recall = audit.audit_recall(
            self.units,
            rows,
            neighbors,
            k,
            exclude_self,
            self.spec.recall_sample,
            self.spec.seed,
        )
        if recall is not None:
            self.last_recall = recall
