"""Brute-force cosine k-NN: the exact backend and shared top-k core.

This is the historical ``knn_search`` algorithm moved behind the
:class:`~repro.ann.base.NeighborIndex` interface.  The only change from
the fixed ``_CHUNK_ROWS = 1024`` era is memory-budgeted chunk sizing:
the per-chunk score buffer is ``chunk x N`` float64, which blows RSS at
large N, so the chunk shrinks once N crosses the budget.  Each query
row is scored independently, so chunk boundaries (like ``workers``)
cannot change any result — outputs stay bitwise identical.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.ann.base import NeighborIndex, check_query
from repro.parallel.pool import WorkerPool

#: Per-chunk score-buffer budget (bytes).  64 MiB keeps the historical
#: 1024-row chunks for every N <= 8192 while bounding RSS at large N.
_CHUNK_BUDGET_BYTES = 64 << 20
_MIN_CHUNK_ROWS = 16
_MAX_CHUNK_ROWS = 1024


def score_chunk_rows(n: int, itemsize: int = 8, concurrency: int = 1) -> int:
    """Query rows per chunk so the score buffers stay within budget.

    ``concurrency`` is the number of chunks that can be resident at
    once (worker count): the budget bounds the *total* score-buffer
    footprint, not just one chunk's, so a huge query fan-out across
    many workers cannot multiply past the 64 MiB ceiling.  The floor of
    :data:`_MIN_CHUNK_ROWS` rows is kept even when it overshoots — a
    narrower chunk would stop amortising the ``units.T`` access.
    """
    if n <= 0:
        return _MAX_CHUNK_ROWS
    by_budget = _CHUNK_BUDGET_BYTES // (max(1, concurrency) * n * itemsize)
    return int(min(_MAX_CHUNK_ROWS, max(_MIN_CHUNK_ROWS, by_budget)))


def exact_topk(
    units: np.ndarray,
    query_rows: np.ndarray,
    k: int,
    exclude_self: bool = True,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Uninstrumented exact top-k; the core of :class:`ExactIndex`.

    Also serves the IVF backends as recall-audit oracle and as fallback
    for queries whose probed lists held fewer than ``k`` candidates,
    where it must not double-count ``knn.*`` metrics.
    """
    n = len(units)
    query_rows = check_query(n, query_rows, k, exclude_self)
    neighbors = np.empty((len(query_rows), k), dtype=np.int64)
    sims = np.empty((len(query_rows), k))

    def search_chunk(bounds: tuple[int, int]):
        # Chunks return their slices instead of writing shared outputs:
        # process-backend workers see copy-on-write memory, so in-place
        # writes would be lost.  The parent assembles — same result,
        # bit-identical, under both pool backends.
        lo, hi = bounds
        chunk = query_rows[lo:hi]
        scores = units[chunk] @ units.T  # (chunk, N)
        if exclude_self:
            scores[np.arange(len(chunk)), chunk] = -np.inf
        top = np.argpartition(scores, -k, axis=1)[:, -k:]
        top_scores = np.take_along_axis(scores, top, axis=1)
        order = np.argsort(top_scores, axis=1)[:, ::-1]
        return (
            lo,
            hi,
            np.take_along_axis(top, order, axis=1),
            np.take_along_axis(top_scores, order, axis=1),
        )

    pool = WorkerPool(workers) if workers != 1 else None
    concurrency = pool.workers if pool is not None else 1
    step = score_chunk_rows(n, concurrency=concurrency)
    chunks = [
        (lo, min(lo + step, len(query_rows)))
        for lo in range(0, len(query_rows), step)
    ]
    if pool is None or len(chunks) <= 1:
        results = [search_chunk(bounds) for bounds in chunks]
    else:
        with pool:
            results = pool.map(search_chunk, chunks)
    for lo, hi, chunk_neighbors, chunk_sims in results:
        neighbors[lo:hi] = chunk_neighbors
        sims[lo:hi] = chunk_sims
    return neighbors, sims


class ExactIndex(NeighborIndex):
    """Exhaustive cosine search — every query scores every row.

    Building is free (the index is the matrix), searching is
    O(Q x N x V).  This backend defines correctness: its results are
    bit-identical to the pre-ANN ``knn_search`` for every ``workers``
    value and every N.
    """

    def __init__(self, units: np.ndarray) -> None:
        self.units = np.asarray(units, dtype=np.float64)

    def search(
        self,
        query_rows: np.ndarray,
        k: int,
        exclude_self: bool = True,
        workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        query_rows = check_query(len(self.units), query_rows, k, exclude_self)
        n = len(self.units)
        rec = obs.current()
        t0 = time.perf_counter() if rec.enabled else 0.0
        with obs.span("knn.search", k=k, queries=len(query_rows)) as sp:
            obs.add("knn.queries", len(query_rows))
            obs.add("knn.distance_computations", len(query_rows) * n)
            sp.set(items=len(query_rows) * n, items_unit="dists")
            neighbors, sims = exact_topk(
                self.units, query_rows, k, exclude_self, workers=workers
            )
            obs.observe_many("knn.neighbor_distance", 1.0 - sims.ravel())
            if rec.enabled:
                obs.observe("knn.search_seconds", time.perf_counter() - t0)
        return neighbors, sims
