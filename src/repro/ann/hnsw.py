"""Hierarchical navigable small-world (HNSW) cosine k-NN, pure numpy.

The index is a Malkov-Yashunin-style layered proximity graph.  Every
node draws a geometric level (``floor(-ln(U) / ln(M))``); level 0 holds
all nodes with up to ``2M`` links each, higher levels hold a
geometrically thinning subset with up to ``M`` links.  A query greedily
descends the upper layers to a good global entry point, then runs an
``ef_search``-wide best-first beam over the layer-0 graph — so search
cost tracks the (logarithmic) graph diameter and the beam width, not
N, unlike the IVF backends' linear probed-list scans.

Staying pure numpy forces a few deliberate departures from the
textbook sequential algorithm; each is an implementation strategy, not
a semantic change, and the recall self-audit measures whatever
approximation remains:

* **Cluster-local node ids.**  Graph nodes live in an *internal* id
  space ordered by a coarse spherical k-means over the vectors, with
  the cells themselves laid out along a greedy nearest-centroid tour
  (:attr:`HNSWIndex.node_row` maps internal id -> embedding row).  A
  query's neighbourhood therefore occupies a short *contiguous* run
  of ids, which turns beam seeding into dense BLAS work and keeps the
  visited set cache-resident — numpy fancy-indexing is memory-bound,
  and this relabeling is worth an order of magnitude over the naive
  layout.  The clustering only relabels: results do not depend on
  its quality.
* **Lockstep beams.**  Queries are processed in chunks that advance
  *together*: each iteration expands the best few unexpanded
  candidates of every still-active query at once and scores all
  gathered neighbours with one batched float32 einsum.  Termination
  stays per query and conservative (a query only retires when its
  best unexpanded candidate cannot improve its beam), so recall never
  drops below one-at-a-time expansion.
* **Window-scan seeding.**  Every consumer in this codebase queries
  *rows of the index* (the LOO classifier, the k'-NN graph, drift
  churn, the serve read path), so each beam is seeded by exhaustively
  scoring the query's own id window — :data:`_SCAN_WINDOW` contiguous
  rows around its node, one shared BLAS matmul per aligned window —
  alongside the global entry found by the upper-layer descent.  A
  contiguous window row costs a fraction of one gathered graph
  candidate, and the beam then only chases what the window missed
  (clusters split across distant cells, drifted warm-update vectors)
  through graph edges.  The descent walks the geometrically small
  levels >= 2; level-1 refinement is subsumed by the layer-0 beam
  (every level-1 node is a layer-0 node), which the scan has already
  placed in the right region.
* **Heuristic neighbour selection.**  Forward links are chosen with
  the distance-based heuristic (Malkov-Yashunin Alg. 4) — candidates
  closer to an already-selected neighbour than to the new node are
  skipped, spreading edges across directions — then topped up with
  the nearest pruned candidates (the ``keepPrunedConnections``
  variant), which keeps dense same-cluster neighbourhoods reachable.
* **f32 traversal, f64 answers.**  Graph traversal scores in float32;
  the final candidate set is rescored in float64 against the original
  vectors, so returned similarities are exact for the neighbours
  found and directly comparable with the exact backend's.

:meth:`HNSWIndex.updated` supports warm daily retrains in O(new):
internal ids are *stable* across generations, so retained rows keep
their links (their vectors moved slightly — the recall audit and the
``ann_recall`` health monitor guard that, exactly as they guard IVF's
kept list assignments), fresh rows are appended and inserted
incrementally, and evicted rows become *tombstones*: their last live
vector stays navigable inside the graph but is filtered from every
result.  When total nodes exceed live rows by the occupancy threshold
the graph is rebuilt from scratch (mirroring IVF's imbalance retrain)
and ``ann.retrains`` is counted.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import obs
from repro.ann import audit
from repro.ann.base import AnnSpec, NeighborIndex, check_query
from repro.ann.exact import exact_topk
from repro.ann.ivf import _nearest_centroid, _train_centroids
from repro.parallel.pool import WorkerPool

#: Temp-buffer budget (bytes) for exact candidate matmuls and
#: candidate-vector gathers (same role as the IVF score budget).
_SCORE_BUDGET_BYTES = 16 << 20

#: Budget (bytes) for the per-chunk ``queries x nodes`` visited bitmap
#: of the layer-0 beam; bounds query chunk sizes.
_VISITED_BUDGET_BYTES = 256 << 20

#: Beam candidates expanded per lockstep iteration and query.  More
#: than 1 trades some over-expansion (candidates a strict best-first
#: order would have pruned) for far fewer synchronised iterations —
#: and so far less interpreter overhead.
_EXPAND_WIDTH = 8

#: Entry seeds per query when inserting into a partially built layer 0
#: (searches use the upper-layer descent plus warm self-seeds instead).
_PROBE_SEEDS = 4
_PROBE_SAMPLE = 512

#: Hard cap on drawn levels (reached with probability ~M^-24).
_LEVEL_CAP = 24

#: Rows of the id space exhaustively scanned around each query to
#: seed its beam (node ids are cluster-sorted, so this window holds
#: the query's own neighbourhood), and the alignment of window starts
#: (queries sharing an aligned window share one contiguous matmul).
_SCAN_WINDOW = 2560
_SCAN_BLOCK = 512

#: Greedy-descent hop cap per upper level: convergence typically takes
#: a handful of hops, and a straggler pinned between near-equal upper
#: nodes costs a full lockstep round each extra hop.
_DESCENT_CAP = 8

#: Layer-0 insertion chunk cap: one chunk is one lockstep beam batch.
_MAX_INSERT_CHUNK = 4096

#: Default tombstone occupancy ratio — total graph nodes over live
#: rows — above which :meth:`HNSWIndex.updated` rebuilds the graph
#: instead of evolving it.  4.0 means the graph is rebuilt once
#: tombstones outnumber live rows three to one, the same trigger shape
#: as IVF's list-imbalance retrain.
RETRAIN_OCCUPANCY = 4.0


def _geometric_levels(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """Draw a geometric level per node: P(level >= l) = M^-l."""
    u = np.maximum(rng.random(n), 1e-300)
    levels = np.floor(-np.log(u) / math.log(m)).astype(np.int64)
    return np.minimum(levels, _LEVEL_CAP)


def _centroid_tour(centroids: np.ndarray) -> np.ndarray:
    """Greedy nearest-neighbour tour position of every centroid.

    Orders the k-means cells so that *adjacent cell ids are spatially
    adjacent cells*: the tour starts at cell 0 and repeatedly hops to
    the nearest unvisited centroid.  Without it, two neighbouring
    regions of the sphere could land at opposite ends of the id space
    and every cross-cell neighbour would fall outside the query's scan
    window.  Returns ``position[cell]`` in the tour.
    """
    c = len(centroids)
    sims = centroids @ centroids.T
    position = np.empty(c, dtype=np.int64)
    cur = 0
    for step in range(c):
        position[cur] = step
        sims[:, cur] = -np.inf
        if step < c - 1:
            cur = int(np.argmax(sims[cur]))
    return position


def _exact_candidates(
    vecs32: np.ndarray, cand: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-``cand`` neighbours of every row among all rows (no self).

    Returns ``(ids, sims)`` of shape (C, cand) in local positions,
    -1 / -inf padded, sorted by decreasing similarity.  Used for the
    geometrically small upper layers and the layer-0 seed block.
    """
    c = len(vecs32)
    cand = max(0, min(cand, c - 1))
    ids = np.full((c, cand), -1, dtype=np.int64)
    sims = np.full((c, cand), -np.inf, dtype=np.float32)
    if cand == 0:
        return ids, sims
    step = max(16, _SCORE_BUDGET_BYTES // max(1, 4 * c))
    for lo in range(0, c, step):
        hi = min(lo + step, c)
        scores = vecs32[lo:hi] @ vecs32.T
        scores[np.arange(hi - lo), np.arange(lo, hi)] = -np.inf
        top = np.argpartition(scores, -cand, axis=1)[:, -cand:]
        top_scores = np.take_along_axis(scores, top, axis=1)
        order = np.argsort(-top_scores, axis=1, kind="stable")
        ids[lo:hi] = np.take_along_axis(top, order, axis=1)
        sims[lo:hi] = np.take_along_axis(top_scores, order, axis=1)
    return ids, sims


def _select_links(
    vectors32: np.ndarray,
    cand_ids: np.ndarray,
    cand_sims: np.ndarray,
    m: int,
    fill: int = 0,
) -> np.ndarray:
    """Neighbour selection: diversity heuristic plus pruned top-up.

    First applies the distance-based heuristic, batched across
    queries: repeatedly keep the closest remaining candidate, then
    discard every candidate closer to an already-kept neighbour than
    to the query, so the ``m`` kept links fan out across directions
    instead of piling into one cluster.  With ``fill > 0`` the result
    is then topped up to ``m + fill`` links with the highest-similarity
    *pruned* candidates (``keepPrunedConnections``): on corpora with
    dense near-duplicate clumps the heuristic alone keeps a single
    link into a clump, which starves intra-clump recall.

    ``cand_ids`` indexes ``vectors32``; -1 pads.  Returns
    (B, m + fill) selected ids, -1 padded, duplicate-free per row.
    """
    b, c = cand_ids.shape
    selected = np.full((b, m + fill), -1, dtype=np.int64)
    if c == 0 or b == 0:
        return selected
    dim = vectors32.shape[1]
    step = max(16, _SCORE_BUDGET_BYTES // max(1, 4 * c * dim))
    for lo in range(0, b, step):
        hi = min(lo + step, b)
        ids = cand_ids[lo:hi]
        alive = ids >= 0
        sims = np.where(alive, cand_sims[lo:hi], -np.inf).astype(np.float32)
        pruned = np.full_like(sims, -np.inf)
        cand_vecs = vectors32[ids.clip(min=0)]  # (chunk, c, V)
        rows = np.arange(hi - lo)
        for j in range(m):
            best = np.argmax(np.where(alive, sims, -np.inf), axis=1)
            ok = alive[rows, best]
            if not ok.any():
                break
            pick = ids[rows, best]
            selected[lo:hi][ok, j] = pick[ok]
            alive[rows, best] = False
            dom = np.einsum(
                "bcv,bv->bc", cand_vecs, vectors32[pick.clip(min=0)]
            )
            # Candidates closer to the picked neighbour than to the
            # query are pruned (no-op for rows with an invalid pick —
            # they have no alive candidates left).
            cut = alive & (dom > sims)
            pruned[cut] = sims[cut]
            alive &= ~cut
        if fill:
            order = np.argsort(-pruned, axis=1)[:, :fill]
            fills = np.where(
                np.take_along_axis(pruned, order, axis=1) > -np.inf,
                np.take_along_axis(ids, order, axis=1),
                -1,
            )
            selected[lo:hi, m : m + fill] = fills
    return selected


class HNSWIndex(NeighborIndex):
    """Layered small-world graph over row-normalised vectors.

    Construct through :meth:`build` (grows the graph) or
    :meth:`updated` (evolves an existing graph); the bare constructor
    wires pre-computed parts (store loads).

    Attributes:
        units: the indexed float64 matrix, original row order.
        node_row: internal node id -> embedding row; -1 marks a
            tombstone (an evicted row still navigable in the graph but
            filtered from every result).
        levels: drawn level per internal node.
        links0: (T, 2M) layer-0 adjacency, -1 padded, internal ids.
        upper_nodes / upper_links: per level >= 1, the member node ids
            and their (len(members), M) adjacency.
        entry: internal id the upper-layer descent starts from.
    """

    def __init__(
        self,
        units: np.ndarray,
        spec: AnnSpec,
        node_row: np.ndarray,
        levels: np.ndarray,
        links0: np.ndarray,
        upper_nodes: list[np.ndarray],
        upper_links: list[np.ndarray],
        entry: int,
        ghost_vecs: np.ndarray | None = None,
        units32: np.ndarray | None = None,
    ) -> None:
        self.units = np.asarray(units, dtype=np.float64)
        self.spec = spec
        self.node_row = np.asarray(node_row, dtype=np.int64)
        self.levels = np.asarray(levels, dtype=np.int64)
        self.links0 = np.asarray(links0, dtype=np.int64)
        self.upper_nodes = [np.asarray(x, dtype=np.int64) for x in upper_nodes]
        self.upper_links = [np.asarray(x, dtype=np.int64) for x in upper_links]
        self.entry = int(entry)
        n, dim = self.units.shape
        t = len(self.node_row)
        if len(self.levels) != t or len(self.links0) != t:
            raise ValueError("graph arrays and node_row must align")
        self.units32 = (
            units32 if units32 is not None else self.units.astype(np.float32)
        )
        live = self.node_row >= 0
        if int(live.sum()) != n:
            raise ValueError("node_row must cover every row exactly once")
        self.nav32 = np.empty((t, dim), dtype=np.float32)
        self.nav32[live] = self.units32[self.node_row[live]]
        n_ghost = t - n
        if n_ghost:
            if ghost_vecs is None or len(ghost_vecs) != n_ghost:
                raise ValueError("ghost_vecs must cover every tombstone")
            self.nav32[~live] = np.asarray(ghost_vecs, dtype=np.float32)
        self.row_node = np.empty(n, dtype=np.int64)
        self.row_node[self.node_row[live]] = np.flatnonzero(live)
        self._rebuild_upper_pos()
        self._spans: tuple[np.ndarray, np.ndarray] | None = None
        #: recall@k measured by the most recent search's audit.
        self.last_recall: float | None = None

    def _link_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-node (min, max) layer-0 link id, cached between
        searches and invalidated by link mutation.  A node whose span
        sits inside a query's scan window has nothing new to offer
        that query's beam.  Unlinked nodes get an empty span
        (lo = int64 max, hi = -1), which never looks useful."""
        if self._spans is None:
            valid = self.links0 >= 0
            lo = np.where(
                valid, self.links0, np.iinfo(np.int64).max
            ).min(axis=1)
            hi = np.where(valid, self.links0, -1).max(axis=1)
            self._spans = (lo, hi)
        return self._spans

    @property
    def ghost_vecs(self) -> np.ndarray:
        """Frozen f32 vectors of the tombstoned nodes, internal order."""
        return self.nav32[self.node_row < 0]

    def _rebuild_upper_pos(self) -> None:
        self.max_level = len(self.upper_nodes)
        t = len(self.node_row)
        self._upper_pos = []
        for nodes in self.upper_nodes:
            pos = np.full(t, -1, dtype=np.int64)
            pos[nodes] = np.arange(len(nodes))
            self._upper_pos.append(pos)

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, units: np.ndarray, spec: AnnSpec, workers: int = 1
    ) -> "HNSWIndex":
        """Grow the layered graph over ``units`` from scratch."""
        units = np.asarray(units, dtype=np.float64)
        n = len(units)
        if n == 0:
            raise ValueError("cannot build an index over zero vectors")
        m = spec.hnsw_m
        t0 = time.perf_counter()
        with obs.span(
            "ann.build", n=n, backend="hnsw", m=m, ef_build=spec.hnsw_ef_build
        ):
            units32 = units.astype(np.float32)
            # Cluster-local internal ids: order nodes by a coarse
            # spherical k-means so a beam's gathers and visited-bitmap
            # writes stay within a few contiguous pages (see module
            # docstring).  The clustering only relabels — graph
            # topology and results do not depend on its quality.
            nlist = max(1, int(round(math.sqrt(n))))
            centroids = _train_centroids(units32, nlist, spec.seed)
            tour = _centroid_tour(centroids)
            node_row = np.argsort(
                tour[_nearest_centroid(units32, centroids)], kind="stable"
            )
            rng = np.random.default_rng(spec.seed)
            levels = _geometric_levels(n, m, rng)
            index = cls._grow(units, spec, node_row, levels, units32)
        obs.observe("ann.graph_build_seconds", time.perf_counter() - t0)
        return index

    @classmethod
    def _grow(
        cls,
        units: np.ndarray,
        spec: AnnSpec,
        node_row: np.ndarray,
        levels: np.ndarray,
        units32: np.ndarray,
    ) -> "HNSWIndex":
        n = len(units)
        m = spec.hnsw_m
        nav32 = units32[node_row]
        # Upper layers are geometrically small (about n / M^level
        # nodes), so they are built *exactly*: full top-candidate
        # lists, then the selection heuristic — better navigation than
        # incrementally grown layers, at negligible cost.
        max_level = int(levels.max())
        upper_nodes: list[np.ndarray] = []
        upper_links: list[np.ndarray] = []
        for level in range(1, max_level + 1):
            nodes = np.flatnonzero(levels >= level)
            cand_ids, cand_sims = _exact_candidates(
                nav32[nodes], min(len(nodes) - 1, 3 * m)
            )
            sel = _select_links(nav32[nodes], cand_ids, cand_sims, m)
            upper_nodes.append(nodes)
            upper_links.append(np.where(sel >= 0, nodes[sel.clip(min=0)], -1))
        links0 = np.full((n, 2 * m), -1, dtype=np.int64)
        # Insert in descending-level order: hub nodes enter the
        # layer-0 graph first, so every later batch can navigate
        # through them.
        order = np.argsort(-levels, kind="stable")
        index = cls(
            units,
            spec,
            node_row,
            levels,
            links0,
            upper_nodes,
            upper_links,
            entry=int(order[0]),
            units32=units32,
        )
        s0 = min(n, max(4 * m, 64))
        seed = order[:s0]
        cand_ids, cand_sims = _exact_candidates(
            nav32[seed], min(s0 - 1, 3 * m)
        )
        sel = _select_links(nav32[seed], cand_ids, cand_sims, m, fill=m // 2)
        index._link_new(seed, np.where(sel >= 0, seed[sel.clip(min=0)], -1))
        pos = s0
        while pos < n:
            chunk = max(64, _VISITED_BUDGET_BYTES // max(1, n))
            take = min(n - pos, max(256, pos), chunk, _MAX_INSERT_CHUNK)
            index._insert_chunk(order[pos : pos + take], order[:pos])
            pos += take
        return index

    def _insert_chunk(
        self, new_ids: np.ndarray, inserted: np.ndarray
    ) -> None:
        """Insert ``new_ids`` into layer 0, searching ``inserted``."""
        m = self.spec.hnsw_m
        q32 = self.nav32[new_ids]
        # A coarse probe over a spread sample of inserted nodes picks
        # the beam entry (the hierarchy is not usable while layer 0 is
        # partially built).
        stride = max(1, len(inserted) // _PROBE_SAMPLE)
        sample = inserted[::stride][:_PROBE_SAMPLE]
        scores = (q32 @ self.nav32[sample].T).astype(np.float32)
        s = min(_PROBE_SEEDS, len(sample))
        top = np.argpartition(scores, -s, axis=1)[:, -s:]
        seeds = sample[top]
        seed_sims = np.take_along_axis(scores, top, axis=1)
        ef = max(self.spec.hnsw_ef_build, m + 1)
        ids, sims, _, _ = self._layer0_beam(q32, seeds, seed_sims, ef)
        sel = _select_links(self.nav32, ids, sims, m, fill=m // 2)
        self._link_new(new_ids, sel)

    def _link_new(self, new_ids: np.ndarray, sel: np.ndarray) -> None:
        """Set forward links of ``new_ids`` and add the reverse edges."""
        self._spans = None
        c = sel.shape[1]
        self.links0[new_ids, :c] = sel
        valid = sel >= 0
        src = np.repeat(new_ids, c)[valid.ravel()]
        dst = sel.ravel()[valid.ravel()]
        if len(dst):
            self._add_reverse(dst, src)

    def _add_reverse(self, dst: np.ndarray, src: np.ndarray) -> None:
        """Insert each ``src`` into ``dst``'s layer-0 list, pruning
        overflow by keeping the ``2M`` highest-similarity links."""
        m0 = self.links0.shape[1]
        sims = np.einsum(
            "ev,ev->e", self.nav32[dst], self.nav32[src]
        ).astype(np.float32)
        # Per-destination top-m0 pre-truncation bounds the padded
        # incoming matrix even if one hub receives a whole chunk.
        order = np.lexsort((-sims, dst))
        dst_s, src_s, sims_s = dst[order], src[order], sims[order]
        starts = np.flatnonzero(np.r_[True, np.diff(dst_s) != 0])
        counts = np.diff(np.r_[starts, len(dst_s)])
        rank = np.arange(len(dst_s)) - np.repeat(starts, counts)
        keep = rank < m0
        dst_s, src_s, sims_s, rank = (
            dst_s[keep],
            src_s[keep],
            sims_s[keep],
            rank[keep],
        )
        starts = np.flatnonzero(np.r_[True, np.diff(dst_s) != 0])
        counts = np.diff(np.r_[starts, len(dst_s)])
        u = dst_s[starts]
        maxc = int(counts.max())
        gidx = np.repeat(np.arange(len(u)), counts)
        inc = np.full((len(u), maxc), -1, dtype=np.int64)
        inc_sims = np.full((len(u), maxc), -np.inf, dtype=np.float32)
        inc[gidx, rank] = src_s
        inc_sims[gidx, rank] = sims_s
        exist = self.links0[u]
        evalid = exist >= 0
        exist_sims = np.where(
            evalid,
            np.einsum(
                "umv,uv->um", self.nav32[exist.clip(min=0)], self.nav32[u]
            ),
            -np.inf,
        ).astype(np.float32)
        cand = np.concatenate([exist, inc], axis=1)
        cand_sims = np.concatenate([exist_sims, inc_sims], axis=1)
        # Drop duplicate ids within a row (an incoming reverse edge may
        # already be a forward link): link rows must stay duplicate-free
        # or beams would double-count a candidate.
        id_order = np.argsort(cand, axis=1, kind="stable")
        cand = np.take_along_axis(cand, id_order, axis=1)
        cand_sims = np.take_along_axis(cand_sims, id_order, axis=1)
        dup = np.zeros_like(cand, dtype=bool)
        dup[:, 1:] = (cand[:, 1:] == cand[:, :-1]) & (cand[:, 1:] >= 0)
        cand[dup] = -1
        cand_sims[dup] = -np.inf
        kept = np.argpartition(cand_sims, -m0, axis=1)[:, -m0:]
        self.links0[u] = np.take_along_axis(cand, kept, axis=1)

    # -- incremental update --------------------------------------------

    def updated(
        self,
        units: np.ndarray,
        prior_rows: np.ndarray,
        workers: int = 1,
        retrain_threshold: float = RETRAIN_OCCUPANCY,
    ) -> "HNSWIndex":
        """Index for the next model generation, reusing this graph.

        Args:
            units: row-normalised vectors of the *new* model.
            prior_rows: for each new row, its row in this index, or -1
                for senders this index has never seen.
            workers: parallelism for a rebuild, if one is triggered.
            retrain_threshold: occupancy ratio — total graph nodes
                over live rows — above which the graph is rebuilt from
                scratch instead of evolved.

        Internal node ids are stable across generations: retained rows
        keep their node (and links) with the refreshed vector, evicted
        rows become tombstones frozen at their last live vector, and
        fresh rows are appended and inserted incrementally — O(new)
        work on a no-eviction day.
        """
        units = np.asarray(units, dtype=np.float64)
        prior_rows = np.asarray(prior_rows, dtype=np.int64)
        if len(prior_rows) != len(units):
            raise ValueError("prior_rows and units must align")
        n = len(units)
        if n == 0:
            raise ValueError("cannot build an index over zero vectors")
        kept = prior_rows >= 0
        fresh = np.flatnonzero(~kept)
        t_old = len(self.node_row)
        if (t_old + len(fresh)) / n > retrain_threshold:
            obs.add("ann.retrains")
            return HNSWIndex.build(units, self.spec, workers=workers)
        node_row = np.full(t_old + len(fresh), -1, dtype=np.int64)
        node_row[self.row_node[prior_rows[kept]]] = np.flatnonzero(kept)
        node_row[t_old:] = fresh
        old_live = self.node_row >= 0
        ghost_vecs = np.ascontiguousarray(
            self.nav32[node_row[: t_old] < 0]
        )
        m = self.spec.hnsw_m
        # Seed on (base seed, population, generation size) so
        # consecutive days draw fresh — but reproducible — levels.
        rng = np.random.default_rng([self.spec.seed, n, t_old])
        levels = np.concatenate(
            [self.levels, _geometric_levels(len(fresh), m, rng)]
        )
        links0 = np.concatenate(
            [
                self.links0,
                np.full((len(fresh), 2 * m), -1, dtype=np.int64),
            ]
        )
        index = HNSWIndex(
            units,
            self.spec,
            node_row,
            levels,
            links0,
            [nodes.copy() for nodes in self.upper_nodes],
            [links.copy() for links in self.upper_links],
            entry=self.entry,
            ghost_vecs=ghost_vecs,
            units32=units.astype(np.float32),
        )
        del old_live
        if len(fresh):
            new_nodes = np.arange(t_old, t_old + len(fresh))
            index._insert_upper(new_nodes)
            prior_nodes = np.arange(t_old)
            chunk = min(
                max(64, _VISITED_BUDGET_BYTES // max(1, len(node_row))),
                _MAX_INSERT_CHUNK,
            )
            for lo in range(0, len(new_nodes), chunk):
                index._insert_chunk(new_nodes[lo : lo + chunk], prior_nodes)
        return index

    def _insert_upper(self, new_nodes: np.ndarray) -> None:
        """Link new nodes into the upper layers they drew (rare:
        ~1/M of fresh nodes reach level 1, 1/M^2 level 2, ...)."""
        m = self.spec.hnsw_m
        climbers = new_nodes[self.levels[new_nodes] >= 1]
        for node in climbers:
            for level in range(1, int(self.levels[node]) + 1):
                if level > self.max_level:
                    self.upper_nodes.append(np.array([node], dtype=np.int64))
                    self.upper_links.append(
                        np.full((1, m), -1, dtype=np.int64)
                    )
                    self.max_level = level
                    self.entry = int(node)
                    continue
                members = self.upper_nodes[level - 1]
                links = self.upper_links[level - 1]
                sims = (self.nav32[members] @ self.nav32[node]).astype(
                    np.float32
                )
                c = min(len(members), 3 * m)
                top = (
                    np.argpartition(sims, -c)[-c:]
                    if c < len(members)
                    else np.arange(len(members))
                )
                sel = _select_links(
                    self.nav32,
                    members[top][None, :],
                    sims[top][None, :],
                    m,
                )[0]
                sel = sel[sel >= 0]
                row = np.full(m, -1, dtype=np.int64)
                row[: len(sel)] = sel
                self.upper_nodes[level - 1] = np.append(members, node)
                self.upper_links[level - 1] = np.vstack([links, row])
                # Reverse edges, top-M pruned by similarity.
                for nbr in sel:
                    pos = int(
                        np.flatnonzero(self.upper_nodes[level - 1] == nbr)[0]
                    )
                    nbr_links = self.upper_links[level - 1][pos]
                    if node in nbr_links:
                        continue
                    slot = np.flatnonzero(nbr_links < 0)
                    if len(slot):
                        nbr_links[slot[0]] = node
                        continue
                    cand = np.append(nbr_links, node)
                    cand_sims = self.nav32[cand] @ self.nav32[nbr]
                    drop = int(np.argmin(cand_sims))
                    self.upper_links[level - 1][pos] = np.delete(cand, drop)
        self._rebuild_upper_pos()

    # -- search --------------------------------------------------------

    def search(
        self,
        query_rows: np.ndarray,
        k: int,
        exclude_self: bool = True,
        workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = check_query(len(self.units), query_rows, k, exclude_self)
        q = len(rows)
        neighbors = np.empty((q, k), dtype=np.int64)
        sims = np.empty((q, k))
        t = len(self.node_row)
        step = max(16, _VISITED_BUDGET_BYTES // max(1, min(t, _SCAN_WINDOW)))
        chunks = [(lo, min(lo + step, q)) for lo in range(0, q, step)]

        def search_chunk(bounds: tuple[int, int]) -> tuple:
            # Returns the chunk's outputs instead of writing shared
            # arrays: process-backend workers see copy-on-write memory,
            # so the parent assembles (bit-identical either way).
            lo, hi = bounds
            nb, s64, chunk_stats = self._search_chunk(
                rows[lo:hi], k, exclude_self
            )
            return lo, hi, nb, s64, chunk_stats

        n = len(self.units)
        rec = obs.current()
        t0 = time.perf_counter() if rec.enabled else 0.0
        with obs.span("knn.search", k=k, queries=q, backend="hnsw") as sp:
            obs.add("knn.queries", q)
            if workers == 1 or len(chunks) <= 1:
                results = [search_chunk(bounds) for bounds in chunks]
            else:
                with WorkerPool(workers) as pool:
                    results = pool.map(search_chunk, chunks)
            stats = []
            for lo, hi, nb, s64, chunk_stats in results:
                neighbors[lo:hi] = nb
                sims[lo:hi] = s64
                stats.append(chunk_stats)
            hops = sum(s["hops"] for s in stats)
            scored = sum(s["scored"] for s in stats)
            fallbacks = sum(s["fallbacks"] for s in stats)
            computed = scored + fallbacks * n
            obs.add("knn.distance_computations", computed)
            obs.add("ann.hops", hops)
            obs.add("ann.candidates_scored", scored)
            obs.observe_many(
                "ann.candidate_set_size",
                np.concatenate([s["beam_sizes"] for s in stats]),
            )
            sp.set(items=computed, items_unit="dists")
            obs.observe_many("knn.neighbor_distance", 1.0 - sims.ravel())
            if rec.enabled:
                obs.observe("knn.search_seconds", time.perf_counter() - t0)
            self._audit(rows, neighbors, k, exclude_self)
        return neighbors, sims

    def _search_chunk(
        self, rows: np.ndarray, k: int, exclude_self: bool
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """Search one query chunk; returns (neighbors, sims, stats)."""
        qnodes = self.row_node[rows]
        q32 = self.nav32[qnodes]
        qn = len(rows)
        t = len(self.node_row)
        entries, d_hops, d_scored = self._descend(q32)
        # Seed the beam with an exhaustive scan of the query's own
        # id window.  Node ids are cluster-sorted along a centroid
        # tour, so the window holds the query's neighbourhood as
        # *contiguous* rows — queries sharing an aligned window share
        # one BLAS matmul, which scores a window row for a fraction of
        # the cost of one gathered graph candidate.  The beam then
        # only has to chase neighbourhoods the window missed (clusters
        # split across distant cells, drifted warm-update vectors)
        # through graph edges, starting from the query's own node —
        # scanned at similarity ~1, hence expanded first.
        w = min(_SCAN_WINDOW, t)
        base = np.clip(
            (qnodes - w // 2) // _SCAN_BLOCK * _SCAN_BLOCK, 0, t - w
        )
        order = np.argsort(base, kind="stable")
        scores = np.empty((qn, w), dtype=np.float32)
        ob = base[order]
        bounds = np.flatnonzero(np.r_[True, np.diff(ob) != 0])
        for i, j in zip(bounds, np.r_[bounds[1:], len(ob)]):
            g = order[i:j]
            b = int(ob[i])
            scores[g] = q32[g] @ self.nav32[b : b + w].T
        d_scored += qn * w
        ef = max(
            self.spec.hnsw_ef_search,
            k + (1 if exclude_self else 0),
        )
        efw = min(ef, w)
        # Two-stage top-ef: a per-row introselect over the whole window
        # is the price of w elements per query; reducing 8-wide groups
        # to their max first shrinks the partition input 8x.  Any
        # element outside the top-efw groups (ranked by group max) is
        # bounded by the efw-th group max, so the result is the exact
        # top-efw up to ties.
        grp = 8
        ngrp = w // grp
        if ngrp >= efw and w % grp == 0:
            gmax = scores.reshape(qn, ngrp, grp).max(axis=2)
            gpart = np.argpartition(gmax, -efw, axis=1)[:, -efw:]
            cols = (
                gpart[:, :, None] * grp + np.arange(grp)
            ).reshape(qn, efw * grp)
            sub = np.take_along_axis(scores, cols, axis=1)
            sp = np.argpartition(sub, -efw, axis=1)[:, -efw:]
            part = np.take_along_axis(cols, sp, axis=1)
        else:
            part = np.argpartition(scores, -efw, axis=1)[:, -efw:]
        seed_sims = np.take_along_axis(scores, part, axis=1)
        seeds = base[:, None] + part
        # The descent's global entry rides along as one extra seed
        # (unless the scan already covered it).
        ent_sims = np.einsum(
            "av,av->a", self.nav32[entries], q32
        ).astype(np.float32)
        in_scan = (entries >= base) & (entries < base + w)
        seeds = np.concatenate(
            [seeds, np.where(in_scan, -1, entries)[:, None]], axis=1
        )
        seed_sims = np.concatenate(
            [seed_sims, np.where(in_scan, -np.inf, ent_sims)[:, None]],
            axis=1,
        )
        ids, _, b_hops, b_scored = self._layer0_beam(
            q32,
            seeds,
            seed_sims,
            efw + 1,
            base=base,
            window=w,
            stop=max(k + 1, efw // 4),
        )
        # The windowed visited bitmap can let a far candidate into the
        # beam twice; keep candidate rows duplicate-free before ranking.
        order = np.argsort(ids, axis=1, kind="stable")
        ids = np.take_along_axis(ids, order, axis=1)
        dup = np.zeros_like(ids, dtype=bool)
        dup[:, 1:] = (ids[:, 1:] == ids[:, :-1]) & (ids[:, 1:] >= 0)
        ids[dup] = -1
        out_rows = np.where(ids >= 0, self.node_row[ids.clip(min=0)], -1)
        live = out_rows >= 0
        if exclude_self:
            live &= out_rows != rows[:, None]
        counts = live.sum(axis=1)
        # Exact float64 rescore of the surviving candidate set: the
        # returned similarities are exact for the neighbours found.
        s64 = np.einsum(
            "qcv,qv->qc",
            self.units[np.where(live, out_rows, 0)],
            self.units[rows],
        )
        s64[~live] = -np.inf
        order = np.argsort(-s64, axis=1, kind="stable")[:, :k]
        nb = np.take_along_axis(np.where(live, out_rows, -1), order, axis=1)
        s = np.take_along_axis(s64, order, axis=1)
        short = counts < k
        fallbacks = int(short.sum())
        if fallbacks:
            fb_nb, fb_s = exact_topk(self.units, rows[short], k, exclude_self)
            nb[short] = fb_nb
            s[short] = fb_s
        stats = {
            "hops": d_hops + b_hops,
            "scored": d_scored + b_scored + int(live.sum()),
            "fallbacks": fallbacks,
            "beam_sizes": counts.astype(np.float64),
        }
        return nb, s, stats

    def _descend(
        self, q32: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Greedy best-neighbour descent through levels >= 2.

        Stops above level 1: every level-1 node is also a layer-0
        node, so the refinement the level-1 pass would buy is subsumed
        by the ``ef_search`` beam — which the warm self-seeds have
        already placed in the right region.  Walking level 1 (by far
        the largest upper layer) would roughly double query cost for
        a marginal recall gain.
        """
        a = len(q32)
        cur = np.full(a, self.entry, dtype=np.int64)
        hops = 0
        scored = a
        if self.max_level < 2:
            return cur, hops, scored
        cur_sim = (q32 @ self.nav32[self.entry]).astype(np.float32)
        for level in range(self.max_level, 1, -1):
            links = self.upper_links[level - 1]
            pos = self._upper_pos[level - 1]
            active = np.ones(a, dtype=bool)
            for _ in range(_DESCENT_CAP):
                if not active.any():
                    break
                sel = np.flatnonzero(active)
                nb = links[pos[cur[sel]]]
                valid = nb >= 0
                s = np.einsum(
                    "amv,av->am", self.nav32[nb.clip(min=0)], q32[sel]
                ).astype(np.float32)
                s[~valid] = -np.inf
                hops += len(sel)
                scored += int(valid.sum())
                best = np.argmax(s, axis=1)
                arange = np.arange(len(sel))
                best_sim = s[arange, best]
                better = best_sim > cur_sim[sel]
                cur[sel[better]] = nb[arange, best][better]
                cur_sim[sel[better]] = best_sim[better]
                active[sel[~better]] = False
        return cur, hops, scored

    def _layer0_beam(
        self,
        q32: np.ndarray,
        seeds: np.ndarray,
        seed_sims: np.ndarray,
        ef: int,
        base: np.ndarray | None = None,
        window: int = 0,
        stop: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Lockstep best-first beam over the layer-0 graph.

        All queries of the chunk advance together: every iteration
        expands up to :data:`_EXPAND_WIDTH` best unexpanded candidates
        per still-active query, scores the union of their neighbours
        in one batched einsum, and folds them back into the per-query
        top-``ef`` beams.  A query retires when its best unexpanded
        candidate cannot reach the top ``stop`` of its beam
        (``stop = ef``, the classic rule, when not given): with a
        scan-seeded beam most candidates are known-good window rows
        whose expansion the scan already covered, so search passes a
        small ``stop`` to spend expansions only where they can still
        change the top of the beam.

        ``seeds`` rows must be duplicate-free (-1 pads allowed, with
        ``seed_sims`` -inf there); rows wider than ``ef`` keep their
        top-``ef`` seeds by similarity.

        With ``base``/``window`` given (the scan-seeded search path),
        no visited set is kept at all: the scan has already scored the
        whole window ``[base[q], base[q] + window)`` — and seeded the
        beam with its exact top — so in-window neighbours are dropped
        outright, and the expansion of one iteration collapses into a
        single vectorised gather.  Out-of-window candidates may be
        rediscovered later; the merge de-duplicates them beam-side,
        and callers de-duplicate the returned candidate rows.
        Without ``base`` a zeroed full-width (Q, T) bitmap dedups
        visits and seeds are marked here (the build path, whose
        insert beams have no windows).

        Returns (ids, sims) of shape (Q, ef) — -1 / -inf padded, in no
        particular order — plus hop and scored-candidate counts.
        """
        qn = len(q32)
        t = len(self.node_row)
        s = seeds.shape[1]
        if s > ef:
            keep = np.argpartition(seed_sims, -ef, axis=1)[:, -ef:]
            seeds = np.take_along_axis(seeds, keep, axis=1)
            seed_sims = np.take_along_axis(seed_sims, keep, axis=1)
            s = ef
        if base is None:
            visited = np.zeros((qn, t), dtype=bool)
            fq = np.repeat(np.arange(qn), s)
            fn = seeds.ravel()
            ok = fn >= 0
            visited[fq[ok], fn[ok]] = True
        else:
            span_lo, span_hi = self._link_spans()
        ids = np.full((qn, ef), -1, dtype=np.int64)
        sims = np.full((qn, ef), -np.inf, dtype=np.float32)
        expanded = np.zeros((qn, ef), dtype=bool)
        ids[:, :s] = seeds
        sims[:, :s] = seed_sims
        ids[:, :s][~np.isfinite(sims[:, :s])] = -1
        active = np.ones(qn, dtype=bool)
        width = min(_EXPAND_WIDTH, ef)
        stop = min(stop, ef) if stop else ef
        hops = 0
        scored = 0
        while active.any():
            rows = np.flatnonzero(active)
            bsims = sims[rows]
            bids = ids[rows]
            masked = np.where(expanded[rows] | (bids < 0), -np.inf, bsims)
            # The stop-th best similarity of each beam (-inf while the
            # beam holds fewer than stop candidates, keeping it open).
            stopv = -np.partition(-bsims, stop - 1, axis=1)[:, stop - 1]
            done = masked.max(axis=1) <= stopv
            active[rows[done]] = False
            rows = rows[~done]
            if not len(rows):
                break
            masked = masked[~done]
            stopv = stopv[~done]
            if width < ef:
                part = np.argpartition(-masked, width - 1, axis=1)[:, :width]
            else:
                part = np.broadcast_to(np.arange(ef), masked.shape)
            wsims = np.take_along_axis(masked, part, axis=1)
            allow = wsims > stopv[:, None]
            if base is not None:
                # All allowed expansions of the iteration in one
                # vectorised gather.  No visited set: in-window
                # neighbours are wholly covered by the scan (its exact
                # top seeded the beam, so the rest cannot reach the
                # top-k), and out-of-window repeats are cheaper to drop
                # at the dedup below than to track per query.
                aq, ae = np.nonzero(allow)
                qe = rows[aq]
                se = part[aq, ae]
                expanded[qe, se] = True
                nodes = ids[qe, se]
                # Skip expansions whose whole link list falls inside
                # the scan window — common once the scan has done its
                # work.
                useful = (span_lo[nodes] < base[qe]) | (
                    span_hi[nodes] >= base[qe] + window
                )
                qe = qe[useful]
                nodes = nodes[useful]
                hops += len(qe)
                if not len(qe):
                    continue
                nbrs = self.links0[nodes]
                fq = np.repeat(qe, nbrs.shape[1])
                fn = nbrs.ravel()
                off = fn - base[fq]
                keep = (fn >= 0) & ((off < 0) | (off >= window))
                fq, fn = fq[keep], fn[keep]
            else:
                # Expand wave by wave: visited is updated between
                # waves, so two expansions of one query never enqueue
                # the same neighbour twice (link rows themselves are
                # duplicate-free).
                wave_q: list[np.ndarray] = []
                wave_n: list[np.ndarray] = []
                for e in range(width):
                    take = allow[:, e]
                    if not take.any():
                        continue
                    qe = rows[take]
                    se = part[take, e]
                    expanded[qe, se] = True
                    hops += len(qe)
                    nbrs = self.links0[ids[qe, se]]
                    fq = np.repeat(qe, nbrs.shape[1])
                    fn = nbrs.ravel()
                    ok = fn >= 0
                    fq, fn = fq[ok], fn[ok]
                    unseen = ~visited[fq, fn]
                    fq, fn = fq[unseen], fn[unseen]
                    visited[fq, fn] = True
                    wave_q.append(fq)
                    wave_n.append(fn)
                if not wave_q:
                    continue
                fq = np.concatenate(wave_q)
                fn = np.concatenate(wave_n)
            if not len(fq):
                continue
            order = np.lexsort((fn, fq))
            fq, fn = fq[order], fn[order]
            if base is not None:
                # The window bitmap cannot dedup out-of-window visits,
                # and expanded near-duplicate candidates share most far
                # links — drop repeat (query, node) pairs before paying
                # the gathered einsum for each copy.
                fresh = np.ones(len(fq), dtype=bool)
                fresh[1:] = (fq[1:] != fq[:-1]) | (fn[1:] != fn[:-1])
                fq, fn = fq[fresh], fn[fresh]
                # Score in node-id order: candidates of different
                # queries concentrate in the same few cells, so the
                # sorted gather walks nav32 nearly sequentially.
                forder = np.argsort(fn, kind="stable")
                fsims = np.empty(len(fn), dtype=np.float32)
                fsims[forder] = np.einsum(
                    "cv,cv->c", self.nav32[fn[forder]], q32[fq[forder]]
                ).astype(np.float32)
            else:
                fsims = np.einsum(
                    "cv,cv->c", self.nav32[fn], q32[fq]
                ).astype(np.float32)
            scored += len(fq)
            counts = np.bincount(fq, minlength=qn)
            if int(counts.max()) > ef:
                # Keep at most the top-ef new candidates per query
                # before the rectangular merge below: the beam prunes
                # to ef anyway, and one fat query (a whole link set out
                # of window) would otherwise widen the merge for every
                # query of the iteration.
                order = np.lexsort((-fsims, fq))
                fq, fn, fsims = fq[order], fn[order], fsims[order]
                starts = np.concatenate(([0], np.cumsum(counts)))
                posi = np.arange(len(fq)) - starts[fq]
                keep = posi < ef
                fq, fn, fsims = fq[keep], fn[keep], fsims[keep]
                counts = np.minimum(counts, ef)
            upd = np.flatnonzero(counts > 0)
            maxc = int(counts.max())
            starts = np.concatenate(([0], np.cumsum(counts)))
            posi = np.arange(len(fq)) - starts[fq]
            cid = np.full((len(upd), maxc), -1, dtype=np.int64)
            csim = np.full((len(upd), maxc), -np.inf, dtype=np.float32)
            local = np.full(qn, -1, dtype=np.int64)
            local[upd] = np.arange(len(upd))
            cid[local[fq], posi] = fn
            csim[local[fq], posi] = fsims
            all_ids = np.concatenate([ids[upd], cid], axis=1)
            all_sims = np.concatenate([sims[upd], csim], axis=1)
            all_exp = np.concatenate(
                [expanded[upd], np.zeros_like(cid, dtype=bool)], axis=1
            )
            if base is not None:
                # An out-of-window candidate may be rediscovered in a
                # later iteration (it is never marked visited); drop
                # duplicates, keeping the already-expanded copy so it
                # is not re-walked.  The full-bitmap path cannot see
                # duplicates and skips the pass.
                key = all_ids * 2 + np.where(all_exp, 0, 1)
                korder = np.argsort(key, axis=1, kind="stable")
                all_ids = np.take_along_axis(all_ids, korder, axis=1)
                all_sims = np.take_along_axis(all_sims, korder, axis=1)
                all_exp = np.take_along_axis(all_exp, korder, axis=1)
                dup = np.zeros_like(all_ids, dtype=bool)
                dup[:, 1:] = (
                    all_ids[:, 1:] == all_ids[:, :-1]
                ) & (all_ids[:, 1:] >= 0)
                all_ids[dup] = -1
                all_sims[dup] = -np.inf
            keep = np.argpartition(all_sims, -ef, axis=1)[:, -ef:]
            ids[upd] = np.take_along_axis(all_ids, keep, axis=1)
            sims[upd] = np.take_along_axis(all_sims, keep, axis=1)
            expanded[upd] = np.take_along_axis(all_exp, keep, axis=1)
        return ids, sims, hops, scored

    # -- self-audit ----------------------------------------------------

    def _audit(
        self,
        rows: np.ndarray,
        neighbors: np.ndarray,
        k: int,
        exclude_self: bool,
    ) -> None:
        """Exact-rescore a seeded query sample; record recall@k."""
        recall = audit.audit_recall(
            self.units,
            rows,
            neighbors,
            k,
            exclude_self,
            self.spec.recall_sample,
            self.spec.seed,
        )
        if recall is not None:
            self.last_recall = recall
