"""ANN recall self-audit: the shared measurement and its last result.

The approximate backends (IVF, IVF-PQ) measure their own recall on a
seeded query sample at every search via :func:`audit_recall`.  Besides
the ``ann.recall_at_k`` gauge, the measurement lands in module state so
callers that did not construct the index — most importantly the health
monitors in :meth:`repro.core.pipeline.DarkVec.update`, whose churn
and LOO probes build their own ephemeral indexes — can still judge the
backend's accuracy.  Semantics mirror a gauge: last write wins,
``None`` until an audited search has run (the exact backend never
records).
"""

from __future__ import annotations

import numpy as np

from repro import obs

_last_recall: float | None = None
_audited_queries: int = 0


def audit_recall(
    units: np.ndarray,
    rows: np.ndarray,
    neighbors: np.ndarray,
    k: int,
    exclude_self: bool,
    sample: int,
    seed: int,
) -> float | None:
    """Recall@k of ``neighbors`` vs an exact rescore of a seeded sample.

    Shared by every approximate backend: draws up to ``sample`` query
    positions, re-runs them through the exact oracle, and records the
    overlap as the ``ann.recall_at_k`` gauge and the module-level last
    result.  Returns the measured recall, or None when ``sample`` is 0
    or there are no queries.  Observation only — results are untouched.
    """
    from repro.ann.exact import exact_topk

    m = min(sample, len(rows))
    if m == 0:
        return None
    if m < len(rows):
        rng = np.random.default_rng(seed)
        pos = rng.choice(len(rows), m, replace=False)
    else:
        pos = np.arange(len(rows))
    exact_nb, _ = exact_topk(units, rows[pos], k, exclude_self)
    overlap = sum(
        len(np.intersect1d(neighbors[pos[i]], exact_nb[i])) for i in range(m)
    )
    recall = overlap / (m * k)
    obs.set_gauge("ann.recall_at_k", recall)
    record_recall(recall, m)
    return recall


def record_recall(value: float, sampled_queries: int) -> None:
    """Record one audit result (called by auditing backends)."""
    global _last_recall, _audited_queries
    _last_recall = float(value)
    _audited_queries += int(sampled_queries)


def last_recall() -> float | None:
    """Most recent measured recall@k, or None if nothing was audited."""
    return _last_recall


def audited_queries() -> int:
    """Total queries exact-rescored by audits since the last reset."""
    return _audited_queries


def reset() -> None:
    """Forget past audits (start of a monitored phase)."""
    global _last_recall, _audited_queries
    _last_recall = None
    _audited_queries = 0
