"""Process-wide record of the most recent ANN recall audit.

The IVF backend measures its own recall on a seeded query sample at
every search (:meth:`repro.ann.ivf.IVFIndex.search`).  Besides the
``ann.recall_at_k`` gauge, the measurement lands here so callers that
did not construct the index — most importantly the health monitors in
:meth:`repro.core.pipeline.DarkVec.update`, whose churn and LOO probes
build their own ephemeral indexes — can still judge the backend's
accuracy.  Semantics mirror a gauge: last write wins, ``None`` until
an audited search has run (the exact backend never records).
"""

from __future__ import annotations

_last_recall: float | None = None
_audited_queries: int = 0


def record_recall(value: float, sampled_queries: int) -> None:
    """Record one audit result (called by auditing backends)."""
    global _last_recall, _audited_queries
    _last_recall = float(value)
    _audited_queries += int(sampled_queries)


def last_recall() -> float | None:
    """Most recent measured recall@k, or None if nothing was audited."""
    return _last_recall


def audited_queries() -> int:
    """Total queries exact-rescored by audits since the last reset."""
    return _audited_queries


def reset() -> None:
    """Forget past audits (start of a monitored phase)."""
    global _last_recall, _audited_queries
    _last_recall = None
    _audited_queries = 0
