"""Inverted-file (IVF) approximate cosine k-NN, pure numpy.

The index partitions the corpus with a spherical k-means coarse
quantizer (``nlist`` centroids trained on a seeded sample) and stores
each row in the inverted list of its nearest centroid.  A query scores
the ``nlist`` centroids once (float32), probes its ``nprobe`` best
lists with batched per-list matmuls, keeps a per-list top-k, merges
the survivors, and rescores the winners in float64 against the
original vectors — so the similarities returned to callers are exact
for the neighbours found, and directly comparable with the exact
backend's.  Queries whose probed lists held fewer than ``k``
candidates silently fall back to exhaustive search.

Cost per query is ``nlist + nprobe * N/nlist`` similarity computations
instead of ``N``; with the auto ``nlist = sqrt(N)`` both terms are
``O(sqrt(N))``.  The trade-off is recall, which the index measures
itself: every search exact-rescores a seeded sample of queries and
records ``ann.recall_at_k`` (see :mod:`repro.ann.audit`), so a
mis-tuned index is visible in telemetry and health reports instead of
silently degrading accuracy.

:meth:`IVFIndex.updated` supports warm daily retrains: retained rows
keep their list assignment, fresh rows are appended to their nearest
list, evicted rows are dropped, and the quantizer is retrained from
scratch only when list imbalance crosses a threshold.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro import obs
from repro.ann import audit
from repro.ann.base import AnnSpec, NeighborIndex, check_query
from repro.ann.exact import exact_topk
from repro.parallel.pool import WorkerPool

#: Lloyd iterations for the spherical k-means quantizer.
_KMEANS_ITERS = 10

#: Temp-buffer budget (bytes) for coarse-assignment and per-list
#: scoring matmuls; bounds chunk sizes the same way the exact
#: backend's score-buffer budget does.
_SCORE_BUDGET_BYTES = 16 << 20

#: Default list-imbalance ratio (largest list vs perfectly even) above
#: which :meth:`IVFIndex.updated` retrains the quantizer.  Calibrated
#: loosely: k-means on unit vectors rarely exceeds 3x even splits, so
#: 4x means the incoming data has drifted away from the trained
#: partition.
RETRAIN_IMBALANCE = 4.0


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise in float64, leaving zero rows untouched."""
    norms = np.linalg.norm(matrix, axis=1)
    ok = norms > 0
    matrix[ok] /= norms[ok, None]
    return matrix


def _nearest_centroid(units32: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid (max dot product) per row, chunked for memory."""
    nlist = len(centroids)
    step = max(1024, _SCORE_BUDGET_BYTES // max(1, 4 * nlist))
    out = np.empty(len(units32), dtype=np.int64)
    for lo in range(0, len(units32), step):
        out[lo : lo + step] = np.argmax(
            units32[lo : lo + step] @ centroids.T, axis=1
        )
    return out


def _train_centroids(
    units32: np.ndarray, nlist: int, seed: int, iters: int = _KMEANS_ITERS
) -> np.ndarray:
    """Spherical k-means on a seeded sample; returns unit centroids.

    Empty clusters are reseeded to random sample points each
    iteration, so every centroid stays live.  Fully deterministic for
    a given (units32, nlist, seed).
    """
    n, dim = units32.shape
    rng = np.random.default_rng(seed)
    sample_size = min(n, max(4096, 64 * nlist))
    if sample_size < n:
        sample = units32[np.sort(rng.choice(n, sample_size, replace=False))]
    else:
        sample = units32
    centroids = sample[
        np.sort(rng.choice(len(sample), nlist, replace=False))
    ].astype(np.float32)
    for _ in range(iters):
        assign = _nearest_centroid(sample, centroids)
        # Mean of members via sort + reduceat (no slow np.add.at).
        order = np.argsort(assign, kind="stable")
        sorted_assign = assign[order]
        bounds = np.flatnonzero(np.r_[True, np.diff(sorted_assign) != 0])
        sums = np.add.reduceat(
            sample[order].astype(np.float64), bounds, axis=0
        )
        new = np.zeros((nlist, dim), dtype=np.float64)
        new[sorted_assign[bounds]] = sums
        _normalize_rows(new)
        dead = np.linalg.norm(new, axis=1) == 0
        if dead.any():
            reseed = rng.choice(len(sample), int(dead.sum()), replace=False)
            new[dead] = sample[reseed]
        centroids = new.astype(np.float32)
    return centroids


class IVFIndex(NeighborIndex):
    """Multi-probe inverted-file index over row-normalised vectors.

    Construct through :meth:`build` (trains the quantizer) or
    :meth:`updated` (evolves an existing quantizer); the bare
    constructor wires pre-computed parts (store loads).
    """

    def __init__(
        self,
        units: np.ndarray,
        spec: AnnSpec,
        centroids: np.ndarray,
        assign: np.ndarray,
        units32: np.ndarray | None = None,
    ) -> None:
        self.units = np.asarray(units, dtype=np.float64)
        self.spec = spec
        self.centroids = np.asarray(centroids, dtype=np.float32)
        self.assign = np.asarray(assign, dtype=np.int64)
        if len(self.assign) != len(self.units):
            raise ValueError("assignments and units must align")
        self.nlist = len(self.centroids)
        self.units32 = (
            units32
            if units32 is not None
            else self.units.astype(np.float32)
        )
        # Inverted lists: row ids grouped by list, stable order.
        self.members = np.argsort(self.assign, kind="stable")
        counts = np.bincount(self.assign, minlength=self.nlist)
        self.offsets = np.concatenate(([0], np.cumsum(counts)))
        #: recall@k measured by the most recent search's audit.
        self.last_recall: float | None = None

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls, units: np.ndarray, spec: AnnSpec, workers: int = 1
    ) -> "IVFIndex":
        """Train the quantizer and assign every row to a list."""
        units = np.asarray(units, dtype=np.float64)
        n = len(units)
        if n == 0:
            raise ValueError("cannot build an index over zero vectors")
        nlist = min(n, spec.nlist or max(1, int(round(math.sqrt(n)))))
        units32 = units.astype(np.float32)
        with obs.span("ann.build", n=n, nlist=nlist):
            centroids = _train_centroids(units32, nlist, spec.seed)
            assign = _nearest_centroid(units32, centroids)
        return cls(units, spec, centroids, assign, units32=units32)

    def updated(
        self,
        units: np.ndarray,
        prior_rows: np.ndarray,
        workers: int = 1,
        retrain_threshold: float = RETRAIN_IMBALANCE,
    ) -> "IVFIndex":
        """Index for the next model generation, reusing this quantizer.

        Args:
            units: row-normalised vectors of the *new* model.
            prior_rows: for each new row, its row in this index, or -1
                for senders this index has never seen.
            workers: parallelism for a retrain, if one is triggered.
            retrain_threshold: list-imbalance ratio (largest list over
                the perfectly even share) above which the quantizer is
                retrained from scratch instead of evolved.

        Retained rows keep their list even though a warm refit nudged
        their vectors — the recall audit and the ``ann_recall`` health
        monitor guard that approximation.  Evicted rows simply drop
        out; fresh rows join their nearest list.
        """
        units = np.asarray(units, dtype=np.float64)
        prior_rows = np.asarray(prior_rows, dtype=np.int64)
        if len(prior_rows) != len(units):
            raise ValueError("prior_rows and units must align")
        n = len(units)
        if n == 0:
            raise ValueError("cannot build an index over zero vectors")
        units32 = units.astype(np.float32)
        assign = np.empty(n, dtype=np.int64)
        kept = prior_rows >= 0
        assign[kept] = self.assign[prior_rows[kept]]
        if (~kept).any():
            assign[~kept] = _nearest_centroid(units32[~kept], self.centroids)
        counts = np.bincount(assign, minlength=self.nlist)
        imbalance = float(counts.max()) / max(n / self.nlist, 1e-9)
        if imbalance > retrain_threshold:
            obs.add("ann.retrains")
            return IVFIndex.build(units, self.spec, workers=workers)
        return IVFIndex(units, self.spec, self.centroids, assign, units32=units32)

    # -- search --------------------------------------------------------

    def search(
        self,
        query_rows: np.ndarray,
        k: int,
        exclude_self: bool = True,
        workers: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = check_query(len(self.units), query_rows, k, exclude_self)
        q = len(rows)
        neighbors = np.empty((q, k), dtype=np.int64)
        sims = np.empty((q, k))
        list_sizes = self.offsets[1:] - self.offsets[:-1]
        max_list = int(list_sizes.max()) if self.nlist else 1
        step = max(
            64,
            min(
                4096,
                _SCORE_BUDGET_BYTES // max(4 * max(self.nlist, max_list), 1),
            ),
        )
        chunks = [(lo, min(lo + step, q)) for lo in range(0, q, step)]

        def search_chunk(bounds: tuple[int, int]) -> tuple:
            # Returns the chunk's outputs instead of writing shared
            # arrays: process-backend workers see copy-on-write memory,
            # so the parent assembles (bit-identical either way).
            lo, hi = bounds
            nb, s64, chunk_stats = self._search_chunk(rows[lo:hi], k, exclude_self)
            return lo, hi, nb, s64, chunk_stats

        n = len(self.units)
        rec = obs.current()
        t0 = time.perf_counter() if rec.enabled else 0.0
        with obs.span("knn.search", k=k, queries=q, backend="ivf") as sp:
            obs.add("knn.queries", q)
            if workers == 1 or len(chunks) <= 1:
                results = [search_chunk(bounds) for bounds in chunks]
            else:
                with WorkerPool(workers) as pool:
                    results = pool.map(search_chunk, chunks)
            stats = []
            for lo, hi, nb, s64, chunk_stats in results:
                neighbors[lo:hi] = nb
                sims[lo:hi] = s64
                stats.append(chunk_stats)
            probes = sum(s["probes"] for s in stats)
            scored = sum(s["scored"] for s in stats)
            fallbacks = sum(s["fallbacks"] for s in stats)
            computed = q * self.nlist + scored + fallbacks * n
            obs.add("knn.distance_computations", computed)
            obs.add("ann.probes", probes)
            obs.add("ann.candidates_scored", scored)
            sp.set(items=computed, items_unit="dists")
            obs.observe_many("knn.neighbor_distance", 1.0 - sims.ravel())
            if rec.enabled:
                obs.observe("knn.search_seconds", time.perf_counter() - t0)
            self._audit(rows, neighbors, k, exclude_self)
        return neighbors, sims

    def _search_chunk(
        self,
        rows: np.ndarray,
        k: int,
        exclude_self: bool,
    ) -> tuple[np.ndarray, np.ndarray, dict[str, int]]:
        """Search one query chunk; returns (neighbors, sims, stats)."""
        c = len(rows)
        q32 = self.units32[rows]
        coarse = q32 @ self.centroids.T  # (c, nlist) float32
        p = min(self.spec.nprobe, self.nlist)
        if p < self.nlist:
            probe_lists = np.argpartition(coarse, -p, axis=1)[:, -p:]
        else:
            probe_lists = np.broadcast_to(np.arange(self.nlist), (c, self.nlist))
        # Group (query, list) pairs by list so each inverted list is
        # scored once per chunk with one batched matmul.
        flat_q = np.repeat(np.arange(c), p)
        flat_l = probe_lists.ravel()
        order = np.argsort(flat_l, kind="stable")
        fq, fl = flat_q[order], flat_l[order]
        group_starts = np.flatnonzero(np.r_[True, np.diff(fl) != 0])
        group_ends = np.r_[group_starts[1:], len(fl)]
        cand_q: list[np.ndarray] = []
        cand_m: list[np.ndarray] = []
        cand_s: list[np.ndarray] = []
        scored = 0
        for start, end in zip(group_starts, group_ends):
            list_id = fl[start]
            m0, m1 = self.offsets[list_id], self.offsets[list_id + 1]
            members = self.members[m0:m1]
            if len(members) == 0:
                continue
            qs = fq[start:end]
            scores = q32[qs] @ self.units32[members].T  # (|qs|, |list|)
            scored += scores.size
            if exclude_self:
                scores[members[None, :] == rows[qs][:, None]] = -np.inf
            # Per-list top-k prunes the merge from nprobe * N/nlist
            # candidates per query down to nprobe * k.
            kk = min(k, scores.shape[1])
            if kk < scores.shape[1]:
                top = np.argpartition(scores, -kk, axis=1)[:, -kk:]
                cand_q.append(np.repeat(qs, kk))
                cand_m.append(members[top].ravel())
                cand_s.append(np.take_along_axis(scores, top, axis=1).ravel())
            else:
                cand_q.append(np.repeat(qs, scores.shape[1]))
                cand_m.append(np.tile(members, len(qs)))
                cand_s.append(scores.ravel())
        if cand_q:
            merged_q = np.concatenate(cand_q)
            merged_m = np.concatenate(cand_m)
            merged_s = np.concatenate(cand_s)
        else:
            merged_q = np.empty(0, dtype=np.int64)
            merged_m = np.empty(0, dtype=np.int64)
            merged_s = np.empty(0, dtype=np.float32)
        finite = np.isfinite(merged_s)
        merged_q, merged_m, merged_s = (
            merged_q[finite],
            merged_m[finite],
            merged_s[finite],
        )
        # Global per-query top-k over the merged survivors.
        sel = np.lexsort((-merged_s, merged_q))
        merged_q, merged_m = merged_q[sel], merged_m[sel]
        counts = np.bincount(merged_q, minlength=c)
        seg_starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        ranks = np.arange(len(merged_q)) - np.repeat(seg_starts, counts)
        take = ranks < k
        nb = np.full((c, k), -1, dtype=np.int64)
        nb[merged_q[take], ranks[take]] = merged_m[take]
        # Rescore winners in float64 so returned similarities are exact
        # (and ordering ties resolve on full precision, not float32).
        s64 = np.full((c, k), -np.inf)
        qi, ki = np.nonzero(nb >= 0)
        s64[qi, ki] = np.einsum(
            "ij,ij->i", self.units[rows[qi]], self.units[nb[qi, ki]]
        )
        resort = np.argsort(-s64, axis=1, kind="stable")
        nb = np.take_along_axis(nb, resort, axis=1)
        s64 = np.take_along_axis(s64, resort, axis=1)
        short = counts < k
        fallbacks = int(short.sum())
        if fallbacks:
            fb_nb, fb_s = exact_topk(self.units, rows[short], k, exclude_self)
            nb[short] = fb_nb
            s64[short] = fb_s
        return nb, s64, {"probes": c * p, "scored": scored, "fallbacks": fallbacks}

    # -- self-audit ----------------------------------------------------

    def _audit(
        self,
        rows: np.ndarray,
        neighbors: np.ndarray,
        k: int,
        exclude_self: bool,
    ) -> None:
        """Exact-rescore a seeded query sample; record recall@k."""
        recall = audit.audit_recall(
            self.units,
            rows,
            neighbors,
            k,
            exclude_self,
            self.spec.recall_sample,
            self.spec.seed,
        )
        if recall is not None:
            self.last_recall = recall
