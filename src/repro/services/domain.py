"""Domain-knowledge service definition (paper Table 7).

Fifteen services: twelve built from explicit port lists plus three
catch-all ranges (system / user / ephemeral ports).  ICMP traffic has no
port; the paper's table does not list it, so it is assigned to the
system catch-all.
"""

from __future__ import annotations

import numpy as np

from repro.services.base import ServiceMap
from repro.services.ports import parse_port, port_keys
from repro.trace.packet import ICMP

#: Table 7, verbatim.  Keys are service names, values the port specs.
DOMAIN_SERVICE_PORTS: dict[str, tuple[str, ...]] = {
    "Telnet": ("23/tcp", "992/tcp"),
    "SSH": ("22/tcp",),
    "Kerberos": (
        "88/tcp", "88/udp", "543/tcp", "544/tcp", "749/tcp", "7004/tcp",
        "750/udp", "750/tcp", "751/tcp", "752/udp", "754/tcp", "464/udp",
        "464/tcp",
    ),
    "HTTP": ("80/tcp", "443/tcp", "8080/tcp"),
    "Proxy": ("1080/tcp", "6446/tcp", "2121/tcp", "8081/tcp", "57000/tcp"),
    "Mail": (
        "25/tcp", "143/tcp", "174/tcp", "209/tcp", "465/tcp", "587/tcp",
        "110/tcp", "995/tcp", "993/tcp",
    ),
    "Database": (
        "210/tcp", "5432/tcp", "775/tcp", "1433/tcp", "1433/udp",
        "1434/tcp", "1434/udp", "3306/tcp", "27017/tcp", "27018/tcp",
        "27019/tcp", "3050/tcp", "3351/tcp", "1583/tcp",
    ),
    "DNS": ("853/tcp", "853/udp", "5353/udp", "53/tcp", "53/udp"),
    "Netbios": (
        "137/tcp", "137/udp", "138/tcp", "138/udp", "139/tcp", "139/udp",
    ),
    "Netbios-SMB": ("445/tcp",),
    "P2P": (
        "119/tcp", "375/tcp", "425/tcp", "1214/tcp", "412/tcp", "1412/tcp",
        "2412/tcp", "4662/tcp", "12155/udp", "6771/udp", "6881/udp",
        "6882/udp", "6883/udp", "6884/udp", "6885/udp", "6886/udp",
        "6887/udp", "6881/tcp", "6882/tcp", "6883/tcp", "6884/tcp",
        "6885/tcp", "6886/tcp", "6887/tcp", "6969/tcp", "7000/tcp",
        "9000/tcp", "9091/tcp", "6346/tcp", "6346/udp", "6347/tcp",
        "6347/udp",
    ),
    "FTP": (
        "20/tcp", "21/tcp", "69/udp", "989/tcp", "990/tcp", "2431/udp",
        "2433/udp", "2811/tcp", "8021/tcp",
    ),
}

#: Catch-all services for ports not named in Table 7, by port range.
FALLBACK_SERVICES = ("Unknown System", "Unknown User", "Unknown Ephemeral")


class DomainServiceMap(ServiceMap):
    """The 15-service domain-knowledge definition of Table 7."""

    def __init__(self) -> None:
        self._names = tuple(DOMAIN_SERVICE_PORTS) + FALLBACK_SERVICES
        keys: list[int] = []
        ids: list[int] = []
        for service_id, specs in enumerate(DOMAIN_SERVICE_PORTS.values()):
            for spec in specs:
                port, proto = parse_port(spec)
                keys.append(port * 256 + proto)
                ids.append(service_id)
        order = np.argsort(keys)
        self._keys = np.asarray(keys, dtype=np.int64)[order]
        self._ids = np.asarray(ids, dtype=np.int32)[order]
        if len(np.unique(self._keys)) != len(self._keys):
            raise ValueError("Table 7 assigns some port to two services")
        self._system_id = self._names.index("Unknown System")
        self._user_id = self._names.index("Unknown User")
        self._ephemeral_id = self._names.index("Unknown Ephemeral")

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def to_spec(self) -> dict:
        """Spec document (``{"kind": "domain"}``; Table 7 is code-defined)."""
        return {"kind": "domain"}

    def service_ids(self, ports: np.ndarray, protos: np.ndarray) -> np.ndarray:
        ports = np.asarray(ports, dtype=np.int64)
        protos = np.asarray(protos, dtype=np.int64)
        keys = port_keys(ports, protos)
        positions = np.searchsorted(self._keys, keys)
        positions = np.clip(positions, 0, len(self._keys) - 1)
        hit = self._keys[positions] == keys

        ids = np.empty(len(keys), dtype=np.int32)
        ids[hit] = self._ids[positions[hit]]
        miss = ~hit
        miss_ports = ports[miss]
        fallback = np.full(miss_ports.shape, self._user_id, dtype=np.int32)
        fallback[miss_ports <= 1023] = self._system_id
        fallback[miss_ports >= 49_152] = self._ephemeral_id
        # ICMP has no port: count it with the system range.
        fallback[protos[miss] == ICMP] = self._system_id
        ids[miss] = fallback
        return ids
