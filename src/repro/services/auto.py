"""Auto-defined services: one per top-n port, one for the rest."""

from __future__ import annotations

import numpy as np

from repro.services.base import ServiceMap
from repro.services.ports import format_port, port_keys, unpack_key
from repro.trace.packet import Trace


class AutoServiceMap(ServiceMap):
    """Services derived from traffic volume.

    The top-``n`` (port, protocol) pairs by packet count each become a
    dedicated service; every other pair falls into the ``other``
    service.  The paper uses ``n = 10``.
    """

    def __init__(self, top_keys: np.ndarray) -> None:
        self._top_keys = np.sort(np.asarray(top_keys, dtype=np.int64))
        self._names = tuple(
            format_port(*unpack_key(key)) for key in self._top_keys
        ) + ("other",)

    @staticmethod
    def from_trace(trace: Trace, n: int = 10) -> "AutoServiceMap":
        """Pick the top-``n`` ports of ``trace`` and build the map."""
        if n < 1:
            raise ValueError("need at least one top port")
        if not len(trace):
            raise ValueError("cannot derive services from an empty trace")
        keys = port_keys(trace.ports, trace.protos)
        uniq, counts = np.unique(keys, return_counts=True)
        order = np.argsort(counts)[::-1]
        return AutoServiceMap(uniq[order[:n]])

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def to_spec(self) -> dict:
        """Spec document carrying the resolved top (port, proto) keys."""
        return {"kind": "auto", "top_keys": self._top_keys.tolist()}

    def service_ids(self, ports: np.ndarray, protos: np.ndarray) -> np.ndarray:
        keys = port_keys(ports, protos)
        positions = np.searchsorted(self._top_keys, keys)
        positions = np.clip(positions, 0, len(self._top_keys) - 1)
        hit = self._top_keys[positions] == keys
        ids = np.full(len(keys), len(self._top_keys), dtype=np.int32)
        ids[hit] = positions[hit]
        return ids
