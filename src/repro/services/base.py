"""Abstract service map."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class ServiceMap(ABC):
    """Assigns every packet to exactly one service.

    Implementations must be *total*: any (port, protocol) pair maps to
    some service, so no packet is ever dropped by the corpus builder.
    """

    @property
    @abstractmethod
    def names(self) -> tuple[str, ...]:
        """Service names; index in this tuple is the service id."""

    @abstractmethod
    def service_ids(self, ports: np.ndarray, protos: np.ndarray) -> np.ndarray:
        """Vectorised mapping of packet columns to service ids."""

    @property
    def n_services(self) -> int:
        return len(self.names)

    def service_of(self, port: int, proto: int) -> str:
        """Service name of a single (port, protocol) pair."""
        ids = self.service_ids(
            np.array([port], dtype=np.int64), np.array([proto], dtype=np.int64)
        )
        return self.names[int(ids[0])]

    def to_spec(self) -> dict | None:
        """Serialisable spec document, or None when not serialisable.

        The staged pipeline persists service maps through their spec
        (see :func:`repro.services.service_map_from_spec`); custom
        subclasses that do not override this run uncached but otherwise
        work normally.
        """
        return None
