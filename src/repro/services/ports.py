"""Port/protocol helpers shared by the service definitions."""

from __future__ import annotations

import numpy as np

from repro.trace.packet import ICMP, TCP, UDP, proto_name

_PROTO_BY_NAME = {"tcp": TCP, "udp": UDP, "icmp": ICMP}


def format_port(port: int, proto: int) -> str:
    """``"23/tcp"``-style rendering of a (port, protocol) pair."""
    if proto == ICMP:
        return "icmp"
    return f"{port}/{proto_name(proto)}"


def parse_port(text: str) -> tuple[int, int]:
    """Parse ``"23/tcp"`` (or ``"icmp"``) into a (port, proto) pair."""
    text = text.strip().lower()
    if text == "icmp":
        return 0, ICMP
    try:
        port_text, proto_text = text.split("/")
        port = int(port_text)
        proto = _PROTO_BY_NAME[proto_text]
    except (ValueError, KeyError):
        raise ValueError(f"malformed port spec: {text!r}") from None
    if not 0 <= port <= 65_535:
        raise ValueError(f"port {port} out of range")
    return port, proto


def port_keys(ports: np.ndarray, protos: np.ndarray) -> np.ndarray:
    """Pack (port, proto) columns into single int64 keys."""
    return np.asarray(ports, dtype=np.int64) * 256 + np.asarray(protos, dtype=np.int64)


def unpack_key(key: int) -> tuple[int, int]:
    """Inverse of :func:`port_keys` for a single key."""
    return int(key) // 256, int(key) % 256
