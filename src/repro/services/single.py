"""The degenerate single-service definition."""

from __future__ import annotations

import numpy as np

from repro.services.base import ServiceMap


class SingleServiceMap(ServiceMap):
    """All ports belong to one service.

    The paper shows this definition collapses minority classes into the
    Mirai-dominated background (Table 4, left block).
    """

    @property
    def names(self) -> tuple[str, ...]:
        return ("all",)

    def service_ids(self, ports: np.ndarray, protos: np.ndarray) -> np.ndarray:
        return np.zeros(len(ports), dtype=np.int32)

    def to_spec(self) -> dict:
        """Spec document (``{"kind": "single"}``)."""
        return {"kind": "single"}
