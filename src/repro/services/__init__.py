"""Service definitions (paper Section 5.2).

A *service* is a set of destination (port, protocol) pairs.  The corpus
builder splits darknet packets into per-service sequences; the three
definitions studied in the paper are:

* :class:`SingleServiceMap` — every packet in one service;
* :class:`AutoServiceMap` — one service per top-``n`` port, one shared
  service for the rest;
* :class:`DomainServiceMap` — the 15 hand-curated services of Table 7.
"""

import numpy as np

from repro.services.auto import AutoServiceMap
from repro.services.base import ServiceMap
from repro.services.domain import DOMAIN_SERVICE_PORTS, DomainServiceMap
from repro.services.ports import format_port, parse_port
from repro.services.single import SingleServiceMap


def service_map_from_spec(spec: dict) -> ServiceMap:
    """Rebuild a service map from a ``ServiceMap.to_spec`` document.

    Inverse of the built-in maps' ``to_spec``; raises ``ValueError``
    for unknown kinds (e.g. specs of custom subclasses).
    """
    kind = spec.get("kind")
    if kind == "single":
        return SingleServiceMap()
    if kind == "domain":
        return DomainServiceMap()
    if kind == "auto":
        return AutoServiceMap(np.asarray(spec["top_keys"], dtype=np.int64))
    raise ValueError(f"unknown service-map spec kind: {kind!r}")


__all__ = [
    "AutoServiceMap",
    "DOMAIN_SERVICE_PORTS",
    "DomainServiceMap",
    "ServiceMap",
    "SingleServiceMap",
    "format_port",
    "parse_port",
    "service_map_from_spec",
]
