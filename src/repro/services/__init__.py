"""Service definitions (paper Section 5.2).

A *service* is a set of destination (port, protocol) pairs.  The corpus
builder splits darknet packets into per-service sequences; the three
definitions studied in the paper are:

* :class:`SingleServiceMap` — every packet in one service;
* :class:`AutoServiceMap` — one service per top-``n`` port, one shared
  service for the rest;
* :class:`DomainServiceMap` — the 15 hand-curated services of Table 7.
"""

from repro.services.auto import AutoServiceMap
from repro.services.base import ServiceMap
from repro.services.domain import DOMAIN_SERVICE_PORTS, DomainServiceMap
from repro.services.ports import format_port, parse_port
from repro.services.single import SingleServiceMap

__all__ = [
    "AutoServiceMap",
    "DOMAIN_SERVICE_PORTS",
    "DomainServiceMap",
    "ServiceMap",
    "SingleServiceMap",
    "format_port",
    "parse_port",
]
