"""Leave-one-out evaluation over an embedded, labelled population.

This is the validation protocol of Sections 4 and 6: for every labelled
sender, hide its label, find its k nearest neighbours among *all*
senders (including Unknown ones), and predict by majority vote.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import AnnSpec, NeighborIndex
from repro.knn.classifier import CosineKnn


def leave_one_out_predictions(
    vectors: np.ndarray,
    labels: np.ndarray,
    eval_rows: np.ndarray,
    k: int = 7,
    workers: int = 1,
    spec: AnnSpec | None = None,
    index: NeighborIndex | None = None,
) -> np.ndarray:
    """LOO predictions for ``eval_rows``.

    Each evaluated row is excluded from its own neighbourhood; all other
    rows (whatever their label, Unknown included) may vote.  ``workers``
    parallelises the neighbour search without changing the predictions;
    ``spec`` selects the search backend, and ``index`` reuses an
    already-built index over the same vectors.
    """
    classifier = CosineKnn(
        vectors, labels, k=k, workers=workers, spec=spec, index=index
    )
    return classifier.predict_rows(np.asarray(eval_rows), exclude_self=True)
