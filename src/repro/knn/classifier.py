"""Cosine k-nearest-neighbour search and majority-vote classification."""

from __future__ import annotations

import numpy as np

from repro.w2v.mathutils import unit_rows

_CHUNK_ROWS = 1024


def knn_search(
    units: np.ndarray,
    query_rows: np.ndarray,
    k: int,
    exclude_self: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nearest rows (by cosine) for each query row.

    Args:
        units: row-normalised embedding matrix, shape (N, V).
        query_rows: indices of the rows to query.
        k: neighbours per query.
        exclude_self: drop the query row from its own neighbour list.

    Returns:
        ``(neighbors, similarities)`` of shape (Q, k); neighbours are
        sorted by decreasing similarity.
    """
    if k < 1:
        raise ValueError("k must be positive")
    n = len(units)
    query_rows = np.asarray(query_rows, dtype=np.int64)
    limit = k + 1 if exclude_self else k
    if n < limit:
        raise ValueError(f"need at least {limit} points for k={k}")

    neighbors = np.empty((len(query_rows), k), dtype=np.int64)
    sims = np.empty((len(query_rows), k))
    for lo in range(0, len(query_rows), _CHUNK_ROWS):
        hi = min(lo + _CHUNK_ROWS, len(query_rows))
        chunk = query_rows[lo:hi]
        scores = units[chunk] @ units.T  # (chunk, N)
        if exclude_self:
            scores[np.arange(len(chunk)), chunk] = -np.inf
        top = np.argpartition(scores, -k, axis=1)[:, -k:]
        top_scores = np.take_along_axis(scores, top, axis=1)
        order = np.argsort(top_scores, axis=1)[:, ::-1]
        neighbors[lo:hi] = np.take_along_axis(top, order, axis=1)
        sims[lo:hi] = np.take_along_axis(top_scores, order, axis=1)
    return neighbors, sims


class CosineKnn:
    """Majority-vote k-NN classifier in an embedding space.

    The classifier predicts the label of each query point from the
    labels of its ``k`` nearest neighbours (cosine similarity), breaking
    ties by the summed similarity of the tied labels — a deterministic
    refinement of the paper's majority vote.
    """

    def __init__(self, vectors: np.ndarray, labels: np.ndarray, k: int = 7) -> None:
        if len(vectors) != len(labels):
            raise ValueError("vectors and labels must align")
        if k < 1:
            raise ValueError("k must be positive")
        self.units = unit_rows(np.asarray(vectors))
        self.labels = np.asarray(labels, dtype=object)
        self.k = k

    def predict_rows(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> np.ndarray:
        """Predicted labels for the given row indices."""
        neighbors, sims = knn_search(
            self.units, query_rows, self.k, exclude_self=exclude_self
        )
        return majority_vote(self.labels, neighbors, sims)

    def neighbor_distances(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> np.ndarray:
        """Mean cosine *distance* (1 - similarity) to the k neighbours."""
        _, sims = knn_search(self.units, query_rows, self.k, exclude_self=exclude_self)
        return 1.0 - sims.mean(axis=1)


def majority_vote(
    labels: np.ndarray, neighbors: np.ndarray, similarities: np.ndarray
) -> np.ndarray:
    """Label of the majority of each row's neighbours.

    Ties break on the larger summed similarity, then lexicographically,
    so results are reproducible.
    """
    predictions = np.empty(len(neighbors), dtype=object)
    for i, (row_neighbors, row_sims) in enumerate(zip(neighbors, similarities)):
        votes: dict[str, int] = {}
        weight: dict[str, float] = {}
        for neighbor, sim in zip(row_neighbors, row_sims):
            label = labels[neighbor]
            votes[label] = votes.get(label, 0) + 1
            weight[label] = weight.get(label, 0.0) + float(sim)
        predictions[i] = max(votes, key=lambda lab: (votes[lab], weight[lab], lab))
    return predictions
