"""Cosine k-nearest-neighbour search and majority-vote classification.

The search itself lives in :mod:`repro.ann`: :func:`knn_search` builds
the backend an :class:`~repro.ann.base.AnnSpec` asks for (brute force
by default, IVF when configured) and queries it.  Callers that search
the same vectors repeatedly should build one index via
:func:`repro.ann.build_index` — or one :class:`CosineKnn`, which also
caches the last search so prediction and distance extraction share a
single k-NN pass.
"""

from __future__ import annotations

import numpy as np

from repro.ann.base import AnnSpec, NeighborIndex, build_index
from repro.w2v.mathutils import unit_rows


def knn_search(
    units: np.ndarray,
    query_rows: np.ndarray,
    k: int,
    exclude_self: bool = True,
    workers: int = 1,
    spec: AnnSpec | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nearest rows (by cosine) for each query row.

    Args:
        units: row-normalised embedding matrix, shape (N, V).
        query_rows: indices of the rows to query.
        k: neighbours per query.
        exclude_self: drop the query row from its own neighbour list.
        workers: query chunks dispatched to a thread pool (0 = all
            cores).  Chunks write disjoint output slices, so the result
            is bitwise identical for every ``workers`` value.
        spec: backend selection; None means exact brute force.

    Returns:
        ``(neighbors, similarities)`` of shape (Q, k); neighbours are
        sorted by decreasing similarity.
    """
    index = build_index(units, spec=spec, workers=workers)
    return index.search(query_rows, k, exclude_self=exclude_self, workers=workers)


class CosineKnn:
    """Majority-vote k-NN classifier in an embedding space.

    The classifier predicts the label of each query point from the
    labels of its ``k`` nearest neighbours (cosine similarity), breaking
    ties by the summed similarity of the tied labels — a deterministic
    refinement of the paper's majority vote.  ``workers`` parallelises
    the neighbour search without changing any result.

    :meth:`predict_rows` and :meth:`neighbor_distances` both consume
    the ``(neighbors, similarities)`` of one :meth:`search`, which
    memoises its last result — evaluating predictions and distances
    for the same query set costs a single k-NN pass.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        labels: np.ndarray,
        k: int = 7,
        workers: int = 1,
        spec: AnnSpec | None = None,
        index: NeighborIndex | None = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        if index is not None:
            if len(index.units) != len(labels):
                raise ValueError("index and labels must align")
            self.index = index
        else:
            if len(vectors) != len(labels):
                raise ValueError("vectors and labels must align")
            self.index = build_index(
                unit_rows(np.asarray(vectors)), spec=spec, workers=workers
            )
        self.units = self.index.units
        self.labels = np.asarray(labels, dtype=object)
        self.k = k
        self.workers = workers
        # Label-encode once: np.unique over an object array is an
        # O(N log N) python-comparison sort, far too slow to repeat
        # per query when the classifier serves point lookups — and at
        # serving scale too slow even once per snapshot promotion.
        # Hash-dedupe first: darknet label sets are tiny, so sorting
        # the distinct labels and mapping codes through a dict is O(N)
        # hashes, ~5x faster, and yields the identical sorted classes
        # and inverse codes.
        labels_list = self.labels.tolist()
        classes = sorted(set(labels_list))
        lut = {label: code for code, label in enumerate(classes)}
        self._unique_labels = np.asarray(classes, dtype=object)
        self._codes = np.fromiter(
            (lut[label] for label in labels_list),
            dtype=np.intp,
            count=len(labels_list),
        )
        self._cached: tuple[tuple, tuple[np.ndarray, np.ndarray]] | None = None

    def search(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(neighbors, similarities)`` for the given row indices.

        The most recent result is cached, so consecutive calls with
        the same queries (predict + distances) search once.  The cache
        is read into a local before the key check, so concurrent
        searches for different queries (the serving read path runs one
        classifier under many handler threads) can never return each
        other's result — at worst a concurrent writer wastes a search.
        """
        query_rows = np.asarray(query_rows, dtype=np.int64)
        key = (query_rows.tobytes(), bool(exclude_self), self.k)
        cached = self._cached
        if cached is not None and cached[0] == key:
            return cached[1]
        result = self.index.search(
            query_rows, self.k, exclude_self=exclude_self, workers=self.workers
        )
        self._cached = (key, result)
        return result

    def predict_rows(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> np.ndarray:
        """Predicted labels for the given row indices."""
        neighbors, sims = self.search(query_rows, exclude_self=exclude_self)
        return vote_encoded(self._unique_labels, self._codes, neighbors, sims)

    def neighbor_distances(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> np.ndarray:
        """Mean cosine *distance* (1 - similarity) to the k neighbours."""
        _, sims = self.search(query_rows, exclude_self=exclude_self)
        return 1.0 - sims.mean(axis=1)


def majority_vote(
    labels: np.ndarray, neighbors: np.ndarray, similarities: np.ndarray
) -> np.ndarray:
    """Label of the majority of each row's neighbours.

    Ties break on the larger summed similarity, then lexicographically,
    so results are reproducible.  Implemented as label-encoded bincounts
    over the flattened (Q, k) neighbour matrix: per (row, label) cell,
    vote counts and similarity sums accumulate in the same left-to-right
    neighbour order as a per-row loop would, so the result (including
    float-exact tie behaviour) matches the naive implementation.
    """
    labels = np.asarray(labels, dtype=object)
    unique_labels, codes = np.unique(labels, return_inverse=True)
    return vote_encoded(unique_labels, codes, neighbors, similarities)


def vote_encoded(
    unique_labels: np.ndarray,
    codes: np.ndarray,
    neighbors: np.ndarray,
    similarities: np.ndarray,
) -> np.ndarray:
    """:func:`majority_vote` over pre-encoded labels.

    ``codes`` maps each row to its index in the sorted ``unique_labels``
    (the ``np.unique(..., return_inverse=True)`` pair).  Encoding once
    and voting many times is what keeps per-query classification O(k)
    in the serving read path instead of O(N) label comparisons.
    """
    n_queries = len(neighbors)
    predictions = np.empty(n_queries, dtype=object)
    if n_queries == 0:
        return predictions
    n_labels = len(unique_labels)
    neighbor_codes = codes[np.asarray(neighbors)]  # (Q, k)
    cells = (
        np.arange(n_queries)[:, None] * n_labels + neighbor_codes
    ).ravel()
    votes = np.bincount(cells, minlength=n_queries * n_labels).reshape(
        n_queries, n_labels
    )
    weights = np.bincount(
        cells,
        weights=np.asarray(similarities, dtype=np.float64).ravel(),
        minlength=n_queries * n_labels,
    ).reshape(n_queries, n_labels)
    best_votes = votes.max(axis=1, keepdims=True)
    tied_weights = np.where(votes == best_votes, weights, -np.inf)
    best_weights = tied_weights.max(axis=1, keepdims=True)
    tied = tied_weights == best_weights
    # unique_labels is sorted, so the *last* tied column is the
    # lexicographically largest label — matching max()'s tie-break.
    winner = n_labels - 1 - np.argmax(tied[:, ::-1], axis=1)
    predictions[:] = unique_labels[winner]
    return predictions
