"""Cosine k-nearest-neighbour search and majority-vote classification."""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.parallel.pool import WorkerPool
from repro.w2v.mathutils import unit_rows

_CHUNK_ROWS = 1024


def knn_search(
    units: np.ndarray,
    query_rows: np.ndarray,
    k: int,
    exclude_self: bool = True,
    workers: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """The ``k`` nearest rows (by cosine) for each query row.

    Args:
        units: row-normalised embedding matrix, shape (N, V).
        query_rows: indices of the rows to query.
        k: neighbours per query.
        exclude_self: drop the query row from its own neighbour list.
        workers: query chunks dispatched to a thread pool (0 = all
            cores).  Chunks write disjoint output slices, so the result
            is bitwise identical for every ``workers`` value.

    Returns:
        ``(neighbors, similarities)`` of shape (Q, k); neighbours are
        sorted by decreasing similarity.
    """
    if k < 1:
        raise ValueError("k must be positive")
    n = len(units)
    query_rows = np.asarray(query_rows, dtype=np.int64)
    limit = k + 1 if exclude_self else k
    if n < limit:
        raise ValueError(f"need at least {limit} points for k={k}")

    neighbors = np.empty((len(query_rows), k), dtype=np.int64)
    sims = np.empty((len(query_rows), k))

    def search_chunk(bounds: tuple[int, int]) -> None:
        lo, hi = bounds
        chunk = query_rows[lo:hi]
        scores = units[chunk] @ units.T  # (chunk, N)
        if exclude_self:
            scores[np.arange(len(chunk)), chunk] = -np.inf
        top = np.argpartition(scores, -k, axis=1)[:, -k:]
        top_scores = np.take_along_axis(scores, top, axis=1)
        order = np.argsort(top_scores, axis=1)[:, ::-1]
        neighbors[lo:hi] = np.take_along_axis(top, order, axis=1)
        sims[lo:hi] = np.take_along_axis(top_scores, order, axis=1)

    chunks = [
        (lo, min(lo + _CHUNK_ROWS, len(query_rows)))
        for lo in range(0, len(query_rows), _CHUNK_ROWS)
    ]
    with obs.span("knn.search", k=k, queries=len(query_rows)) as sp:
        obs.add("knn.queries", len(query_rows))
        obs.add("knn.distance_computations", len(query_rows) * n)
        sp.set(items=len(query_rows) * n, items_unit="dists")
        if workers == 1 or len(chunks) <= 1:
            for bounds in chunks:
                search_chunk(bounds)
        else:
            with WorkerPool(workers) as pool:
                pool.map(search_chunk, chunks)
        obs.observe_many("knn.neighbor_distance", 1.0 - sims.ravel())
    return neighbors, sims


class CosineKnn:
    """Majority-vote k-NN classifier in an embedding space.

    The classifier predicts the label of each query point from the
    labels of its ``k`` nearest neighbours (cosine similarity), breaking
    ties by the summed similarity of the tied labels — a deterministic
    refinement of the paper's majority vote.  ``workers`` parallelises
    the neighbour search without changing any result.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        labels: np.ndarray,
        k: int = 7,
        workers: int = 1,
    ) -> None:
        if len(vectors) != len(labels):
            raise ValueError("vectors and labels must align")
        if k < 1:
            raise ValueError("k must be positive")
        self.units = unit_rows(np.asarray(vectors))
        self.labels = np.asarray(labels, dtype=object)
        self.k = k
        self.workers = workers

    def predict_rows(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> np.ndarray:
        """Predicted labels for the given row indices."""
        neighbors, sims = knn_search(
            self.units,
            query_rows,
            self.k,
            exclude_self=exclude_self,
            workers=self.workers,
        )
        return majority_vote(self.labels, neighbors, sims)

    def neighbor_distances(
        self, query_rows: np.ndarray, exclude_self: bool = False
    ) -> np.ndarray:
        """Mean cosine *distance* (1 - similarity) to the k neighbours."""
        _, sims = knn_search(
            self.units,
            query_rows,
            self.k,
            exclude_self=exclude_self,
            workers=self.workers,
        )
        return 1.0 - sims.mean(axis=1)


def majority_vote(
    labels: np.ndarray, neighbors: np.ndarray, similarities: np.ndarray
) -> np.ndarray:
    """Label of the majority of each row's neighbours.

    Ties break on the larger summed similarity, then lexicographically,
    so results are reproducible.  Implemented as label-encoded bincounts
    over the flattened (Q, k) neighbour matrix: per (row, label) cell,
    vote counts and similarity sums accumulate in the same left-to-right
    neighbour order as a per-row loop would, so the result (including
    float-exact tie behaviour) matches the naive implementation.
    """
    n_queries = len(neighbors)
    predictions = np.empty(n_queries, dtype=object)
    if n_queries == 0:
        return predictions
    labels = np.asarray(labels, dtype=object)
    unique_labels, codes = np.unique(labels, return_inverse=True)
    n_labels = len(unique_labels)
    neighbor_codes = codes[np.asarray(neighbors)]  # (Q, k)
    cells = (
        np.arange(n_queries)[:, None] * n_labels + neighbor_codes
    ).ravel()
    votes = np.bincount(cells, minlength=n_queries * n_labels).reshape(
        n_queries, n_labels
    )
    weights = np.bincount(
        cells,
        weights=np.asarray(similarities, dtype=np.float64).ravel(),
        minlength=n_queries * n_labels,
    ).reshape(n_queries, n_labels)
    best_votes = votes.max(axis=1, keepdims=True)
    tied_weights = np.where(votes == best_votes, weights, -np.inf)
    best_weights = tied_weights.max(axis=1, keepdims=True)
    tied = tied_weights == best_weights
    # unique_labels is sorted, so the *last* tied column is the
    # lexicographically largest label — matching max()'s tie-break.
    winner = n_labels - 1 - np.argmax(tied[:, ::-1], axis=1)
    predictions[:] = unique_labels[winner]
    return predictions
