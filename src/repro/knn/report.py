"""Per-class precision / recall / F-score reports (Tables 4 and 6)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.labels.groundtruth import UNKNOWN
from repro.utils.tables import format_table


@dataclass(frozen=True)
class ClassMetrics:
    """Precision, recall, F-score and support of one class."""

    precision: float
    recall: float
    f_score: float
    support: int


@dataclass
class ClassificationReport:
    """Evaluation summary in the paper's format.

    ``accuracy`` is the weighted average recall over the ground-truth
    classes, *excluding* Unknown — the paper skips Unknown senders when
    computing accuracy because their true class is unknowable.  The
    Unknown row still reports recall, as in Table 4.
    """

    per_class: dict[str, ClassMetrics]
    accuracy: float

    def macro_f(self, include_unknown: bool = False) -> float:
        """Unweighted mean F-score across classes."""
        scores = [
            metrics.f_score
            for name, metrics in self.per_class.items()
            if include_unknown or name != UNKNOWN
        ]
        return float(np.mean(scores)) if scores else 0.0

    def to_text(self, title: str | None = None) -> str:
        """Render as an aligned table, Unknown last (paper layout)."""
        names = [n for n in self.per_class if n != UNKNOWN]
        if UNKNOWN in self.per_class:
            names.append(UNKNOWN)
        rows = []
        for name in names:
            m = self.per_class[name]
            precision = f"{m.precision:.2f}" if name != UNKNOWN else "-"
            f_score = f"{m.f_score:.2f}" if name != UNKNOWN else "-"
            rows.append([name, precision, f"{m.recall:.2f}", f_score, m.support])
        table = format_table(
            ["Class", "Precision", "Recall", "F-Score", "Support"], rows, title=title
        )
        return f"{table}\nAccuracy (GT classes): {self.accuracy:.4f}"


def classification_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    classes: tuple[str, ...] | None = None,
) -> ClassificationReport:
    """Compute the per-class report from true/predicted label arrays.

    Args:
        y_true: true labels (may include ``Unknown``).
        y_pred: predicted labels, aligned with ``y_true``.
        classes: class ordering; defaults to classes present in
            ``y_true`` (Unknown last).
    """
    y_true = np.asarray(y_true, dtype=object)
    y_pred = np.asarray(y_pred, dtype=object)
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must align")
    if classes is None:
        present = sorted({label for label in y_true if label != UNKNOWN})
        classes = tuple(present) + ((UNKNOWN,) if UNKNOWN in set(y_true) else ())

    per_class: dict[str, ClassMetrics] = {}
    for name in classes:
        true_mask = y_true == name
        pred_mask = y_pred == name
        tp = int(np.sum(true_mask & pred_mask))
        support = int(true_mask.sum())
        predicted = int(pred_mask.sum())
        precision = tp / predicted if predicted else 0.0
        recall = tp / support if support else 0.0
        f_score = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        per_class[name] = ClassMetrics(
            precision=precision, recall=recall, f_score=f_score, support=support
        )

    gt_mask = y_true != UNKNOWN
    n_gt = int(gt_mask.sum())
    accuracy = float(np.sum(y_true[gt_mask] == y_pred[gt_mask]) / n_gt) if n_gt else 0.0
    return ClassificationReport(per_class=per_class, accuracy=accuracy)
