"""Semi-supervised analysis: cosine k-NN classification (Section 6)."""

from repro.knn.classifier import CosineKnn, knn_search
from repro.knn.loo import leave_one_out_predictions
from repro.knn.report import ClassificationReport, classification_report

__all__ = [
    "ClassificationReport",
    "CosineKnn",
    "classification_report",
    "knn_search",
    "leave_one_out_predictions",
]
