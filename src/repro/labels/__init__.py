"""Ground-truth label management (paper Section 3.2)."""

from repro.labels.groundtruth import (
    GT_CLASSES,
    UNKNOWN,
    GroundTruth,
)

__all__ = ["GT_CLASSES", "GroundTruth", "UNKNOWN"]
