"""Ground-truth classes and sender labelling.

The paper labels senders from two sources: the Mirai fingerprint found
in packets, and published address lists of known scan projects
(Table 2).  In this reproduction the simulator plays the role of those
sources: actor groups with a ``label`` contribute their addresses to
the ground truth, every other sender is ``Unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.packet import Trace

UNKNOWN = "Unknown"

#: The nine ground-truth classes of Table 2, in the paper's order.
GT_CLASSES = (
    "Mirai-like",
    "Censys",
    "Stretchoid",
    "Internet-census",
    "Binaryedge",
    "Sharashka",
    "Ipip",
    "Shodan",
    "Engin-umich",
)


@dataclass
class GroundTruth:
    """Mapping from sender IP addresses to class labels.

    Senders absent from the mapping are implicitly ``Unknown``.
    """

    by_ip: dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for ip, label in self.by_ip.items():
            if label == UNKNOWN:
                raise ValueError(
                    f"ip {ip}: do not store Unknown explicitly; omit the entry"
                )

    @property
    def classes(self) -> tuple[str, ...]:
        """Distinct labels present, in first-seen order."""
        seen: dict[str, None] = {}
        for label in self.by_ip.values():
            seen.setdefault(label)
        return tuple(seen)

    def label_of(self, ip: int) -> str:
        """Label of a single address (``Unknown`` when unlabeled)."""
        return self.by_ip.get(int(ip), UNKNOWN)

    def labels_for(self, trace: Trace) -> np.ndarray:
        """Per-sender-index label array aligned with ``trace.sender_ips``."""
        return np.array(
            [self.by_ip.get(int(ip), UNKNOWN) for ip in trace.sender_ips],
            dtype=object,
        )

    def class_counts(self, trace: Trace, sender_indices: np.ndarray) -> dict[str, int]:
        """Number of the given senders in each class (including Unknown)."""
        labels = self.labels_for(trace)
        counts: dict[str, int] = {}
        for idx in sender_indices:
            label = labels[idx]
            counts[label] = counts.get(label, 0) + 1
        return counts

    def add_class(self, label: str, ips: np.ndarray) -> None:
        """Register all ``ips`` as members of ``label``."""
        if label == UNKNOWN:
            raise ValueError("Unknown is implicit; do not add it")
        for ip in ips:
            ip = int(ip)
            existing = self.by_ip.get(ip)
            if existing is not None and existing != label:
                raise ValueError(
                    f"ip {ip} already labeled {existing}, cannot relabel {label}"
                )
            self.by_ip[ip] = label

    def merge(self, other: "GroundTruth") -> "GroundTruth":
        """New ground truth with the union of both mappings."""
        merged = GroundTruth(dict(self.by_ip))
        for ip, label in other.by_ip.items():
            merged.add_class(label, np.array([ip]))
        return merged
