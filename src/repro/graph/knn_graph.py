"""Directed k'-NN similarity graph over an embedding (Section 7.1).

Each embedded sender becomes a vertex connected to its k' nearest
neighbours; edge weights are cosine similarities.  The graph is directed
(neighbourhood is not symmetric); community detection symmetrises it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.ann.base import AnnSpec, NeighborIndex, build_index
from repro.w2v.mathutils import unit_rows


@dataclass
class KnnGraph:
    """Edge-list representation of the directed k'-NN graph.

    Attributes:
        n_nodes: number of vertices (= embedded senders).
        sources, targets: aligned edge endpoint arrays.
        weights: cosine similarity of each edge, clipped to >= 0.
    """

    n_nodes: int
    sources: np.ndarray
    targets: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.sources) == len(self.targets) == len(self.weights)):
            raise ValueError("edge columns must align")
        if len(self.sources) and (
            self.sources.max() >= self.n_nodes or self.targets.max() >= self.n_nodes
        ):
            raise ValueError("edge endpoint out of range")

    @property
    def n_edges(self) -> int:
        return len(self.sources)

    def symmetric_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays of the symmetrised graph: ``w[i][j] = w_ij + w_ji``.

        Self-loops are dropped.  Returns ``(indptr, indices, weights)``
        with node ``i``'s neighbours at ``indices[indptr[i]:indptr[i+1]]``
        (sorted ascending) and the matching summed weights alongside.
        Built with one sort + segmented reduce over the doubled edge
        list — no Python-level edge loop.
        """
        n = self.n_nodes
        keep = self.sources != self.targets
        u = self.sources[keep].astype(np.int64)
        v = self.targets[keep].astype(np.int64)
        w = self.weights[keep].astype(np.float64)
        if len(u) == 0:
            return (
                np.zeros(n + 1, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
            )
        heads = np.concatenate([u, v])
        tails = np.concatenate([v, u])
        doubled = np.concatenate([w, w])
        key = heads * n + tails
        order = np.argsort(key, kind="stable")
        key_sorted = key[order]
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(key_sorted) != 0) + 1]
        )
        weights = np.add.reduceat(doubled[order], starts)
        unique_keys = key_sorted[starts]
        rows = unique_keys // n
        indices = unique_keys - rows * n
        indptr = np.searchsorted(rows, np.arange(n + 1)).astype(np.int64)
        return indptr, indices, weights

    def symmetric_adjacency(self) -> list[dict[int, float]]:
        """Undirected weighted adjacency: ``w[i][j] = w_ij + w_ji``.

        Self-loops are dropped.  This is the input Louvain consumes;
        the dicts are materialised from :meth:`symmetric_csr`.
        """
        indptr, indices, weights = self.symmetric_csr()
        return [
            dict(zip(indices[lo:hi].tolist(), weights[lo:hi].tolist()))
            for lo, hi in zip(indptr[:-1], indptr[1:])
        ]

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (for validation/analysis)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n_nodes))
        graph.add_weighted_edges_from(
            (int(u), int(v), float(w))
            for u, v, w in zip(self.sources, self.targets, self.weights)
        )
        return graph


def build_knn_graph(
    vectors: np.ndarray,
    k_prime: int = 3,
    workers: int = 1,
    spec: AnnSpec | None = None,
    index: NeighborIndex | None = None,
) -> KnnGraph:
    """Connect every embedded point to its ``k_prime`` nearest points.

    Cosine similarities can be negative; negative-weight edges would
    break modularity, so weights are clipped at zero (the edge remains,
    with zero influence).  ``workers`` parallelises the neighbour
    search; the graph is identical for every value.  ``spec`` selects
    the search backend; ``index`` reuses an already-built index over
    the same vectors (``vectors`` may then be None).
    """
    if k_prime < 1:
        raise ValueError("k_prime must be positive")
    if index is None:
        index = build_index(
            unit_rows(np.asarray(vectors)), spec=spec, workers=workers
        )
    n = len(index.units)
    all_rows = np.arange(n)
    with obs.span("graph.knn_graph", k_prime=k_prime, nodes=n) as sp:
        obs.set_gauge("graph.nodes", n)
        obs.add("graph.edges", n * k_prime)
        sp.set(items=n * k_prime, items_unit="edges")
        neighbors, sims = index.search(
            all_rows, k_prime, exclude_self=True, workers=workers
        )
    sources = np.repeat(all_rows, k_prime)
    targets = neighbors.reshape(-1)
    weights = np.clip(sims.reshape(-1), 0.0, None)
    return KnnGraph(n_nodes=n, sources=sources, targets=targets, weights=weights)
