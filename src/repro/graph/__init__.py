"""Unsupervised analysis: k'-NN graph + Louvain clustering (Section 7)."""

from repro.graph.classic import (
    cosine_agglomerative,
    cosine_dbscan,
    cosine_kmeans,
)
from repro.graph.knn_graph import KnnGraph, build_knn_graph
from repro.graph.louvain import louvain_communities
from repro.graph.modularity import modularity
from repro.graph.partition import (
    adjusted_mutual_info,
    adjusted_rand_index,
    rand_index,
)
from repro.graph.silhouette import cosine_silhouette, cluster_silhouettes

__all__ = [
    "KnnGraph",
    "adjusted_mutual_info",
    "adjusted_rand_index",
    "build_knn_graph",
    "cluster_silhouettes",
    "cosine_agglomerative",
    "cosine_dbscan",
    "cosine_kmeans",
    "cosine_silhouette",
    "louvain_communities",
    "modularity",
    "rand_index",
]
