"""Cosine-distance silhouette scores (Figure 11, Table 5).

The silhouette of a sample compares its cohesion (mean distance to its
own cluster) with its separation (mean distance to the closest other
cluster); values near 1 indicate well-formed clusters.
"""

from __future__ import annotations

import numpy as np

from repro.w2v.mathutils import unit_rows

_CHUNK_ROWS = 512


def cosine_silhouette(vectors: np.ndarray, communities: np.ndarray) -> np.ndarray:
    """Per-sample silhouette under cosine distance.

    Samples in singleton clusters get silhouette 0 (scikit-learn
    convention).  Computation is chunked so the full pairwise distance
    matrix never materialises.
    """
    vectors = np.asarray(vectors)
    communities = np.asarray(communities)
    n = len(vectors)
    if len(communities) != n:
        raise ValueError("communities must align with vectors")
    if n == 0:
        return np.empty(0)
    cluster_ids, cluster_index = np.unique(communities, return_inverse=True)
    n_clusters = len(cluster_ids)
    sizes = np.bincount(cluster_index, minlength=n_clusters)
    if n_clusters < 2:
        return np.zeros(n)

    units = unit_rows(vectors)
    # One-hot cluster membership for distance-sum aggregation.
    membership = np.zeros((n, n_clusters))
    membership[np.arange(n), cluster_index] = 1.0

    scores = np.empty(n)
    for lo in range(0, n, _CHUNK_ROWS):
        hi = min(lo + _CHUNK_ROWS, n)
        distances = 1.0 - units[lo:hi] @ units.T  # (chunk, n)
        sums = distances @ membership  # (chunk, n_clusters)
        own = cluster_index[lo:hi]
        own_size = sizes[own]
        with np.errstate(invalid="ignore", divide="ignore"):
            a = np.where(
                own_size > 1,
                sums[np.arange(hi - lo), own] / np.maximum(own_size - 1, 1),
                0.0,
            )
            means = sums / sizes[None, :]
        means[np.arange(hi - lo), own] = np.inf
        b = means.min(axis=1)
        denom = np.maximum(a, b)
        chunk_scores = np.where(denom > 0, (b - a) / denom, 0.0)
        chunk_scores[own_size == 1] = 0.0
        scores[lo:hi] = chunk_scores
    return scores


def cluster_silhouettes(
    vectors: np.ndarray, communities: np.ndarray
) -> dict[int, float]:
    """Mean silhouette per cluster, the quantity ranked in Figure 11."""
    scores = cosine_silhouette(vectors, communities)
    communities = np.asarray(communities)
    return {
        int(c): float(scores[communities == c].mean())
        for c in np.unique(communities)
    }
