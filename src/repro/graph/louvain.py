"""Louvain community detection, implemented from scratch.

Blondel et al., "Fast unfolding of communities in large networks"
(2008): repeat (1) greedy local moving of nodes between communities to
maximise modularity gain, (2) aggregation of communities into
super-nodes, until no move improves modularity.  The implementation is
deterministic for a given seed and validated against networkx's
``louvain_communities`` in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.utils.rng import make_rng


def louvain_communities(
    adjacency: list[dict[int, float]],
    resolution: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    min_gain: float = 1e-9,
) -> np.ndarray:
    """Community id per node (ids are contiguous, 0-based).

    Args:
        adjacency: symmetric weighted adjacency lists
            (``adjacency[u][v]`` is the weight of edge u-v; must equal
            ``adjacency[v][u]``).
        resolution: modularity resolution gamma.
        seed: node-visit order randomisation.
        min_gain: minimum modularity gain to accept a move.
    """
    rng = make_rng(seed)
    n = len(adjacency)
    if n == 0:
        return np.empty(0, dtype=np.int64)

    with obs.span("graph.louvain", nodes=n) as sp:
        # node -> community of the *original* graph, refined every level.
        membership = np.arange(n, dtype=np.int64)
        current = adjacency

        while True:
            obs.add("louvain.passes", 1)
            local, improved = _one_level(current, resolution, rng, min_gain)
            membership = local[membership]
            if not improved or len(np.unique(local)) == len(current):
                break
            current = _aggregate(current, local)
        # Renumber to contiguous ids.
        _, contiguous = np.unique(membership, return_inverse=True)
        sp.set(items=n, items_unit="nodes")
    return contiguous.astype(np.int64)


def _one_level(
    adjacency: list[dict[int, float]],
    resolution: float,
    rng: np.random.Generator,
    min_gain: float,
) -> tuple[np.ndarray, bool]:
    """Greedy local moving; returns (node -> community, any_move)."""
    n = len(adjacency)
    community = np.arange(n, dtype=np.int64)
    degree = np.array([sum(neigh.values()) for neigh in adjacency])
    self_loops = np.array([neigh.get(u, 0.0) for u, neigh in enumerate(adjacency)])
    community_degree = degree.astype(float).copy()
    two_m = degree.sum()
    if two_m == 0:
        return community, False

    any_move = False
    n_moves = 0
    moved = True
    while moved:
        moved = False
        for u in rng.permutation(n):
            u = int(u)
            own = int(community[u])
            # Weight from u to each neighbouring community.
            links: dict[int, float] = {}
            for v, w in adjacency[u].items():
                if v == u:
                    continue
                c = int(community[v])
                links[c] = links.get(c, 0.0) + w

            community_degree[own] -= degree[u]
            base = links.get(own, 0.0) - resolution * community_degree[own] * degree[
                u
            ] / two_m
            best_community, best_gain = own, 0.0
            for c, w_in in links.items():
                if c == own:
                    continue
                gain = (
                    w_in
                    - resolution * community_degree[c] * degree[u] / two_m
                    - base
                )
                if gain > best_gain + min_gain or (
                    abs(gain - best_gain) <= min_gain
                    and best_community != own
                    and c < best_community
                ):
                    best_community, best_gain = c, gain
            community_degree[best_community] += degree[u]
            if best_community != own:
                community[u] = best_community
                moved = True
                any_move = True
                n_moves += 1

    obs.add("louvain.moves", n_moves)
    _, contiguous = np.unique(community, return_inverse=True)
    return contiguous.astype(np.int64), any_move


def _aggregate(
    adjacency: list[dict[int, float]], community: np.ndarray
) -> list[dict[int, float]]:
    """Collapse communities into super-nodes, keeping self-loops."""
    n_communities = int(community.max()) + 1
    aggregated: list[dict[int, float]] = [dict() for _ in range(n_communities)]
    for u, neigh in enumerate(adjacency):
        cu = int(community[u])
        for v, w in neigh.items():
            cv = int(community[v])
            if u == v:
                # Self-loop weight appears once in the input adjacency.
                aggregated[cu][cu] = aggregated[cu].get(cu, 0.0) + w
            else:
                aggregated[cu][cv] = aggregated[cu].get(cv, 0.0) + w
    return aggregated
