"""Classic clustering algorithms on the raw embedding (Section 7.1).

The paper reports that k-Means, DBSCAN and hierarchical agglomerative
clustering "produce poor results due to the well-known curse of
dimensionality as well as their difficult parameter tuning", which is
why DarkVec clusters on the k'-NN graph instead.  These from-scratch
implementations (spherical k-Means, cosine DBSCAN, average-linkage
agglomerative via scipy) let the benchmark measure that claim.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from repro.utils.rng import make_rng
from repro.w2v.mathutils import unit_rows

_CHUNK = 1024


def cosine_kmeans(
    vectors: np.ndarray,
    n_clusters: int,
    seed: int | np.random.Generator | None = 0,
    max_iterations: int = 100,
) -> np.ndarray:
    """Spherical k-Means: k-Means on the unit sphere (cosine metric).

    Centroids are re-normalised each iteration; assignment maximises
    the cosine similarity.  Initialisation is k-means++-style on cosine
    distance.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be positive")
    units = unit_rows(np.asarray(vectors))
    n = len(units)
    if n_clusters > n:
        raise ValueError("more clusters than points")
    rng = make_rng(seed)

    # k-means++ seeding.
    centroids = np.empty((n_clusters, units.shape[1]))
    centroids[0] = units[rng.integers(n)]
    closest = 1.0 - units @ centroids[0]
    for i in range(1, n_clusters):
        probs = np.maximum(closest, 0.0)
        total = probs.sum()
        if total <= 0:
            pick = int(rng.integers(n))
        else:
            pick = int(rng.choice(n, p=probs / total))
        centroids[i] = units[pick]
        closest = np.minimum(closest, 1.0 - units @ centroids[i])

    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(max_iterations):
        scores = units @ centroids.T
        new_assignment = scores.argmax(axis=1)
        if np.array_equal(new_assignment, assignment) and _ > 0:
            break
        assignment = new_assignment
        for c in range(n_clusters):
            members = units[assignment == c]
            if len(members):
                centroid = members.sum(axis=0)
                norm = np.linalg.norm(centroid)
                if norm > 0:
                    centroids[c] = centroid / norm
            else:
                # Re-seed an empty cluster on the farthest point.
                farthest = int((1.0 - scores.max(axis=1)).argmax())
                centroids[c] = units[farthest]
    return assignment


def cosine_dbscan(
    vectors: np.ndarray,
    eps: float = 0.1,
    min_samples: int = 5,
) -> np.ndarray:
    """DBSCAN under cosine distance; noise points get label -1.

    Region queries are chunked matrix products (no spatial index is
    useful for cosine in 50 dimensions, which is part of the paper's
    point about these methods).
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    if min_samples < 1:
        raise ValueError("min_samples must be positive")
    units = unit_rows(np.asarray(vectors))
    n = len(units)
    threshold = 1.0 - eps  # similarity threshold

    # Precompute neighbour lists chunk by chunk.
    neighbors: list[np.ndarray] = []
    for lo in range(0, n, _CHUNK):
        hi = min(lo + _CHUNK, n)
        sims = units[lo:hi] @ units.T
        for row in sims:
            neighbors.append(np.flatnonzero(row >= threshold))
    core = np.array([len(nbrs) >= min_samples for nbrs in neighbors])

    labels = np.full(n, -1, dtype=np.int64)
    cluster = 0
    for point in range(n):
        if labels[point] != -1 or not core[point]:
            continue
        # BFS over density-connected core points.
        labels[point] = cluster
        frontier = [point]
        while frontier:
            current = frontier.pop()
            for neighbor in neighbors[current]:
                if labels[neighbor] == -1:
                    labels[neighbor] = cluster
                    if core[neighbor]:
                        frontier.append(int(neighbor))
        cluster += 1
    return labels


def cosine_agglomerative(
    vectors: np.ndarray,
    n_clusters: int,
    method: str = "average",
) -> np.ndarray:
    """Average-linkage hierarchical clustering on cosine distance.

    Uses scipy's linkage on the condensed distance matrix; quadratic
    memory, which is why the paper (and this reproduction) only applies
    it to moderate population sizes.
    """
    if n_clusters < 1:
        raise ValueError("n_clusters must be positive")
    units = unit_rows(np.asarray(vectors))
    n = len(units)
    if n_clusters > n:
        raise ValueError("more clusters than points")
    if n == 1:
        return np.zeros(1, dtype=np.int64)
    distances = np.clip(1.0 - units @ units.T, 0.0, 2.0)
    np.fill_diagonal(distances, 0.0)
    condensed = squareform(distances, checks=False)
    tree = linkage(condensed, method=method)
    labels = fcluster(tree, t=n_clusters, criterion="maxclust")
    return (labels - 1).astype(np.int64)
