"""Comparing two clusterings of the same nodes (Rand / mutual information).

The drift monitors (:mod:`repro.obs.drift`) need to quantify how much a
Louvain partition moved between two consecutive models of the same
retained senders.  The standard instruments are the (adjusted) Rand
index — pair-counting agreement — and adjusted mutual information —
information-theoretic agreement, corrected for chance so that two
random partitions score ~0 regardless of cluster counts.

Everything is implemented from scratch on the contingency table; the
only non-numpy dependency is ``math.lgamma`` for the exact expected
mutual information of the hypergeometric null model.
"""

from __future__ import annotations

from math import lgamma

import numpy as np


def contingency_table(labels_a: np.ndarray, labels_b: np.ndarray) -> np.ndarray:
    """Cluster co-occurrence counts between two partitions.

    Entry ``(i, j)`` counts the nodes assigned to cluster ``i`` of the
    first partition and cluster ``j`` of the second.  Labels may be any
    integers; they are compacted internally.
    """
    labels_a = np.asarray(labels_a)
    labels_b = np.asarray(labels_b)
    if labels_a.shape != labels_b.shape or labels_a.ndim != 1:
        raise ValueError("partitions must be 1-D and aligned")
    _, a = np.unique(labels_a, return_inverse=True)
    _, b = np.unique(labels_b, return_inverse=True)
    n_a = int(a.max()) + 1 if len(a) else 0
    n_b = int(b.max()) + 1 if len(b) else 0
    table = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(table, (a, b), 1)
    return table


def rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Plain Rand index: share of node pairs the partitions agree on."""
    table = contingency_table(labels_a, labels_b)
    n = table.sum()
    if n < 2:
        return 1.0
    sum_squares = float((table.astype(np.float64) ** 2).sum())
    sum_a = float((table.sum(axis=1).astype(np.float64) ** 2).sum())
    sum_b = float((table.sum(axis=0).astype(np.float64) ** 2).sum())
    n = float(n)
    agreements = n * (n - 1.0) + 2.0 * sum_squares - sum_a - sum_b
    return agreements / (n * (n - 1.0))


def adjusted_rand_index(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Rand index corrected for chance (Hubert & Arabie, 1985).

    1.0 for identical partitions, ~0 for independent ones; can go
    slightly negative for partitions that disagree more than chance.
    """
    table = contingency_table(labels_a, labels_b)
    n = int(table.sum())
    if n < 2:
        return 1.0

    def _pairs(counts: np.ndarray) -> float:
        counts = counts.astype(np.float64)
        return float((counts * (counts - 1.0)).sum() / 2.0)

    index = _pairs(table.ravel())
    pairs_a = _pairs(table.sum(axis=1))
    pairs_b = _pairs(table.sum(axis=0))
    total = n * (n - 1.0) / 2.0
    expected = pairs_a * pairs_b / total
    maximum = (pairs_a + pairs_b) / 2.0
    if maximum == expected:
        return 1.0
    return (index - expected) / (maximum - expected)


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a cluster-size vector."""
    counts = counts[counts > 0].astype(np.float64)
    n = counts.sum()
    if n == 0:
        return 0.0
    p = counts / n
    return float(-(p * np.log(p)).sum())


def mutual_information(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Mutual information (nats) between two partitions."""
    table = contingency_table(labels_a, labels_b).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    mi = 0.0
    row_sums = table.sum(axis=1)
    col_sums = table.sum(axis=0)
    rows, cols = np.nonzero(table)
    for i, j in zip(rows, cols):
        nij = table[i, j]
        mi += (nij / n) * np.log(n * nij / (row_sums[i] * col_sums[j]))
    return float(mi)


def _expected_mutual_information(table: np.ndarray) -> float:
    """E[MI] under the permutation (hypergeometric) null model.

    Vinh, Epps & Bailey (2010), eq. (24): for every (row, column)
    marginal pair the attainable co-occurrence counts follow a
    hypergeometric distribution; the expectation sums each count's MI
    contribution weighted by its exact probability (via ``lgamma``).
    """
    a = table.sum(axis=1).astype(np.int64)
    b = table.sum(axis=0).astype(np.int64)
    n = int(table.sum())
    if n == 0:
        return 0.0
    log_fact = np.array([lgamma(k + 1) for k in range(n + 1)])
    emi = 0.0
    for ai in a:
        if ai == 0:
            continue
        for bj in b:
            if bj == 0:
                continue
            lo = max(1, ai + bj - n)
            hi = min(ai, bj)
            for nij in range(lo, hi + 1):
                log_p = (
                    log_fact[ai]
                    + log_fact[bj]
                    + log_fact[n - ai]
                    + log_fact[n - bj]
                    - log_fact[n]
                    - log_fact[nij]
                    - log_fact[ai - nij]
                    - log_fact[bj - nij]
                    - log_fact[n - ai - bj + nij]
                )
                emi += (nij / n) * np.log(n * nij / (ai * bj)) * np.exp(log_p)
    return float(emi)


def adjusted_mutual_info(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Mutual information adjusted for chance (AMI, mean normalisation).

    ``(MI - E[MI]) / (mean(H_a, H_b) - E[MI])``: 1.0 for identical
    partitions, ~0 for independent ones.  Exact E[MI] is O(|A| x |B| x
    n) in the worst case — fine for the monitor-sized partitions this
    module serves (hundreds to a few thousand nodes).
    """
    table = contingency_table(labels_a, labels_b)
    h_a = _entropy(table.sum(axis=1))
    h_b = _entropy(table.sum(axis=0))
    if h_a == 0.0 and h_b == 0.0:
        return 1.0  # both partitions are a single cluster
    mi = mutual_information(labels_a, labels_b)
    emi = _expected_mutual_information(table)
    denominator = (h_a + h_b) / 2.0 - emi
    if abs(denominator) < 1e-12:
        return 1.0 if abs(mi - emi) < 1e-12 else 0.0
    return float((mi - emi) / denominator)
