"""Weighted undirected modularity (Newman).

Louvain maximises this quantity; it is also reported directly in
Figure 10 of the paper.
"""

from __future__ import annotations

import numpy as np


def modularity(
    adjacency: list[dict[int, float]],
    communities: np.ndarray,
    resolution: float = 1.0,
) -> float:
    """Modularity of a node->community assignment.

    Args:
        adjacency: symmetric weighted adjacency (``w[i][j] == w[j][i]``).
        communities: community id per node.
        resolution: resolution parameter gamma (1.0 = classic).
    """
    communities = np.asarray(communities)
    n = len(adjacency)
    if len(communities) != n:
        raise ValueError("communities must align with adjacency")
    degrees = np.array([sum(neigh.values()) for neigh in adjacency])
    two_m = degrees.sum()
    if two_m == 0:
        return 0.0

    internal = 0.0
    for u, neigh in enumerate(adjacency):
        for v, w in neigh.items():
            if communities[u] == communities[v]:
                internal += w  # each undirected edge counted twice

    community_degree: dict[int, float] = {}
    for u in range(n):
        c = int(communities[u])
        community_degree[c] = community_degree.get(c, 0.0) + degrees[u]
    expected = sum(d * d for d in community_degree.values()) / (two_m * two_m)
    return internal / two_m - resolution * expected
