"""Stable content fingerprints for pipeline stages and artifacts.

A fingerprint is a SHA-256 over a canonical byte encoding of a value.
The encoding is type-tagged (so ``1`` and ``"1"`` and ``True`` hash
differently), dict keys are sorted, and numpy arrays contribute their
dtype, shape and raw bytes — making the hash independent of process,
insertion order and interning, but sensitive to any content change.

Stage fingerprints combine, in a fixed layout:

* the stage name and its **code version** (bumped when the stage's
  implementation changes semantics),
* the values of the **config fields the stage depends on** (declared
  in :data:`repro.core.config.STAGE_CONFIG_FIELDS`),
* the **content hashes of upstream artifacts**, which gives early
  cutoff: a stage whose inputs hash the same is a cache hit even if a
  far-upstream knob changed and was recomputed to identical content.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

import numpy as np

#: Hex digest length used for artifact keys and filenames.  64 bits of
#: collision resistance is ample for a per-project on-disk cache.
DIGEST_CHARS = 16


def _encode(value, h) -> None:
    """Feed a canonical, type-tagged encoding of ``value`` into ``h``."""
    if value is None:
        h.update(b"N")
    elif isinstance(value, bool):
        h.update(b"B1" if value else b"B0")
    elif isinstance(value, (int, np.integer)):
        h.update(b"I" + str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        h.update(b"F" + repr(float(value)).encode())
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        h.update(b"S" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(value, bytes):
        h.update(b"Y" + str(len(value)).encode() + b":" + value)
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        h.update(b"A" + str(array.dtype).encode() + b":")
        h.update(str(array.shape).encode() + b":")
        h.update(array.tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"L" + str(len(value)).encode() + b"[")
        for item in value:
            _encode(item, h)
        h.update(b"]")
    elif isinstance(value, Mapping):
        h.update(b"D" + str(len(value)).encode() + b"{")
        for key in sorted(value):
            if not isinstance(key, str):
                raise TypeError(f"fingerprint dict keys must be str, got {key!r}")
            _encode(key, h)
            _encode(value[key], h)
        h.update(b"}")
    else:
        raise TypeError(
            f"cannot fingerprint value of type {type(value).__name__}: {value!r}"
        )


def stable_hash(value) -> str:
    """Hex fingerprint of ``value`` (first :data:`DIGEST_CHARS` chars).

    Supports None, bool, int, float, str, bytes, numpy arrays/scalars,
    and (nested) lists, tuples and str-keyed mappings thereof; anything
    else raises ``TypeError`` so unexpected inputs fail loudly instead
    of hashing unstably via ``repr``.
    """
    h = hashlib.sha256()
    _encode(value, h)
    return h.hexdigest()[:DIGEST_CHARS]


def stage_fingerprint(
    stage: str,
    version: int,
    config_fields: Mapping[str, object],
    upstream: Mapping[str, str],
    inputs: Mapping[str, str] | None = None,
) -> str:
    """Cache key of one stage execution.

    Args:
        stage: stage name (``"corpus"``, ``"train"``, ...).
        version: the stage's code version; bump on semantic changes.
        config_fields: the config knobs this stage reads, by name.
        upstream: content hashes of consumed upstream artifacts, keyed
            by producing stage name.
        inputs: content hashes of external inputs (e.g. the raw trace
            for the ingest stage).
    """
    return stable_hash(
        {
            "stage": stage,
            "version": version,
            "config": dict(config_fields),
            "upstream": dict(upstream),
            "inputs": dict(inputs or {}),
        }
    )
