"""On-disk content-addressed artifact store.

Layout under the store root::

    objects/<stage>-<fingerprint><suffix>       artifact payload
    objects/<stage>-<fingerprint>.meta.json     integrity + provenance

The meta record carries two hashes: ``content_hash`` is the canonical
payload-level hash (used to key downstream stage fingerprints, stable
across serialisation details) and ``file_sha256`` is the digest of the
payload bytes as written (used to detect corruption on load).  A load
whose bytes do not match, whose meta is unreadable, or whose payload
fails to deserialise is treated as a miss: the artifact is discarded
and the stage recomputes — the cache can lose work, never corrupt it.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from repro import obs

#: Meta-record schema version; bump when the layout changes.
META_FORMAT = 1

#: Read granularity for file digests; bounds digest RSS for raw
#: multi-GB artifacts that would otherwise be slurped whole.
_HASH_CHUNK_BYTES = 8 << 20


def file_sha256(path: Path) -> str:
    """Streaming sha256 of a file's bytes (constant memory)."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK_BYTES)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactStore:
    """Fingerprint-keyed object store rooted at a directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _payload_path(self, stage: str, fingerprint: str, suffix: str) -> Path:
        return self.objects / f"{stage}-{fingerprint}{suffix}"

    def _meta_path(self, stage: str, fingerprint: str) -> Path:
        return self.objects / f"{stage}-{fingerprint}.meta.json"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def _read_meta(self, stage: str, fingerprint: str, suffix: str) -> dict | None:
        """Integrity-checked meta record, or None on miss/corruption."""
        meta_path = self._meta_path(stage, fingerprint)
        payload_path = self._payload_path(stage, fingerprint, suffix)
        if not meta_path.exists() and not payload_path.exists():
            obs.add("store.misses")
            return None
        try:
            meta = json.loads(meta_path.read_text())
            if meta.get("format") != META_FORMAT:
                raise ValueError("unknown meta format")
            if file_sha256(payload_path) != meta["file_sha256"]:
                raise ValueError("payload bytes do not match recorded digest")
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            obs.add("store.invalid")
            obs.add("store.misses")
            return None
        return meta

    def load(self, stage: str, fingerprint: str, codec):
        """Load an artifact; returns ``(obj, content_hash)`` or None.

        None means cache miss — either the artifact was never stored or
        it failed the integrity check and must be recomputed.
        """
        meta = self._read_meta(stage, fingerprint, codec.suffix)
        if meta is None:
            return None
        path = self._payload_path(stage, fingerprint, codec.suffix)
        try:
            obj = codec.load(path)
        except Exception:
            obs.add("store.invalid")
            obs.add("store.misses")
            return None
        obs.add("store.hits")
        return obj, meta["content_hash"]

    def verify(self, stage: str, fingerprint: str, codec) -> str | None:
        """Check presence + integrity without deserialising the payload.

        Returns the stored content hash on success, None on miss.  Used
        for artifacts the caller already holds in memory (the ingest
        stage's trace), where a full load would be wasted work.
        """
        meta = self._read_meta(stage, fingerprint, codec.suffix)
        if meta is None:
            return None
        obs.add("store.hits")
        return meta["content_hash"]

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def save(self, stage: str, fingerprint: str, codec, obj) -> str:
        """Persist an artifact and its meta record; returns its content hash."""
        path = self._payload_path(stage, fingerprint, codec.suffix)
        codec.save(obj, path)
        content_hash = codec.content_hash(obj)
        meta = {
            "format": META_FORMAT,
            "stage": stage,
            "fingerprint": fingerprint,
            "content_hash": content_hash,
            "file_sha256": file_sha256(path),
            "payload": path.name,
            "created_unix": time.time(),
        }
        self._meta_path(stage, fingerprint).write_text(
            json.dumps(meta, sort_keys=True, indent=1)
        )
        obs.add("store.writes")
        return content_hash

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def entries(self) -> list[dict]:
        """All readable meta records, sorted by creation time."""
        records = []
        for meta_path in self.objects.glob("*.meta.json"):
            try:
                records.append(json.loads(meta_path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        records.sort(key=lambda meta: meta.get("created_unix", 0.0))
        return records
