"""Content-addressed artifact store for the staged pipeline.

Every stage of the DarkVec pipeline (``ingest -> service-map ->
corpus -> vocab -> train -> knn-index``) consumes and produces
persistable artifacts.  This package provides:

* :mod:`repro.store.fingerprint` — stable content hashes over plain
  values and numpy arrays, and the stage-fingerprint recipe
  (stage code version + relevant config fields + upstream artifact
  hashes), so an unchanged configuration is a pure cache hit and a
  changed knob re-runs only the stages downstream of it.
* :mod:`repro.store.cache` — :class:`~repro.store.cache.ArtifactStore`,
  the on-disk object store keyed by those fingerprints, with
  integrity-checked loads (a corrupted artifact is discarded and
  recomputed, never trusted).
* :mod:`repro.store.state` — persistence of a fitted
  :class:`~repro.core.pipeline.DarkVec` so ``repro update`` can append
  a day of traffic to yesterday's state.
"""

from repro.store.cache import ArtifactStore
from repro.store.fingerprint import stable_hash, stage_fingerprint

__all__ = ["ArtifactStore", "stable_hash", "stage_fingerprint"]
