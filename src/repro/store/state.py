"""Persisting a fitted :class:`~repro.core.pipeline.DarkVec`.

The daily-retrain loop (``repro update``) needs yesterday's fitted
state — trace, unfiltered corpus, embedding, window-grid origin — to
apply a warm incremental update without re-reading old days.  This
module writes that state as a small directory::

    <state>/
      config.json      # DarkVecConfig + resolved service-map spec
      meta.json        # format version, dT-grid origin
      trace.npz        # rolling-window trace
      corpus.npz       # unfiltered corpus (every observed sender)
      embedding.npz    # trained KeyedVectors

All arrays go through the artifact codecs of
:mod:`repro.io.artifacts`, so the files are plain ``.npz``/JSON with no
pickled objects.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

from repro.core.config import DarkVecConfig
from repro.io.artifacts import CORPUS_CODEC, KEYEDVECTORS_CODEC, TRACE_CODEC
from repro.services import service_map_from_spec
from repro.services.base import ServiceMap

#: Bump when the state layout changes incompatibly.
STATE_FORMAT = 1


def _write_json(path: Path, document: dict) -> None:
    """Write JSON crash-safely (temp file + ``os.replace``).

    ``repro update`` overwrites yesterday's state in place; an
    interrupted write must never leave a truncated ``config.json`` /
    ``meta.json`` that would make the state unloadable.
    """
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        tmp.write_text(json.dumps(document, sort_keys=True, indent=1))
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def save_state(darkvec, path: str | Path) -> None:
    """Write the fitted state of ``darkvec`` under directory ``path``.

    Raises ``NotFittedError`` when ``darkvec`` has not been fitted and
    ``ValueError`` when its service map is a custom instance without a
    serialisable spec (``to_spec() is None``).
    """
    trace, embedding = darkvec._require_fit()
    service_spec = darkvec._service_map.to_spec()
    if service_spec is None:
        raise ValueError(
            "cannot persist state: the service map "
            f"{type(darkvec._service_map).__qualname__} has no serialisable "
            "spec (to_spec() returned None)"
        )
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)

    config = dataclasses.asdict(darkvec.config)
    if isinstance(darkvec.config.service, ServiceMap):
        # asdict() cannot round-trip a ServiceMap; the resolved spec can.
        config["service"] = service_spec
    if config["cache_dir"] is not None:
        config["cache_dir"] = str(config["cache_dir"])

    _write_json(path / "config.json", config)
    _write_json(
        path / "meta.json",
        {
            "format": STATE_FORMAT,
            "t_origin": darkvec._t_origin,
            "service_spec": service_spec,
        },
    )
    TRACE_CODEC.save(trace, path / "trace.npz")
    CORPUS_CODEC.save(darkvec._raw_corpus, path / "corpus.npz")
    KEYEDVECTORS_CODEC.save(embedding, path / "embedding.npz")


def load_state(path: str | Path):
    """Restore a fitted :class:`~repro.core.pipeline.DarkVec`.

    Inverse of :func:`save_state`.  Raises ``FileNotFoundError`` when
    the directory lacks the state files and ``ValueError`` on a state
    format this code does not understand.
    """
    from repro.core.pipeline import DarkVec

    path = Path(path)
    meta = json.loads((path / "meta.json").read_text())
    if meta.get("format") != STATE_FORMAT:
        raise ValueError(
            f"unsupported state format {meta.get('format')!r} at {path}; "
            f"this build reads format {STATE_FORMAT}"
        )
    config_doc = json.loads((path / "config.json").read_text())
    if isinstance(config_doc["service"], dict):
        config_doc["service"] = service_map_from_spec(config_doc["service"])
    config = DarkVecConfig(**config_doc)

    darkvec = DarkVec(config)
    trace = TRACE_CODEC.load(path / "trace.npz")
    raw_corpus = CORPUS_CODEC.load(path / "corpus.npz")
    embedding = KEYEDVECTORS_CODEC.load(path / "embedding.npz")
    active = trace.active_senders(config.min_packets)

    darkvec.trace = trace
    darkvec._raw_corpus = raw_corpus
    darkvec._active = active
    darkvec.corpus = raw_corpus.filtered_to(active)
    darkvec.embedding = embedding
    darkvec._t_origin = float(meta["t_origin"])
    darkvec._service_map = service_map_from_spec(meta["service_spec"])
    darkvec._embedding_hash = KEYEDVECTORS_CODEC.content_hash(embedding)
    return darkvec
