"""Artifact serialisation for the staged pipeline.

Every stage artifact — trace, corpus, vocabulary, embedding, k'-NN
graph, service-map spec — maps to a flat payload (a dict of numpy
arrays for ``.npz`` codecs, a JSON document for ``.json`` codecs).
The payload doubles as the artifact's canonical content: its
:func:`~repro.store.fingerprint.stable_hash` is the content hash used
to key downstream stage fingerprints, so two artifacts with equal
payloads are interchangeable regardless of when or where they were
serialised.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

import numpy as np

from repro.corpus.document import Corpus, Sentence
from repro.graph.knn_graph import KnnGraph
from repro.io.rawio import read_raw, write_raw
from repro.store.fingerprint import stable_hash
from repro.trace.packet import Trace
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.vocab import Vocabulary


class NpzCodec:
    """Codec for artifacts representable as a dict of numpy arrays."""

    suffix = ".npz"

    def __init__(
        self,
        to_payload: Callable[[object], dict],
        from_payload: Callable[[dict], object],
    ) -> None:
        self._to_payload = to_payload
        self._from_payload = from_payload

    def save(self, obj, path: str | Path) -> None:
        """Serialise ``obj`` to ``path`` (which must carry ``.npz``)."""
        np.savez_compressed(Path(path), **self._to_payload(obj))

    def load(self, path: str | Path):
        """Deserialise the artifact written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            payload = {name: data[name] for name in data.files}
        return self._from_payload(payload)

    def content_hash(self, obj) -> str:
        """Canonical content hash of ``obj`` (payload-level, not bytes)."""
        return stable_hash(self._to_payload(obj))


class RawCodec:
    """Codec storing the same payloads as :class:`NpzCodec` in the raw
    mmap-able container from :mod:`repro.io.rawio`.

    ``content_hash`` hashes the payload, exactly like the ``.npz``
    codecs, so switching containers never changes an artifact's
    canonical content hash or any downstream stage fingerprint.  With
    ``mmap=True`` (the default) loads return read-only memmap views,
    so opening a multi-GB embedding costs pages, not RSS.
    """

    suffix = ".raw"

    def __init__(
        self,
        to_payload: Callable[[object], dict],
        from_payload: Callable[[dict], object],
        mmap: bool = True,
    ) -> None:
        self._to_payload = to_payload
        self._from_payload = from_payload
        self.mmap = mmap

    def save(self, obj, path: str | Path) -> None:
        """Serialise ``obj`` to ``path`` (which must carry ``.raw``)."""
        write_raw(Path(path), self._to_payload(obj))

    def load(self, path: str | Path):
        """Deserialise the artifact written by :meth:`save`."""
        return self._from_payload(read_raw(Path(path), mmap=self.mmap))

    def content_hash(self, obj) -> str:
        """Canonical content hash of ``obj`` (payload-level, not bytes)."""
        return stable_hash(self._to_payload(obj))


class JsonCodec:
    """Codec for small structured artifacts (service-map specs)."""

    suffix = ".json"

    def save(self, obj, path: str | Path) -> None:
        """Write ``obj`` (a JSON-able document) to ``path``."""
        Path(path).write_text(json.dumps(obj, sort_keys=True, indent=1))

    def load(self, path: str | Path):
        """Read the JSON document written by :meth:`save`."""
        return json.loads(Path(path).read_text())

    def content_hash(self, obj) -> str:
        """Canonical content hash of the JSON document."""
        return stable_hash(obj)


# ----------------------------------------------------------------------
# Payload converters
# ----------------------------------------------------------------------


def _trace_to_payload(trace: Trace) -> dict:
    return {
        "times": trace.times,
        "senders": trace.senders,
        "ports": trace.ports,
        "protos": trace.protos,
        "receivers": trace.receivers,
        "mirai": trace.mirai,
        "sender_ips": trace.sender_ips,
    }


def _trace_from_payload(payload: dict) -> Trace:
    return Trace(
        times=payload["times"],
        senders=payload["senders"],
        ports=payload["ports"],
        protos=payload["protos"],
        receivers=payload["receivers"],
        mirai=payload["mirai"],
        sender_ips=payload["sender_ips"],
    )


def _corpus_to_payload(corpus: Corpus) -> dict:
    lengths = np.array([len(s) for s in corpus.sentences], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    tokens = (
        np.concatenate([s.tokens for s in corpus.sentences])
        if corpus.sentences
        else np.empty(0, dtype=np.int64)
    )
    return {
        "tokens": tokens.astype(np.int64),
        "offsets": offsets.astype(np.int64),
        "service_ids": np.array(
            [s.service_id for s in corpus.sentences], dtype=np.int64
        ),
        "windows": np.array([s.window for s in corpus.sentences], dtype=np.int64),
        "service_names": np.array(list(corpus.service_names), dtype=np.str_),
    }


def _corpus_from_payload(payload: dict) -> Corpus:
    offsets = payload["offsets"]
    tokens = payload["tokens"]
    sentences = [
        Sentence(
            tokens=tokens[lo:hi],
            service_id=int(service_id),
            window=int(window),
        )
        for lo, hi, service_id, window in zip(
            offsets[:-1], offsets[1:], payload["service_ids"], payload["windows"]
        )
    ]
    return Corpus(
        sentences=sentences,
        service_names=tuple(str(name) for name in payload["service_names"]),
    )


def _vocab_to_payload(artifact: tuple[Vocabulary, np.ndarray]) -> dict:
    vocab, active = artifact
    return {
        "tokens": vocab.tokens,
        "counts": vocab.counts,
        "active": np.asarray(active, dtype=np.int64),
    }


def _vocab_from_payload(payload: dict) -> tuple[Vocabulary, np.ndarray]:
    vocab = Vocabulary(tokens=payload["tokens"], counts=payload["counts"])
    return vocab, payload["active"]


def _keyedvectors_to_payload(keyed: KeyedVectors) -> dict:
    payload = {"tokens": keyed.tokens, "vectors": keyed.vectors}
    if keyed.context_vectors is not None:
        payload["context"] = keyed.context_vectors
    return payload


def _keyedvectors_from_payload(payload: dict) -> KeyedVectors:
    return KeyedVectors(
        tokens=payload["tokens"],
        vectors=payload["vectors"],
        context_vectors=payload.get("context"),
    )


def _ivf_to_payload(index) -> dict:
    spec = index.spec
    return {
        "units": index.units,
        "centroids": index.centroids,
        "assign": index.assign,
        "params": np.array(
            [spec.nlist, spec.nprobe, spec.recall_sample, spec.seed],
            dtype=np.int64,
        ),
    }


def _ivf_from_payload(payload: dict):
    from repro.ann.base import AnnSpec
    from repro.ann.ivf import IVFIndex

    nlist, nprobe, recall_sample, seed = (int(v) for v in payload["params"])
    spec = AnnSpec(
        backend="ivf",
        nlist=nlist,
        nprobe=nprobe,
        recall_sample=recall_sample,
        seed=seed,
    )
    return IVFIndex(
        units=payload["units"],
        spec=spec,
        centroids=payload["centroids"],
        assign=payload["assign"],
    )


def _ivfpq_to_payload(index) -> dict:
    spec = index.spec
    return {
        "units": index.units,
        "centroids": index.centroids,
        "assign": index.assign,
        "codes": index.codes,
        "codebooks": index.codebooks,
        "params": np.array(
            [
                spec.nlist,
                spec.nprobe,
                spec.recall_sample,
                spec.seed,
                spec.pq_m,
                spec.pq_bits,
            ],
            dtype=np.int64,
        ),
    }


def _ivfpq_from_payload(payload: dict):
    from repro.ann.base import AnnSpec
    from repro.ann.ivfpq import IVFPQIndex

    nlist, nprobe, recall_sample, seed, pq_m, pq_bits = (
        int(v) for v in payload["params"]
    )
    spec = AnnSpec(
        backend="ivfpq",
        nlist=nlist,
        nprobe=nprobe,
        recall_sample=recall_sample,
        seed=seed,
        pq_m=pq_m,
        pq_bits=pq_bits,
    )
    return IVFPQIndex(
        units=payload["units"],
        spec=spec,
        centroids=payload["centroids"],
        assign=payload["assign"],
        codes=payload["codes"],
        codebooks=payload["codebooks"],
    )


def _hnsw_to_payload(index) -> dict:
    spec = index.spec
    payload = {
        "units": index.units,
        "node_row": index.node_row,
        "levels": index.levels,
        "links0": index.links0,
        "params": np.array(
            [
                spec.hnsw_m,
                spec.hnsw_ef_build,
                spec.hnsw_ef_search,
                spec.recall_sample,
                spec.seed,
                index.entry,
                len(index.upper_nodes),
            ],
            dtype=np.int64,
        ),
    }
    # Zero-size arrays break the raw container's mmap path, so empty
    # optional sections are simply absent from the payload.
    if index.upper_nodes:
        payload["upper_counts"] = np.array(
            [len(nodes) for nodes in index.upper_nodes], dtype=np.int64
        )
        payload["upper_nodes"] = np.concatenate(index.upper_nodes)
        payload["upper_links"] = np.concatenate(index.upper_links, axis=0)
    ghosts = index.ghost_vecs
    if len(ghosts):
        payload["ghost_vecs"] = ghosts
    return payload


def _hnsw_from_payload(payload: dict):
    from repro.ann.base import AnnSpec
    from repro.ann.hnsw import HNSWIndex

    m, ef_build, ef_search, recall_sample, seed, entry, n_upper = (
        int(v) for v in payload["params"]
    )
    spec = AnnSpec(
        backend="hnsw",
        hnsw_m=m,
        hnsw_ef_build=ef_build,
        hnsw_ef_search=ef_search,
        recall_sample=recall_sample,
        seed=seed,
    )
    upper_nodes: list[np.ndarray] = []
    upper_links: list[np.ndarray] = []
    if n_upper:
        counts = payload["upper_counts"]
        starts = np.concatenate(([0], np.cumsum(counts)))
        nodes = payload["upper_nodes"]
        links = payload["upper_links"]
        for level in range(n_upper):
            lo, hi = int(starts[level]), int(starts[level + 1])
            upper_nodes.append(nodes[lo:hi])
            upper_links.append(links[lo:hi])
    return HNSWIndex(
        units=payload["units"],
        spec=spec,
        node_row=payload["node_row"],
        levels=payload["levels"],
        links0=payload["links0"],
        upper_nodes=upper_nodes,
        upper_links=upper_links,
        entry=entry,
        ghost_vecs=payload.get("ghost_vecs"),
    )


def _graph_to_payload(graph: KnnGraph) -> dict:
    return {
        "n_nodes": np.array([graph.n_nodes], dtype=np.int64),
        "sources": graph.sources,
        "targets": graph.targets,
        "weights": graph.weights,
    }


def _graph_from_payload(payload: dict) -> KnnGraph:
    return KnnGraph(
        n_nodes=int(payload["n_nodes"][0]),
        sources=payload["sources"],
        targets=payload["targets"],
        weights=payload["weights"],
    )


#: Codec for :class:`~repro.trace.packet.Trace` artifacts.
TRACE_CODEC = NpzCodec(_trace_to_payload, _trace_from_payload)

#: Codec for :class:`~repro.corpus.document.Corpus` artifacts.
CORPUS_CODEC = NpzCodec(_corpus_to_payload, _corpus_from_payload)

#: Codec for ``(Vocabulary, active_senders)`` artifacts.
VOCAB_CODEC = NpzCodec(_vocab_to_payload, _vocab_from_payload)

#: Codec for :class:`~repro.w2v.keyedvectors.KeyedVectors` artifacts
#: (same ``tokens``/``vectors`` keys as ``KeyedVectors.save``).
KEYEDVECTORS_CODEC = NpzCodec(_keyedvectors_to_payload, _keyedvectors_from_payload)

#: Codec for :class:`~repro.graph.knn_graph.KnnGraph` artifacts.
KNN_GRAPH_CODEC = NpzCodec(_graph_to_payload, _graph_from_payload)

#: Codec for :class:`~repro.ann.ivf.IVFIndex` artifacts (the trained
#: quantizer + list assignments; inverted lists rebuild on load).
IVF_INDEX_CODEC = NpzCodec(_ivf_to_payload, _ivf_from_payload)

#: Codec for :class:`~repro.ann.hnsw.HNSWIndex` artifacts (layered
#: graph, internal-id maps, tombstone vectors and spec knobs — the f32
#: navigation matrix is reconstructed on load, so round-trips are
#: bit-identical).
HNSW_INDEX_CODEC = NpzCodec(_hnsw_to_payload, _hnsw_from_payload)

#: Codec for :class:`~repro.ann.ivfpq.IVFPQIndex` artifacts (coarse
#: quantizer, PQ codebooks, and the compressed codes).
IVFPQ_INDEX_CODEC = NpzCodec(_ivfpq_to_payload, _ivfpq_from_payload)

#: Raw (mmap-able) siblings of the large-matrix codecs.  They store
#: the same payload dicts, so content hashes — and therefore stage
#: fingerprints — are container-independent.
TRACE_RAW_CODEC = RawCodec(_trace_to_payload, _trace_from_payload)
CORPUS_RAW_CODEC = RawCodec(_corpus_to_payload, _corpus_from_payload)
KEYEDVECTORS_RAW_CODEC = RawCodec(
    _keyedvectors_to_payload, _keyedvectors_from_payload
)
IVF_INDEX_RAW_CODEC = RawCodec(_ivf_to_payload, _ivf_from_payload)
IVFPQ_INDEX_RAW_CODEC = RawCodec(_ivfpq_to_payload, _ivfpq_from_payload)
HNSW_INDEX_RAW_CODEC = RawCodec(_hnsw_to_payload, _hnsw_from_payload)

#: Codec for service-map spec documents.
SERVICE_MAP_CODEC = JsonCodec()


def trace_content_hash(trace: Trace) -> str:
    """Canonical content hash of a trace (keys the ingest stage)."""
    return TRACE_CODEC.content_hash(trace)
