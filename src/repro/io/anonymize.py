"""Prefix-preserving sender anonymisation.

The paper releases an *anonymised* version of its dataset.  This
implements the same idea: sender addresses are permuted by a keyed
mapping that preserves subnet structure — two addresses in the same /24
(or /16) stay in the same anonymised /24 (or /16) — so subnet-level
analyses (Table 5's "same /24 subnet" findings) survive anonymisation.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.trace.packet import Trace


def _keyed_octet_perm(key: bytes, level: bytes) -> np.ndarray:
    """Deterministic permutation of 0..255 derived from ``key``."""
    digest = hashlib.sha256(key + b"/" + level).digest()
    seed = int.from_bytes(digest[:8], "big")
    return np.random.default_rng(seed).permutation(256)


def anonymize_trace(trace: Trace, key: str = "darkvec") -> Trace:
    """Return a trace with prefix-preserving anonymised sender IPs.

    Each octet is permuted with a permutation keyed on ``key`` and the
    more-significant octets, so equal prefixes map to equal prefixes
    and distinct prefixes stay distinct (a lightweight Crypto-PAn).
    """
    key_bytes = key.encode("utf-8")
    ips = trace.sender_ips.astype(np.uint64)
    octets = [(ips >> shift).astype(np.int64) & 0xFF for shift in (24, 16, 8, 0)]

    anonymized = np.zeros(len(ips), dtype=np.uint64)
    prefix_strings = np.array([""] * len(ips), dtype=object)
    for level, octet in enumerate(octets):
        # The permutation of this octet depends on the (anonymised)
        # prefix above it, computed per distinct prefix.
        new_octet = np.zeros(len(ips), dtype=np.uint64)
        for prefix in np.unique(prefix_strings):
            mask = prefix_strings == prefix
            perm = _keyed_octet_perm(key_bytes, f"{level}:{prefix}".encode())
            new_octet[mask] = perm[octet[mask]]
        anonymized = (anonymized << 8) | new_octet
        prefix_strings = np.array(
            [f"{p}.{o}" for p, o in zip(prefix_strings, new_octet)], dtype=object
        )

    new_ips = anonymized.astype(np.uint32)
    order = np.argsort(new_ips)
    if len(np.unique(new_ips)) != len(new_ips):
        raise RuntimeError("anonymisation collision — should be impossible")
    # Remap the sender column to the re-sorted anonymised table.
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))
    return Trace(
        times=trace.times.copy(),
        senders=inverse[trace.senders].astype(np.int32),
        ports=trace.ports.copy(),
        protos=trace.protos.copy(),
        receivers=trace.receivers.copy(),
        mirai=trace.mirai.copy(),
        sender_ips=new_ips[order],
    )
