"""CSV trace serialisation.

The released DarkVec datasets ship as per-packet CSV files; this module
reads and writes the same layout:

    timestamp,src_ip,dst_host,dst_port,proto,mirai

``dst_host`` is the last octet of the darknet /24 address, ``proto`` is
``tcp``/``udp``/``icmp`` and ``mirai`` flags the fingerprint.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.trace.address import ip_to_str, str_to_ip
from repro.trace.packet import Trace, proto_name

_HEADER = ["timestamp", "src_ip", "dst_host", "dst_port", "proto", "mirai"]
_PROTO_NUM = {"tcp": 6, "udp": 17, "icmp": 1}


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a trace as CSV (one packet per row, time order)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        ips = trace.sender_ips
        for i in range(len(trace)):
            writer.writerow(
                [
                    f"{trace.times[i]:.6f}",
                    ip_to_str(ips[trace.senders[i]]),
                    int(trace.receivers[i]),
                    int(trace.ports[i]),
                    proto_name(trace.protos[i]),
                    int(trace.mirai[i]),
                ]
            )


def read_trace_csv(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_csv`."""
    path = Path(path)
    times, ips, receivers, ports, protos, mirai = [], [], [], [], [], []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _HEADER:
            raise ValueError(f"unexpected CSV header in {path}: {header}")
        for row in reader:
            if len(row) != len(_HEADER):
                raise ValueError(f"malformed row in {path}: {row}")
            times.append(float(row[0]))
            ips.append(str_to_ip(row[1]))
            receivers.append(int(row[2]))
            ports.append(int(row[3]))
            protos.append(_PROTO_NUM[row[4]])
            mirai.append(bool(int(row[5])))
    return Trace.from_events(
        times=np.array(times),
        sender_ips_per_packet=np.array(ips, dtype=np.uint64),
        ports=np.array(ports),
        protos=np.array(protos),
        receivers=np.array(receivers),
        mirai=np.array(mirai),
    )
