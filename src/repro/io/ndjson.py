"""NDJSON trace serialisation (optionally gzip-compressed).

One JSON object per packet — the interchange format friendliest to
log pipelines; gzip keeps month-long traces manageable.  Round-trips
exactly like the CSV format.
"""

from __future__ import annotations

import gzip
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from repro.trace.address import ip_to_str, str_to_ip
from repro.trace.packet import Trace, proto_name

_PROTO_NUM = {"tcp": 6, "udp": 17, "icmp": 1}


def _open(path: Path, mode: str) -> IO[str]:
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


@contextmanager
def _atomic_open(path: Path) -> Iterator[IO[str]]:
    """Open a temp file for writing; publish it at ``path`` on success.

    The payload is written to ``<name>.tmp<pid>`` in the destination
    directory and moved into place with :func:`os.replace` only after
    the handle closes cleanly, so a crash mid-write can never leave a
    truncated file under the published name — the previous version (if
    any) stays intact.  Compression still follows the *final* suffix.
    """
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        if path.suffix == ".gz":
            handle = gzip.open(tmp, "wt", encoding="utf-8")
        else:
            handle = tmp.open("w", encoding="utf-8")
        with handle:
            yield handle
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)


def write_ndjson(records, path: str | Path) -> None:
    """Write an iterable of JSON-serialisable dicts, one per line.

    The generic sibling of :func:`write_trace_ndjson`, used by the
    telemetry exporter (:mod:`repro.obs.export`), the run registry and
    any other record-stream producer.  Gzip-compresses when the path
    ends in ``.gz``; non-JSON values fall back to their ``str()`` form.
    The write is crash-safe: records land in a temp file that replaces
    ``path`` atomically once complete.
    """
    path = Path(path)
    with _atomic_open(path) as handle:
        for record in records:
            handle.write(
                json.dumps(record, separators=(",", ":"), default=str) + "\n"
            )


def read_ndjson(path: str | Path) -> list[dict]:
    """Read a file written by :func:`write_ndjson` back into dicts.

    Blank lines are skipped; malformed lines raise :class:`ValueError`
    with the offending line number.
    """
    path = Path(path)
    records: list[dict] = []
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed record ({exc})"
                ) from None
    return records


def write_trace_ndjson(trace: Trace, path: str | Path) -> None:
    """Write a trace as NDJSON (gzip when the path ends in ``.gz``).

    Crash-safe like :func:`write_ndjson`: the file appears under its
    final name only once fully written.
    """
    path = Path(path)
    ips = trace.sender_ips
    with _atomic_open(path) as handle:
        for i in range(len(trace)):
            record = {
                "ts": round(float(trace.times[i]), 6),
                "src": ip_to_str(ips[trace.senders[i]]),
                "dst": int(trace.receivers[i]),
                "port": int(trace.ports[i]),
                "proto": proto_name(trace.protos[i]),
                "mirai": bool(trace.mirai[i]),
            }
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")


def read_trace_ndjson(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_trace_ndjson`."""
    path = Path(path)
    times, ips, receivers, ports, protos, mirai = [], [], [], [], [], []
    with _open(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                times.append(float(record["ts"]))
                ips.append(str_to_ip(record["src"]))
                receivers.append(int(record["dst"]))
                ports.append(int(record["port"]))
                protos.append(_PROTO_NUM[record["proto"]])
                mirai.append(bool(record["mirai"]))
            except (KeyError, ValueError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed record ({exc})"
                ) from None
    return Trace.from_events(
        times=np.array(times),
        sender_ips_per_packet=np.array(ips, dtype=np.uint64),
        ports=np.array(ports),
        protos=np.array(protos),
        receivers=np.array(receivers),
        mirai=np.array(mirai),
    )
