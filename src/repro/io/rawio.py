"""Raw memory-mappable array container (the mmap sibling of ``.npz``).

``np.savez_compressed`` artifacts must be decompressed fully into RAM
on every load, which defeats bounded-memory streaming once matrices
reach millions of rows.  This module defines a trivially seekable
on-disk layout::

    magic (8 bytes)  "REPRORAW"
    header length    uint64 little-endian
    header           JSON: [{"name", "dtype", "shape", "offset"}, ...]
    padding          zero bytes up to the first 64-byte boundary
    arrays           raw C-contiguous bytes, each 64-byte aligned

so :func:`read_raw` can hand back :class:`numpy.memmap` views — the OS
pages array data in on demand and evicts it under memory pressure,
keeping the resident set bounded by the working set instead of the
artifact size.  Alignment at 64 bytes keeps every array slice cacheline-
and SIMD-aligned for any dtype numpy ships.

The format stores exactly the payload dict the ``.npz`` codecs store,
so an artifact's canonical content hash (payload-level, see
:mod:`repro.io.artifacts`) is identical regardless of which container
serialised it.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

MAGIC = b"REPRORAW"
ALIGN = 64


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`ALIGN`-byte boundary."""
    return (offset + ALIGN - 1) // ALIGN * ALIGN


def write_raw(path: str | Path, payload: dict[str, np.ndarray]) -> None:
    """Write a dict of numpy arrays as an aligned raw container.

    Arrays are written in the dict's iteration order; each starts at a
    64-byte-aligned offset so a later :func:`read_raw` can map it
    directly.  Object dtypes are rejected (nothing is pickled).
    """
    arrays: list[tuple[str, np.ndarray]] = []
    for name, value in payload.items():
        array = np.ascontiguousarray(value)
        if array.dtype.hasobject:
            raise ValueError(f"array {name!r} has an object dtype")
        arrays.append((name, array))

    entries = []
    # Header size depends on offsets which depend on header size; the
    # offsets are monotone in header length, so one fixpoint pass with
    # a generous first guess converges immediately.
    header_guess = 0
    for _ in range(2):
        entries = []
        offset = _aligned(len(MAGIC) + 8 + header_guess)
        for name, array in arrays:
            entries.append(
                {
                    "name": name,
                    "dtype": array.dtype.str,
                    "shape": list(array.shape),
                    "offset": offset,
                }
            )
            offset = _aligned(offset + array.nbytes)
        header = json.dumps(entries, sort_keys=True).encode("utf-8")
        if len(header) <= header_guess:
            break
        header_guess = len(header) + 256

    path = Path(path)
    with path.open("wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header)))
        handle.write(header)
        for entry, (_, array) in zip(entries, arrays):
            handle.seek(entry["offset"])
            handle.write(array.tobytes())


def read_raw(path: str | Path, mmap: bool = False) -> dict[str, np.ndarray]:
    """Read a container written by :func:`write_raw`.

    With ``mmap=True`` every returned array is a read-only
    :class:`numpy.memmap` view into the file; otherwise arrays are
    materialised in memory (still read-only-safe to share).
    """
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path} is not a raw array container")
        (header_len,) = struct.unpack("<Q", handle.read(8))
        entries = json.loads(handle.read(header_len).decode("utf-8"))
        payload: dict[str, np.ndarray] = {}
        for entry in entries:
            dtype = np.dtype(entry["dtype"])
            shape = tuple(entry["shape"])
            if mmap:
                payload[entry["name"]] = np.memmap(
                    path,
                    dtype=dtype,
                    mode="r",
                    offset=entry["offset"],
                    shape=shape,
                )
            else:
                handle.seek(entry["offset"])
                count = int(np.prod(shape)) if shape else 1
                array = np.fromfile(handle, dtype=dtype, count=count)
                payload[entry["name"]] = array.reshape(shape)
    return payload
