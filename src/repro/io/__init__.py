"""Trace serialisation and anonymisation."""

from repro.io.anonymize import anonymize_trace
from repro.io.csvio import read_trace_csv, write_trace_csv
from repro.io.ndjson import (
    read_ndjson,
    read_trace_ndjson,
    write_ndjson,
    write_trace_ndjson,
)

__all__ = [
    "anonymize_trace",
    "read_ndjson",
    "read_trace_csv",
    "read_trace_ndjson",
    "write_ndjson",
    "write_trace_csv",
    "write_trace_ndjson",
]
