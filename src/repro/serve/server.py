"""JSON-lines-over-TCP front end for :class:`DarkVecService`.

The daemon listens on localhost only.  The protocol is one JSON object
per line in each direction: the request carries ``{"op": ..., ...}``,
the response ``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``.
Connections are handled by a thread pool (``ThreadingTCPServer``), so
queries answer concurrently with ingestion and with each other — the
read path only ever touches the immutable current snapshot.

Supported ops:

``ping``
    liveness check; echoes the server protocol version.
``status``
    writer/reader state (model version, promotions, rollbacks, ...).
``classify`` / ``neighbors`` / ``members``
    the three read queries, keyed by ``ip`` (dotted quad or int).
    ``classify`` and ``neighbors`` also accept a *list* of IPs and
    answer the whole batch from one vectorized index search — the
    response then carries per-sender ``results`` (unknown senders get
    an ``"error"`` slot instead of failing the batch).
``ingest``
    enqueue one micro-batch: either ``path`` (a trace file the server
    loads) or inline ``events`` columns (times, ips, ports, protos,
    receivers, mirai).  Returns immediately after queueing.
``drain``
    block until every queued batch has been applied (``timeout``).
``shutdown``
    drain, stop the writer, and stop the server.

Trust model
-----------

The daemon binds to localhost and speaks plaintext JSON — it is a
*same-user development tool*, not a hardened network service.  By
default any local process that can open the port can query the model,
make the server read a trace file by path, or stop it.  Two opt-in
knobs tighten that for shared machines:

``token``
    a shared secret; when set, the mutating ops (``ingest`` and
    ``shutdown``) must carry a matching ``"token"`` field or they are
    refused.  Read-only queries stay open.
``ingest_root``
    a directory; when set, path-based ingest is confined to files
    under it (resolved, so ``..`` cannot escape), bounding what the
    daemon can be made to read from disk.

Both are surfaced as ``repro serve --token/--ingest-root`` and
``repro query --token``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from pathlib import Path

import numpy as np

from repro.serve.service import DarkVecService
from repro.trace.packet import Trace

PROTOCOL_VERSION = 1


def _batch_from_request(request: dict, ingest_root: Path | None = None) -> Trace:
    if "path" in request:
        from repro.io.csvio import read_trace_csv

        path = Path(request["path"]).resolve()
        if ingest_root is not None and not path.is_relative_to(ingest_root):
            raise PermissionError(
                f"ingest path {path} is outside the allowed root {ingest_root}"
            )
        return read_trace_csv(path)
    events = request.get("events")
    if events is None:
        raise ValueError("ingest needs 'path' or 'events'")
    times = np.asarray(events["times"], dtype=np.float64)
    if not len(times):
        return Trace.empty()
    from repro.trace.address import str_to_ip

    ips = np.asarray(
        [str_to_ip(ip) if isinstance(ip, str) else int(ip) for ip in events["ips"]],
        dtype=np.uint64,
    )
    n = len(times)

    def column(name, dtype, default):
        values = events.get(name)
        if values is None:
            return np.full(n, default, dtype=dtype)
        return np.asarray(values, dtype=dtype)

    return Trace.from_events(
        times=times,
        sender_ips_per_packet=ips,
        ports=column("ports", np.int32, 0),
        protos=column("protos", np.uint8, 6),
        receivers=column("receivers", np.uint8, 1),
        mirai=column("mirai", bool, False),
    )


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "ServeServer" = self.server  # type: ignore[assignment]
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            try:
                response = server.dispatch(json.loads(line))
            except Exception as exc:  # one bad request must not kill the daemon
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            bye = bool(response.get("bye"))
            try:
                self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
                self.wfile.flush()
            finally:
                if bye:
                    # Stop the server only after the goodbye response is
                    # flushed (or the write failed): triggering teardown
                    # from dispatch() raced the daemon's process exit
                    # against this write, and clients intermittently read
                    # EOF instead of the final status.
                    server._shutdown_requested.set()
            if bye:
                return


class ServeServer(socketserver.ThreadingTCPServer):
    """Localhost TCP server wrapping one :class:`DarkVecService`.

    Args:
        service: the streaming service answering all ops.
        host / port: bind address (port 0 picks an ephemeral port).
        port_file: write the bound port here once listening.
        token: shared secret required by the mutating ops (``ingest``,
            ``shutdown``); None leaves them open (see the module
            docstring's trust model).
        ingest_root: confine path-based ingest to files under this
            directory; None allows any server-readable path.
    """

    allow_reuse_address = True
    daemon_threads = True

    #: ops that change or stop the daemon — guarded by ``token``.
    MUTATING_OPS = frozenset({"ingest", "shutdown"})

    def __init__(
        self,
        service: DarkVecService,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: str | Path | None = None,
        token: str | None = None,
        ingest_root: str | Path | None = None,
    ) -> None:
        super().__init__((host, port), _Handler)
        self.service = service
        self.port = int(self.server_address[1])
        self.token = token
        self.ingest_root = (
            None if ingest_root is None else Path(ingest_root).resolve()
        )
        self._shutdown_requested = threading.Event()
        if port_file is not None:
            Path(port_file).write_text(f"{self.port}\n", encoding="utf-8")

    # ------------------------------------------------------------------

    def dispatch(self, request: dict) -> dict:
        """Route one request object to the service; returns the reply."""
        op = request.get("op")
        service = self.service
        if self.token is not None and op in self.MUTATING_OPS:
            if request.get("token") != self.token:
                raise PermissionError(f"op {op!r} requires a valid token")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL_VERSION}
        if op == "status":
            return {"ok": True, **service.status()}
        if op == "classify":
            ip = request["ip"]
            if isinstance(ip, (list, tuple)):
                return {"ok": True, **service.classify_many(ip)}
            return {"ok": True, **service.classify(ip)}
        if op == "neighbors":
            ip = request["ip"]
            if isinstance(ip, (list, tuple)):
                return {"ok": True, **service.neighbors_many(ip, k=request.get("k"))}
            return {"ok": True, **service.neighbors(ip, k=request.get("k"))}
        if op == "members":
            return {
                "ok": True,
                **service.membership(request["ip"], sample=request.get("sample", 8)),
            }
        if op == "ingest":
            batch = _batch_from_request(request, ingest_root=self.ingest_root)
            service.submit(batch)
            return {"ok": True, "queued_packets": int(len(batch))}
        if op == "drain":
            done = service.drain(timeout=request.get("timeout"))
            return {"ok": True, "drained": bool(done), **service.status()}
        if op == "shutdown":
            service.drain(timeout=request.get("timeout", 60.0))
            # The handler sets _shutdown_requested after flushing this
            # reply, so the client reads it before the daemon exits.
            return {"ok": True, "bye": True, **service.status()}
        raise ValueError(f"unknown op {op!r}")

    # ------------------------------------------------------------------

    def serve_until_shutdown(self, poll_interval: float = 0.2) -> None:
        """Serve requests until a client sends ``shutdown``."""
        stopper = threading.Thread(target=self._await_shutdown, daemon=True)
        stopper.start()
        try:
            self.serve_forever(poll_interval=poll_interval)
        finally:
            self.service.close()
            self.server_close()

    def _await_shutdown(self) -> None:
        self._shutdown_requested.wait()
        self.shutdown()

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (used by tests and benchmarks)."""
        thread = threading.Thread(target=self.serve_until_shutdown, daemon=True)
        thread.start()
        return thread


def wait_for_port(port_file: str | Path, timeout: float = 30.0) -> int:
    """Poll ``port_file`` until the daemon has written its port."""
    import time

    path = Path(port_file)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            text = path.read_text(encoding="utf-8").strip()
            if text:
                return int(text)
        time.sleep(0.05)
    raise TimeoutError(f"no port written to {path} within {timeout}s")
