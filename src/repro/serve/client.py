"""Thin JSON-lines client for a running ``repro serve`` daemon.

One :class:`ServeClient` holds one TCP connection and issues
request/response round trips; it is what ``repro query`` uses and what
tests and benchmarks drive directly.  The protocol is symmetric with
:mod:`repro.serve.server`: one JSON object per line each way.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path


class ServeError(RuntimeError):
    """The daemon answered ``ok: false``."""


class ServeClient:
    """Blocking client for one serve daemon connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        token: str | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._token = token

    @staticmethod
    def from_port_file(
        port_file: str | Path,
        host: str = "127.0.0.1",
        timeout: float = 60.0,
        token: str | None = None,
    ) -> "ServeClient":
        """Connect to the port a daemon published via ``--port-file``."""
        from repro.serve.server import wait_for_port

        return ServeClient(
            host=host, port=wait_for_port(port_file), timeout=timeout, token=token
        )

    def close(self) -> None:
        """Close the connection (the daemon keeps running)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def call(self, op: str, **fields) -> dict:
        """One request/response round trip; raises on ``ok: false``."""
        request = {"op": op, **{k: v for k, v in fields.items() if v is not None}}
        if self._token is not None:
            request.setdefault("token", self._token)
        self._file.write((json.dumps(request) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown server error"))
        return response

    # Convenience verbs ------------------------------------------------

    def ping(self) -> dict:
        """Liveness check; returns the protocol version."""
        return self.call("ping")

    def status(self) -> dict:
        """Snapshot version, sender count and writer-loop counters."""
        return self.call("status")

    def classify(self, ip: str | list) -> dict:
        """k-NN majority-vote label + mean distance for one sender.

        Also accepts a list of IPs: the daemon answers the whole batch
        from one vectorized search and returns per-sender ``results``.
        """
        return self.call("classify", ip=ip)

    def classify_many(self, ips: list) -> dict:
        """Batched classify: one request, one vectorized search."""
        return self.call("classify", ip=list(ips))

    def neighbors(self, ip: str | list, k: int | None = None) -> dict:
        """The ``k`` nearest senders (cosine) of one sender.

        Also accepts a list of IPs (batched, like :meth:`classify`).
        """
        return self.call("neighbors", ip=ip, k=k)

    def neighbors_many(self, ips: list, k: int | None = None) -> dict:
        """Batched neighbors: one request, one vectorized search."""
        return self.call("neighbors", ip=list(ips), k=k)

    def members(self, ip: str, sample: int | None = None) -> dict:
        """Louvain cluster id + (sampled) member list for one sender."""
        return self.call("members", ip=ip, sample=sample)

    def ingest_path(self, path: str | Path) -> dict:
        """Enqueue a server-side trace CSV as one update micro-batch."""
        return self.call("ingest", path=str(path))

    def ingest_events(self, events: dict) -> dict:
        """Enqueue an inline column dict (times/ips/...) as a batch."""
        return self.call("ingest", events=events)

    def drain(self, timeout: float | None = None) -> dict:
        """Block until every queued batch is applied; returns status."""
        return self.call("drain", timeout=timeout)

    def shutdown(self, timeout: float | None = None) -> dict:
        """Drain, then stop the daemon; returns its final status."""
        return self.call("shutdown", timeout=timeout)
