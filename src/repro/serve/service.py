"""The streaming serving core: ingest queue, writer loop, read path.

:class:`DarkVecService` turns the batch pipeline into a daemon.  One
writer thread drains an ingest queue of packet micro-batches and
applies :meth:`DarkVec.update` per batch; the health gate plus run
registry act as the promotion/rollback loop.  Readers never touch the
model under retrain — every query answers from the current
:class:`~repro.serve.snapshot.ModelSnapshot`, which the writer swaps
in atomically only after a batch passes the gate.  A gated (or
crashed) update keeps the previous snapshot live, so zero queries fail
across a promotion or a rollback.
"""

from __future__ import annotations

import queue
import threading
from time import perf_counter

from repro import obs
from repro.core.pipeline import DarkVec
from repro.labels.groundtruth import GroundTruth
from repro.serve.snapshot import ModelSnapshot
from repro.trace.address import str_to_ip
from repro.trace.packet import Trace


class ServiceClosedError(RuntimeError):
    """Raised when work is submitted to a stopped service."""


class DarkVecService:
    """Single-writer streaming service around a fitted :class:`DarkVec`.

    Args:
        darkvec: a *fitted* pipeline (the initial model, snapshot v0).
        truth: optional ground truth; labels classify answers and feeds
            the LOO-accuracy health monitor on every update.
        health_gate: gate promotions on the health verdict (None =
            the pipeline default, ``config.health.gate_updates``).
        knn_k: neighbours used by the classify read path.
        with_clusters: cache a Louvain partition per snapshot so
            membership queries are O(1); disable to cut promotion cost
            when cluster queries are not needed.
        max_pending: ingest queue capacity — ``submit`` blocks once
            this many batches are waiting (backpressure, bounds memory).
    """

    def __init__(
        self,
        darkvec: DarkVec,
        truth: GroundTruth | None = None,
        health_gate: bool | None = None,
        knn_k: int = 7,
        with_clusters: bool = True,
        max_pending: int = 64,
    ) -> None:
        darkvec._require_fit()
        self.darkvec = darkvec
        self.truth = truth
        self.health_gate = health_gate
        self.knn_k = knn_k
        self.with_clusters = with_clusters
        self.snapshot = ModelSnapshot.of(
            darkvec, truth=truth, version=0, k=knn_k, with_clusters=with_clusters
        )
        self.promotions = 0
        self.rollbacks = 0
        self.batches = 0
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._pending = 0
        self._idle = threading.Condition()
        self._closed = False
        # Serialises submit() against close(): nothing may be enqueued
        # after the shutdown sentinel, or the writer would exit with the
        # batch silently dropped and _pending never reaching zero.
        self._lifecycle = threading.Lock()
        self._writer = threading.Thread(
            target=self._writer_loop, name="darkvec-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    # Write path (single writer)
    # ------------------------------------------------------------------

    def submit(self, batch: Trace) -> None:
        """Enqueue one micro-batch for the writer loop.

        Returns as soon as the batch is queued; blocks only when the
        queue is full (backpressure).  The batch may span any sub-day
        window and may be empty (counted no-op).
        """
        with self._lifecycle:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            with self._idle:
                self._pending += 1
            # put() may block on backpressure while holding the lock;
            # the writer drains the queue without it, so slots free up
            # and close() simply waits its turn behind this submit.
            self._queue.put(batch)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted batch has been applied.

        Returns False if ``timeout`` (seconds) elapsed first.
        """
        deadline = None if timeout is None else perf_counter() + timeout
        with self._idle:
            while self._pending > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - perf_counter()
                    if remaining <= 0:
                        return False
                self._idle.wait(timeout=remaining)
        return True

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain outstanding batches and stop the writer thread."""
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            self._queue.put(None)
        self._writer.join(timeout=timeout)

    def __enter__(self) -> "DarkVecService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _writer_loop(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is None:
                return
            try:
                self._apply(batch)
            finally:
                with self._idle:
                    self._pending -= 1
                    if self._pending == 0:
                        self._idle.notify_all()

    def _apply(self, batch: Trace) -> None:
        """Apply one micro-batch; swap the snapshot only on promotion."""
        if not len(batch):
            # Idle tick: counted (serve.empty_batches) inside update().
            self.darkvec.update(batch, allow_empty=True)
            return
        obs.add("serve.ingested_packets", len(batch))
        obs.add("serve.batches")
        self.batches += 1
        health_before = self.darkvec.last_health
        try:
            self.darkvec.update(
                batch, truth=self.truth, health_gate=self.health_gate
            )
        except Exception:
            # A crashed update leaves the prior fitted state live (the
            # pipeline mutates only after refit succeeds); keep serving
            # the old snapshot and count the refusal.
            self.rollbacks += 1
            obs.add("serve.rollbacks")
            return
        # Branch on the gate verdict, not the embedding hash: a
        # successful update whose embedding happens to be unchanged
        # (e.g. a pure cache-hit refit) is a promotion, not a rollback.
        # `last_health` is refreshed per gated/monitored update, so a
        # new report with promoted=False is the one rollback signal.
        health = self.darkvec.last_health
        if health is not None and health is not health_before and not health.promoted:
            # The health gate refused promotion and restored the prior
            # state — the old snapshot stays live.
            self.rollbacks += 1
            obs.add("serve.rollbacks")
            return
        t0 = perf_counter()
        snapshot = ModelSnapshot.of(
            self.darkvec,
            truth=self.truth,
            version=self.snapshot.version + 1,
            k=self.knn_k,
            with_clusters=self.with_clusters,
        )
        self.snapshot = snapshot  # atomic swap: readers see old xor new
        self.promotions += 1
        obs.add("serve.promotions")
        obs.observe("serve.promotion_seconds", perf_counter() - t0)

    # ------------------------------------------------------------------
    # Read path (any thread; never blocks on the writer)
    # ------------------------------------------------------------------

    def _timed(self, fn, *args, **kwargs) -> dict:
        obs.add("serve.queries")
        t0 = perf_counter()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            obs.add("serve.query_errors")
            raise
        finally:
            obs.observe("serve.query_seconds", perf_counter() - t0)
        return result

    def _timed_batch(self, fn, ips: list, **kwargs) -> dict:
        """Like :meth:`_timed`, counting every sender of the batch."""
        obs.add("serve.queries", len(ips))
        t0 = perf_counter()
        try:
            result = fn(ips, **kwargs)
        except Exception:
            obs.add("serve.query_errors")
            raise
        finally:
            obs.observe("serve.query_seconds", perf_counter() - t0)
        return result

    def classify(self, ip: int | str) -> dict:
        """k-NN majority-vote label of a sender, from the live snapshot."""
        return self._timed(self.snapshot.classify, _as_ip(ip))

    def classify_many(self, ips) -> dict:
        """Batched classify: one vectorized search for all senders."""
        snapshot = self.snapshot
        return self._timed_batch(
            snapshot.classify_many, [_as_ip(ip) for ip in ips]
        )

    def neighbors(self, ip: int | str, k: int | None = None) -> dict:
        """Nearest embedded senders of ``ip``, from the live snapshot."""
        return self._timed(self.snapshot.neighbors, _as_ip(ip), k=k)

    def neighbors_many(self, ips, k: int | None = None) -> dict:
        """Batched neighbors: one vectorized search for all senders."""
        snapshot = self.snapshot
        return self._timed_batch(
            snapshot.neighbors_many, [_as_ip(ip) for ip in ips], k=k
        )

    def membership(self, ip: int | str, sample: int = 8) -> dict:
        """Cached Louvain cluster membership of ``ip``."""
        return self._timed(self.snapshot.membership, _as_ip(ip), sample=sample)

    def status(self) -> dict:
        """Writer/reader state of the daemon, for ``repro query status``."""
        snapshot = self.snapshot
        with self._idle:
            pending = self._pending
        return {
            "version": snapshot.version,
            "senders": len(snapshot),
            "clusters": (
                int(len(set(snapshot.communities.tolist())))
                if snapshot.communities is not None
                else None
            ),
            "modularity": snapshot.modularity,
            "batches": self.batches,
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
            "pending_batches": pending,
            "snapshot_build_seconds": snapshot.built_seconds,
        }


def _as_ip(ip: int | str) -> int:
    return str_to_ip(ip) if isinstance(ip, str) else int(ip)
