"""Streaming serving layer: ingest queue, atomic snapshots, daemon.

Turns the batch pipeline into a long-running service (the paper's
daily retrain loop generalised to sub-day micro-batches): packets are
submitted as micro-batches, a single writer applies
:meth:`DarkVec.update` per batch behind the health gate, and queries
(classify / neighbors / members) answer from an atomically-swapped
:class:`ModelSnapshot` so they never block on — or observe a torn
state from — a retrain.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.server import PROTOCOL_VERSION, ServeServer, wait_for_port
from repro.serve.service import DarkVecService, ServiceClosedError
from repro.serve.snapshot import ModelSnapshot, UnknownSenderError

__all__ = [
    "PROTOCOL_VERSION",
    "DarkVecService",
    "ModelSnapshot",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServiceClosedError",
    "UnknownSenderError",
    "wait_for_port",
]
