"""Immutable, atomically-swappable model snapshots for the read path.

The serving layer separates *writing* (the single-writer update loop
applying ``DarkVec.update(window)``) from *reading* (queries).  A
:class:`ModelSnapshot` freezes everything a query needs — the embedded
sender table, the ANN index, the labeled k-NN classifier, the cached
Louvain partition — into one object that is built off the query path
and installed with a single attribute assignment (atomic under the
GIL).  Queries grab the current snapshot once and answer entirely from
it, so an in-flight retrain never blocks or torments a reader: until
the swap they see the previous model, after it the new one, never a
mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro import obs
from repro.knn.classifier import CosineKnn
from repro.labels.groundtruth import GroundTruth
from repro.trace.address import ip_to_str


class UnknownSenderError(KeyError):
    """Raised when a queried IP is not covered by the live embedding."""


def _prewarm(index, k: int) -> None:
    """Pre-touch an ANN index on the writer side before the swap.

    Faults in every mmap-backed array the index holds (raw artifacts
    load lazily, page by page; arrays the writer just built are hot
    already) and runs one small dummy search to allocate the search
    scratch buffers and populate lazy caches (e.g. the HNSW link-span
    table), so the first reader query after promotion does not pay
    those cold costs.
    """

    def touch(value) -> None:
        if (
            isinstance(value, np.memmap)
            and value.size
            and value.dtype != object
        ):
            np.add.reduce(value, axis=None)

    for value in vars(index).values():
        if isinstance(value, (list, tuple)):
            for item in value:
                touch(item)
        else:
            touch(value)
    n = len(index.units)
    if n > 1:
        # A couple of rows is enough to allocate the search scratch
        # buffers and populate lazy caches; a wider priming batch only
        # lengthens the promotion pause (the search cost is paid on
        # every promotion, the warm-up benefit only once per cache).
        rows = np.arange(min(2, n), dtype=np.int64)
        index.search(rows, min(k, n - 1), exclude_self=True)


@dataclass(frozen=True)
class ModelSnapshot:
    """One immutable serving view of a fitted DarkVec model.

    Attributes:
        version: monotone promotion counter (0 = the initial fit).
        tokens: embedded sender indices, aligned with the index rows.
        sender_ips: uint32 IP of each embedded sender (aligned with
            ``tokens``).
        knn: labeled cosine k-NN classifier sharing the live ANN
            index; ``labels`` is all-``Unknown`` without ground truth
            (classify still answers, with the honest label).
        communities: Louvain community id per embedded sender, or None
            when cluster caching is disabled.
        modularity: modularity of the cached partition (None with it).
        built_seconds: wall time spent building this snapshot — the
            "promotion pause" of the swap (queries never pause; this
            is the writer-side cost).
    """

    version: int
    tokens: np.ndarray
    sender_ips: np.ndarray
    knn: CosineKnn
    communities: np.ndarray | None
    modularity: float | None
    built_seconds: float
    _ip_order: np.ndarray = field(repr=False, default=None)

    @staticmethod
    def of(
        darkvec,
        truth: GroundTruth | None = None,
        version: int = 0,
        k: int = 7,
        with_clusters: bool = True,
    ) -> "ModelSnapshot":
        """Freeze the current fitted state of ``darkvec``.

        Runs on the writer side (initial start and after each promoted
        update).  Builds the ANN index if the model does not hold a
        live one (``DarkVec._ann_index`` reuses an evolved or cached
        index when possible) and, with ``with_clusters``, computes the
        Louvain partition once so membership queries are O(1) lookups.
        """
        t0 = perf_counter()
        trace, embedding = darkvec._require_fit()
        tokens = embedding.tokens
        sender_ips = trace.sender_ips[tokens].astype(np.uint32)
        # Clamp k to the embedded population (mirroring neighbors()):
        # classify excludes the query row, so a model with fewer than
        # k+1 senders would reject every query instead of answering
        # with the neighbours it has.
        k = max(1, min(int(k), len(tokens) - 1))
        index = darkvec._ann_index()
        if truth is not None:
            labels = truth.labels_for(trace)[tokens]
        else:
            from repro.labels.groundtruth import UNKNOWN

            labels = np.full(len(tokens), UNKNOWN, dtype=object)
        knn = CosineKnn(
            vectors=None,
            labels=labels,
            k=k,
            workers=darkvec.config.workers,
            index=index,
        )
        t_warm = perf_counter()
        _prewarm(index, k)
        obs.observe("serve.warmup_seconds", perf_counter() - t_warm)
        communities = modularity = None
        if with_clusters:
            result = darkvec.cluster()
            communities = result.communities
            modularity = float(result.modularity)
        return ModelSnapshot(
            version=version,
            tokens=tokens,
            sender_ips=sender_ips,
            knn=knn,
            communities=communities,
            modularity=modularity,
            built_seconds=perf_counter() - t0,
            _ip_order=np.argsort(sender_ips, kind="stable"),
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tokens)

    def row_of_ip(self, ip: int) -> int:
        """Embedding row of sender ``ip``; raises when not embedded."""
        order = self._ip_order
        pos = int(np.searchsorted(self.sender_ips, np.uint32(ip), sorter=order))
        if pos < len(order) and int(self.sender_ips[order[pos]]) == int(ip):
            return int(order[pos])
        raise UnknownSenderError(
            f"sender {ip_to_str(int(ip))} is not covered by the live "
            f"embedding (model v{self.version}, {len(self)} senders)"
        )

    def rows_of_ips(self, ips: np.ndarray) -> np.ndarray:
        """Embedding row per sender IP; -1 where not embedded."""
        ips = np.asarray(ips, dtype=np.uint32)
        order = self._ip_order
        pos = np.searchsorted(self.sender_ips, ips, sorter=order)
        pos = np.clip(pos, 0, len(order) - 1)
        rows = order[pos].astype(np.int64)
        return np.where(self.sender_ips[rows] == ips, rows, -1)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------

    def classify(self, ip: int) -> dict:
        """Majority-vote label of the sender's k nearest neighbours."""
        row = self.row_of_ip(ip)
        rows = np.array([row], dtype=np.int64)
        label = self.knn.predict_rows(rows, exclude_self=True)[0]
        distance = float(self.knn.neighbor_distances(rows, exclude_self=True)[0])
        return {
            "ip": ip_to_str(int(ip)),
            "label": str(label),
            "mean_distance": distance,
            "k": self.knn.k,
            "version": self.version,
        }

    def neighbors(self, ip: int, k: int | None = None) -> dict:
        """The sender's nearest embedded senders by cosine similarity."""
        row = self.row_of_ip(ip)
        k = self.knn.k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be positive")
        k = min(k, len(self) - 1)
        neighbors, sims = self.knn.index.search(
            np.array([row], dtype=np.int64), k, exclude_self=True
        )
        return {
            "ip": ip_to_str(int(ip)),
            "version": self.version,
            "neighbors": [
                {
                    "ip": ip_to_str(int(self.sender_ips[n])),
                    "similarity": float(s),
                    "label": str(self.knn.labels[n]),
                }
                for n, s in zip(neighbors[0], sims[0])
            ],
        }

    def classify_many(self, ips) -> dict:
        """Batched classify: one shared k-NN search for every sender.

        Unknown senders do not fail the batch — their slot carries an
        ``"error"`` field instead of a label.
        """
        ips = np.asarray(list(ips), dtype=np.uint32)
        rows = self.rows_of_ips(ips)
        known = rows >= 0
        results: list[dict | None] = [None] * len(ips)
        if known.any():
            krows = rows[known]
            labels = self.knn.predict_rows(krows, exclude_self=True)
            distances = self.knn.neighbor_distances(krows, exclude_self=True)
            for slot, label, distance in zip(
                np.flatnonzero(known), labels, distances
            ):
                results[slot] = {
                    "ip": ip_to_str(int(ips[slot])),
                    "label": str(label),
                    "mean_distance": float(distance),
                    "k": self.knn.k,
                }
        for slot in np.flatnonzero(~known):
            results[slot] = {
                "ip": ip_to_str(int(ips[slot])),
                "error": "unknown sender",
            }
        return {"version": self.version, "results": results}

    def neighbors_many(self, ips, k: int | None = None) -> dict:
        """Batched neighbors: one vectorized index search for all IPs."""
        ips = np.asarray(list(ips), dtype=np.uint32)
        rows = self.rows_of_ips(ips)
        known = rows >= 0
        k = self.knn.k if k is None else int(k)
        if k < 1:
            raise ValueError("k must be positive")
        k = min(k, len(self) - 1)
        results: list[dict | None] = [None] * len(ips)
        if known.any():
            neighbors, sims = self.knn.index.search(
                rows[known], k, exclude_self=True
            )
            for j, slot in enumerate(np.flatnonzero(known)):
                results[slot] = {
                    "ip": ip_to_str(int(ips[slot])),
                    "neighbors": [
                        {
                            "ip": ip_to_str(int(self.sender_ips[n])),
                            "similarity": float(s),
                            "label": str(self.knn.labels[n]),
                        }
                        for n, s in zip(neighbors[j], sims[j])
                    ],
                }
        for slot in np.flatnonzero(~known):
            results[slot] = {
                "ip": ip_to_str(int(ips[slot])),
                "error": "unknown sender",
            }
        return {"version": self.version, "results": results}

    def membership(self, ip: int, sample: int = 8) -> dict:
        """Cluster membership from the cached Louvain partition."""
        if self.communities is None:
            raise ValueError(
                "cluster membership is disabled for this service "
                "(started without cluster caching)"
            )
        row = self.row_of_ip(ip)
        cluster = int(self.communities[row])
        members = np.flatnonzero(self.communities == cluster)
        preview = members[members != row][: max(sample, 0)]
        return {
            "ip": ip_to_str(int(ip)),
            "version": self.version,
            "cluster": cluster,
            "size": int(len(members)),
            "modularity": self.modularity,
            "members_sample": [
                ip_to_str(int(self.sender_ips[m])) for m in preview
            ],
        }
