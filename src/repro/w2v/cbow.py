"""Continuous-Bag-Of-Words (CBOW) training with negative sampling.

The paper's Appendix A.1 describes both Word2Vec architectures and
uses skip-gram; CBOW is provided for completeness and for the
architecture ablation benchmark.  For each center word the *mean* of
its context vectors predicts the center (gensim's ``cbow_mean=1``),
trained against negative samples exactly like SGNS.

The implementation is batched: consecutive pair runs produced by
:func:`repro.w2v.skipgram.skipgram_pairs` group the contexts of one
center position, so per-center means reduce to ``np.add.reduceat``.
"""

from __future__ import annotations

import numpy as np

from repro.w2v.mathutils import scatter_add, sigmoid
from repro.w2v.negative import NegativeSampler


def cbow_step(
    syn0: np.ndarray,
    syn1: np.ndarray,
    centers: np.ndarray,
    contexts: np.ndarray,
    sampler: NegativeSampler | None,
    negative: int,
    lr: float,
    rng: np.random.Generator,
) -> None:
    """One CBOW SGD step over aligned (center, context) pair arrays.

    ``centers`` must be organised in consecutive runs (all pairs of one
    center position adjacent), which is how the pair generator emits
    them.

    Args:
        syn0: input vectors (context side), updated in place.
        syn1: output vectors (center side), updated in place.
        centers, contexts: aligned word-id arrays.
        sampler: negative sampler, or None to skip negatives.
        negative: negatives per center position.
        lr: learning rate.
        rng: randomness for negative draws.
    """
    if len(centers) == 0:
        return
    lr = np.float32(lr)
    # Boundaries of the consecutive center runs.
    run_starts = np.concatenate([[0], np.flatnonzero(np.diff(centers) != 0) + 1])
    run_lengths = np.diff(np.concatenate([run_starts, [len(centers)]]))
    run_centers = centers[run_starts]  # (R,)

    context_vecs = syn0[contexts]  # (P, V)
    sums = np.add.reduceat(context_vecs, run_starts, axis=0)  # (R, V)
    means = sums / run_lengths[:, None].astype(np.float32)  # h per center

    center_vecs = syn1[run_centers]  # (R, V)
    pos_scores = sigmoid((means * center_vecs).sum(axis=1))
    g_pos = ((1.0 - pos_scores) * lr).astype(np.float32)

    grad_means = g_pos[:, None] * center_vecs  # dL/dh per run
    grad_centers = g_pos[:, None] * means

    if sampler is not None and negative:
        negatives = sampler.sample(rng, (len(run_centers), negative))  # (R, K)
        neg_vecs = syn1[negatives]  # (R, K, V)
        neg_scores = sigmoid(
            np.matmul(neg_vecs, means[:, :, None])[:, :, 0]
        )  # (R, K)
        g_neg = (-neg_scores * lr).astype(np.float32)
        grad_means += np.matmul(g_neg[:, None, :], neg_vecs)[:, 0, :]
        grad_negatives = g_neg[:, :, None] * means[:, None, :]
        syn1_rows = np.concatenate([run_centers, negatives.reshape(-1)])
        syn1_grads = np.concatenate(
            [grad_centers, grad_negatives.reshape(-1, syn1.shape[1])]
        )
        scatter_add(syn1, syn1_rows, syn1_grads)
    else:
        scatter_add(syn1, run_centers, grad_centers)

    # Apply each run's full mean-gradient to every context word.  This
    # matches the original word2vec.c (and gensim): the *forward* pass
    # averages the context vectors, but the backward pass does NOT
    # divide the gradient by the context count — the exact derivative
    # (grad / count) trains the input vectors an order of magnitude too
    # slowly on long darknet sentences.
    per_context = np.repeat(grad_means, run_lengths, axis=0)
    scatter_add(syn0, contexts, per_context)
