"""Word2Vec from scratch (skip-gram with negative sampling).

The paper trains its embeddings with Gensim; this package provides an
equivalent SGNS implementation in pure numpy: vocabulary with min-count
pruning, dynamic-window skip-gram generation, a unigram^0.75 negative
sampler, and mini-batched SGD with linear learning-rate decay.
"""

from repro.w2v.glove import GloVe
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec
from repro.w2v.negative import NegativeSampler
from repro.w2v.skipgram import (
    expected_pair_count,
    skipgram_pairs,
    skipgram_pairs_flat,
)
from repro.w2v.vocab import Vocabulary

__all__ = [
    "GloVe",
    "KeyedVectors",
    "NegativeSampler",
    "Vocabulary",
    "Word2Vec",
    "expected_pair_count",
    "skipgram_pairs",
    "skipgram_pairs_flat",
]
