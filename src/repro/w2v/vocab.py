"""Vocabulary over integer tokens.

DarkVec tokens are trace sender indices; the baselines encode ports and
flow fields as integers too, so a single int64-keyed vocabulary serves
all three models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Vocabulary:
    """Bidirectional token <-> word-id mapping with frequencies.

    Attributes:
        tokens: sorted distinct tokens; position is the word id.
        counts: corpus frequency of each token.
    """

    tokens: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.counts):
            raise ValueError("tokens and counts must align")
        if len(self.tokens) > 1 and np.any(np.diff(self.tokens) <= 0):
            raise ValueError("tokens must be sorted and unique")
        if len(self.counts) and self.counts.min() < 1:
            raise ValueError("counts must be positive")

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def total_count(self) -> int:
        return int(self.counts.sum())

    @staticmethod
    def build(
        sentences: list[np.ndarray],
        min_count: int = 1,
    ) -> "Vocabulary":
        """Count tokens over ``sentences`` and prune below ``min_count``."""
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        if not sentences:
            return Vocabulary(
                tokens=np.empty(0, dtype=np.int64),
                counts=np.empty(0, dtype=np.int64),
            )
        flat = np.concatenate([np.asarray(s, dtype=np.int64) for s in sentences])
        tokens, counts = np.unique(flat, return_counts=True)
        keep = counts >= min_count
        return Vocabulary(tokens=tokens[keep], counts=counts[keep])

    def restricted_to(self, allowed: np.ndarray) -> "Vocabulary":
        """Sub-vocabulary of the tokens that appear in ``allowed``.

        Counts are preserved; tokens outside ``allowed`` are dropped.
        Used by the staged pipeline to apply the paper's activity
        filter at vocabulary level instead of re-building the corpus.
        """
        allowed = np.unique(np.asarray(allowed, dtype=np.int64))
        if len(allowed) == 0 or len(self.tokens) == 0:
            return Vocabulary(
                tokens=np.empty(0, dtype=np.int64),
                counts=np.empty(0, dtype=np.int64),
            )
        positions = np.searchsorted(allowed, self.tokens)
        positions = np.clip(positions, 0, len(allowed) - 1)
        keep = allowed[positions] == self.tokens
        return Vocabulary(tokens=self.tokens[keep], counts=self.counts[keep])

    @staticmethod
    def merge(a: "Vocabulary", b: "Vocabulary") -> "Vocabulary":
        """Union of two vocabularies with summed counts.

        The warm-start path merges the vocabulary of retained corpus
        windows with the vocabulary of freshly rebuilt windows instead
        of re-counting the whole rolling window from scratch.
        """
        tokens = np.union1d(a.tokens, b.tokens)
        counts = np.zeros(len(tokens), dtype=np.int64)
        if len(a.tokens):
            counts[np.searchsorted(tokens, a.tokens)] += a.counts
        if len(b.tokens):
            counts[np.searchsorted(tokens, b.tokens)] += b.counts
        return Vocabulary(tokens=tokens, counts=counts)

    def encode(self, tokens: np.ndarray) -> np.ndarray:
        """Word ids of ``tokens``; out-of-vocabulary tokens become -1."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if len(self.tokens) == 0:
            return np.full(len(tokens), -1, dtype=np.int64)
        positions = np.searchsorted(self.tokens, tokens)
        positions = np.clip(positions, 0, len(self.tokens) - 1)
        hit = self.tokens[positions] == tokens
        ids = np.where(hit, positions, -1)
        return ids.astype(np.int64)

    def encode_sentence(self, tokens: np.ndarray) -> np.ndarray:
        """Encode and drop out-of-vocabulary tokens.

        Matches gensim: pruned words are removed from the sentence
        before windowing, so surviving words become adjacent.
        """
        ids = self.encode(tokens)
        return ids[ids >= 0]

    def decode(self, word_ids: np.ndarray) -> np.ndarray:
        """Tokens of the given word ids."""
        word_ids = np.asarray(word_ids, dtype=np.int64)
        if len(word_ids) and (word_ids.min() < 0 or word_ids.max() >= len(self)):
            raise ValueError("word id out of range")
        return self.tokens[word_ids]

    def id_of(self, token: int) -> int:
        """Word id of a single token, or -1 when unknown."""
        return int(self.encode(np.array([token]))[0])
