"""Negative sampling from the smoothed unigram distribution."""

from __future__ import annotations

import numpy as np


class NegativeSampler:
    """Draws word ids with probability proportional to count^power.

    ``power = 0.75`` is the original word2vec smoothing; it damps the
    dominance of very frequent words (in DarkVec: the heaviest-hitting
    senders).
    """

    def __init__(self, counts: np.ndarray, power: float = 0.75) -> None:
        counts = np.asarray(counts, dtype=np.float64)
        if len(counts) == 0:
            raise ValueError("cannot sample from an empty vocabulary")
        if counts.min() <= 0:
            raise ValueError("counts must be positive")
        if power < 0:
            raise ValueError("power must be non-negative")
        weights = counts**power
        self._cumulative = np.cumsum(weights)
        self._cumulative /= self._cumulative[-1]

    def __len__(self) -> int:
        return len(self._cumulative)

    def sample(self, rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
        """Draw word ids with the smoothed-unigram distribution."""
        u = rng.random(shape)
        return np.searchsorted(self._cumulative, u).astype(np.int64)

    def probability_of(self, word_id: int) -> float:
        """Sampling probability of one word id."""
        if not 0 <= word_id < len(self):
            raise ValueError("word id out of range")
        prev = self._cumulative[word_id - 1] if word_id else 0.0
        return float(self._cumulative[word_id] - prev)
