"""Skip-gram-with-negative-sampling training (mini-batched numpy SGD).

This is the algorithm gensim runs for ``Word2Vec(sg=1, negative=k)``:
for each (center, context) pair drawn from dynamic windows, maximise
``log s(u_ctx . v_c) + sum_neg log s(-u_neg . v_c)`` by SGD with a
linearly decaying learning rate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import obs
from repro.obs.progress import ProgressEvent, epoch_event
from repro.w2v.cbow import cbow_step
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.mathutils import cap_row_norms, scatter_add, sigmoid
from repro.w2v.negative import NegativeSampler
from repro.w2v.skipgram import expected_pair_count, skipgram_pairs
from repro.w2v.vocab import Vocabulary
from repro.utils.rng import make_rng


def _cap_norms(matrix: np.ndarray, max_norm: float) -> None:
    """Scale rows with L2 norm above ``max_norm`` back onto the ball."""
    cap_row_norms(matrix, max_norm)


@dataclass
class Word2Vec:
    """SGNS trainer.

    Attributes mirror the gensim parameters used in the paper:
    ``vector_size`` is the embedding dimension V, ``context`` the
    one-sided window c, ``negative`` the number of negative samples,
    ``sample`` the frequent-token subsampling threshold (0 disables).

    ``workers`` selects the training engine: ``1`` (the default) is the
    bit-reproducible sequential reference path; any other value routes
    skip-gram training through the sharded parallel engine
    (:class:`repro.parallel.trainer.ShardedTrainer`), with ``0`` meaning
    "use all available cores".  The parallel engine optimises the same
    objective and is statistically equivalent, but not bit-identical,
    to the sequential path.  CBOW always trains sequentially.
    ``pool_backend`` picks the parallel executor: ``"thread"`` (shared
    address space), ``"process"`` (fork workers over shared-memory
    syn0/syn1), or ``None`` to inherit the scoped default from
    :func:`repro.parallel.pool.pool_backend`.

    ``progress`` is an optional per-epoch callback receiving a
    :class:`~repro.obs.progress.ProgressEvent` (pairs/sec, loss
    estimate, ETA) on both training paths.  The callback consumes no
    randomness, so supplying one leaves the trained vectors unchanged.
    """

    vector_size: int = 50
    context: int = 25
    negative: int = 5
    epochs: int = 10
    architecture: str = "skipgram"
    alpha: float = 0.025
    min_alpha: float = 1e-4
    min_count: int = 1
    sample: float = 0.0
    batch_pairs: int = 16_384
    batch_vocab_factor: int = 8
    shared_negatives: int = 16
    max_norm: float | None = 10.0
    dynamic_window: bool = True
    seed: int = 1
    workers: int = 1
    pool_backend: str | None = None
    progress: Callable[[ProgressEvent], None] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._loss_sum = 0.0
        self._loss_pairs = 0
        self._track_loss = False
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means all cores)")
        if self.pool_backend not in (None, "thread", "process"):
            raise ValueError(
                f"pool_backend must be 'thread', 'process', or None, "
                f"got {self.pool_backend!r}"
            )
        if self.vector_size < 1:
            raise ValueError("vector_size must be positive")
        if self.context < 1:
            raise ValueError("context must be positive")
        if self.negative < 0:
            raise ValueError("negative must be non-negative")
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if not 0 < self.alpha:
            raise ValueError("alpha must be positive")
        if not 0 <= self.min_alpha <= self.alpha:
            raise ValueError("min_alpha must be in [0, alpha]")
        if self.architecture not in ("skipgram", "cbow"):
            raise ValueError(
                f"architecture must be 'skipgram' or 'cbow', "
                f"got {self.architecture!r}"
            )

    def fit(
        self,
        sentences: list[np.ndarray],
        *,
        init: KeyedVectors | None = None,
        vocab: Vocabulary | None = None,
    ) -> KeyedVectors:
        """Train on integer-token sentences and return the embedding.

        Args:
            sentences: integer-token sentences.  Tokens outside the
                vocabulary are dropped before windowing.
            init: optional prior embedding for **warm starts**: vectors
                of tokens present in both ``init`` and the vocabulary
                seed the input matrix; unseen tokens get the usual
                random initialisation.  ``init=None`` (the default)
                leaves training bit-identical to a cold start.
            vocab: optional pre-built vocabulary.  When given, the
                internal ``Vocabulary.build`` call is skipped and
                out-of-vocabulary tokens are filtered at encode time —
                this is how the staged pipeline injects its
                activity-filtered vocabulary artifact.
        """
        with obs.span(
            "train.fit", architecture=self.architecture, workers=self.workers
        ) as fit_span:
            return self._fit(sentences, fit_span, init=init, vocab=vocab)

    def _fit(
        self,
        sentences: list[np.ndarray],
        fit_span,
        init: KeyedVectors | None = None,
        vocab: Vocabulary | None = None,
    ) -> KeyedVectors:
        if vocab is None:
            vocab = Vocabulary.build(sentences, min_count=self.min_count)
        obs.set_gauge("train.vocab_size", len(vocab))
        if len(vocab) == 0:
            return KeyedVectors(
                tokens=np.empty(0, dtype=np.int64),
                vectors=np.empty((0, self.vector_size)),
            )
        rng = make_rng(self.seed)
        encoded = [vocab.encode_sentence(np.asarray(s)) for s in sentences]
        encoded = [s for s in encoded if len(s) >= 2]

        syn0 = (
            (rng.random((len(vocab), self.vector_size)) - 0.5) / self.vector_size
        ).astype(np.float32)
        syn1 = np.zeros((len(vocab), self.vector_size), dtype=np.float32)
        if init is not None:
            self._warm_start(syn0, syn1, vocab, init)
        sampler = NegativeSampler(vocab.counts) if self.negative else None
        keep_probs = self._keep_probabilities(vocab)

        lengths = np.array([len(s) for s in encoded], dtype=np.int64)
        pairs_per_epoch = expected_pair_count(
            lengths, self.context, dynamic=self.dynamic_window
        )
        total_pairs = max(int(pairs_per_epoch * self.epochs), 1)
        processed = 0
        obs.set_gauge("train.pairs_planned", total_pairs)
        obs.add("train.epochs", self.epochs)
        self._track_loss = self.progress is not None

        # Batched SGD sums the gradients of duplicate words computed
        # from the same stale vectors.  Keeping the batch small relative
        # to the vocabulary bounds that duplication factor, which keeps
        # the batched trainer as stable as sequential word2vec.
        batch_pairs = min(
            self.batch_pairs, max(256, self.batch_vocab_factor * len(vocab))
        )

        if self.workers != 1 and self.architecture == "skipgram":
            from repro.parallel.trainer import ShardedTrainer

            trainer = ShardedTrainer(self)
            trainer.train_corpus(
                encoded,
                lengths,
                syn0,
                syn1,
                sampler,
                keep_probs,
                total_pairs,
                batch_pairs,
                rng,
            )
            fit_span.set(items=trainer.processed_pairs, items_unit="pairs")
            return KeyedVectors(
                tokens=vocab.tokens.copy(), vectors=syn0, context_vectors=syn1
            )

        centers_buf: list[np.ndarray] = []
        contexts_buf: list[np.ndarray] = []
        buffered = 0

        def flush() -> None:
            nonlocal buffered, processed
            if not buffered:
                return
            centers = np.concatenate(centers_buf)
            contexts = np.concatenate(contexts_buf)
            centers_buf.clear()
            contexts_buf.clear()
            buffered = 0
            for lo in range(0, len(centers), batch_pairs):
                hi = min(lo + batch_pairs, len(centers))
                lr = self._learning_rate(processed, total_pairs)
                if self.architecture == "cbow":
                    cbow_step(
                        syn0,
                        syn1,
                        centers[lo:hi],
                        contexts[lo:hi],
                        sampler,
                        self.negative,
                        lr,
                        rng,
                    )
                else:
                    self._sgd_step(
                        syn0, syn1, centers[lo:hi], contexts[lo:hi], sampler, lr, rng
                    )
                processed += hi - lo
                obs.add("train.pairs", hi - lo)
                obs.add("train.batches", 1)
                obs.observe("train.batch_pairs", hi - lo)
            if self.max_norm is not None:
                # DarkVec only consumes cosine similarities, so capping
                # row norms (max-norm regularisation) changes nothing
                # semantically while preventing the runaway norm growth
                # that batched negative updates can otherwise cause.
                _cap_norms(syn0, self.max_norm)
                _cap_norms(syn1, self.max_norm)

        t_start = time.perf_counter()
        for epoch in range(self.epochs):
            self._loss_sum, self._loss_pairs = 0.0, 0
            t_epoch = time.perf_counter()
            with obs.span("train.epoch", epoch=epoch):
                order = rng.permutation(len(encoded))
                for idx in order:
                    sentence = encoded[idx]
                    if keep_probs is not None:
                        mask = rng.random(len(sentence)) < keep_probs[sentence]
                        sentence = sentence[mask]
                        if len(sentence) < 2:
                            continue
                    centers, contexts = skipgram_pairs(
                        sentence, self.context, rng, dynamic=self.dynamic_window
                    )
                    if len(centers) == 0:
                        continue
                    centers_buf.append(centers)
                    contexts_buf.append(contexts)
                    buffered += len(centers)
                    if buffered >= batch_pairs:
                        flush()
            obs.observe("train.epoch_seconds", time.perf_counter() - t_epoch)
            # Buffered pairs carry over into the next epoch's batches
            # (flushing here would change batch boundaries and break
            # bit-reproducibility), so progress counts them as seen.
            self._emit_progress(epoch, processed + buffered, total_pairs, t_start)
        flush()
        fit_span.set(items=processed, items_unit="pairs")
        return KeyedVectors(
            tokens=vocab.tokens.copy(), vectors=syn0, context_vectors=syn1
        )

    def fit_pairs(
        self, center_tokens: np.ndarray, context_tokens: np.ndarray
    ) -> KeyedVectors:
        """Train directly on explicit (center, context) token pairs.

        Used by the IP2VEC baseline, whose "context" is a fixed set of
        flow fields rather than a sliding window.  Window-related
        parameters (``context``, ``dynamic_window``, ``sample``) are
        ignored; everything else behaves as in :meth:`fit`.
        """
        with obs.span(
            "train.fit", architecture="pairs", workers=self.workers
        ) as fit_span:
            return self._fit_pairs(center_tokens, context_tokens, fit_span)

    def _fit_pairs(
        self,
        center_tokens: np.ndarray,
        context_tokens: np.ndarray,
        fit_span,
    ) -> KeyedVectors:
        center_tokens = np.asarray(center_tokens, dtype=np.int64)
        context_tokens = np.asarray(context_tokens, dtype=np.int64)
        if len(center_tokens) != len(context_tokens):
            raise ValueError("center and context arrays must align")
        vocab = Vocabulary.build(
            [center_tokens, context_tokens], min_count=self.min_count
        )
        obs.set_gauge("train.vocab_size", len(vocab))
        if len(vocab) == 0:
            return KeyedVectors(
                tokens=np.empty(0, dtype=np.int64),
                vectors=np.empty((0, self.vector_size)),
            )
        rng = make_rng(self.seed)
        centers = vocab.encode(center_tokens)
        contexts = vocab.encode(context_tokens)
        keep = (centers >= 0) & (contexts >= 0)
        centers, contexts = centers[keep], contexts[keep]

        syn0 = (
            (rng.random((len(vocab), self.vector_size)) - 0.5) / self.vector_size
        ).astype(np.float32)
        syn1 = np.zeros((len(vocab), self.vector_size), dtype=np.float32)
        sampler = NegativeSampler(vocab.counts) if self.negative else None
        batch_pairs = min(
            self.batch_pairs, max(256, self.batch_vocab_factor * len(vocab))
        )
        total_pairs = max(len(centers) * self.epochs, 1)
        obs.set_gauge("train.pairs_planned", total_pairs)
        obs.add("train.epochs", self.epochs)
        self._track_loss = self.progress is not None

        if self.workers != 1:
            from repro.parallel.trainer import ShardedTrainer

            trainer = ShardedTrainer(self)
            trainer.train_pair_stream(
                centers, contexts, syn0, syn1, sampler, total_pairs, batch_pairs, rng
            )
            fit_span.set(items=trainer.processed_pairs, items_unit="pairs")
            return KeyedVectors(
                tokens=vocab.tokens.copy(), vectors=syn0, context_vectors=syn1
            )

        processed = 0
        t_start = time.perf_counter()
        for epoch in range(self.epochs):
            self._loss_sum, self._loss_pairs = 0.0, 0
            t_epoch = time.perf_counter()
            with obs.span("train.epoch", epoch=epoch):
                order = rng.permutation(len(centers))
                for lo in range(0, len(order), batch_pairs):
                    batch = order[lo : lo + batch_pairs]
                    lr = self._learning_rate(processed, total_pairs)
                    self._sgd_step(
                        syn0, syn1, centers[batch], contexts[batch], sampler, lr, rng
                    )
                    processed += len(batch)
                    obs.add("train.pairs", len(batch))
                    obs.add("train.batches", 1)
                    obs.observe("train.batch_pairs", len(batch))
                    if self.max_norm is not None:
                        # IP2VEC-style pair streams are extremely skewed
                        # (one port can be a quarter of all pairs), so the
                        # cap must be applied per batch, not per epoch.
                        _cap_norms(syn0, self.max_norm)
                        _cap_norms(syn1, self.max_norm)
            obs.observe("train.epoch_seconds", time.perf_counter() - t_epoch)
            self._emit_progress(epoch, processed, total_pairs, t_start)
        fit_span.set(items=processed, items_unit="pairs")
        return KeyedVectors(
            tokens=vocab.tokens.copy(), vectors=syn0, context_vectors=syn1
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _warm_start(
        self,
        syn0: np.ndarray,
        syn1: np.ndarray,
        vocab: Vocabulary,
        init: KeyedVectors,
    ) -> None:
        """Seed ``syn0`` (and ``syn1``) rows from a prior model (in place).

        Tokens present in both the vocabulary and ``init`` copy their
        prior input vector — and their prior context vector when
        ``init.context_vectors`` is set, which is what makes a short
        warm refit track a full cold retrain: resuming with a zeroed
        context matrix would perturb every seeded vector back through
        the early large-gradient regime.  The remaining rows keep the
        fresh random initialisation already drawn into ``syn0`` (so the
        RNG stream is identical with and without a warm start).
        """
        if init.vector_size != self.vector_size:
            raise ValueError(
                f"warm-start dimension mismatch: prior embedding has "
                f"vector_size={init.vector_size}, model expects "
                f"{self.vector_size}"
            )
        rows = init.rows_of(vocab.tokens)
        seen = rows >= 0
        if seen.any():
            syn0[seen] = init.vectors[rows[seen]].astype(np.float32)
            if init.context_vectors is not None:
                syn1[seen] = init.context_vectors[rows[seen]].astype(np.float32)
        obs.set_gauge("train.warm_tokens", int(seen.sum()))

    def _learning_rate(self, processed: int, total: int) -> float:
        fraction = min(processed / total, 1.0)
        return max(self.alpha * (1.0 - fraction), self.min_alpha)

    def _emit_progress(
        self, epoch: int, processed: int, total: int, t_start: float
    ) -> None:
        if self.progress is None:
            return
        loss = (
            self._loss_sum / self._loss_pairs if self._loss_pairs else None
        )
        self.progress(
            epoch_event(
                epoch,
                self.epochs,
                processed,
                total,
                time.perf_counter() - t_start,
                loss=loss,
            )
        )

    def _keep_probabilities(self, vocab: Vocabulary) -> np.ndarray | None:
        """Frequent-token subsampling probabilities (word2vec style)."""
        if self.sample <= 0:
            return None
        freqs = vocab.counts / vocab.total_count
        ratio = self.sample / freqs
        keep = np.sqrt(ratio) + ratio
        return np.minimum(keep, 1.0)

    def _sgd_step(
        self,
        syn0: np.ndarray,
        syn1: np.ndarray,
        centers: np.ndarray,
        contexts: np.ndarray,
        sampler: NegativeSampler | None,
        lr: float,
        rng: np.random.Generator,
    ) -> None:
        lr = np.float32(lr)
        center_vecs = syn0[centers]  # (B, V)
        context_vecs = syn1[contexts]  # (B, V)

        pos_scores = sigmoid((center_vecs * context_vecs).sum(axis=1))
        if self._track_loss:
            # Positive-pair loss estimate for the progress callback;
            # gated so uninstrumented runs skip the log entirely.
            self._loss_sum += float(
                -np.log(np.maximum(pos_scores, 1e-7)).sum()
            )
            self._loss_pairs += len(centers)
        g_pos = ((1.0 - pos_scores) * lr).astype(np.float32)

        grad_centers = g_pos[:, None] * context_vecs
        grad_contexts = g_pos[:, None] * center_vecs

        if sampler is not None and self.negative:
            # Negatives are shared within small groups of pairs rather
            # than drawn per pair.  Each pair still sees `negative`
            # samples from the smoothed unigram distribution; sharing
            # turns the (B, K, V) elementwise work into grouped BLAS
            # matmuls, which is several times faster with identical
            # expected gradients.
            batch = len(centers)
            group = max(min(self.shared_negatives, batch), 1)
            n_groups = batch // group
            main = n_groups * group
            if main:
                self._negative_update(
                    syn0,
                    syn1,
                    center_vecs[:main].reshape(n_groups, group, -1),
                    centers[:main],
                    grad_centers[:main].reshape(n_groups, group, -1),
                    sampler,
                    lr,
                    rng,
                )
            if main < batch:
                self._negative_update(
                    syn0,
                    syn1,
                    center_vecs[main:][None, :, :],
                    centers[main:],
                    grad_centers[main:][None, :, :],
                    sampler,
                    lr,
                    rng,
                )

        scatter_add(syn1, contexts, grad_contexts)
        scatter_add(syn0, centers, grad_centers)

    def _negative_update(
        self,
        syn0: np.ndarray,
        syn1: np.ndarray,
        center_groups: np.ndarray,  # (G, S, V), a view into center_vecs
        centers: np.ndarray,
        grad_center_groups: np.ndarray,  # (G, S, V), accumulated in place
        sampler: NegativeSampler,
        lr: np.float32,
        rng: np.random.Generator,
    ) -> None:
        """Apply the negative-sampling part of the SGNS gradient."""
        n_groups, _, _ = center_groups.shape
        negatives = sampler.sample(rng, (n_groups, self.negative))  # (G, K)
        obs.add("train.negative_draws", negatives.size)
        neg_vecs = syn1[negatives]  # (G, K, V)
        scores = sigmoid(
            np.matmul(center_groups, neg_vecs.transpose(0, 2, 1))
        )  # (G, S, K)
        g_neg = (-scores * lr).astype(np.float32)
        grad_center_groups += np.matmul(g_neg, neg_vecs)
        grad_negatives = np.matmul(g_neg.transpose(0, 2, 1), center_groups)
        scatter_add(
            syn1, negatives.reshape(-1), grad_negatives.reshape(-1, syn1.shape[1])
        )
