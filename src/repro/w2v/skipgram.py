"""Skip-gram (center, context) pair generation.

The paper pads sentence edges with a NULL word (Section 5.3); emitting
no pair for padded slots is equivalent, since a NULL context carries no
gradient.  Like the original word2vec (and gensim), the effective
window of each center can be shrunk uniformly at random to ``1..c``,
which both speeds training up and weighs nearby context words more.
"""

from __future__ import annotations

import numpy as np


def expected_pair_count(
    lengths: np.ndarray, context: int, dynamic: bool = True
) -> float:
    """Expected (center, context) pairs for sentences of given lengths.

    With dynamic windows the per-center window ``b`` is uniform on
    ``1..c`` and each side contributes ``E[min(k, b)]`` pairs, where
    ``k`` is the room available on that side.  Getting this expectation
    right matters: the linear learning-rate schedule divides by the
    total pair count, and an overestimate (e.g. assuming sentences are
    longer than ``2c``) leaves the final learning rate far above
    ``min_alpha``, visibly degrading large-``c`` embeddings.
    """
    if context < 1:
        raise ValueError("context must be positive")
    lengths = np.asarray(lengths, dtype=np.int64)
    lengths = lengths[lengths >= 2]
    if lengths.size == 0:
        return 0.0
    # One closed-form pass over the length *histogram*: the per-position
    # expectation depends only on the one-sided room k, so a sentence of
    # length n contributes 2 * sum_{k<n} E[min(k, b)] (both sides are
    # symmetric) and the prefix sums cover every n at once.
    n_max = int(lengths.max())
    k = np.arange(n_max)  # room on one side, per position
    if dynamic:
        # E[min(k, b)], b ~ U{1..c}:
        #   k >= c: (c + 1) / 2
        #   k <  c: (k(k+1)/2 + (c-k)k) / c
        clipped = np.minimum(k, context)
        expected = (
            clipped * (clipped + 1) / 2 + (context - clipped) * clipped
        ) / context
        expected[k >= context] = (context + 1) / 2
    else:
        expected = np.minimum(k, context).astype(float)
    prefix = np.cumsum(expected)  # prefix[i] = sum of expected[0..i]
    histogram = np.bincount(lengths, minlength=n_max + 1)[2:]
    return float(2.0 * (histogram * prefix[1:]).sum())


def skipgram_pairs(
    sentence: np.ndarray,
    context: int,
    rng: np.random.Generator | None = None,
    dynamic: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """All (center, context) word-id pairs of one encoded sentence.

    Args:
        sentence: word ids (OOV already removed).
        context: maximum one-sided window size ``c``.
        rng: randomness for dynamic window shrinking; required when
            ``dynamic`` is True.
        dynamic: shrink each center's window uniformly to ``1..c``.

    Returns:
        ``(centers, contexts)`` aligned int64 arrays.
    """
    if context < 1:
        raise ValueError("context must be positive")
    n = len(sentence)
    if n < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if dynamic:
        if rng is None:
            raise ValueError("dynamic windows need an rng")
        windows = rng.integers(1, context + 1, size=n)
    else:
        windows = np.full(n, context, dtype=np.int64)

    positions = np.arange(n)
    lo = np.maximum(positions - windows, 0)
    hi = np.minimum(positions + windows, n - 1)
    pair_counts = hi - lo  # context slots excluding the center itself
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    centers = np.repeat(positions, pair_counts)
    # Offsets within each center's window, skipping the center:
    # for center i the contexts are lo[i]..hi[i] minus i.
    starts = np.concatenate([[0], np.cumsum(pair_counts)[:-1]])
    slot = np.arange(total) - np.repeat(starts, pair_counts)
    contexts_pos = np.repeat(lo, pair_counts) + slot
    contexts_pos[contexts_pos >= centers] += 1
    sentence = np.asarray(sentence, dtype=np.int64)
    return sentence[centers], sentence[contexts_pos]


def skipgram_pairs_flat(
    tokens: np.ndarray,
    starts: np.ndarray,
    context: int,
    rng: np.random.Generator | None = None,
    dynamic: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Skip-gram pairs for many sentences stored in one flat array.

    Equivalent to concatenating :func:`skipgram_pairs` over every
    sentence (and, with the same ``rng``, produces the identical pair
    stream when all sentences have length >= 2), but one vectorized
    pass over the whole corpus slab — this is what lets the parallel
    trainer generate a shard's pairs in a handful of numpy calls.

    Args:
        tokens: all sentences' word ids, concatenated.
        starts: sentence boundary offsets, shape ``(n_sentences + 1,)``;
            sentence ``i`` is ``tokens[starts[i]:starts[i + 1]]``.
        context: maximum one-sided window size ``c``.
        rng: randomness for dynamic window shrinking; one window is
            drawn per token position (including positions of length-1
            sentences, which emit no pairs).
        dynamic: shrink each center's window uniformly to ``1..c``.

    Returns:
        ``(centers, contexts)`` aligned int64 arrays.
    """
    if context < 1:
        raise ValueError("context must be positive")
    tokens = np.asarray(tokens, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    n_tokens = len(tokens)
    empty = np.empty(0, dtype=np.int64)
    if n_tokens == 0:
        return empty, empty
    lengths = np.diff(starts)
    sentence_id = np.repeat(np.arange(len(lengths)), lengths)
    sentence_start = starts[:-1][sentence_id]
    sentence_end = starts[1:][sentence_id]
    positions = np.arange(n_tokens)
    if dynamic:
        if rng is None:
            raise ValueError("dynamic windows need an rng")
        windows = rng.integers(1, context + 1, size=n_tokens)
    else:
        windows = np.full(n_tokens, context, dtype=np.int64)
    lo = np.maximum(positions - windows, sentence_start)
    hi = np.minimum(positions + windows, sentence_end - 1)
    pair_counts = hi - lo  # context slots excluding the center itself
    total = int(pair_counts.sum())
    if total == 0:
        return empty, empty
    centers_pos = np.repeat(positions, pair_counts)
    segment = np.concatenate([[0], np.cumsum(pair_counts)[:-1]])
    slot = np.arange(total) - np.repeat(segment, pair_counts)
    contexts_pos = np.repeat(lo, pair_counts) + slot
    contexts_pos[contexts_pos >= centers_pos] += 1
    return tokens[centers_pos], tokens[contexts_pos]
