"""Skip-gram (center, context) pair generation.

The paper pads sentence edges with a NULL word (Section 5.3); emitting
no pair for padded slots is equivalent, since a NULL context carries no
gradient.  Like the original word2vec (and gensim), the effective
window of each center can be shrunk uniformly at random to ``1..c``,
which both speeds training up and weighs nearby context words more.
"""

from __future__ import annotations

import numpy as np


def expected_pair_count(
    lengths: np.ndarray, context: int, dynamic: bool = True
) -> float:
    """Expected (center, context) pairs for sentences of given lengths.

    With dynamic windows the per-center window ``b`` is uniform on
    ``1..c`` and each side contributes ``E[min(k, b)]`` pairs, where
    ``k`` is the room available on that side.  Getting this expectation
    right matters: the linear learning-rate schedule divides by the
    total pair count, and an overestimate (e.g. assuming sentences are
    longer than ``2c``) leaves the final learning rate far above
    ``min_alpha``, visibly degrading large-``c`` embeddings.
    """
    if context < 1:
        raise ValueError("context must be positive")
    lengths = np.asarray(lengths, dtype=np.int64)
    total = 0.0
    for n in lengths:
        n = int(n)
        if n < 2:
            continue
        k = np.arange(n)  # room on one side, per position
        if dynamic:
            # E[min(k, b)], b ~ U{1..c}:
            #   k >= c: (c + 1) / 2
            #   k <  c: (k(k+1)/2 + (c-k)k) / c
            clipped = np.minimum(k, context)
            expected = (
                clipped * (clipped + 1) / 2 + (context - clipped) * clipped
            ) / context
            expected[k >= context] = (context + 1) / 2
        else:
            expected = np.minimum(k, context).astype(float)
        # By symmetry both sides sum to the same value.
        total += 2.0 * float(expected.sum())
    return total


def skipgram_pairs(
    sentence: np.ndarray,
    context: int,
    rng: np.random.Generator | None = None,
    dynamic: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """All (center, context) word-id pairs of one encoded sentence.

    Args:
        sentence: word ids (OOV already removed).
        context: maximum one-sided window size ``c``.
        rng: randomness for dynamic window shrinking; required when
            ``dynamic`` is True.
        dynamic: shrink each center's window uniformly to ``1..c``.

    Returns:
        ``(centers, contexts)`` aligned int64 arrays.
    """
    if context < 1:
        raise ValueError("context must be positive")
    n = len(sentence)
    if n < 2:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if dynamic:
        if rng is None:
            raise ValueError("dynamic windows need an rng")
        windows = rng.integers(1, context + 1, size=n)
    else:
        windows = np.full(n, context, dtype=np.int64)

    positions = np.arange(n)
    lo = np.maximum(positions - windows, 0)
    hi = np.minimum(positions + windows, n - 1)
    pair_counts = hi - lo  # context slots excluding the center itself
    total = int(pair_counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    centers = np.repeat(positions, pair_counts)
    # Offsets within each center's window, skipping the center:
    # for center i the contexts are lo[i]..hi[i] minus i.
    starts = np.concatenate([[0], np.cumsum(pair_counts)[:-1]])
    slot = np.arange(total) - np.repeat(starts, pair_counts)
    contexts_pos = np.repeat(lo, pair_counts) + slot
    contexts_pos[contexts_pos >= centers] += 1
    sentence = np.asarray(sentence, dtype=np.int64)
    return sentence[centers], sentence[contexts_pos]
