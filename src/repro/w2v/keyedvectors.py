"""Trained embedding lookup (the analogue of gensim's KeyedVectors)."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.w2v.mathutils import unit_rows


def _npz_path(path: str | Path) -> Path:
    """Normalise ``path`` to carry the ``.npz`` suffix exactly once."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


@dataclass
class KeyedVectors:
    """Token -> vector mapping with cosine-similarity queries.

    Attributes:
        tokens: sorted distinct tokens (e.g. trace sender indices).
        vectors: float array of shape ``(len(tokens), vector_size)``.
        context_vectors: optional context (output) matrix of the same
            shape, kept so incremental warm starts can resume training
            from the full model state instead of re-learning the
            context side from zeros.  ``None`` for embeddings that only
            serve similarity queries.
    """

    tokens: np.ndarray
    vectors: np.ndarray
    context_vectors: np.ndarray | None = None
    _units: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.tokens) != len(self.vectors):
            raise ValueError("tokens and vectors must align")
        if self.context_vectors is not None and len(self.context_vectors) != len(
            self.tokens
        ):
            raise ValueError("tokens and context_vectors must align")
        if len(self.tokens) > 1 and np.any(np.diff(self.tokens) <= 0):
            raise ValueError("tokens must be sorted and unique")

    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def vector_size(self) -> int:
        return self.vectors.shape[1] if self.vectors.ndim == 2 else 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def rows_of(self, tokens: np.ndarray) -> np.ndarray:
        """Row indices of ``tokens``; -1 for tokens not embedded."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if len(self.tokens) == 0:
            return np.full(len(tokens), -1, dtype=np.int64)
        positions = np.searchsorted(self.tokens, tokens)
        positions = np.clip(positions, 0, len(self.tokens) - 1)
        hit = self.tokens[positions] == tokens
        return np.where(hit, positions, -1).astype(np.int64)

    def __contains__(self, token: int) -> bool:
        return bool(self.rows_of(np.array([token]))[0] >= 0)

    def vector(self, token: int) -> np.ndarray:
        """Embedding of one token."""
        row = int(self.rows_of(np.array([token]))[0])
        if row < 0:
            raise KeyError(f"token {token} not in the embedding")
        return self.vectors[row]

    # ------------------------------------------------------------------
    # Similarity
    # ------------------------------------------------------------------

    @property
    def unit_vectors(self) -> np.ndarray:
        """Row-normalised vectors (cached)."""
        if self._units is None:
            self._units = unit_rows(self.vectors)
        return self._units

    def similarity(self, token_a: int, token_b: int) -> float:
        """Cosine similarity between two embedded tokens."""
        rows = self.rows_of(np.array([token_a, token_b]))
        if (rows < 0).any():
            raise KeyError("both tokens must be embedded")
        units = self.unit_vectors
        return float(units[rows[0]] @ units[rows[1]])

    def most_similar(self, token: int, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` nearest tokens by cosine similarity."""
        if k < 1:
            raise ValueError("k must be positive")
        row = int(self.rows_of(np.array([token]))[0])
        if row < 0:
            raise KeyError(f"token {token} not in the embedding")
        units = self.unit_vectors
        scores = units @ units[row]
        scores[row] = -np.inf
        top = np.argsort(scores)[::-1][:k]
        return [(int(self.tokens[i]), float(scores[i])) for i in top]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Save to a ``.npz`` file.

        The ``.npz`` suffix is appended when missing (mirroring what
        ``np.savez_compressed`` would silently do anyway), so
        ``save("emb")`` and ``load("emb")`` round-trip.
        """
        payload = {"tokens": self.tokens, "vectors": self.vectors}
        if self.context_vectors is not None:
            payload["context"] = self.context_vectors
        np.savez_compressed(_npz_path(path), **payload)

    @staticmethod
    def load(path: str | Path) -> "KeyedVectors":
        """Load from a ``.npz`` file produced by :meth:`save`.

        Accepts the same path that was passed to :meth:`save`, with or
        without the ``.npz`` suffix.
        """
        path = Path(path)
        if not path.exists():
            path = _npz_path(path)
        with np.load(path) as data:
            return KeyedVectors(
                tokens=data["tokens"],
                vectors=data["vectors"],
                context_vectors=data["context"] if "context" in data else None,
            )

    def subset(self, tokens: np.ndarray) -> "KeyedVectors":
        """Restrict to the given tokens (missing ones are ignored)."""
        rows = self.rows_of(np.asarray(tokens, dtype=np.int64))
        rows = np.unique(rows[rows >= 0])
        return KeyedVectors(
            tokens=self.tokens[rows],
            vectors=self.vectors[rows],
            context_vectors=(
                self.context_vectors[rows]
                if self.context_vectors is not None
                else None
            ),
        )
