"""Numeric kernels shared by the embedding code."""

from __future__ import annotations

import numpy as np

_SIGMOID_CLAMP = 30.0


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically clamped logistic function."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -_SIGMOID_CLAMP, _SIGMOID_CLAMP)))


def unit_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-normalise a matrix to unit L2 norm (zero rows stay zero)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def cosine_similarity(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity of two vectors."""
    nu, nv = np.linalg.norm(u), np.linalg.norm(v)
    if nu == 0.0 or nv == 0.0:
        return 0.0
    return float(np.dot(u, v) / (nu * nv))


def cap_row_norms(matrix: np.ndarray, max_norm: float) -> None:
    """Scale rows with L2 norm above ``max_norm`` back onto the ball."""
    norms = np.linalg.norm(matrix, axis=1)
    over = norms > max_norm
    if over.any():
        matrix[over] *= (max_norm / norms[over, None]).astype(matrix.dtype)


def scatter_add(matrix: np.ndarray, rows: np.ndarray, updates: np.ndarray) -> None:
    """``matrix[rows] += updates`` with correct duplicate handling.

    ``np.add.at`` is correct but slow; summing duplicate rows first via
    a sort + ``reduceat`` is an order of magnitude faster for the batch
    sizes used in training.
    """
    if len(rows) == 0:
        return
    # Summation order within a duplicate group is irrelevant for the
    # result up to float rounding, so the faster default sort is fine.
    order = np.argsort(rows)
    sorted_rows = rows[order]
    sorted_updates = updates[order]
    boundaries = np.flatnonzero(np.diff(sorted_rows) != 0)
    starts = np.concatenate([[0], boundaries + 1])
    summed = np.add.reduceat(sorted_updates, starts, axis=0)
    matrix[sorted_rows[starts]] += summed
