"""GloVe embeddings (Pennington et al., 2014), from scratch.

The paper cites GloVe as the other mainstream word-embedding family;
this implementation lets the architecture ablation compare DarkVec's
skip-gram against a global-co-occurrence method on the same corpus.

Pipeline: harmonically-weighted co-occurrence counts within a window
``c`` -> AdaGrad on the weighted least-squares objective

    J = sum_ij f(x_ij) (w_i . v_j + b_i + c_j - log x_ij)^2

with ``f(x) = min((x / x_max)^alpha, 1)``.  Final vectors are the sum
of the two factor matrices, as in the original paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.vocab import Vocabulary


def cooccurrence_counts(
    sentences: list[np.ndarray],
    vocab: Vocabulary,
    context: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Harmonically weighted co-occurrence triples ``(rows, cols, x)``.

    A pair at distance ``d`` contributes ``1/d``, counted once per
    direction (the matrix is kept asymmetric; symmetry emerges from the
    data itself).
    """
    if context < 1:
        raise ValueError("context must be positive")
    keys_chunks: list[np.ndarray] = []
    weight_chunks: list[np.ndarray] = []
    n = len(vocab)
    for sentence in sentences:
        ids = vocab.encode_sentence(np.asarray(sentence))
        if len(ids) < 2:
            continue
        for distance in range(1, min(context, len(ids) - 1) + 1):
            left = ids[:-distance]
            right = ids[distance:]
            weight = 1.0 / distance
            keys_chunks.append(left * n + right)
            keys_chunks.append(right * n + left)
            weight_chunks.append(
                np.full(2 * len(left), weight, dtype=np.float64)
            )
    if not keys_chunks:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0)
    keys = np.concatenate(keys_chunks)
    weights = np.concatenate(weight_chunks)
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.zeros(len(uniq))
    np.add.at(sums, inverse, weights)
    return (uniq // n).astype(np.int64), (uniq % n).astype(np.int64), sums


@dataclass
class GloVe:
    """GloVe trainer over integer-token sentences.

    Attributes follow the original paper's notation; ``x_max`` and
    ``alpha`` parameterise the weighting function ``f``.
    """

    vector_size: int = 50
    context: int = 25
    epochs: int = 25
    learning_rate: float = 0.05
    x_max: float = 10.0
    alpha: float = 0.75
    min_count: int = 1
    min_cooccurrence: float = 0.0
    batch_size: int = 65_536
    seed: int = 1

    def __post_init__(self) -> None:
        if self.vector_size < 1 or self.context < 1 or self.epochs < 1:
            raise ValueError("vector_size, context and epochs must be positive")
        if self.learning_rate <= 0 or self.x_max <= 0:
            raise ValueError("learning_rate and x_max must be positive")

    def fit(self, sentences: list[np.ndarray]) -> KeyedVectors:
        """Train on the corpus and return token -> vector mapping."""
        vocab = Vocabulary.build(sentences, min_count=self.min_count)
        if len(vocab) == 0:
            return KeyedVectors(
                tokens=np.empty(0, dtype=np.int64),
                vectors=np.empty((0, self.vector_size)),
            )
        rows, cols, counts = cooccurrence_counts(sentences, vocab, self.context)
        # Optionally drop near-zero harmonic co-occurrences to trade
        # fidelity for speed (darknet corpora are dominated by tiny
        # counts, which do carry signal — the default keeps them all).
        if self.min_cooccurrence > 0:
            keep = counts >= self.min_cooccurrence
            rows, cols, counts = rows[keep], cols[keep], counts[keep]
        if len(rows) == 0:
            return KeyedVectors(
                tokens=vocab.tokens.copy(),
                vectors=np.zeros((len(vocab), self.vector_size)),
            )
        rng = make_rng(self.seed)
        n, v = len(vocab), self.vector_size
        w_main = ((rng.random((n, v)) - 0.5) / v).astype(np.float64)
        w_ctx = ((rng.random((n, v)) - 0.5) / v).astype(np.float64)
        b_main = np.zeros(n)
        b_ctx = np.zeros(n)
        # AdaGrad accumulators.
        g_w_main = np.ones((n, v))
        g_w_ctx = np.ones((n, v))
        g_b_main = np.ones(n)
        g_b_ctx = np.ones(n)

        log_counts = np.log(counts)
        f_weights = np.minimum((counts / self.x_max) ** self.alpha, 1.0)

        for _ in range(self.epochs):
            order = rng.permutation(len(rows))
            for lo in range(0, len(order), self.batch_size):
                batch = order[lo : lo + self.batch_size]
                i, j = rows[batch], cols[batch]
                wi, wj = w_main[i], w_ctx[j]
                inner = (wi * wj).sum(axis=1) + b_main[i] + b_ctx[j]
                diff = f_weights[batch] * (inner - log_counts[batch])

                grad_wi = diff[:, None] * wj
                grad_wj = diff[:, None] * wi
                self._adagrad_rows(w_main, g_w_main, i, grad_wi)
                self._adagrad_rows(w_ctx, g_w_ctx, j, grad_wj)
                self._adagrad_scalar(b_main, g_b_main, i, diff)
                self._adagrad_scalar(b_ctx, g_b_ctx, j, diff)

        return KeyedVectors(tokens=vocab.tokens.copy(), vectors=w_main + w_ctx)

    def _adagrad_rows(self, matrix, accumulator, idx, grads) -> None:
        order = np.argsort(idx)
        idx_sorted = idx[order]
        grads_sorted = grads[order]
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(idx_sorted) != 0) + 1]
        )
        summed = np.add.reduceat(grads_sorted, starts, axis=0)
        target = idx_sorted[starts]
        step = self.learning_rate * summed / np.sqrt(accumulator[target])
        matrix[target] -= step
        accumulator[target] += summed**2

    def _adagrad_scalar(self, vector, accumulator, idx, grads) -> None:
        order = np.argsort(idx)
        idx_sorted = idx[order]
        grads_sorted = grads[order]
        starts = np.concatenate(
            [[0], np.flatnonzero(np.diff(idx_sorted) != 0) + 1]
        )
        summed = np.add.reduceat(grads_sorted, starts)
        target = idx_sorted[starts]
        vector[target] -= self.learning_rate * summed / np.sqrt(accumulator[target])
        accumulator[target] += summed**2
