"""DarkVec reproduction: darknet traffic analysis with word embeddings.

Reproduction of Gioacchini et al., "DarkVec: Automatic Analysis of
Darknet Traffic with Word Embeddings" (CoNEXT 2021), including every
substrate the paper relies on: a darknet traffic simulator, Word2Vec
(SGNS) from scratch, cosine k-NN classification, k'-NN-graph + Louvain
clustering, and the DANTE / IP2VEC / port-feature baselines.

Quickstart::

    from repro import DarkVec, DarkVecConfig, default_scenario, generate_trace

    bundle = generate_trace(default_scenario(scale=0.1, days=30))
    darkvec = DarkVec(DarkVecConfig(service="domain")).fit(bundle.trace)
    report = darkvec.evaluate(bundle.truth)
    print(report.to_text())
"""

from repro.core.config import DarkVecConfig
from repro.core.pipeline import ClusterResult, DarkVec
from repro.labels.groundtruth import GroundTruth
from repro.trace.generator import TraceBundle, generate_trace
from repro.trace.packet import Trace
from repro.trace.scenario import Scenario, default_scenario
from repro.w2v.keyedvectors import KeyedVectors
from repro.w2v.model import Word2Vec

__version__ = "1.0.0"

__all__ = [
    "ClusterResult",
    "DarkVec",
    "DarkVecConfig",
    "GroundTruth",
    "KeyedVectors",
    "Scenario",
    "Trace",
    "TraceBundle",
    "Word2Vec",
    "default_scenario",
    "generate_trace",
    "__version__",
]
