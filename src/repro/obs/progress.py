"""Epoch-level training progress events.

:class:`~repro.w2v.model.Word2Vec` (and therefore
:meth:`~repro.core.pipeline.DarkVec.fit`) accepts a ``progress``
callback that receives one :class:`ProgressEvent` per finished epoch —
pairs/sec, a loss estimate and an ETA — on both the sequential and the
sharded parallel training paths.  The callback runs outside the hot
loop and consumes no randomness, so providing one does not perturb the
bit-reproducible ``workers=1`` reference path.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProgressEvent:
    """Snapshot of training progress after one epoch.

    Attributes:
        epoch: 0-based index of the epoch that just finished.
        total_epochs: total epochs this fit will run.
        pairs_processed: skip-gram pairs trained so far (all epochs).
        total_pairs: planned pair total (expected count x epochs).
        elapsed_seconds: wall time since training started.
        pairs_per_second: overall training throughput so far.
        eta_seconds: projected seconds until the fit completes.
        loss: mean positive-pair loss ``-log s(u.v)`` over the finished
            epoch — a cheap monotone health signal, not the full SGNS
            objective — or ``None`` when no pairs were seen.
    """

    epoch: int
    total_epochs: int
    pairs_processed: int
    total_pairs: int
    elapsed_seconds: float
    pairs_per_second: float
    eta_seconds: float
    loss: float | None


def epoch_event(
    epoch: int,
    total_epochs: int,
    pairs_processed: int,
    total_pairs: int,
    elapsed_seconds: float,
    loss: float | None = None,
) -> ProgressEvent:
    """Build a :class:`ProgressEvent`, deriving rate and ETA."""
    rate = pairs_processed / elapsed_seconds if elapsed_seconds > 0 else 0.0
    remaining = max(total_pairs - pairs_processed, 0)
    eta = remaining / rate if rate > 0 else 0.0
    return ProgressEvent(
        epoch=epoch,
        total_epochs=total_epochs,
        pairs_processed=int(pairs_processed),
        total_pairs=int(total_pairs),
        elapsed_seconds=elapsed_seconds,
        pairs_per_second=rate,
        eta_seconds=eta,
        loss=loss,
    )
