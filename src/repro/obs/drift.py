"""Model-drift monitors: displacement, neighbourhood churn, stability.

Consecutive DarkVec models of the same darknet are only comparable
once the arbitrary rotation between two Word2Vec solutions is removed,
so every monitor here works on the *retained* senders — tokens present
in both models — and, where geometry matters, aligns the spaces first
(orthogonal Procrustes, :mod:`repro.transfer.align`).  Three views,
from fine to coarse:

* **embedding drift** — per-sender cosine displacement after
  alignment (mean / median / p95 / max);
* **neighbourhood churn** — how much each sender's k-NN set changed
  (``1 - Jaccard``), which is rotation-invariant by construction and
  closest to what the paper's k-NN classifier actually consumes;
* **cluster stability** — Rand/AMI agreement between Louvain
  partitions of the retained-sender subgraphs.

All monitors are read-only over the two embeddings and use their own
seeded RNG (Louvain), so running them never perturbs the pipeline's
random streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import at runtime would cycle obs -> w2v -> obs
    from repro.w2v.keyedvectors import KeyedVectors


@dataclass
class DriftReport:
    """Cosine-displacement summary of retained senders.

    Attributes:
        n_shared: tokens present in both models.
        aligned: whether a Procrustes rotation was fitted (False when
            the shared set was smaller than the vector size).
        mean / median / p95 / max: displacement statistics, or None
            when no tokens are shared.
    """

    n_shared: int
    aligned: bool
    mean: float | None
    median: float | None
    p95: float | None
    max: float | None

    def to_dict(self) -> dict:
        """Plain-dict form for run records."""
        return {
            "n_shared": self.n_shared,
            "aligned": self.aligned,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "max": self.max,
        }


def embedding_drift(
    previous: KeyedVectors, current: KeyedVectors
) -> DriftReport:
    """Aligned cosine displacement of the senders both models retain.

    Procrustes-aligns the previous model onto the current one on their
    shared tokens, then summarises the per-token cosine distances.  An
    empty intersection yields a report with None statistics.
    """
    # Local import: keeps scipy (the Procrustes solver) off the obs
    # package's import path for runs that never compute drift.
    from repro.transfer.align import aligned_displacement

    tokens, displacement, aligned = aligned_displacement(previous, current)
    if len(tokens) == 0:
        return DriftReport(
            n_shared=0, aligned=False, mean=None, median=None, p95=None, max=None
        )
    return DriftReport(
        n_shared=int(len(tokens)),
        aligned=aligned,
        mean=float(displacement.mean()),
        median=float(np.median(displacement)),
        p95=float(np.percentile(displacement, 95)),
        max=float(displacement.max()),
    )


def neighborhood_churn(
    previous: KeyedVectors,
    current: KeyedVectors,
    k: int = 5,
    workers: int = 1,
    spec=None,
) -> float | None:
    """Mean k-NN set churn (``1 - Jaccard``) over retained senders.

    Both neighbour searches run on the shared-token subsets, so the
    node universe is identical on the two sides and the measure is
    invariant to rotation and to senders entering or leaving the
    model.  ``workers`` parallelises the two searches and ``spec`` (an
    :class:`~repro.ann.base.AnnSpec`) selects their backend.  Returns
    None when fewer than ``k + 1`` tokens are shared (no neighbourhood
    to compare).
    """
    from repro.knn.classifier import knn_search
    from repro.transfer.align import shared_tokens
    from repro.w2v.mathutils import unit_rows

    if k < 1:
        raise ValueError("k must be positive")
    tokens = shared_tokens(previous, current)
    if len(tokens) < k + 1:
        return None
    rows = np.arange(len(tokens))
    overlaps = np.zeros(len(tokens))
    neighbor_sets = []
    for model in (previous, current):
        units = unit_rows(model.vectors[model.rows_of(tokens)])
        neighbors, _ = knn_search(
            units, rows, k, exclude_self=True, workers=workers, spec=spec
        )
        neighbor_sets.append(neighbors)
    for i in rows:
        a = set(neighbor_sets[0][i].tolist())
        b = set(neighbor_sets[1][i].tolist())
        overlaps[i] = len(a & b) / len(a | b)
    return float(1.0 - overlaps.mean())


def cluster_stability(
    previous: KeyedVectors,
    current: KeyedVectors,
    k_prime: int = 3,
    seed: int = 1,
) -> tuple[float, float] | None:
    """(ARI, AMI) between Louvain partitions of the retained senders.

    Each model's shared-token subset is clustered independently
    (k'-NN graph + Louvain, both with the given ``seed``) and the two
    partitions are compared.  Returns None when fewer than
    ``k_prime + 2`` tokens are shared — too few nodes for a
    meaningful partition.
    """
    from repro.graph import (
        adjusted_mutual_info,
        adjusted_rand_index,
        build_knn_graph,
        louvain_communities,
    )
    from repro.transfer.align import shared_tokens

    tokens = shared_tokens(previous, current)
    if len(tokens) < k_prime + 2:
        return None
    partitions = []
    for model in (previous, current):
        vectors = model.vectors[model.rows_of(tokens)]
        graph = build_knn_graph(vectors, k_prime=k_prime)
        partitions.append(
            louvain_communities(graph.symmetric_adjacency(), seed=seed)
        )
    ari = adjusted_rand_index(partitions[0], partitions[1])
    ami = adjusted_mutual_info(partitions[0], partitions[1])
    return float(ari), float(ami)
