"""Live telemetry plane: streaming sinks, worker heartbeats, `repro top`.

The rest of :mod:`repro.obs` is batch-shaped — spans and metrics become
visible when a verb finishes.  This module makes a *running* session
observable:

* :func:`build_frame` serializes the live recorder — including
  in-flight (unclosed) spans with their current elapsed time, metric
  writes still sitting in unfinished task scopes, and the latest
  process-pool worker heartbeats — into one JSON-ready frame.
* :class:`TelemetrySink` is a background flusher thread that appends a
  frame to an NDJSON stream every ``interval`` seconds (default 1s)
  and atomically rewrites a Prometheus text-exposition file, so any
  scrape agent or a second terminal can follow a fit mid-stage.
* :class:`WorkerStream` + :func:`start_worker_heartbeat` are the
  cross-process half: fork-pool workers publish periodic in-flight
  snapshots and their own RSS through a multiprocessing queue, giving
  the parent's live view per-worker visibility between task merges.
* :func:`read_frames` / :func:`render_frame` implement the consumer:
  the ``repro top`` CLI verb tails the stream from *another process*
  and renders stage tree, epoch progress, counter rates, an RSS
  sparkline and sketch quantiles.

Everything here is reached only when a :class:`~repro.obs.recorder.
Telemetry` session is active and a sink is attached — the
``NullRecorder`` default path never imports this module.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Iterator

from repro.obs import proc, recorder
from repro.obs.metrics import METRICS
from repro.obs.sketch import summarize

#: Default flush period of the sink (and the worker heartbeat period).
DEFAULT_INTERVAL = 1.0

#: Worker heartbeats older than this many periods are dropped from
#: frames — the worker is gone or wedged, not "current".
_STALE_HEARTBEATS = 5.0


def _walk_live(span: Any) -> Iterator[tuple[Any, int, str]]:
    """Race-tolerant DFS over a span tree that is still being built.

    Child lists are copied before iteration: concurrent appends from
    worker threads extend the original list, never the copy, so the
    walk sees a consistent prefix of the tree.
    """
    stack = [(span, 0, span.name)]
    while stack:
        node, depth, path = stack.pop()
        yield node, depth, path
        for child in reversed(list(node.children)):
            stack.append((child, depth + 1, f"{path}/{child.name}"))


def build_frame(telemetry: recorder.Telemetry, seq: int) -> dict:
    """One JSON-ready frame of the recorder's live state.

    In-flight spans report their *current* elapsed time and
    ``open: true``; metrics merge the aggregate registry with every
    unfinished task scope; workers carry the freshest heartbeat per
    process-pool child.
    """
    now = time.perf_counter()
    open_spans = telemetry.open_spans()
    spans = []
    for span, depth, path in _walk_live(telemetry.root):
        if span is telemetry.root:
            continue
        t0 = open_spans.get(id(span))
        spans.append(
            {
                "path": path[len(telemetry.root.name) + 1 :],
                "name": span.name,
                "depth": depth - 1,
                "elapsed": span.elapsed if t0 is None else now - t0,
                "open": t0 is not None,
                "attrs": dict(span.attrs),
            }
        )

    snapshot = telemetry.snapshot()
    inflight = telemetry.inflight_snapshot()
    interval = telemetry.worker_stream_interval or DEFAULT_INTERVAL
    t_wall = time.time()
    workers = []
    for info in telemetry.workers_view():
        age = t_wall - float(info.get("time", t_wall))
        if age > _STALE_HEARTBEATS * interval:
            continue
        metrics = info.get("metrics") or {}
        workers.append(
            {
                "pid": info.get("pid"),
                "rss": info.get("rss"),
                "age": age,
                "counters": metrics.get("counters", {}),
            }
        )
        for name, data in metrics.get("counters", {}).items():
            inflight["counters"][name] = (
                inflight["counters"].get(name, 0) + data
            )

    sketches = {
        name: summarize(data)
        for name, data in snapshot.get("sketches", {}).items()
    }
    return {
        "type": "frame",
        "seq": seq,
        "time": t_wall,
        "spans": spans,
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "sketches": sketches,
        "inflight": {"counters": inflight["counters"]},
        "workers": workers,
        "proc": {
            "rss": proc.rss_bytes(),
            "rss_peak": proc.rss_peak_bytes(),
            "rss_children": sum(
                int(w["rss"]) for w in workers if w.get("rss")
            ),
        },
    }


def prometheus_text(snapshot: dict) -> str:
    """Render a registry snapshot in Prometheus text-exposition format.

    Metric names map ``a.b_c`` → ``repro_a_b_c``; histograms become the
    native histogram type with cumulative ``_bucket`` series, sketches
    become summaries with ``quantile`` labels.
    """
    lines: list[str] = []

    def emit(name: str, kind: str, body: list[str]) -> None:
        metric = "repro_" + name.replace(".", "_").replace("-", "_")
        spec = METRICS.get(name)
        if spec is not None:
            lines.append(f"# HELP {metric} {spec.description}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.extend(line.format(metric=metric) for line in body)

    for name, value in sorted(snapshot.get("counters", {}).items()):
        emit(name, "counter", [f"{{metric}} {value}"])
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        emit(name, "gauge", [f"{{metric}} {value}"])
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        body = []
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += int(count)
            body.append(f'{{metric}}_bucket{{{{le="{edge}"}}}} {cumulative}')
        body.append(f'{{metric}}_bucket{{{{le="+Inf"}}}} {data["total"]}')
        body.append(f'{{metric}}_sum {data["sum"]}')
        body.append(f'{{metric}}_count {data["total"]}')
        emit(name, "histogram", body)
    for name, data in sorted(snapshot.get("sketches", {}).items()):
        summary = summarize(data)
        body = []
        for q in (0.5, 0.95, 0.99):
            value = summary[f"p{int(q * 100)}"]
            if value is not None:
                body.append(f'{{metric}}{{{{quantile="{q}"}}}} {value}')
        body.append(f'{{metric}}_sum {summary["sum"]}')
        body.append(f'{{metric}}_count {summary["count"]}')
        emit(name, "summary", body)
    return "\n".join(lines) + "\n"


class TelemetrySink:
    """Background flusher: live recorder → NDJSON stream (+ Prometheus).

    Every ``interval`` seconds (and once more on close) the sink
    appends one :func:`build_frame` line to ``stream_path`` and, when
    ``prom_path`` is set, atomically republishes the Prometheus
    text-exposition file.  Frames are written with a single ``write``
    call so a concurrent tail sees at most one partial *last* line
    (which :func:`read_frames` skips until its newline lands).

    Attaching the sink sets ``worker_stream_interval`` on the recorder,
    which is the switch the process-pool plumbing checks before
    starting worker heartbeats — no sink, no cross-process traffic.
    """

    def __init__(
        self,
        telemetry: recorder.Telemetry,
        stream_path: str | Path,
        prom_path: str | Path | None = None,
        interval: float = DEFAULT_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"flush interval must be positive, got {interval}")
        self.telemetry = telemetry
        self.stream_path = Path(stream_path)
        self.prom_path = None if prom_path is None else Path(prom_path)
        self.interval = float(interval)
        self.seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> None:
        """Truncate the stream and start the flusher thread."""
        self.stream_path.parent.mkdir(parents=True, exist_ok=True)
        self.stream_path.write_text("")
        self.telemetry.worker_stream_interval = self.interval
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-sink", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the flusher and write one final frame."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.flush()
        self.telemetry.worker_stream_interval = None

    def __enter__(self) -> "TelemetrySink":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.flush()
            except Exception:
                # A failed flush (disk full, unserializable attr) must
                # never take down the run it is observing.
                continue

    def flush(self) -> dict:
        """Write one frame now; returns the frame."""
        t0 = time.perf_counter()
        frame = build_frame(self.telemetry, self.seq)
        self.seq += 1
        line = json.dumps(frame, separators=(",", ":"), default=str) + "\n"
        with self.stream_path.open("a", encoding="utf-8") as handle:
            handle.write(line)
        if self.prom_path is not None:
            from repro.io.ndjson import _atomic_open

            with _atomic_open(self.prom_path) as handle:
                handle.write(prometheus_text(self.telemetry.snapshot()))
        self.telemetry.add("telemetry.flushes", 1)
        self.telemetry.observe(
            "telemetry.flush_seconds", time.perf_counter() - t0
        )
        return frame


# ----------------------------------------------------------------------
# Cross-process streaming (fork-pool workers → parent live view)
# ----------------------------------------------------------------------


def start_worker_heartbeat(queue: Any, interval: float) -> None:
    """Pool initializer: publish periodic snapshots from a forked worker.

    Runs in the *child* right after fork.  A daemon thread ships
    ``{pid, time, rss, metrics}`` through ``queue`` every ``interval``
    seconds, where ``metrics`` is the worker's in-flight task-scope
    snapshot — the parent sees counters move *during* a task, not only
    at the end-of-task merge.  Any queue failure (parent gone) ends the
    thread quietly.
    """
    rec = recorder.current()
    if not rec.enabled:
        return

    def beat() -> None:
        while True:
            time.sleep(interval)
            try:
                queue.put(
                    {
                        "pid": os.getpid(),
                        "time": time.time(),
                        "rss": proc.rss_bytes(),
                        "metrics": rec.inflight_snapshot(),
                    }
                )
            except Exception:
                return

    threading.Thread(
        target=beat, name="telemetry-heartbeat", daemon=True
    ).start()


class WorkerStream:
    """Parent-side drain of process-pool worker heartbeats.

    Owns the multiprocessing queue the children publish into and a
    drainer thread feeding :meth:`Telemetry.publish_worker`.  Created
    only when a sink is attached (see :meth:`maybe`), so plain process
    runs carry zero extra plumbing.
    """

    def __init__(
        self, telemetry: recorder.Telemetry, ctx: Any, interval: float
    ) -> None:
        self.telemetry = telemetry
        self.queue = ctx.SimpleQueue()
        self.interval = float(interval)
        self._thread: threading.Thread | None = None

    @classmethod
    def maybe(
        cls, rec: recorder.NullRecorder | recorder.Telemetry, ctx: Any
    ) -> "WorkerStream | None":
        """A stream when live streaming is on for ``rec``, else None."""
        interval = getattr(rec, "worker_stream_interval", None)
        if not rec.enabled or interval is None:
            return None
        return cls(rec, ctx, interval)

    @property
    def initargs(self) -> tuple:
        """``(initializer, initargs)`` arguments for the worker pool."""
        return start_worker_heartbeat, (self.queue, self.interval)

    def start(self) -> None:
        """Start draining heartbeats into the recorder."""
        self._thread = threading.Thread(
            target=self._drain, name="telemetry-drain", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Drain remaining heartbeats, stop the thread, drop the view.

        The sentinel is enqueued after the pool has exited, so every
        heartbeat already in the pipe is consumed before the drainer
        stops.
        """
        if self._thread is not None:
            self.queue.put(None)
            self._thread.join()
            self._thread = None
        self.telemetry.clear_workers()

    def _drain(self) -> None:
        while True:
            try:
                item = self.queue.get()
            except (EOFError, OSError):
                return
            if item is None:
                return
            self.telemetry.publish_worker(item)


# ----------------------------------------------------------------------
# Consumer side: tailing and rendering frames (the `repro top` verb)
# ----------------------------------------------------------------------


def read_frames(path: str | Path, offset: int = 0) -> tuple[list[dict], int]:
    """Complete frames appended to ``path`` since byte ``offset``.

    Returns ``(frames, new_offset)``; a trailing partial line (a flush
    caught mid-write) is left unconsumed for the next call, so callers
    can poll in a ``tail -f`` loop from another process.
    """
    path = Path(path)
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return [], offset
    end = chunk.rfind(b"\n")
    if end < 0:
        return [], offset
    frames = []
    for line in chunk[: end + 1].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            frames.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return frames, offset + end + 1


def _fmt_bytes(n: float | None) -> str:
    if not n:
        return "-"
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}TiB"


def _fmt_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    if value < 120.0:
        return f"{value:.2f}s"
    return f"{value / 60:.1f}m"


def render_frame(
    frame: dict,
    prev: dict | None = None,
    rss_history: list[float] | None = None,
    width: int = 80,
) -> str:
    """Render one frame as the `repro top` dashboard (no ANSI codes).

    ``prev`` (an earlier frame) turns counters into rates; the screen
    handling (clear + home) is the CLI loop's job so this stays pure
    and testable.
    """
    from repro.utils.ascii_plot import sparkline

    lines: list[str] = []
    when = time.strftime("%H:%M:%S", time.localtime(frame.get("time", 0)))
    procinfo = frame.get("proc", {})
    lines.append(
        f"repro top — frame {frame.get('seq', '?')} at {when}   "
        f"rss {_fmt_bytes(procinfo.get('rss'))} "
        f"(peak {_fmt_bytes(procinfo.get('rss_peak'))}"
        + (
            f", children {_fmt_bytes(procinfo.get('rss_children'))})"
            if procinfo.get("rss_children")
            else ")"
        )
    )
    if rss_history and len(rss_history) > 1:
        lines.append(f"rss  {sparkline(rss_history, width=width - 6)}")
    lines.append("")

    spans = frame.get("spans", [])
    if spans:
        lines.append("stages")
        for span in spans[-24:]:
            marker = "▶" if span.get("open") else " "
            indent = "  " * int(span.get("depth", 0))
            attrs = span.get("attrs", {})
            extra = ""
            if "epoch" in attrs:
                extra = f"  epoch {attrs['epoch']}"
            elif "stage" in attrs:
                extra = f"  {attrs['stage']}"
            lines.append(
                f" {marker} {indent}{span['name']:<28} "
                f"{_fmt_seconds(float(span.get('elapsed', 0.0)))}{extra}"
            )
        lines.append("")

    counters = dict(frame.get("counters", {}))
    inflight = frame.get("inflight", {}).get("counters", {})
    for name, value in inflight.items():
        counters[name] = counters.get(name, 0) + value
    gauges = frame.get("gauges", {})
    planned = gauges.get("train.pairs_planned")
    if planned:
        done = counters.get("train.pairs", 0)
        fraction = min(float(done) / float(planned), 1.0)
        bar_width = max(width - 30, 10)
        filled = int(fraction * bar_width)
        lines.append(
            f"train [{'#' * filled}{'.' * (bar_width - filled)}] "
            f"{fraction * 100:5.1f}%  ({int(done)}/{int(planned)} pairs)"
        )
        lines.append("")

    if counters:
        lines.append("counters" + (" (incl. in-flight)" if inflight else ""))
        dt = None
        prev_counters: dict = {}
        if prev is not None:
            dt = float(frame.get("time", 0)) - float(prev.get("time", 0))
            prev_counters = dict(prev.get("counters", {}))
            for name, value in (
                prev.get("inflight", {}).get("counters", {}).items()
            ):
                prev_counters[name] = prev_counters.get(name, 0) + value
        for name in sorted(counters):
            value = counters[name]
            rate = ""
            if dt and dt > 0:
                delta = value - prev_counters.get(name, 0)
                rate = f"  {delta / dt:>12.1f}/s"
            lines.append(f"  {name:<28} {value:>14}{rate}")
        lines.append("")

    sketches = frame.get("sketches", {})
    if sketches:
        lines.append("latency (sketch quantiles)")
        lines.append(
            f"  {'metric':<28} {'count':>8} {'p50':>10} {'p95':>10} {'p99':>10}"
        )
        for name in sorted(sketches):
            s = sketches[name]
            lines.append(
                f"  {name:<28} {s.get('count', 0):>8} "
                f"{_fmt_seconds(s['p50']) if s.get('p50') is not None else '-':>10} "
                f"{_fmt_seconds(s['p95']) if s.get('p95') is not None else '-':>10} "
                f"{_fmt_seconds(s['p99']) if s.get('p99') is not None else '-':>10}"
            )
        lines.append("")

    workers = frame.get("workers", [])
    if workers:
        lines.append("workers")
        for worker in workers:
            busiest = ""
            wc = worker.get("counters", {})
            if wc:
                name = max(wc, key=lambda key: wc[key])
                busiest = f"  {name}={wc[name]}"
            lines.append(
                f"  pid {worker.get('pid'):<8} rss {_fmt_bytes(worker.get('rss')):>10} "
                f"age {float(worker.get('age', 0.0)):4.1f}s{busiest}"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
