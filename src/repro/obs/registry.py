"""NDJSON-backed run registry: the longitudinal memory of the pipeline.

Per-run telemetry (PR 2) dies with the process; the registry is the
layer that survives it.  Every ``fit`` / ``update`` / ``evaluate``
appends one immutable :class:`RunRecord` — run id, config fingerprint,
git-describable code version, metric snapshot, stage cache table,
wall time — to ``runs.ndjson`` under the artifact store, giving the
drift and data-quality monitors (:mod:`repro.obs.drift`,
:mod:`repro.obs.quality`) a history to compare against and the
``repro runs`` / ``repro health`` CLI verbs something to render.

Appends are crash-safe: the whole file is rewritten through the
atomic temp-file path of :func:`repro.io.ndjson.write_ndjson`, so a
kill mid-append can never corrupt existing history (registries are
operator-scale — tens to thousands of runs — so rewriting is cheap).
"""

from __future__ import annotations

import functools
import subprocess
import time
from dataclasses import asdict, dataclass, field, fields as dc_fields
from pathlib import Path

from repro.store.fingerprint import stable_hash

#: Registry file name under the registry directory.
RUNS_FILE = "runs.ndjson"


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Git-describable version of the running source tree.

    ``git describe --always --dirty`` from the package directory;
    ``"unknown"`` when git (or the repository) is unavailable, so the
    registry works on deployed copies too.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    version = out.stdout.strip()
    return version if out.returncode == 0 and version else "unknown"


def config_fingerprint(config) -> str:
    """Stable fingerprint over *all* fields of a ``DarkVecConfig``.

    Unlike stage fingerprints (which hash only the fields one stage
    reads), this covers the whole config, so two registry runs compare
    as "same configuration" only when every knob matches.  Custom
    service maps hash by class name + service names; paths by string.
    """
    doc: dict[str, object] = {}
    for f in dc_fields(config):
        value = getattr(config, f.name)
        if f.name == "service" and not isinstance(value, str):
            value = ["custom", type(value).__qualname__, list(value.names)]
        elif f.name == "cache_dir":
            value = None if value is None else str(value)
        elif f.name == "health":
            value = value.to_dict()
        doc[f.name] = value
    return stable_hash(doc)


@dataclass
class RunRecord:
    """One immutable registry entry.

    Attributes:
        run_id: registry-unique id (``run-0001``, ``run-0002``, ...).
        kind: ``"fit"``, ``"update"`` or ``"evaluate"``.
        unix_time: wall-clock time of the append (seconds since epoch).
        code_version: ``git describe`` of the source tree.
        config_fingerprint: :func:`config_fingerprint` of the config.
        wall_seconds: wall time of the recorded operation.
        stages: stage cache table — one dict per stage with ``stage``,
            ``status`` (hit/miss/uncached), ``seconds``, ``fingerprint``.
        metrics: metric-registry snapshot of the active telemetry
            session, or None when recording was off.
        spans: per-span wall/peak-memory rows of the session (path,
            elapsed_seconds, mem_peak_bytes), or None.
        profile: ingest data profile (:func:`repro.obs.quality
            .data_profile`), or None.
        health: health-report dict of the run's monitors, or None.
        extra: free-form scalars (e.g. ``loo_accuracy``, update
            counters) for cross-run comparison.
    """

    run_id: str
    kind: str
    unix_time: float
    code_version: str
    config_fingerprint: str
    wall_seconds: float
    stages: list[dict] = field(default_factory=list)
    metrics: dict | None = None
    spans: list[dict] | None = None
    profile: dict | None = None
    health: dict | None = None
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form, ready for NDJSON."""
        return asdict(self)


class RunRegistry:
    """Append-only run history stored as NDJSON under a directory.

    The registry directory is created lazily on the first append; a
    missing or empty registry reads as an empty history, so monitors
    degrade to "no baseline" instead of failing.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.path = self.root / RUNS_FILE

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def runs(self) -> list[dict]:
        """All run records, oldest first."""
        if not self.path.exists():
            return []
        from repro.io.ndjson import read_ndjson

        return read_ndjson(self.path)

    def get(self, run_id: str) -> dict:
        """The record with the given id (KeyError when absent)."""
        for record in self.runs():
            if record.get("run_id") == run_id:
                return record
        raise KeyError(f"unknown run id {run_id!r}")

    def last(self, kind: str | None = None) -> dict | None:
        """The most recent record, optionally filtered by ``kind``."""
        for record in reversed(self.runs()):
            if kind is None or record.get("kind") == kind:
                return record
        return None

    def history(self, key: str, kind: str | None = None) -> list[float]:
        """Chronological values of one ``profile``/``extra`` scalar.

        Looks the key up in each record's ``profile`` first, then its
        ``extra``; records without the key are skipped.  This is the
        baseline the volume z-score monitors compare against.
        """
        values: list[float] = []
        for record in self.runs():
            if kind is not None and record.get("kind") != kind:
                continue
            for source in (record.get("profile"), record.get("extra")):
                if source and key in source and source[key] is not None:
                    values.append(float(source[key]))
                    break
        return values

    def monitor_series(self, name: str) -> list[float]:
        """Chronological values of one health monitor across all runs."""
        values: list[float] = []
        for record in self.runs():
            health = record.get("health") or {}
            for monitor in health.get("monitors", []):
                if monitor.get("name") == name and monitor.get("value") is not None:
                    values.append(float(monitor["value"]))
        return values

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def next_run_id(self) -> str:
        """The id the next append will receive."""
        return f"run-{len(self.runs()) + 1:04d}"

    def append(self, record: RunRecord | dict) -> dict:
        """Append one record; returns its dict form.

        The file is rewritten atomically (temp file + ``os.replace``),
        so a crash mid-append preserves the previous history intact.
        """
        from repro.io.ndjson import write_ndjson

        doc = record.to_dict() if isinstance(record, RunRecord) else dict(record)
        existing = self.runs()
        self.root.mkdir(parents=True, exist_ok=True)
        write_ndjson(existing + [doc], self.path)
        return doc


def record_run(
    registry: RunRegistry,
    kind: str,
    config,
    wall_seconds: float,
    stages: list | None = None,
    profile: dict | None = None,
    health: dict | None = None,
    extra: dict | None = None,
) -> dict:
    """Assemble and append one :class:`RunRecord`.

    Snapshots the active telemetry session (metrics + span table) when
    one is installed; stage statuses may be passed as dataclasses or
    dicts.  Returns the appended record.
    """
    from repro import obs

    recorder = obs.current()
    metrics = None
    spans = None
    if recorder.enabled:
        metrics = recorder.snapshot()
        spans = [
            {
                "path": path.split("/", 1)[1],
                "elapsed_seconds": round(span.elapsed, 6),
                "mem_peak_bytes": span.mem_peak_bytes,
            }
            for span, _, path in recorder.root.walk()
            if span is not recorder.root
        ]
    stage_rows = [
        row if isinstance(row, dict) else asdict(row) for row in stages or []
    ]
    record = RunRecord(
        run_id=registry.next_run_id(),
        kind=kind,
        unix_time=time.time(),
        code_version=code_version(),
        config_fingerprint=config_fingerprint(config),
        wall_seconds=float(wall_seconds),
        stages=stage_rows,
        metrics=metrics,
        spans=spans,
        profile=profile,
        health=health,
        extra=extra or {},
    )
    return registry.append(record)
