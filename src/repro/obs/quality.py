"""Data-quality monitors on ingest: volume, port mix, empty windows.

An embedding can only be as healthy as the traffic it is trained on,
so the first monitoring layer looks at the raw trace before any model
runs: packet and sender volumes are compared against the registry's
history as z-scores, the destination port mix is compared against the
previous run's as a total-variation distance (the signature of a new
scanner class arriving — cf. the structural breaks catalogued by
Kallitsis et al.), and the share of empty dT windows catches telescope
outages and clock gaps.

All functions here are pure and RNG-free; they run in the monitored
path only when a registry is attached, keeping the default in-memory
pipeline untouched.
"""

from __future__ import annotations

import math

import numpy as np

from repro.trace.packet import SECONDS_PER_DAY, Trace, proto_name

#: Port-mix entries kept per profile; the long tail folds into "other".
TOP_PORTS = 16

#: Relative std-dev floor for z-scores: history that happens to be
#: near-constant must not turn ordinary jitter into huge z values.
MIN_REL_STD = 0.05


def data_profile(trace: Trace, delta_t: float) -> dict:
    """Summarise one ingested trace for quality monitoring.

    Returns a JSON-ready dict with the packet count, observed sender
    count, trace span in days, share of empty dT time windows, and the
    top-``TOP_PORTS`` destination port mix as ``"port/proto"`` ->
    packet share (remainder under ``"other"``).  The profile is stored
    in the run record, so later runs can diff against it without
    re-reading the original trace.
    """
    if delta_t <= 0:
        raise ValueError("delta_t must be positive")
    profile = {
        "packets": int(len(trace)),
        "senders": int(len(trace.observed_senders())) if len(trace) else 0,
        "span_days": float(trace.duration_days),
        "empty_window_rate": empty_window_rate(trace, delta_t),
        "port_mix": port_mix(trace),
    }
    return profile


def port_mix(trace: Trace) -> dict[str, float]:
    """Packet share per destination ``"port/proto"`` (top ports only).

    Shares sum to 1.0 over the kept entries plus ``"other"``; an empty
    trace yields an empty dict.
    """
    counts = trace.port_packet_counts()
    total = sum(counts.values())
    if total == 0:
        return {}
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    mix = {
        f"{port}/{proto_name(proto)}": count / total
        for (port, proto), count in ranked[:TOP_PORTS]
    }
    tail = sum(count for _, count in ranked[TOP_PORTS:])
    if tail:
        mix["other"] = tail / total
    return mix


def port_mix_shift(
    current: dict[str, float], previous: dict[str, float]
) -> float:
    """Total-variation distance between two port mixes (in [0, 1]).

    ``0`` means identical mixes, ``1`` means disjoint support — e.g. a
    brand-new scanner class dominating ports nobody targeted before.
    """
    keys = set(current) | set(previous)
    return 0.5 * sum(
        abs(current.get(key, 0.0) - previous.get(key, 0.0)) for key in keys
    )


def empty_window_rate(trace: Trace, delta_t: float) -> float:
    """Share of dT time windows of the trace span with no packets.

    A healthy telescope feed has traffic in essentially every window;
    a high rate signals capture outages or mis-stitched inputs.  An
    empty trace counts as fully empty (rate 1.0).
    """
    if delta_t <= 0:
        raise ValueError("delta_t must be positive")
    if not len(trace):
        return 1.0
    bins = ((trace.times - trace.start_time) // delta_t).astype(np.int64)
    # The grid spans bin 0 .. the bin of the last packet, inclusive —
    # ceil(span / dt) alone would undercount when the last packet sits
    # exactly on a window boundary.
    n_windows = int(bins[-1]) + 1
    occupied = int(len(np.unique(bins)))
    return 1.0 - occupied / n_windows


def volume_zscore(
    value: float, history: list[float], min_history: int = 2
) -> float | None:
    """Z-score of ``value`` against a history of past volumes.

    Returns None with fewer than ``min_history`` historical points —
    there is no meaningful baseline yet.  The standard deviation is
    floored at ``MIN_REL_STD`` of the historical mean so a flat
    history cannot explode ordinary day-to-day jitter into alarms.
    """
    if len(history) < min_history:
        return None
    n = len(history)
    mean = sum(history) / n
    variance = sum((x - mean) ** 2 for x in history) / n
    std = max(math.sqrt(variance), MIN_REL_STD * abs(mean), 1e-12)
    return (float(value) - mean) / std


def profile_days(trace: Trace) -> float:
    """Trace span in days (0.0 for an empty trace)."""
    if not len(trace):
        return 0.0
    return (trace.end_time - trace.start_time) / SECONDS_PER_DAY
