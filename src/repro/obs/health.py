"""Declarative health policy: monitor values -> ok / warn / fail.

The drift and data-quality monitors (:mod:`repro.obs.drift`,
:mod:`repro.obs.quality`) produce raw numbers; this module turns them
into operator-facing verdicts.  A :class:`HealthPolicy` holds the
warn/fail thresholds (configurable through ``DarkVecConfig.health``),
:func:`classify` maps one value onto the verdict ladder, and a
:class:`HealthReport` aggregates the per-monitor results for one run —
including whether a health-gated ``DarkVec.update`` promoted the new
model or rolled back to the previous fitted state.

Verdict semantics: ``ok`` means within normal variation, ``warn``
means look at the run, ``fail`` means the model or the input data has
structurally changed; under ``gate_updates`` a single ``fail`` blocks
promotion.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Verdict ladder, in increasing severity.
VERDICTS = ("ok", "warn", "fail")


@dataclass
class HealthPolicy:
    """Thresholds that turn monitor outputs into verdicts.

    ``*_warn`` / ``*_fail`` pairs bound each monitor; most monitors
    alarm when the value is *high* (displacement, churn, z-scores,
    port shift, empty windows, accuracy drop), while cluster stability
    alarms when agreement falls *low*.  Defaults were calibrated on
    ``benchmarks/bench_drift_monitor.py``: day-over-day updates on
    unchanged synthetic traffic stay ``ok`` with margin, while the
    injected day-3 scanner-mix shift lands in ``warn``/``fail``.

    Attributes:
        gate_updates: default gating mode for ``DarkVec.update`` —
            when True, an update whose monitors fail is not promoted.
        drift_warn / drift_fail: mean aligned cosine displacement of
            retained senders between consecutive models.
        churn_warn / churn_fail: mean k-NN neighbourhood churn
            (``1 - Jaccard``) of retained senders.
        churn_k: neighbourhood size used by the churn monitor.
        stability_warn / stability_fail: adjusted Rand index between
            consecutive Louvain partitions (lower is worse).
        volume_z_warn / volume_z_fail: absolute z-score of packet or
            sender volume against registry history.
        port_shift_warn / port_shift_fail: total-variation distance of
            the ingest port mix vs the previous run.
        empty_window_warn / empty_window_fail: share of dT time
            windows without any traffic at ingest.
        loo_drop_warn / loo_drop_fail: drop in leave-one-out accuracy
            vs the previous evaluated run.
        recall_warn / recall_fail: measured ANN ``recall@k`` of the
            approximate index (lower is worse); only monitored when an
            audited ANN search ran, so the exact backend reports
            ``ok`` with no baseline.
        min_history: registry runs required before volume z-scores are
            trusted (with fewer, the monitor reports ``ok``).
    """

    gate_updates: bool = False
    drift_warn: float = 0.1
    drift_fail: float = 0.2
    churn_warn: float = 0.9
    churn_fail: float = 0.97
    churn_k: int = 5
    stability_warn: float = 0.15
    stability_fail: float = 0.05
    volume_z_warn: float = 3.0
    volume_z_fail: float = 6.0
    port_shift_warn: float = 0.15
    port_shift_fail: float = 0.35
    empty_window_warn: float = 0.5
    empty_window_fail: float = 0.9
    loo_drop_warn: float = 0.05
    loo_drop_fail: float = 0.15
    recall_warn: float = 0.95
    recall_fail: float = 0.9
    min_history: int = 2

    def __post_init__(self) -> None:
        for warn_name, fail_name, direction in (
            ("drift_warn", "drift_fail", "high"),
            ("churn_warn", "churn_fail", "high"),
            ("stability_warn", "stability_fail", "low"),
            ("volume_z_warn", "volume_z_fail", "high"),
            ("port_shift_warn", "port_shift_fail", "high"),
            ("empty_window_warn", "empty_window_fail", "high"),
            ("loo_drop_warn", "loo_drop_fail", "high"),
            ("recall_warn", "recall_fail", "low"),
        ):
            warn, fail = getattr(self, warn_name), getattr(self, fail_name)
            ordered = warn <= fail if direction == "high" else warn >= fail
            if not ordered:
                raise ValueError(
                    f"{warn_name}={warn} and {fail_name}={fail} are out of "
                    f"order for a {direction}-is-bad monitor"
                )
        if self.churn_k < 1:
            raise ValueError("churn_k must be positive")
        if self.min_history < 1:
            raise ValueError("min_history must be positive")

    def to_dict(self) -> dict:
        """Plain-dict form for config serialisation and run records."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class MonitorResult:
    """One monitor's value and verdict under a policy.

    Attributes:
        name: monitor identifier (``"drift"``, ``"volume"``, ...).
        value: the raw monitored number, or None when the monitor had
            no baseline to compare against.
        verdict: ``"ok"``, ``"warn"`` or ``"fail"``.
        warn / fail: the thresholds the value was judged against.
        direction: ``"high"`` when large values alarm, ``"low"`` when
            small values do.
        detail: free-form context (e.g. why a monitor was skipped).
    """

    name: str
    value: float | None
    verdict: str
    warn: float
    fail: float
    direction: str = "high"
    detail: str = ""

    def to_dict(self) -> dict:
        """Plain-dict form for run records and CLI tables."""
        return {
            "name": self.name,
            "value": self.value,
            "verdict": self.verdict,
            "warn": self.warn,
            "fail": self.fail,
            "direction": self.direction,
            "detail": self.detail,
        }


@dataclass
class HealthReport:
    """All monitor results of one run, plus the promotion outcome.

    Attributes:
        monitors: per-monitor results, in evaluation order.
        promoted: False when a health-gated update refused to promote
            the candidate model (the previous state stayed live).
    """

    monitors: list[MonitorResult] = field(default_factory=list)
    promoted: bool = True

    @property
    def verdict(self) -> str:
        """Worst verdict across all monitors (``ok`` when empty)."""
        worst = 0
        for monitor in self.monitors:
            worst = max(worst, VERDICTS.index(monitor.verdict))
        return VERDICTS[worst]

    def failures(self) -> list[MonitorResult]:
        """Monitors that reported ``fail``."""
        return [m for m in self.monitors if m.verdict == "fail"]

    def warnings(self) -> list[MonitorResult]:
        """Monitors that reported ``warn``."""
        return [m for m in self.monitors if m.verdict == "warn"]

    def to_dict(self) -> dict:
        """Plain-dict form for run records."""
        return {
            "verdict": self.verdict,
            "promoted": self.promoted,
            "monitors": [m.to_dict() for m in self.monitors],
        }


def classify(
    name: str,
    value: float | None,
    warn: float,
    fail: float,
    direction: str = "high",
    detail: str = "",
) -> MonitorResult:
    """Judge one monitor value against its warn/fail thresholds.

    ``direction="high"`` alarms on values at/above the thresholds;
    ``direction="low"`` alarms on values at/below them.  A ``None``
    value (monitor had nothing to compare against) is ``ok`` — absence
    of history is not evidence of a problem — with the reason recorded
    in ``detail``.
    """
    if direction not in ("high", "low"):
        raise ValueError(f"direction must be 'high' or 'low', got {direction!r}")
    if value is None:
        return MonitorResult(
            name=name,
            value=None,
            verdict="ok",
            warn=warn,
            fail=fail,
            direction=direction,
            detail=detail or "no baseline",
        )
    value = float(value)
    if direction == "high":
        verdict = "fail" if value >= fail else "warn" if value >= warn else "ok"
    else:
        verdict = "fail" if value <= fail else "warn" if value <= warn else "ok"
    return MonitorResult(
        name=name,
        value=value,
        verdict=verdict,
        warn=warn,
        fail=fail,
        direction=direction,
        detail=detail,
    )
