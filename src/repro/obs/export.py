"""Telemetry export: NDJSON records and plain-text profile tables.

One telemetry session flattens to a stream of self-describing NDJSON
records — ``span`` records (one per node of the trace tree, with a
stable ``path``) followed by ``counter``/``gauge``/``histogram``
records — written through the generic NDJSON helpers in
:mod:`repro.io.ndjson`, so ``.gz`` paths compress transparently.
:func:`counters_from_records` inverts the counter part for cross-run
comparisons (e.g. asserting that ``workers=1`` and ``workers=2`` runs
aggregate to identical deterministic counters).
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.metrics import METRICS
from repro.obs.recorder import Telemetry
from repro.obs.sketch import summarize
from repro.obs.spans import Span


def telemetry_records(telemetry: Telemetry) -> list[dict]:
    """Flatten a telemetry session into NDJSON-ready dicts.

    Span records carry ``path`` (slash-joined ancestry, root excluded),
    ``depth``, ``elapsed_seconds``, ``mem_peak_bytes`` and ``attrs``;
    metric records carry the aggregated value plus the spec's
    ``deterministic`` flag so consumers can separate timing-independent
    counters from schedule-dependent ones.
    """
    records: list[dict] = []
    for span, depth, path in telemetry.root.walk():
        if span is telemetry.root:
            continue
        stripped = path.split("/", 1)[1]  # drop the synthetic root
        records.append(
            {
                "type": "span",
                "name": span.name,
                "path": stripped,
                "depth": depth - 1,
                "elapsed_seconds": round(span.elapsed, 6),
                "mem_peak_bytes": span.mem_peak_bytes,
                "attrs": span.attrs,
            }
        )
    snapshot = telemetry.snapshot()
    for name, value in sorted(snapshot["counters"].items()):
        records.append(
            {
                "type": "counter",
                "name": name,
                "value": value,
                "deterministic": METRICS[name].deterministic,
            }
        )
    for name, value in sorted(snapshot["gauges"].items()):
        records.append(
            {
                "type": "gauge",
                "name": name,
                "value": value,
                "deterministic": METRICS[name].deterministic,
            }
        )
    for name, data in sorted(snapshot["histograms"].items()):
        records.append(
            {
                "type": "histogram",
                "name": name,
                "deterministic": METRICS[name].deterministic,
                **data,
            }
        )
    for name, data in sorted(snapshot.get("sketches", {}).items()):
        records.append(
            {
                "type": "sketch",
                "name": name,
                "deterministic": METRICS[name].deterministic,
                **summarize(data),
                "state": data,
            }
        )
    return records


def write_metrics_ndjson(telemetry: Telemetry, path: str | Path) -> None:
    """Write a session's records as NDJSON (gzip for ``.gz`` paths)."""
    from repro.io.ndjson import write_ndjson  # local: avoids import cycle

    write_ndjson(telemetry_records(telemetry), path)


def counters_from_records(
    records: list[dict], deterministic_only: bool = False
) -> dict[str, int | float]:
    """Counter name -> value from exported records.

    With ``deterministic_only`` the schedule-dependent counters (those
    flagged ``deterministic: false``) are dropped, leaving exactly the
    set that must be identical across ``workers`` settings of one run.
    """
    return {
        record["name"]: record["value"]
        for record in records
        if record.get("type") == "counter"
        and (record.get("deterministic", True) or not deterministic_only)
    }


def format_stage_table(telemetry: Telemetry, title: str | None = None) -> str:
    """Per-stage time / peak-memory / throughput table of a session.

    One row per span, indented by nesting depth.  Memory shows ``-``
    unless the session profiled memory; throughput comes from the
    ``items``/``items_unit`` span attributes set by the
    instrumentation sites.
    """
    from repro.utils.tables import format_table

    rows = []
    for span, depth, _ in telemetry.root.walk():
        if span is telemetry.root:
            continue
        rows.append(
            [
                "  " * (depth - 1) + span.name,
                f"{span.elapsed:.3f}",
                _memory_cell(span),
                _throughput_cell(span),
            ]
        )
    return format_table(
        ["Stage", "Time (s)", "Peak mem", "Throughput"], rows, title=title
    )


def format_counters_table(
    telemetry: Telemetry, title: str | None = None
) -> str:
    """Aggregated counter/gauge table of a session (sorted by name)."""
    from repro.utils.tables import format_table

    snapshot = telemetry.snapshot()
    rows = [
        [name, METRICS[name].kind, f"{value:,}"]
        for name, value in sorted(
            {**snapshot["counters"], **snapshot["gauges"]}.items()
        )
    ]
    return format_table(["Metric", "Kind", "Value"], rows, title=title)


def format_quantile_table(
    sketches: dict[str, dict], title: str | None = None
) -> str:
    """Sketch p50/p95/p99 table from a ``sketches`` snapshot section.

    Shared by ``repro profile`` output and ``runs show --quantiles`` —
    the historical view of the same quantiles the live dashboard shows.
    """
    from repro.utils.tables import format_table

    rows = []
    for name, data in sorted(sketches.items()):
        summary = summarize(data)
        rows.append(
            [
                name,
                f"{summary['count']:,}",
                *(
                    "-" if summary[col] is None else f"{summary[col]:.6f}"
                    for col in ("p50", "p95", "p99")
                ),
                "-" if summary["max"] is None else f"{summary['max']:.6f}",
            ]
        )
    return format_table(
        ["Metric", "Count", "p50", "p95", "p99", "Max"], rows, title=title
    )


def _memory_cell(span: Span) -> str:
    if span.mem_peak_bytes is None:
        return "-"
    return f"{span.mem_peak_bytes / 2**20:.1f} MB"


def _throughput_cell(span: Span) -> str:
    rate = span.throughput
    if rate is None:
        return "-"
    unit = span.attrs.get("items_unit", "items")
    return f"{rate:,.0f} {unit}/s"
