"""Pipeline observability: tracing spans, metrics, progress events.

This package is the single instrument panel of the reproduction:

* **Spans** (:func:`span`) form a trace tree recording wall time, peak
  ``tracemalloc`` memory and custom attributes per pipeline region.
* **Metrics** (:func:`add` / :func:`set_gauge` / :func:`observe`) are
  counters, gauges and fixed-bucket histograms declared centrally in
  :data:`~repro.obs.metrics.METRICS`; worker-task writes are recorded
  into task-local registries and merged back through the
  :class:`~repro.parallel.pool.WorkerPool`.
* **Progress** (:class:`~repro.obs.progress.ProgressEvent`) delivers
  epoch-level pairs/sec, loss-estimate and ETA callbacks from
  ``Word2Vec.fit`` / ``DarkVec.fit``.

Everything is **off by default**: the installed recorder is a
:class:`~repro.obs.recorder.NullRecorder` whose operations are empty
calls, instrumentation never consumes randomness, and the
``workers=1`` reference path stays bit-reproducible whether or not a
session is active.  Enable recording with::

    from repro import obs

    with obs.session(obs.Telemetry(profile_memory=True)) as telemetry:
        DarkVec(config).fit(trace)
    obs.write_metrics_ndjson(telemetry, "run.ndjson")
    print(obs.format_stage_table(telemetry))
"""

from repro.obs.drift import (
    DriftReport,
    cluster_stability,
    embedding_drift,
    neighborhood_churn,
)
from repro.obs.export import (
    counters_from_records,
    format_counters_table,
    format_quantile_table,
    format_stage_table,
    telemetry_records,
    write_metrics_ndjson,
)
from repro.obs.live import TelemetrySink, WorkerStream, build_frame
from repro.obs.health import (
    HealthPolicy,
    HealthReport,
    MonitorResult,
    classify,
)
from repro.obs.metrics import METRICS, Histogram, MetricSpec, MetricsRegistry
from repro.obs.proc import (
    rss_bytes,
    rss_peak_bytes,
    rss_peak_children_bytes,
    sample_rss_peak,
    sample_rss_peak_children,
)
from repro.obs.progress import ProgressEvent, epoch_event
from repro.obs.quality import (
    data_profile,
    empty_window_rate,
    port_mix,
    port_mix_shift,
    volume_zscore,
)
from repro.obs.registry import (
    RunRecord,
    RunRegistry,
    code_version,
    config_fingerprint,
    record_run,
)
from repro.obs.recorder import (
    NullRecorder,
    SpanHandle,
    Telemetry,
    add,
    current,
    observe,
    observe_many,
    session,
    set_gauge,
    span,
    wrap_task,
)
from repro.obs.sketch import QuantileSketch
from repro.obs.spans import Span

__all__ = [
    "METRICS",
    "DriftReport",
    "HealthPolicy",
    "HealthReport",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "MonitorResult",
    "NullRecorder",
    "ProgressEvent",
    "QuantileSketch",
    "RunRecord",
    "RunRegistry",
    "Span",
    "SpanHandle",
    "Telemetry",
    "TelemetrySink",
    "WorkerStream",
    "add",
    "build_frame",
    "classify",
    "cluster_stability",
    "code_version",
    "config_fingerprint",
    "counters_from_records",
    "current",
    "data_profile",
    "embedding_drift",
    "empty_window_rate",
    "epoch_event",
    "format_counters_table",
    "format_quantile_table",
    "format_stage_table",
    "neighborhood_churn",
    "observe",
    "observe_many",
    "port_mix",
    "port_mix_shift",
    "record_run",
    "rss_bytes",
    "rss_peak_bytes",
    "rss_peak_children_bytes",
    "sample_rss_peak",
    "sample_rss_peak_children",
    "session",
    "set_gauge",
    "span",
    "telemetry_records",
    "volume_zscore",
    "wrap_task",
    "write_metrics_ndjson",
]
