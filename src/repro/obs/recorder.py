"""Telemetry recorders and the process-wide recording switch.

Two recorders implement the same surface:

* :class:`NullRecorder` — the default; every operation is a no-op so
  uninstrumented runs pay only an attribute lookup and an empty call
  per instrumentation site (verified to be <2% end-to-end overhead by
  ``benchmarks/bench_perf_engine.py``).  It records nothing and never
  touches RNG streams, time, or memory.
* :class:`Telemetry` — the active recorder: a span tree plus a
  :class:`~repro.obs.metrics.MetricsRegistry`.  Worker tasks record
  into task-local registries whose snapshots are merged back into the
  parent (see :meth:`Telemetry.task_scope`), which is how
  ``workers > 1`` runs aggregate correctly through the
  :class:`~repro.parallel.pool.WorkerPool`.

Enable recording with :func:`session`::

    with obs.session(Telemetry(profile_memory=True)) as telemetry:
        darkvec.fit(trace)
    print(telemetry.root.find("train.fit").elapsed)

Instrumented code never imports a recorder directly; it calls the
module-level helpers (:func:`span`, :func:`add`, ...) in
:mod:`repro.obs`, which dispatch to whatever recorder is installed.
"""

from __future__ import annotations

import functools
import os
import threading
import time
import tracemalloc
import weakref
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span

#: Every live Telemetry, so forked children can refresh their locks.
_LIVE_TELEMETRY: "weakref.WeakSet[Telemetry]" = weakref.WeakSet()


def _refresh_locks_after_fork() -> None:
    """Re-create recorder locks in a freshly forked child process.

    A fork can happen while another thread of the parent sits inside a
    recorder critical section (e.g. a serving read path calling
    ``obs.add`` concurrently with a process-backend refit forking its
    worker pool).  The child inherits the mutex in its locked state
    with no thread left to release it, so its first metric write would
    deadlock.  Immediately after fork the child is single-threaded,
    so replacing the locks outright is safe.
    """
    for telemetry in list(_LIVE_TELEMETRY):
        telemetry._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_refresh_locks_after_fork)


class _NullSpan:
    """Reusable no-op span handle returned while recording is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        """Discard the attributes."""


NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return NULL_SPAN

    def add(self, name: str, value: int | float = 1) -> None:
        """Discard a counter increment."""

    def set_gauge(self, name: str, value: float) -> None:
        """Discard a gauge update."""

    def observe(self, name: str, value: float) -> None:
        """Discard a histogram observation."""

    def observe_many(self, name: str, values: np.ndarray) -> None:
        """Discard a batch of histogram observations."""


class SpanHandle:
    """Context manager that times one :class:`Span` on a telemetry tree.

    Entering links the span under the thread's innermost open span (or
    the root) and starts the clock; exiting records the elapsed time
    and, under memory profiling, the ``tracemalloc`` peak of the
    region.  Exceptions propagate untouched — the span still records
    its duration.
    """

    __slots__ = ("_telemetry", "span", "_t0")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict) -> None:
        self._telemetry = telemetry
        self.span = Span(name=name, attrs=attrs)
        self._t0 = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the underlying span."""
        self.span.attrs.update(attrs)

    def __enter__(self) -> "SpanHandle":
        telemetry = self._telemetry
        stack = telemetry._stack()
        parent = stack[-1]
        stack.append(self.span)
        if telemetry.profile_memory and tracemalloc.is_tracing():
            # Fold the global high-water mark seen so far into the
            # parent before resetting it for this region — reset_peak
            # would otherwise erase the parent's own peak.
            pre_peak = tracemalloc.get_traced_memory()[1]
            parent.mem_peak_bytes = max(parent.mem_peak_bytes or 0, pre_peak)
            tracemalloc.reset_peak()
        self._t0 = time.perf_counter()
        with telemetry._lock:
            # Link and register in one critical section so live readers
            # (the TelemetrySink) see every in-flight span with its
            # start time — progress is observable mid-stage.
            parent.children.append(self.span)
            telemetry._open_spans[id(self.span)] = self._t0
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.span.elapsed = time.perf_counter() - self._t0
        self._telemetry._open_spans.pop(id(self.span), None)
        telemetry = self._telemetry
        stack = telemetry._stack()
        if stack and stack[-1] is self.span:
            stack.pop()
        if telemetry.profile_memory and tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1]
            # Children have already folded their peaks into this span.
            self.span.mem_peak_bytes = max(
                self.span.mem_peak_bytes or 0, peak
            )
            parent = stack[-1] if stack else telemetry.root
            parent.mem_peak_bytes = max(
                parent.mem_peak_bytes or 0, self.span.mem_peak_bytes
            )
            tracemalloc.reset_peak()
        return None


class Telemetry:
    """The active recorder: span tree + metrics registry.

    Attributes:
        root: synthetic root span; top-level pipeline stages are its
            children.
        registry: the aggregated metrics (task-scope snapshots merge
            into it; see :meth:`task_scope`).
        profile_memory: when True and a :func:`session` is active,
            ``tracemalloc`` runs and spans record peak memory.
        worker_stream_interval: when set (by an attached
            :class:`~repro.obs.live.TelemetrySink`), process-pool
            workers publish in-flight snapshots at this period; None
            (the default) keeps cross-process streaming off entirely.
    """

    enabled = True

    def __init__(self, profile_memory: bool = False) -> None:
        self.root = Span(name="root")
        self.registry = MetricsRegistry()
        self.profile_memory = profile_memory
        self.worker_stream_interval: float | None = None
        self._lock = threading.Lock()
        self._tls = threading.local()
        _LIVE_TELEMETRY.add(self)
        # id(span) -> perf_counter() at entry, for every unclosed span.
        self._open_spans: dict[int, float] = {}
        # thread ident -> live task-scope registry (in-flight metrics).
        self._active_shards: dict[int, MetricsRegistry] = {}
        # worker pid -> last published heartbeat (see publish_worker).
        self._workers_live: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # Recording surface (mirrors NullRecorder)
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """Open a new child span of the thread's innermost open span."""
        return SpanHandle(self, name, attrs)

    def add(self, name: str, value: int | float = 1) -> None:
        """Increment counter ``name`` (task-local shard when inside one)."""
        registry = getattr(self._tls, "registry", None)
        if registry is not None:
            registry.add(name, value)
        else:
            with self._lock:
                self.registry.add(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        registry = getattr(self._tls, "registry", None)
        if registry is not None:
            registry.set_gauge(name, value)
        else:
            with self._lock:
                self.registry.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation."""
        registry = getattr(self._tls, "registry", None)
        if registry is not None:
            registry.observe(name, value)
        else:
            with self._lock:
                self.registry.observe(name, value)

    def observe_many(self, name: str, values: np.ndarray) -> None:
        """Record a batch of histogram observations."""
        registry = getattr(self._tls, "registry", None)
        if registry is not None:
            registry.observe_many(name, values)
        else:
            with self._lock:
                self.registry.observe_many(name, values)

    # ------------------------------------------------------------------
    # Worker-task aggregation
    # ------------------------------------------------------------------

    @contextmanager
    def task_scope(self) -> Iterator[MetricsRegistry]:
        """Run the body with a fresh task-local metrics registry.

        The :class:`~repro.parallel.pool.WorkerPool` wraps every task in
        one of these: metric writes inside the task hit the private
        registry without locking, and on task completion the registry's
        snapshot is shipped back and merged into the parent under the
        telemetry lock.  Scopes nest (the previous registry is
        restored), and the same code path runs for the inline
        single-threaded pool, so aggregation is identical at every
        worker count.
        """
        shard = MetricsRegistry()
        previous = getattr(self._tls, "registry", None)
        tid = threading.get_ident()
        self._tls.registry = shard
        with self._lock:
            self._active_shards[tid] = shard
        try:
            yield shard
        finally:
            self._tls.registry = previous
            with self._lock:
                if previous is not None:
                    self._active_shards[tid] = previous
                else:
                    self._active_shards.pop(tid, None)
            self.merge_snapshot(shard.snapshot())

    def merge_snapshot(self, snapshot: dict) -> None:
        """Merge a child registry snapshot into the aggregate."""
        with self._lock:
            self.registry.merge(snapshot)

    def snapshot(self) -> dict:
        """Thread-safe snapshot of the aggregated metrics.

        Note: metric writes made inside still-running task scopes are
        not visible until those tasks complete; use
        :meth:`inflight_snapshot` for the live view.
        """
        with self._lock:
            return self.registry.snapshot()

    # ------------------------------------------------------------------
    # Live view (consumed by repro.obs.live)
    # ------------------------------------------------------------------

    def open_spans(self) -> dict[int, float]:
        """``id(span) -> start perf_counter`` for every unclosed span.

        Copied under the lock so a concurrent exit cannot mutate the
        dict mid-iteration.
        """
        with self._lock:
            return dict(self._open_spans)

    def inflight_snapshot(self) -> dict:
        """Merged snapshot of every still-running task scope.

        This is the live complement of :meth:`snapshot`: metric writes
        sitting in unfinished task shards, visible before the shards
        merge.  Reading races the writers benignly (counters may lag by
        the last increment) — the final merge is still exact.
        """
        with self._lock:
            shards = list(self._active_shards.values())
        merged = MetricsRegistry()
        for shard in shards:
            try:
                merged.merge(shard.snapshot())
            except RuntimeError:
                # The owning thread added a metric mid-copy ("dict
                # changed size during iteration"); skip this shard for
                # this frame — the next one will see it.
                continue
        return merged.snapshot()

    def publish_worker(self, info: dict) -> None:
        """Record a periodic heartbeat from a process-pool worker.

        ``info`` carries at least ``pid``; by convention also ``rss``
        (bytes), ``time`` (wall clock) and ``metrics`` (an in-flight
        registry snapshot).  Heartbeats feed the live frame only — the
        worker's end-of-task snapshot still merges normally, so the
        aggregate never double-counts.
        """
        with self._lock:
            self._workers_live[int(info.get("pid", 0))] = info
            self.registry.add("telemetry.worker_snapshots", 1)

    def workers_view(self) -> list[dict]:
        """Latest heartbeat per live worker pid, sorted by pid."""
        with self._lock:
            return [
                dict(info)
                for _, info in sorted(self._workers_live.items())
            ]

    def clear_workers(self) -> None:
        """Drop worker heartbeats (the pool they came from is gone)."""
        with self._lock:
            self._workers_live.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = [self.root]
            self._tls.stack = stack
        return stack


_CURRENT: NullRecorder | Telemetry = NullRecorder()


def current() -> NullRecorder | Telemetry:
    """The currently installed recorder (a no-op one by default)."""
    return _CURRENT


@contextmanager
def session(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the process-wide recorder.

    Starts ``tracemalloc`` for memory-profiling sessions (and stops it
    again if this session started it).  Sessions restore the previous
    recorder on exit, so they can nest, but the recorder is process
    global — concurrent sessions from different threads would observe
    each other.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    started_tracing = False
    if telemetry.profile_memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    try:
        yield telemetry
    finally:
        _CURRENT = previous
        if started_tracing:
            tracemalloc.stop()


def span(name: str, **attrs: Any) -> SpanHandle | _NullSpan:
    """Open a span on the installed recorder (no-op when disabled)."""
    return _CURRENT.span(name, **attrs)


def add(name: str, value: int | float = 1) -> None:
    """Increment a counter on the installed recorder."""
    _CURRENT.add(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the installed recorder."""
    _CURRENT.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the installed recorder."""
    _CURRENT.observe(name, value)


def observe_many(name: str, values: np.ndarray) -> None:
    """Record a batch of histogram observations."""
    _CURRENT.observe_many(name, values)


def wrap_task(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Wrap a worker task so its metrics merge back into the parent.

    Returns ``fn`` unchanged when recording is disabled — the zero-
    overhead default path.  Otherwise the returned callable runs ``fn``
    inside :meth:`Telemetry.task_scope` of the recorder installed *at
    wrap time* (tasks may outlive a recorder switch on the submitting
    thread).
    """
    recorder = _CURRENT
    if not recorder.enabled:
        return fn

    @functools.wraps(fn)
    def wrapped(*args: Any, **kwargs: Any) -> Any:
        with recorder.task_scope():
            return fn(*args, **kwargs)

    return wrapped
