"""Process-memory probes backing the ``proc.rss_peak`` gauge.

Bounded-memory claims need an instrument: the staged pipeline samples
the process's peak resident set (``VmHWM``) at every stage boundary, so
a telemetry session records how high RSS actually went regardless of
where inside the stage the peak occurred.  Reads come from
``/proc/self/status`` (Linux) with a ``resource.getrusage`` fallback,
and cost one small file read — nothing is sampled unless a recorder is
enabled.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import recorder

_STATUS_PATH = Path("/proc/self/status")
_TASK_DIR = Path("/proc/self/task")


def _status_kib(field: str, path: Path = _STATUS_PATH) -> int | None:
    """A ``kB`` field of a ``/proc/<pid>/status`` file, or None off-Linux."""
    try:
        text = path.read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith(field + ":"):
            try:
                return int(line.split()[1])
            except (IndexError, ValueError):
                return None
    return None


def _rusage_peak_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.  Treat small values as KiB.
    return int(peak) * 1024 if peak < 1 << 32 else int(peak)


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes."""
    kib = _status_kib("VmRSS")
    if kib is None:
        return _rusage_peak_bytes()
    return kib * 1024


def rss_peak_bytes() -> int:
    """Peak resident set size (high-water mark) of this process."""
    kib = _status_kib("VmHWM")
    if kib is None:
        return _rusage_peak_bytes()
    return kib * 1024


def child_pids() -> list[int]:
    """Pids of this process's live direct children (Linux; [] elsewhere).

    Children are listed per kernel thread under
    ``/proc/self/task/<tid>/children`` — process-pool workers forked
    from any thread are all direct children of this process.
    """
    pids: set[int] = set()
    try:
        task_dirs = list(_TASK_DIR.iterdir())
    except OSError:
        return []
    for task in task_dirs:
        try:
            text = (task / "children").read_text()
        except OSError:
            continue
        pids.update(int(pid) for pid in text.split())
    return sorted(pids)


def _rusage_children_peak_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(peak) * 1024 if peak < 1 << 32 else int(peak)


def rss_peak_children_bytes() -> int:
    """Aggregate RSS high-water mark of this process's children.

    Sums ``VmHWM`` across live child pids (the in-flight process-pool
    view) and takes the max against ``RUSAGE_CHILDREN`` (which only
    covers already-reaped children — each alone is blind to half the
    picture).  Returns 0 when no children ever existed.
    """
    live = 0
    for pid in child_pids():
        kib = _status_kib("VmHWM", Path(f"/proc/{pid}/status"))
        if kib is not None:
            live += kib * 1024
    return max(live, _rusage_children_peak_bytes())


def sample_rss_peak_children(gauge: str = "proc.rss_peak_children") -> None:
    """Record the children's aggregate RSS high-water mark into ``gauge``.

    No-op when no telemetry session is active, and skips the write
    entirely while the value is 0 (no process-pool children yet), so
    thread-backend runs do not emit a meaningless zero gauge.
    """
    if recorder.current().enabled:
        peak = rss_peak_children_bytes()
        if peak > 0:
            recorder.set_gauge(gauge, float(peak))


def sample_rss_peak(gauge: str = "proc.rss_peak") -> None:
    """Record the RSS high-water mark into the ``gauge`` gauge.

    No-op when no telemetry session is active, so the instrumented
    stage boundaries stay free on the default path.  Call sites pass
    the gauge name explicitly so the metric stays greppable where it
    is emitted.
    """
    if recorder.current().enabled:
        recorder.set_gauge(gauge, float(rss_peak_bytes()))
