"""Process-memory probes backing the ``proc.rss_peak`` gauge.

Bounded-memory claims need an instrument: the staged pipeline samples
the process's peak resident set (``VmHWM``) at every stage boundary, so
a telemetry session records how high RSS actually went regardless of
where inside the stage the peak occurred.  Reads come from
``/proc/self/status`` (Linux) with a ``resource.getrusage`` fallback,
and cost one small file read — nothing is sampled unless a recorder is
enabled.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs import recorder

_STATUS_PATH = Path("/proc/self/status")


def _status_kib(field: str) -> int | None:
    """A ``kB`` field of ``/proc/self/status``, or None off-Linux."""
    try:
        text = _STATUS_PATH.read_text()
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith(field + ":"):
            try:
                return int(line.split()[1])
            except (IndexError, ValueError):
                return None
    return None


def _rusage_peak_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.  Treat small values as KiB.
    return int(peak) * 1024 if peak < 1 << 32 else int(peak)


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes."""
    kib = _status_kib("VmRSS")
    if kib is None:
        return _rusage_peak_bytes()
    return kib * 1024


def rss_peak_bytes() -> int:
    """Peak resident set size (high-water mark) of this process."""
    kib = _status_kib("VmHWM")
    if kib is None:
        return _rusage_peak_bytes()
    return kib * 1024


def sample_rss_peak(gauge: str = "proc.rss_peak") -> None:
    """Record the RSS high-water mark into the ``gauge`` gauge.

    No-op when no telemetry session is active, so the instrumented
    stage boundaries stay free on the default path.  Call sites pass
    the gauge name explicitly so the metric stays greppable where it
    is emitted.
    """
    if recorder.current().enabled:
        recorder.set_gauge(gauge, float(rss_peak_bytes()))
