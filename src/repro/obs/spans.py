"""Hierarchical tracing spans.

A :class:`Span` records the wall time (and, under memory profiling,
the ``tracemalloc`` peak) of one named region of the pipeline, plus
arbitrary key/value attributes; nested regions become child spans, so
one run produces a tree rooted at the telemetry session's synthetic
``root`` span.  Spans carry no behaviour of their own — the recorder
(:mod:`repro.obs.recorder`) creates, times and links them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed region of the pipeline.

    Attributes:
        name: dotted region name, e.g. ``"train.epoch"``.
        attrs: custom attributes captured at entry or via
            :meth:`repro.obs.recorder.SpanHandle.set`.
        elapsed: wall-clock seconds (0.0 while the span is open).
        mem_peak_bytes: ``tracemalloc`` peak of the region, or ``None``
            when memory profiling is off.
        children: nested spans in creation order.
    """

    name: str
    attrs: dict = field(default_factory=dict)
    elapsed: float = 0.0
    mem_peak_bytes: int | None = None
    children: list["Span"] = field(default_factory=list)

    def walk(self, depth: int = 0, path: str = "") -> Iterator[tuple["Span", int, str]]:
        """Depth-first ``(span, depth, path)`` traversal of the subtree.

        ``path`` joins ancestor names with ``/`` (the root's own name is
        included); useful as a stable span identifier in exports.
        """
        here = f"{path}/{self.name}" if path else self.name
        yield self, depth, here
        for child in self.children:
            yield from child.walk(depth + 1, here)

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given name, DFS order."""
        for span, _, _ in self.walk():
            if span.name == name:
                return span
        return None

    @property
    def throughput(self) -> float | None:
        """``attrs["items"] / elapsed`` when both are available.

        Instrumentation sites set ``items`` (and ``items_unit``) on
        spans whose work has a natural volume — pairs trained, packets
        generated — which is what the profile table surfaces as
        throughput.
        """
        items = self.attrs.get("items")
        if items is None or self.elapsed <= 0:
            return None
        return float(items) / self.elapsed
